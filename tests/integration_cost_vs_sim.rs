//! Cross-validation of the analytic cost model against the simulator and
//! against materialised bitmap data.
//!
//! The paper uses the analytic formulas (report [33]) to pre-select
//! fragmentations and the simulator to validate them; both must therefore
//! agree on the *ordering* of alternatives.  The materialised scaled-down
//! warehouse additionally validates that the logical bitmap model (how many
//! bitmaps, which rows match) corresponds to real data.

use warehouse::bitmap::{MaterialisedFactTable, MaterialisedIndex};
use warehouse::prelude::*;

/// Analytic cost model and simulator agree on which fragmentation is better
/// for 1CODE1QUARTER (Figure 6, left): group < class < code in response time
/// and in estimated pages.
#[test]
fn cost_model_and_simulator_rank_fragmentations_identically() {
    let schema = schema::apb1::apb1_schema();
    let catalog = IndexCatalog::default_for(&schema);
    let model = CostModel::new(schema.clone(), catalog);
    let query = QueryType::OneCodeOneQuarter.to_star_query(&schema);
    let config = SimConfig {
        disks: 20,
        nodes: 4,
        subqueries_per_node: 3,
        ..SimConfig::default()
    };

    let mut analytic = Vec::new();
    let mut simulated = Vec::new();
    for product_level in ["product::group", "product::class", "product::code"] {
        let fragmentation = Fragmentation::parse(&schema, &["time::month", product_level]).unwrap();
        let (_, cost) = model.evaluate(&fragmentation, &query);
        analytic.push(cost.total_pages());
        let setup = ExperimentSetup::new(
            schema.clone(),
            fragmentation,
            config,
            QueryType::OneCodeOneQuarter,
            2,
        );
        simulated.push(run_experiment(&setup).mean_response_ms);
    }
    // Both metrics decrease from group to class to code.
    assert!(
        analytic[0] > analytic[1] && analytic[1] > analytic[2],
        "{analytic:?}"
    );
    assert!(
        simulated[0] > simulated[1] && simulated[1] > simulated[2],
        "{simulated:?}"
    );
}

/// The number of pages the simulator actually reads for a query is in the
/// same ballpark as the analytic estimate (within a factor of two for the
/// IOC1 query, where both models are exact up to rounding).
#[test]
fn simulated_page_counts_match_analytic_estimates_for_ioc1() {
    let schema = schema::apb1::apb1_schema();
    let catalog = IndexCatalog::default_for(&schema);
    let model = CostModel::new(schema.clone(), catalog);
    let fragmentation = Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
    let query = QueryType::OneMonthOneGroup.to_star_query(&schema);
    let (_, cost) = model.evaluate(&fragmentation, &query);

    let config = SimConfig {
        disks: 10,
        nodes: 2,
        subqueries_per_node: 2,
        use_buffer: false,
        ..SimConfig::default()
    };
    let setup = ExperimentSetup::new(
        schema,
        fragmentation,
        config,
        QueryType::OneMonthOneGroup,
        1,
    );
    let summary = run_experiment(&setup);
    let simulated_pages = summary.queries[0].pages_read as f64;
    assert!(
        simulated_pages > cost.total_pages() / 2.0 && simulated_pages < cost.total_pages() * 2.0,
        "simulated {simulated_pages} vs analytic {}",
        cost.total_pages()
    );
}

/// The logical bitmap-index model matches materialised data: the number of
/// bitmaps a selection reads equals the spec, and selections agree with a
/// brute-force scan for every dimension.
#[test]
fn materialised_bitmaps_agree_with_logical_model() {
    let schema = schema::apb1::apb1_scaled_down();
    let table = MaterialisedFactTable::generate(&schema, 99);
    let catalog = IndexCatalog::default_for(&schema);

    for dim in 0..schema.dimension_count() {
        let index = MaterialisedIndex::build(&schema, &catalog, &table, dim);
        assert_eq!(
            index.materialised_bitmap_count() as u64,
            catalog.spec(dim).bitmap_count()
        );
        let hierarchy = schema.dimensions()[dim].hierarchy();
        for level in 0..hierarchy.depth() {
            let value = hierarchy.cardinality(level) / 2;
            let selected: Vec<usize> = index.select(level, value).iter_ones().collect();
            let mut predicates = vec![None; schema.dimension_count()];
            predicates[dim] = Some(hierarchy.leaf_range_of(level, value));
            assert_eq!(selected, table.scan(&predicates), "dim {dim} level {level}");
        }
    }
}

/// Fragment-of-row mapping and bound-query fragment lists are consistent on
/// materialised data: every row matching the query lives in one of the
/// fragments the bound query declares relevant.
#[test]
fn bound_query_fragment_lists_cover_all_matching_rows() {
    let schema = schema::apb1::apb1_scaled_down();
    let table = MaterialisedFactTable::generate(&schema, 7);
    let fragmentation = Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
    let product = schema.dimension_index("product").unwrap();
    let time = schema.dimension_index("time").unwrap();
    let group_attr = schema.attr("product", "group").unwrap();

    let query = QueryType::OneMonthOneGroup.to_star_query(&schema);
    let bound = BoundQuery::new(&schema, query, vec![2, 3]);
    let relevant: std::collections::BTreeSet<u64> = bound
        .relevant_fragments(&schema, &fragmentation)
        .into_iter()
        .collect();

    let hierarchy = schema.dimensions()[product].hierarchy();
    for row in table.rows() {
        let matches = row.keys[time] == 2
            && hierarchy.ancestor_of_leaf(row.keys[product], group_attr.level) == 3;
        if matches {
            let fragment = fragmentation.fragment_of_row(&schema, &row.keys);
            assert!(relevant.contains(&fragment));
        }
    }
}
