//! Integration tests of the `exec::scheduler` multi-user execution layer:
//! every scheduled query must be **bit-identical** to its isolated serial
//! run for every MPL, the shared pool must never over-subscribe and must
//! account for exactly the sum of the per-query plans, and — on machines
//! with at least 4 cores — throughput at MPL 4 must strictly exceed MPL 1
//! for a stream of single-fragment queries.

use std::num::NonZeroUsize;

use warehouse::prelude::*;
use warehouse::schema::apb1::Apb1Config;
use warehouse::workload::QueryType;

fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

/// A mixed multi-user stream over the scaled-down APB-1 warehouse.
fn mixed_setup() -> (StarJoinEngine, Vec<BoundQuery>) {
    let schema = warehouse::schema::apb1::apb1_scaled_down();
    let fragmentation =
        Fragmentation::parse(&schema, &["time::month", "product::group"]).expect("valid attrs");
    let engine = StarJoinEngine::new(FragmentStore::build(&schema, &fragmentation, 2024));
    let mut stream = InterleavedStream::new(
        &schema,
        &[
            QueryType::OneMonthOneGroup,
            QueryType::OneCode,
            QueryType::OneGroup,
            QueryType::OneStore,
            QueryType::OneCodeOneQuarter,
        ],
        42,
    );
    let queries = stream.take_queries(15);
    (engine, queries)
}

#[test]
fn scheduler_is_bit_identical_to_isolated_serial_runs() {
    let (engine, queries) = mixed_setup();
    let serial: Vec<QueryResult> = queries.iter().map(|q| engine.execute_serial(q)).collect();
    for mpl in [1usize, 2, 4, 8] {
        let outcome = engine.execute_stream(&queries, &SchedulerConfig::new(4, mpl));
        assert_eq!(outcome.queries.len(), queries.len());
        assert_eq!(outcome.metrics.queries_completed, queries.len());
        for (scheduled, baseline) in outcome.queries.iter().zip(&serial) {
            assert_eq!(
                scheduled.hits, baseline.hits,
                "MPL {mpl}: {} hits diverged",
                scheduled.query_name
            );
            let scheduled_bits: Vec<u64> =
                scheduled.measure_sums.iter().map(|s| s.to_bits()).collect();
            let baseline_bits: Vec<u64> =
                baseline.measure_sums.iter().map(|s| s.to_bits()).collect();
            assert_eq!(
                scheduled_bits, baseline_bits,
                "MPL {mpl}: {} measure sums not bit-identical to the serial run",
                scheduled.query_name
            );
        }
    }
}

#[test]
fn shared_pool_accounts_for_the_sum_of_per_query_plans() {
    let (engine, queries) = mixed_setup();
    let expected_tasks: usize = queries.iter().map(|q| engine.plan(q).task_count()).sum();
    let expected_rows: u64 = queries
        .iter()
        .map(|q| engine.store().planned_rows(&engine.plan(q)))
        .sum();
    for mpl in [1usize, 4] {
        let outcome = engine.execute_stream(&queries, &SchedulerConfig::new(4, mpl));
        // One shared pool of exactly 4 workers, regardless of the MPL — the
        // scheduler interleaves tasks instead of spawning pools per query.
        assert_eq!(outcome.metrics.pool.worker_count(), 4);
        assert_eq!(outcome.metrics.mpl, mpl);
        assert_eq!(outcome.metrics.pool.total_fragments(), expected_tasks);
        assert_eq!(outcome.metrics.pool.planned_fragments, expected_tasks);
        assert_eq!(outcome.metrics.pool.total_rows_scanned(), expected_rows);
        // Latency accounting: one latency per query, none zero, and the
        // percentile endpoints bracket the mean.
        assert_eq!(outcome.metrics.latencies.len(), queries.len());
        assert!(outcome.metrics.latency_percentile(0.0) <= outcome.metrics.latency_mean());
        assert!(outcome.metrics.latency_max() >= outcome.metrics.latency_mean());
        assert!(outcome.metrics.worker_utilisation() > 0.0);
        assert!(outcome.metrics.queries_per_sec() > 0.0);
    }
}

#[test]
fn scheduler_agrees_with_the_engine_under_every_representation_policy() {
    // The multi-user layer must preserve the representation-policy
    // invariant of the single-query engine: identical bits whether the
    // store's bitmaps are plain, WAH-compressed or adaptively chosen.
    let schema = warehouse::schema::apb1::apb1_scaled_down();
    let fragmentation =
        Fragmentation::parse(&schema, &["time::month", "product::group"]).expect("valid attrs");
    let mut stream = InterleavedStream::new(
        &schema,
        &[QueryType::OneStore, QueryType::OneMonthOneGroup],
        7,
    );
    let queries = stream.take_queries(6);
    let mut reference: Option<Vec<Vec<u64>>> = None;
    for policy in [
        RepresentationPolicy::Plain,
        RepresentationPolicy::Wah,
        RepresentationPolicy::Adaptive {
            max_density: RepresentationPolicy::DEFAULT_MAX_DENSITY,
        },
    ] {
        let store = FragmentStore::build_with_policy(&schema, &fragmentation, 2024, policy);
        let engine = StarJoinEngine::new(store);
        let outcome = engine.execute_stream(&queries, &SchedulerConfig::new(4, 4));
        let bits: Vec<Vec<u64>> = outcome
            .queries
            .iter()
            .map(|q| q.measure_sums.iter().map(|s| s.to_bits()).collect())
            .collect();
        match &reference {
            None => reference = Some(bits),
            Some(expected) => assert_eq!(&bits, expected, "policy {policy:?} diverged"),
        }
    }
}

#[test]
fn multi_user_admission_raises_throughput_of_single_fragment_streams() {
    // Single-fragment 1MONTH1GROUP queries under a month-only fragmentation:
    // intra-query parallelism is 1, so a 4-worker pool is idle at MPL 1 and
    // admission at MPL 4 must complete the same stream faster.  Gated on
    // core count like the single-query speedup assertion.
    let cores = available_cores();
    if cores < 4 {
        eprintln!(
            "skipping the MPL-4 > MPL-1 throughput assertion: only {cores} core(s) available \
             (the exactness checks above still ran)"
        );
        return;
    }
    let schema = Apb1Config {
        channels: 3,
        months: 24,
        stores: 96,
        product_codes: 240,
        density: 0.5,
        fact_tuple_bytes: 20,
    }
    .build();
    let fragmentation = Fragmentation::parse(&schema, &["time::month"]).expect("valid attrs");
    let engine = StarJoinEngine::new(FragmentStore::build(&schema, &fragmentation, 7));
    let mut generator = QueryGenerator::new(&schema, QueryType::OneMonthOneGroup, 99);
    let queries = generator.batch(64);
    assert!(queries.iter().all(|q| engine.plan(q).task_count() == 1));

    // Wall-clock measurements on shared runners are noisy; allow one
    // re-measurement before declaring the throughput claim violated.
    let mut last = (0.0f64, 0.0f64);
    let ok = (0..2).any(|attempt| {
        let single = engine
            .execute_stream(&queries, &SchedulerConfig::new(4, 1))
            .metrics
            .queries_per_sec();
        let multi = engine
            .execute_stream(&queries, &SchedulerConfig::new(4, 4))
            .metrics
            .queries_per_sec();
        last = (single, multi);
        if multi <= single && attempt == 0 {
            eprintln!("first measurement was {multi:.0} vs {single:.0} qps; re-measuring once");
        }
        multi > single
    });
    let (single, multi) = last;
    assert!(
        ok,
        "MPL 4 throughput ({multi:.0} qps) did not exceed MPL 1 ({single:.0} qps) \
         on a 4-worker pool ({cores} cores)"
    );
}
