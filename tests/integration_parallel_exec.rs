//! Integration tests of the `exec` parallel star-join engine: parallel
//! results must be **bit-identical** to serial ones for every worker count,
//! the work-stealing pool must account for every planned fragment, and — on
//! machines with at least 4 cores — the measured wall-clock speedup of a
//! 1STORE-class query at 4 workers must exceed 2x.

use std::num::NonZeroUsize;

use warehouse::prelude::*;
use warehouse::schema::apb1::Apb1Config;
use warehouse::workload::QueryType;

/// A mid-size APB-1-shaped warehouse: large enough that parallel execution
/// pays off, small enough to materialise in a debug-build test run.
fn speedup_schema() -> StarSchema {
    Apb1Config {
        channels: 3,
        months: 24,
        stores: 120,
        product_codes: 360,
        density: 0.55,
        fact_tuple_bytes: 20,
    }
    .build()
}

fn speedup_engine() -> StarJoinEngine {
    let schema = speedup_schema();
    let fragmentation =
        Fragmentation::parse(&schema, &["time::month", "product::group"]).expect("valid attrs");
    StarJoinEngine::new(FragmentStore::build(&schema, &fragmentation, 7))
}

fn available_cores() -> usize {
    std::thread::available_parallelism().map_or(1, NonZeroUsize::get)
}

fn assert_bit_identical(serial: &QueryResult, parallel: &QueryResult, workers: usize) {
    assert_eq!(
        parallel.hits, serial.hits,
        "{} with {workers} workers",
        serial.query_name
    );
    let serial_bits: Vec<u64> = serial.measure_sums.iter().map(|s| s.to_bits()).collect();
    let parallel_bits: Vec<u64> = parallel.measure_sums.iter().map(|s| s.to_bits()).collect();
    assert_eq!(
        parallel_bits, serial_bits,
        "{} with {workers} workers: measure sums not bit-identical",
        serial.query_name
    );
}

#[test]
fn parallel_execution_is_exact_and_speeds_up() {
    let engine = speedup_engine();
    let schema = engine.store().schema().clone();

    // --- Exactness: every query class, every worker count, bit-identical. ---
    let cases = [
        (QueryType::OneStore, vec![17]), // IOC2-nosupp, all fragments
        (QueryType::OneMonth, vec![5]),  // IOC1, no bitmaps
        (QueryType::OneMonthOneGroup, vec![3, 1]), // IOC1-opt, one fragment
        (QueryType::OneCodeOneQuarter, vec![65, 2]), // Q4, mixed
        (QueryType::OneGroupOneStore, vec![4, 40]), // Q1 + unfragmented bitmap
    ];
    for (query_type, values) in cases {
        let bound = BoundQuery::new(&schema, query_type.to_star_query(&schema), values);
        let plan = engine.plan(&bound);
        assert_eq!(
            plan.fragments().len() as u64,
            plan.classification().fragments_to_process,
            "{}: plan disagrees with analytic classification",
            plan.query_name()
        );
        let serial = engine.execute_serial(&bound);
        for workers in [2usize, 4, 8] {
            let parallel = engine.execute(
                &bound,
                &ExecConfig {
                    workers,
                    ..ExecConfig::default()
                },
            );
            assert_bit_identical(&serial, &parallel, workers);
            assert_eq!(
                parallel.metrics.total_fragments(),
                parallel.metrics.planned_fragments,
                "{} with {workers} workers: fragments lost or double-processed",
                serial.query_name
            );
            // The pool is clamped to the planned fragment count, so a pruned
            // single-fragment query runs on one worker no matter the config.
            let expected_pool = workers.min(plan.fragments().len()).max(1);
            assert_eq!(parallel.metrics.worker_count(), expected_pool);
        }
    }

    // --- Sanity of the workload: 1STORE really is the full-scan class. ---
    let one_store = BoundQuery::new(
        &schema,
        QueryType::OneStore.to_star_query(&schema),
        vec![17],
    );
    let plan = engine.plan(&one_store);
    assert_eq!(
        plan.fragments().len() as u64,
        engine.store().fragmentation().fragment_count(),
        "1STORE must touch every fragment under F_MonthGroup"
    );
    assert!(!plan.bitmap_predicates().is_empty());

    // --- Measured speedup: >2x at 4 workers, on machines with >=4 cores. ---
    let cores = available_cores();
    if cores < 4 {
        eprintln!(
            "skipping the >2x speedup assertion: only {cores} core(s) available \
             (the exactness checks above still ran)"
        );
        return;
    }
    let best = |workers: usize| {
        (0..3)
            .map(|_| {
                engine
                    .execute(
                        &one_store,
                        &ExecConfig {
                            workers,
                            ..ExecConfig::default()
                        },
                    )
                    .metrics
                    .wall
            })
            .min()
            .expect("three runs")
    };
    // Wall-clock measurements on shared runners are noisy; allow one
    // re-measurement before declaring the speedup claim violated.
    let mut last = (std::time::Duration::ZERO, std::time::Duration::ZERO, 0.0);
    let ok = (0..2).any(|attempt| {
        let serial_wall = best(1);
        let parallel_wall = best(4);
        let speedup = serial_wall.as_secs_f64() / parallel_wall.as_secs_f64().max(f64::EPSILON);
        last = (serial_wall, parallel_wall, speedup);
        if speedup <= 2.0 && attempt == 0 {
            eprintln!("first speedup measurement was {speedup:.2}x; re-measuring once");
        }
        speedup > 2.0
    });
    let (serial_wall, parallel_wall, speedup) = last;
    assert!(
        ok,
        "1STORE speedup at 4 workers was only {speedup:.2}x \
         (serial {serial_wall:?}, parallel {parallel_wall:?}, {cores} cores)"
    );
}

#[test]
fn work_stealing_balances_a_skewed_store() {
    // Fragment the scaled-down schema by month only: 12 fat fragments.  With
    // 4 workers each owning 3 fragments, stealing is not required for
    // correctness but the totals must still add up, and an 8-worker pool
    // (more workers than some chunks) must still process every fragment.
    let schema = warehouse::schema::apb1::apb1_scaled_down();
    let fragmentation = Fragmentation::parse(&schema, &["time::month"]).expect("valid attrs");
    let engine = StarJoinEngine::new(FragmentStore::build(&schema, &fragmentation, 42));
    let bound = BoundQuery::new(&schema, QueryType::OneStore.to_star_query(&schema), vec![9]);

    let serial = engine.execute_serial(&bound);
    for workers in [4usize, 8, 16] {
        let parallel = engine.execute(
            &bound,
            &ExecConfig {
                workers,
                ..ExecConfig::default()
            },
        );
        assert_bit_identical(&serial, &parallel, workers);
        assert_eq!(parallel.metrics.total_fragments(), 12);
        assert_eq!(
            parallel.metrics.total_rows_scanned(),
            engine.store().total_rows() as u64
        );
    }
}

#[test]
fn engine_agrees_with_the_analytic_pillar() {
    // The physical engine, the analytic classifier and the logical sizing
    // arithmetic must tell one consistent story on the scaled-down schema.
    let schema = warehouse::schema::apb1::apb1_scaled_down();
    let fragmentation =
        Fragmentation::parse(&schema, &["time::month", "product::group"]).expect("valid attrs");
    let engine = StarJoinEngine::new(FragmentStore::build(&schema, &fragmentation, 2024));

    for (query_type, values) in [
        (QueryType::OneStore, vec![3]),
        (QueryType::OneMonth, vec![11]),
        (QueryType::OneCode, vec![77]),
        (QueryType::OneMonthOneGroup, vec![0, 0]),
        (QueryType::OneCodeOneQuarter, vec![119, 3]),
    ] {
        let bound = BoundQuery::new(&schema, query_type.to_star_query(&schema), values);
        let plan = engine.plan(&bound);
        let classification = mdhf::classify(&schema, &fragmentation, bound.query());
        assert_eq!(plan.classification(), &classification);
        assert_eq!(
            plan.fragments().len() as u64,
            classification.fragments_to_process
        );
        // IOC1 classes execute without a single bitmap predicate.
        assert_eq!(
            plan.bitmap_predicates().is_empty(),
            classification.needs_no_bitmaps()
        );
    }
    assert_eq!(
        engine.store().logical_bitmap_sizing().fragments(),
        fragmentation.fragment_count()
    );
}

#[test]
fn engine_agrees_with_the_reference_bitmap_evaluation() {
    // `bitmap::evaluate_star_query` is the reference implementation over the
    // unfragmented table; the engine's fragmented pipeline must agree with
    // it, pinning the two code paths together.
    use warehouse::bitmap::{evaluate_star_query, MaterialisedFactTable, MaterialisedIndex};

    let schema = warehouse::schema::apb1::apb1_scaled_down();
    let fragmentation =
        Fragmentation::parse(&schema, &["time::month", "product::group"]).expect("valid attrs");
    let table = MaterialisedFactTable::generate(&schema, 2024);
    let engine = StarJoinEngine::new(FragmentStore::from_table(&schema, &fragmentation, &table));
    let catalog = engine.store().catalog().clone();
    let indices: Vec<MaterialisedIndex> = (0..schema.dimension_count())
        .map(|d| MaterialisedIndex::build(&schema, &catalog, &table, d))
        .collect();

    for (query_type, values) in [
        (QueryType::OneStore, vec![21]),
        (QueryType::OneMonthOneGroup, vec![7, 3]),
        (QueryType::OneCodeOneQuarter, vec![88, 1]),
        (QueryType::OneGroupOneStore, vec![2, 5]),
    ] {
        let bound = BoundQuery::new(&schema, query_type.to_star_query(&schema), values);
        let reference_predicates: Vec<(usize, usize, u64)> = bound
            .query()
            .predicates()
            .iter()
            .zip(bound.values())
            .map(|(p, &value)| (p.attr.dimension, p.attr.level, value))
            .collect();
        let (reference_hits, reference_sum) =
            evaluate_star_query(&table, &indices, &reference_predicates, 0);
        let result = engine.execute_serial(&bound);
        assert_eq!(result.hits, reference_hits as u64, "{}", result.query_name);
        // Summation order differs (global row order vs. per-fragment), so
        // compare with a float tolerance rather than bit equality.
        assert!(
            (result.measure_sums[0] - reference_sum).abs() <= 1e-6 * reference_sum.abs().max(1.0),
            "{}: engine sum {} != reference sum {}",
            result.query_name,
            result.measure_sums[0],
            reference_sum
        );
    }
}
