//! Integration tests of the simulated disk I/O layer under skew: LRU
//! cache monotonicity, deterministic replay, per-disk accounting, and
//! result stability on selectivity-skewed stores.

use warehouse::prelude::*;

/// A small skewed warehouse plus a matching hot-spot query stream.
fn skewed_setup(theta: f64) -> (StarJoinEngine, Vec<BoundQuery>) {
    let schema = schema::apb1::Apb1Config {
        channels: 3,
        months: 12,
        stores: 60,
        product_codes: 120,
        density: 0.3,
        fact_tuple_bytes: 20,
    }
    .build();
    let fragmentation = Fragmentation::parse(&schema, &["time::month", "product::code"]).unwrap();
    let store = FragmentStore::build_skewed(&schema, &fragmentation, 11, theta, 40_000);
    let engine = StarJoinEngine::new(store);
    let mut stream = InterleavedStream::new(
        &schema,
        &[QueryType::OneMonthOneGroup, QueryType::OneCode],
        5,
    )
    .with_value_skew(theta);
    let queries = stream.take_queries(48);
    (engine, queries)
}

/// Runs the stream on the shared pool with a cache of `cache_pages`.
fn run_with_cache(
    engine: &StarJoinEngine,
    queries: &[BoundQuery],
    cache_pages: usize,
) -> ThroughputMetrics {
    let io = IoConfig::with_disks(7).cache(cache_pages);
    engine
        .execute_stream(queries, &SchedulerConfig::new(4, 4).with_io(io))
        .metrics
}

#[test]
fn cache_hit_rate_is_monotone_in_cache_size() {
    // A repeated-scan workload: the Zipf-skewed stream keeps returning to
    // the hot fragments, so a larger LRU cache can only help.  LRU is a
    // stack algorithm, so the hit rate must be non-decreasing in the
    // capacity — a Belady-style anomaly here would mean the shared pool
    // broke the replacement order.
    let (engine, queries) = skewed_setup(1.0);
    let mut previous = -1.0f64;
    let mut rates = Vec::new();
    for cache_pages in [16usize, 64, 128, 256, 512, 4_096] {
        let metrics = run_with_cache(&engine, &queries, cache_pages);
        let rate = metrics.pool.cache_hit_rate();
        assert!(
            rate >= previous - 1e-12,
            "hit rate fell from {previous:.3} to {rate:.3} at {cache_pages} pages: {rates:?}"
        );
        previous = rate;
        rates.push((cache_pages, rate));
    }
    // The sweep spans the interesting range: the smallest cache thrashes,
    // the largest absorbs every repeated scan.
    assert!(rates.first().unwrap().1 < rates.last().unwrap().1);
    assert!(rates.last().unwrap().1 > 0.5, "{rates:?}");
}

#[test]
fn simulated_io_replay_is_deterministic_across_runs_and_pools() {
    let (engine, queries) = skewed_setup(0.5);
    let a = run_with_cache(&engine, &queries, 256);
    let b = run_with_cache(&engine, &queries, 256);
    assert_eq!(a.pool.io, b.pool.io, "same configuration, same replay");

    // Worker count and MPL change wall-clock scheduling but never the
    // simulated subsystem: charges happen in admission order.
    let io = IoConfig::with_disks(7).cache(256);
    let other = engine
        .execute_stream(&queries, &SchedulerConfig::new(2, 8).with_io(io))
        .metrics;
    assert_eq!(a.pool.io, other.pool.io);
}

#[test]
fn per_disk_accounting_is_conserved() {
    let (engine, queries) = skewed_setup(1.0);
    let metrics = run_with_cache(&engine, &queries, 128);
    let io = metrics.pool.io.as_ref().expect("I/O metrics present");
    assert_eq!(io.disk_count(), 7);

    // Pages transferred equal cache misses, globally and per disk.
    assert_eq!(io.total_pages_read(), io.cache.misses);
    for disk in &io.per_disk {
        assert_eq!(disk.pages_read, disk.cache_misses);
        assert!(disk.busy_ms >= 0.0);
        assert!(disk.mean_queue_depth >= 0.0);
    }
    let per_disk_hits: u64 = io.per_disk.iter().map(|d| d.cache_hits).sum();
    assert_eq!(per_disk_hits, io.cache.hits);

    // The makespan is the busiest disk; imbalance is at least 1.
    let busiest = io.per_disk.iter().map(|d| d.busy_ms).fold(0.0, f64::max);
    assert!((io.elapsed_ms - busiest).abs() < 1e-9);
    assert!(io.disk_imbalance() >= 1.0);

    // Worker-side simulated time equals the subsystem's total busy time.
    assert!((metrics.pool.total_sim_io_ms() - io.total_busy_ms()).abs() < 1e-6);
}

#[test]
fn skewed_streams_stay_bit_identical_to_serial_with_io_enabled() {
    let (engine, queries) = skewed_setup(1.0);
    let outcome = engine.execute_stream(
        &queries,
        &SchedulerConfig::new(4, 4)
            .with_placement(PhysicalAllocation::round_robin(7))
            .with_io(IoConfig::with_disks(7).cache(256)),
    );
    for (bound, scheduled) in queries.iter().zip(&outcome.queries) {
        let serial = engine.execute_serial(bound);
        assert_eq!(scheduled.hits, serial.hits, "{}", scheduled.query_name);
        let serial_bits: Vec<u64> = serial.measure_sums.iter().map(|s| s.to_bits()).collect();
        let scheduled_bits: Vec<u64> = scheduled.measure_sums.iter().map(|s| s.to_bits()).collect();
        assert_eq!(scheduled_bits, serial_bits, "{}", scheduled.query_name);
    }
}

#[test]
fn skew_aware_cache_keeps_disks_balanced_under_zipf() {
    // The miniature version of the fig_skew_resilience gate: with the
    // shared cache active, full Zipf skew keeps the per-disk imbalance in
    // the same regime as the uniform workload, while the uncached
    // subsystem degrades.
    let (uniform_engine, uniform_queries) = skewed_setup(0.0);
    let (skewed_engine, skewed_queries) = skewed_setup(1.0);
    let uniform = run_with_cache(&uniform_engine, &uniform_queries, 4_096)
        .pool
        .disk_imbalance();
    let skewed = run_with_cache(&skewed_engine, &skewed_queries, 4_096)
        .pool
        .disk_imbalance();
    assert!(
        skewed <= 1.5 * uniform,
        "θ=1 imbalance {skewed:.2}x vs uniform {uniform:.2}x"
    );

    // Without the cache, hot fragments are re-read on every scan and the
    // skewed imbalance exceeds the cached one.
    let io = IoConfig::with_disks(7).cache(0);
    let uncached = skewed_engine
        .execute_stream(&skewed_queries, &SchedulerConfig::new(4, 4).with_io(io))
        .metrics
        .pool
        .disk_imbalance();
    assert!(
        uncached >= skewed,
        "uncached {uncached:.2}x vs cached {skewed:.2}x"
    );
}
