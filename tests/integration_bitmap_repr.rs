//! Integration tests of the adaptive bitmap-representation layer, end to
//! end: index builds under {Plain, Wah, Roaring, Adaptive} policies must
//! yield bit-identical query results (serial and parallel), the adaptive
//! representation must shrink clustered-run index storage by at least 3x,
//! and the measured compression ratio must flow into the bitmap-fragment
//! page sizing and the analytic cost model.

use warehouse::bitmap::MaterialisedFactTable;
use warehouse::prelude::*;
use warehouse::workload::QueryType;

fn policies() -> [RepresentationPolicy; 4] {
    [
        RepresentationPolicy::Plain,
        RepresentationPolicy::Wah,
        RepresentationPolicy::Roaring,
        RepresentationPolicy::default(),
    ]
}

#[test]
fn every_policy_returns_bit_identical_results() {
    let schema = schema::apb1::apb1_scaled_down();
    let fragmentation =
        Fragmentation::parse(&schema, &["time::month", "product::group"]).expect("valid attrs");
    let table = MaterialisedFactTable::generate(&schema, 2024);

    let cases = [
        (QueryType::OneStore, vec![7]),
        (QueryType::OneMonth, vec![5]),
        (QueryType::OneMonthOneGroup, vec![3, 1]),
        (QueryType::OneCodeOneQuarter, vec![65, 2]),
        (QueryType::OneGroupOneStore, vec![4, 11]),
    ];

    // One store+engine per policy, shared across every query case; the
    // plain one doubles as the serial reference.
    let engines: Vec<(RepresentationPolicy, StarJoinEngine)> = policies()
        .into_iter()
        .map(|policy| {
            let store =
                FragmentStore::from_table_with_policy(&schema, &fragmentation, &table, policy);
            (policy, StarJoinEngine::new(store))
        })
        .collect();
    let plain_engine = &engines[0].1;
    assert_eq!(engines[0].0, RepresentationPolicy::Plain);
    for (query_type, values) in cases {
        let bound = BoundQuery::new(&schema, query_type.to_star_query(&schema), values.clone());
        let reference = plain_engine.execute_serial(&bound);
        let reference_bits: Vec<u64> = reference.measure_sums.iter().map(|s| s.to_bits()).collect();
        for (policy, engine) in &engines {
            for workers in [1usize, 2, 8] {
                let result = engine.execute(
                    &bound,
                    &ExecConfig {
                        workers,
                        ..ExecConfig::default()
                    },
                );
                assert_eq!(
                    result.hits, reference.hits,
                    "{} under {policy:?} with {workers} workers",
                    result.query_name
                );
                let bits: Vec<u64> = result.measure_sums.iter().map(|s| s.to_bits()).collect();
                assert_eq!(
                    bits, reference_bits,
                    "{} under {policy:?} with {workers} workers",
                    result.query_name
                );
            }
        }
    }
}

#[test]
fn adaptive_representation_shrinks_clustered_runs_at_least_3x() {
    // Clustered-run predicate bitmaps: the shape of selections on
    // range-contiguous hierarchy values (and of the acceptance criterion).
    let n = 500_000;
    let run = 1_000usize;
    let stride = 40_000usize;
    let mut stats = ReprStats::default();
    for phase in 0..8usize {
        let mut bitmap = Bitmap::new(n);
        let mut start = phase * (stride / 8);
        while start < n {
            for p in start..(start + run).min(n) {
                bitmap.set(p, true);
            }
            start += stride;
        }
        stats.absorb(&BitmapRepr::from_bitmap(
            bitmap,
            RepresentationPolicy::default(),
        ));
    }
    assert_eq!(stats.compressed, stats.bitmaps);
    assert!(
        stats.compression_ratio() >= 3.0,
        "clustered-run compression ratio only {:.2}x",
        stats.compression_ratio()
    );
    assert!(stats.size_bytes * 3 <= stats.plain_size_bytes);
}

#[test]
fn measured_ratio_flows_into_sizing_and_cost_model() {
    let schema = schema::apb1::apb1_scaled_down();
    let fragmentation =
        Fragmentation::parse(&schema, &["time::month", "product::group"]).expect("valid attrs");
    let store = FragmentStore::build(&schema, &fragmentation, 2024);
    let ratio = store.measured_compression_ratio();
    assert!(ratio >= 1.0, "adaptive storage never exceeds verbatim");

    let measured = store.measured_bitmap_sizing();
    assert_eq!(measured.compression_ratio(), ratio);
    let logical = store.logical_bitmap_sizing();
    assert!(
        (measured.bytes_per_fragment() * ratio - logical.bytes_per_fragment()).abs() < 1e-6,
        "measured sizing must be the logical sizing shrunk by the ratio"
    );

    // The cost model consumes the same measured ratio: bitmap page reads of
    // an index-dependent query shrink accordingly (floored at one page per
    // bitmap fragment).
    let full_schema = schema::apb1::apb1_schema();
    let catalog = IndexCatalog::default_for(&full_schema);
    let full_fragmentation =
        Fragmentation::parse(&full_schema, &["time::month", "product::group"]).expect("attrs");
    let query = StarQuery::exact_match(&full_schema, "1STORE", &["customer::store"]);
    let verbatim = CostModel::new(full_schema.clone(), catalog.clone());
    let compressed = CostModel::new(full_schema, catalog).with_measured_compression(4.0);
    let (_, v) = verbatim.evaluate(&full_fragmentation, &query);
    let (_, c) = compressed.evaluate(&full_fragmentation, &query);
    assert!(c.bitmap_pages_read < v.bitmap_pages_read);
    assert_eq!(c.fact_pages_read, v.fact_pages_read);
}

#[test]
fn placement_seeded_execution_is_bit_identical_to_unseeded() {
    let schema = schema::apb1::apb1_scaled_down();
    let fragmentation =
        Fragmentation::parse(&schema, &["time::month", "product::group"]).expect("valid attrs");
    let engine = StarJoinEngine::new(FragmentStore::build(&schema, &fragmentation, 2024));
    let bound = BoundQuery::new(&schema, QueryType::OneStore.to_star_query(&schema), vec![7]);
    let baseline = engine.execute_serial(&bound);
    for disks in [4u64, 10, 100] {
        for workers in [2usize, 4] {
            let config = ExecConfig {
                workers,
                placement: Some(PhysicalAllocation::round_robin(disks)),
                ..ExecConfig::default()
            };
            let placed = engine.execute(&bound, &config);
            assert_eq!(placed.hits, baseline.hits);
            let a: Vec<u64> = baseline.measure_sums.iter().map(|s| s.to_bits()).collect();
            let b: Vec<u64> = placed.measure_sums.iter().map(|s| s.to_bits()).collect();
            assert_eq!(a, b, "{disks} disks, {workers} workers");
            assert_eq!(
                placed.metrics.total_fragments(),
                baseline.metrics.total_fragments()
            );
        }
    }
}
