//! End-to-end integration: schema → fragmentation → bitmap catalog →
//! allocation → simulator, crossing every crate of the workspace.

use warehouse::allocation::{effective_parallelism, CapacityReport, PhysicalAllocation};
use warehouse::prelude::*;

/// The full pipeline of the paper on the standard configuration: build the
/// APB-1 schema, fragment it with F_MonthGroup, allocate it over 100 disks,
/// and simulate one query of each standard type on a reduced hardware
/// configuration (to keep the test fast).
#[test]
fn full_pipeline_runs_every_standard_query_type() {
    let schema = schema::apb1::apb1_schema();
    let fragmentation = Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
    let config = SimConfig {
        disks: 20,
        nodes: 4,
        subqueries_per_node: 4,
        ..SimConfig::default()
    };

    // The expensive 1STORE sweep is covered by the bench binaries; here we
    // run the cheap members of the standard mix end to end.
    for query_type in [
        QueryType::OneMonth,
        QueryType::OneCode,
        QueryType::OneMonthOneGroup,
        QueryType::OneCodeOneQuarter,
    ] {
        let setup = ExperimentSetup::new(
            schema.clone(),
            fragmentation.clone(),
            config,
            query_type.clone(),
            2,
        );
        let summary = run_experiment(&setup);
        assert_eq!(summary.queries.len(), 2, "{}", query_type.name());
        assert!(
            summary.mean_response_ms > 0.0,
            "{} produced a zero response time",
            query_type.name()
        );
        assert!(
            summary.disk_utilisation <= 1.0 && summary.cpu_utilisation <= 1.0,
            "{} produced invalid utilisation",
            query_type.name()
        );
    }
}

/// The supported query (1MONTH1GROUP) must be orders of magnitude cheaper in
/// simulated response time than the unsupported one (1GROUP1STORE needing
/// bitmap access over 24 fragments), mirroring the paper's core claim.
#[test]
fn supported_queries_are_much_faster_than_unsupported_ones() {
    let schema = schema::apb1::apb1_schema();
    let fragmentation = Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
    let config = SimConfig {
        disks: 20,
        nodes: 4,
        subqueries_per_node: 4,
        ..SimConfig::default()
    };
    let run = |qt: QueryType| {
        run_experiment(&ExperimentSetup::new(
            schema.clone(),
            fragmentation.clone(),
            config,
            qt,
            2,
        ))
        .mean_response_ms
    };
    let supported = run(QueryType::OneMonthOneGroup);
    let unsupported = run(QueryType::OneGroupOneStore);
    assert!(
        unsupported > 2.0 * supported,
        "supported {supported} ms vs unsupported {unsupported} ms"
    );
}

/// Physical allocation invariants across crates: the capacity report accounts
/// for every fragment, and the gcd clustering predicted by the analysis module
/// matches the placement produced by the layout module for the 1CODE pattern.
#[test]
fn allocation_analysis_is_consistent_with_placement_and_bound_queries() {
    let schema = schema::apb1::apb1_schema();
    let fragmentation = Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
    let allocation = PhysicalAllocation::round_robin(100);

    // Capacity accounting covers all fragments.
    let report = CapacityReport::compute(&schema, &fragmentation, &allocation, 32);
    let placed: u64 = report.per_disk().iter().map(|d| d.fact_fragments).sum();
    assert_eq!(placed, fragmentation.fragment_count());

    // The 1CODE query instance touches every 480th fragment; under plain
    // round robin on 100 disks those land on exactly 5 disks (§4.6).
    let bound = BoundQuery::new(&schema, QueryType::OneCode.to_star_query(&schema), vec![42]);
    let fragments = bound.relevant_fragments(&schema, &fragmentation);
    assert_eq!(fragments.len(), 24);
    assert_eq!(effective_parallelism(&allocation, &fragments), 5);

    // A prime number of disks removes the clustering.
    let prime = PhysicalAllocation::round_robin(101);
    assert_eq!(effective_parallelism(&prime, &fragments), 24);
}

/// The fragmentation advisor recommends only admissible fragmentations and
/// its top choice supports the dominant query of the mix.
#[test]
fn advisor_recommendation_is_admissible_and_useful() {
    let schema = schema::apb1::apb1_schema();
    let advisor = Advisor::new(schema.clone(), AdvisorConfig::default());
    let mix = vec![
        (QueryType::OneMonthOneGroup.to_star_query(&schema), 3.0),
        (QueryType::OneCodeOneQuarter.to_star_query(&schema), 1.0),
    ];
    let ranked = advisor.recommend(&mix, &[]);
    assert!(!ranked.is_empty());
    let best = &ranked[0];
    // The best candidate must make 1MONTH1GROUP a supported query.
    let classification = classify(
        &schema,
        &best.fragmentation,
        &QueryType::OneMonthOneGroup.to_star_query(&schema),
    );
    assert!(classification.fragments_to_process < best.fragmentation.fragment_count());
    // And it must satisfy the paper's thresholds (admissibility was enforced
    // by the advisor itself; re-check it independently).
    let report = mdhf::check_fragmentation(
        &schema,
        &IndexCatalog::default_for(&schema),
        &mdhf::FragmentationConstraints::default(),
        &best.fragmentation,
    );
    assert!(report.is_admissible());
}
