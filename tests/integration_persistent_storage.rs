//! Persistent-storage integration: the `FGMT` fragment file round-trips a
//! [`FragmentStore`] bit for bit under every bitmap representation policy,
//! corruption surfaces as typed [`WarehouseError`]s instead of panics, and
//! the real buffer pool warms at least as well as the simulated cache on
//! the identical workload.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;
use warehouse::exec::{write_store, FileStoreOptions, StarJoinEngine};
use warehouse::prelude::*;

/// A uniquely named file in the system temp directory, removed on drop.
struct TempFile(PathBuf);

impl TempFile {
    fn new(tag: &str) -> Self {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        TempFile(
            std::env::temp_dir().join(format!("fgmt_it_{}_{tag}_{n}.fgmt", std::process::id())),
        )
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn build_store(attrs: &[&str], seed: u64, policy: RepresentationPolicy) -> FragmentStore {
    let schema = schema::apb1::apb1_scaled_down();
    let fragmentation = Fragmentation::parse(&schema, attrs).expect("valid fragmentation");
    FragmentStore::build_with_policy(&schema, &fragmentation, seed, policy)
}

/// The query mix every round-trip case replays on both backings.
fn workload(schema: &StarSchema, seed: u64) -> Vec<BoundQuery> {
    let mut queries = Vec::new();
    for query_type in [
        QueryType::OneMonthOneGroup,
        QueryType::OneQuarter,
        QueryType::OneStore,
    ] {
        let mut generator = QueryGenerator::new(schema, query_type, seed);
        queries.extend(generator.batch(2));
    }
    queries
}

/// Writes `store` to a fresh file and asserts the reopened warehouse is
/// bit-identical to the in-memory one: metadata, every fragment, and every
/// query result, serial and parallel.
fn assert_roundtrip(store: FragmentStore, seed: u64, tag: &str) {
    let guard = TempFile::new(tag);
    write_store(&store, &guard.0).expect("serialise the fragment store");

    let schema = store.schema().clone();
    let memory = StarJoinEngine::new(store);
    let disk = Warehouse::open(&guard.0).expect("reopen the fragment file");

    let memory_src = memory.source();
    let disk_src = disk.source();
    assert_eq!(memory_src.schema(), disk_src.schema());
    assert_eq!(memory_src.fragmentation(), disk_src.fragmentation());
    assert_eq!(memory_src.catalog(), disk_src.catalog());
    assert_eq!(memory_src.policy(), disk_src.policy());
    assert_eq!(memory_src.fragment_count(), disk_src.fragment_count());
    assert_eq!(memory_src.total_rows(), disk_src.total_rows());
    for fragment in 0..memory_src.fragment_count() {
        assert_eq!(
            *memory_src.fetch(fragment),
            *disk_src.fetch(fragment),
            "fragment {fragment} did not round-trip bit-identically"
        );
    }

    let serial_session = disk.session().build();
    let parallel_session = disk.session().workers(3).build();
    for (i, query) in workload(&schema, seed).iter().enumerate() {
        let expected = memory.execute_serial(query);
        let serial = serial_session.execute(query);
        let parallel = parallel_session.execute(query);
        for (label, result) in [("serial", &serial), ("parallel", &parallel)] {
            assert_eq!(
                (result.hits, &result.measure_sums),
                (expected.hits, &expected.measure_sums),
                "file-backed {label} result diverged on query {i}"
            );
        }
        assert!(serial.metrics.file.is_some(), "file metrics missing");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Store → file → store round-trips bit-identically for every policy,
    /// fragmentation shape and build seed.
    #[test]
    fn fgmt_file_roundtrips_bit_identically(
        seed in 0u64..1024,
        policy_index in 0usize..4,
        attrs_index in 0usize..2,
    ) {
        let policy = [
            RepresentationPolicy::Plain,
            RepresentationPolicy::Wah,
            RepresentationPolicy::Roaring,
            RepresentationPolicy::default(),
        ][policy_index];
        let attrs: &[&str] = [
            &["time::month"][..],
            &["time::month", "product::group"][..],
        ][attrs_index];
        assert_roundtrip(build_store(attrs, seed, policy), seed, "prop");
    }
}

/// Builds, writes and returns a guard over a small valid fragment file.
fn written_file(tag: &str) -> TempFile {
    let store = build_store(
        &["time::month", "product::group"],
        2024,
        RepresentationPolicy::Wah,
    );
    let guard = TempFile::new(tag);
    write_store(&store, &guard.0).expect("serialise the fragment store");
    guard
}

#[test]
fn truncated_file_is_a_typed_error_not_a_panic() {
    let guard = written_file("trunc");
    let len = std::fs::metadata(&guard.0).expect("stat").len();
    for keep in [0, 7, len / 2, len - 1] {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(&guard.0)
            .expect("open for truncation");
        file.set_len(keep).expect("truncate");
        drop(file);
        let error = Warehouse::open(&guard.0).expect_err("truncated file must not open");
        assert!(
            matches!(error, WarehouseError::Corrupt(_) | WarehouseError::Io(_)),
            "truncation to {keep} bytes surfaced as {error}"
        );
    }
}

#[test]
fn bit_flip_in_the_metadata_blob_fails_its_checksum_at_open() {
    let guard = written_file("flip");
    let mut bytes = std::fs::read(&guard.0).expect("read file");
    // The metadata blob starts on the page after the header and is far
    // longer than 64 bytes (it serialises the schema by name).
    let victim = warehouse::exec::PAGE_SIZE as usize + 64;
    bytes[victim] ^= 0x40;
    std::fs::write(&guard.0, &bytes).expect("write corrupted file");
    let error = Warehouse::open(&guard.0).expect_err("bit flip must not open");
    assert!(
        matches!(&error, WarehouseError::Corrupt(msg) if msg.contains("checksum")),
        "bit flip surfaced as {error}"
    );
}

#[test]
fn bit_flip_in_a_column_segment_fails_its_checksum_at_open() {
    let guard = written_file("flipseg");
    let mut bytes = std::fs::read(&guard.0).expect("read file");
    // Corrupt a whole page in the data area so the flip cannot land in
    // inter-segment padding; at least one byte of it belongs to a
    // checksummed column or bitmap segment.
    let page = warehouse::exec::PAGE_SIZE as usize;
    let victim_page = (bytes.len() / 2 / page) * page;
    for byte in &mut bytes[victim_page..victim_page + page] {
        *byte ^= 0x40;
    }
    std::fs::write(&guard.0, &bytes).expect("write corrupted file");
    let error = Warehouse::open(&guard.0).expect_err("corrupt page must not open");
    assert!(
        matches!(error, WarehouseError::Corrupt(_)),
        "corrupt page surfaced as {error}"
    );
}

#[test]
fn wrong_format_version_is_rejected() {
    let guard = written_file("version");
    let mut bytes = std::fs::read(&guard.0).expect("read file");
    // The u32 version field sits right after the 4-byte header magic.
    bytes[4] = 0xFF;
    std::fs::write(&guard.0, &bytes).expect("write corrupted file");
    let error = Warehouse::open(&guard.0).expect_err("future version must not open");
    assert!(
        matches!(&error, WarehouseError::Corrupt(msg) if msg.contains("version")),
        "wrong version surfaced as {error}"
    );
}

#[test]
fn foreign_file_is_rejected_by_magic() {
    let guard = TempFile::new("magic");
    let junk = vec![0x58u8; (warehouse::exec::PAGE_SIZE * 4) as usize];
    std::fs::write(&guard.0, junk).expect("write junk file");
    let error = Warehouse::open(&guard.0).expect_err("junk file must not open");
    assert!(
        matches!(error, WarehouseError::Corrupt(_)),
        "junk file surfaced as {error}"
    );
}

#[test]
fn missing_file_and_bad_options_are_typed_errors() {
    let missing = TempFile::new("missing");
    let error = Warehouse::open(&missing.0).expect_err("missing file must not open");
    assert!(
        matches!(error, WarehouseError::Io(_)),
        "missing file surfaced as {error}"
    );

    let guard = written_file("options");
    let options = FileStoreOptions {
        cache_pages: 0,
        ..FileStoreOptions::default()
    };
    let error = Warehouse::open_with(&guard.0, options).expect_err("zero cache must not open");
    assert!(
        matches!(error, WarehouseError::Config(_)),
        "zero cache surfaced as {error}"
    );
}

/// The acceptance criterion: after a cold pass, the file store's page pool
/// is at least as warm as the simulated LRU cache on the same workload.
#[test]
fn warm_file_cache_matches_or_beats_the_simulated_cache() {
    let store = build_store(
        &["time::month", "product::group"],
        7,
        RepresentationPolicy::default(),
    );
    let schema = store.schema().clone();
    let mut generator = QueryGenerator::new(&schema, QueryType::OneMonthOneGroup, 42);
    let queries = generator.batch(16);

    // Simulated pillar: two passes over one shared subsystem, cache sized
    // like the file store's pool.
    let engine = StarJoinEngine::new(store);
    let io = SimulatedIo::new(
        IoConfig::with_disks(4).cache(FileStoreOptions::default().cache_pages),
        &schema,
    );
    let config = ExecConfig::serial();
    for _pass in 0..2 {
        for query in &queries {
            let plan = engine.plan(query);
            let _ = engine.execute_plan_with_io(&plan, &config, &io);
        }
    }
    let cold = {
        // Re-run the cold pass on a fresh subsystem to isolate its counters.
        let fresh = SimulatedIo::new(
            IoConfig::with_disks(4).cache(FileStoreOptions::default().cache_pages),
            &schema,
        );
        for query in &queries {
            let plan = engine.plan(query);
            let _ = engine.execute_plan_with_io(&plan, &config, &fresh);
        }
        fresh.metrics()
    };
    let total = io.metrics();
    let warm_hits = total.cache.hits - cold.cache.hits;
    let warm_misses = total.cache.misses - cold.cache.misses;
    let sim_warm_hit_rate = if warm_hits + warm_misses == 0 {
        1.0
    } else {
        warm_hits as f64 / (warm_hits + warm_misses) as f64
    };

    // Measured pillar: the same two passes on the real file.
    let guard = TempFile::new("warm");
    write_store(engine.store(), &guard.0).expect("serialise the fragment store");
    let warehouse = Warehouse::open(&guard.0).expect("reopen the fragment file");
    let session = warehouse.session().build();
    for query in &queries {
        let _ = session.execute(query);
    }
    let after_cold = warehouse.source().file_metrics().expect("file metrics");
    for query in &queries {
        let _ = session.execute(query);
    }
    let after_warm = warehouse.source().file_metrics().expect("file metrics");

    let hits = after_warm.pool.hits - after_cold.pool.hits;
    let misses = after_warm.pool.misses - after_cold.pool.misses;
    let decoded = after_warm.decoded_cache_hits - after_cold.decoded_cache_hits;
    let file_warm_hit_rate = if hits + misses == 0 {
        assert!(decoded > 0, "warm pass served no fetches at all");
        1.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    assert!(
        file_warm_hit_rate >= sim_warm_hit_rate,
        "warm page-pool hit rate {file_warm_hit_rate:.3} fell below the simulated \
         cache's warm hit rate {sim_warm_hit_rate:.3}"
    );
    assert_eq!(
        after_warm.segment_reads, after_cold.segment_reads,
        "warm pass re-read segments from the file"
    );
}
