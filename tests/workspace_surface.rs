//! Smoke test for the workspace surface: every crate re-exported by the
//! `warehouse` facade is touched through its prelude/re-export path, and the
//! flagship example runs end to end under `cargo run --example`.
//!
//! This is deliberately shallow — it pins the *dependency architecture*
//! (crate names, re-export paths, prelude contents) that all other PRs build
//! on, so a broken manifest or renamed re-export fails here first with a
//! clear message rather than deep inside an integration suite.

use std::process::Command;

use warehouse::bitmap::{MaterialisedFactTable, WahBitmap};
use warehouse::prelude::*;
use warehouse::simkit::{EventQueue, RngStream, SimTime, Tally};
use warehouse::storage::{BufferManager, DiskModel, DiskParameters};
use warehouse::{allocation, bitmap, mdhf, schema, simpad};

#[test]
fn every_layer_is_reachable_through_the_facade() {
    // schema — APB-1 builder and sizing.
    let full = schema::apb1::apb1_schema();
    assert_eq!(full.fact_row_count(), 1_866_240_000);
    let sizing = schema::PageSizing::new(&full);
    assert_eq!(sizing.page_size_bytes(), schema::DEFAULT_PAGE_SIZE);

    // bitmap — plain bitmaps, WAH compression, the index catalog.
    let mut b = Bitmap::new(64);
    b.set(3, true);
    assert_eq!(WahBitmap::compress(&b).decompress(), b);
    let catalog = IndexCatalog::default_for(&full);
    let product = full.dimension_index("product").expect("product dimension");
    let enc: &HierarchicalEncoding = match catalog.spec(product).kind() {
        bitmap::BitmapIndexKind::Encoded(enc) => enc,
        bitmap::BitmapIndexKind::Simple => panic!("PRODUCT should be encoded"),
    };
    assert_eq!(enc.total_bits(), 15);

    // mdhf — fragmentation, classification, thresholds, cost model, advisor.
    let fragmentation =
        Fragmentation::parse(&full, &["time::month", "product::group"]).expect("F_MonthGroup");
    assert_eq!(fragmentation.fragment_count(), 11_520);
    let query = StarQuery::exact_match(&full, "1STORE", &["customer::store"]);
    let classification = classify(&full, &fragmentation, &query);
    assert!(classification.fragments_to_process >= 1);
    let report = mdhf::check_fragmentation(
        &full,
        &catalog,
        &mdhf::FragmentationConstraints::default(),
        &fragmentation,
    );
    assert!(report.is_admissible());
    let model = CostModel::new(full.clone(), catalog.clone());
    let (_, cost) = model.evaluate(&fragmentation, &query);
    assert!(cost.total_pages() > 0.0);
    assert!(!mdhf::enumerate_fragmentations(&schema::apb1::apb1_scaled_down()).is_empty());
    let advisor = Advisor::new(full.clone(), AdvisorConfig::default());
    let _ = advisor.model();

    // allocation — placement and declustering analysis.
    let alloc = PhysicalAllocation::round_robin(100);
    assert_eq!(alloc.bitmap_placement(), BitmapPlacement::Staggered);
    assert_eq!(allocation::stride_parallelism(100, 480, 480), 5);
    let usage = allocation::CapacityReport::compute(&full, &fragmentation, &alloc, 12);
    assert_eq!(usage.per_disk().len(), 100);

    // storage — disk service-time model and buffer manager.
    let mut disk = DiskModel::new(DiskParameters::default());
    assert!(disk.service(100, 8) > 0.0);
    let mut buffers = BufferManager::new(16, 16);
    let _ = &mut buffers;

    // workload — query types bound to concrete parameter values.
    let mut generator = QueryGenerator::new(&full, QueryType::OneMonthOneGroup, 42);
    let bound: BoundQuery = generator.next_instance();
    assert!(!bound.relevant_fragments(&full, &fragmentation).is_empty());

    // simkit — event queue, statistics, reproducible RNG streams.
    let mut queue: EventQueue<u32> = EventQueue::new();
    queue.schedule(SimTime::from_millis(1.0), 7);
    assert_eq!(queue.pop(), Some((SimTime::from_millis(1.0), 7)));
    let mut tally = Tally::new();
    tally.record(2.0);
    assert_eq!(tally.mean(), 2.0);
    assert_eq!(
        RngStream::new(1, 2).uniform_index(10),
        RngStream::new(1, 2).uniform_index(10)
    );

    // simpad — planning and a minimal end-to-end simulation run.
    let config = SimConfig {
        disks: 10,
        nodes: 2,
        subqueries_per_node: 2,
        ..SimConfig::default()
    };
    let plan = simpad::plan_query(&full, &catalog, &fragmentation, &alloc, &config, &bound);
    assert!(!plan.subqueries.is_empty());
    let setup = ExperimentSetup::new(
        full.clone(),
        fragmentation.clone(),
        config,
        QueryType::OneMonthOneGroup,
        1,
    );
    let summary: simpad::RunSummary = run_experiment(&setup);
    assert_eq!(summary.queries.len(), 1);
    assert!(summary.mean_response_ms > 0.0);

    // bitmap builder — materialised data path used by examples.
    let small = schema::apb1::apb1_scaled_down();
    assert!(!MaterialisedFactTable::generate(&small, 7).is_empty());
}

#[test]
fn bitmap_star_join_example_runs() {
    let cargo = std::env::var("CARGO").unwrap_or_else(|_| "cargo".to_string());
    let manifest_dir = env!("CARGO_MANIFEST_DIR");
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--example", "bitmap_star_join"])
        .current_dir(manifest_dir)
        .output()
        .expect("failed to spawn cargo run --example bitmap_star_join");
    assert!(
        output.status.success(),
        "example failed with {}\nstdout:\n{}\nstderr:\n{}",
        output.status,
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(
        stdout.contains("bitmap"),
        "unexpected example output:\n{stdout}"
    );
}
