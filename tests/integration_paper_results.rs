//! Paper-result regression tests: the headline numbers and qualitative
//! findings of the paper, checked end to end.
//!
//! These are the invariants EXPERIMENTS.md reports; keeping them as tests
//! guards the reproduction against regressions.

use warehouse::mdhf::{table2_census, FragmentationConstraints};
use warehouse::prelude::*;
use warehouse::schema::PageSizing;

/// §3.1 / Figure 1 — the APB-1 configuration.
#[test]
fn paper_schema_cardinalities() {
    let schema = schema::apb1::apb1_schema();
    assert_eq!(schema.fact_row_count(), 1_866_240_000);
    assert_eq!(
        schema.attr("product", "code").unwrap().cardinality(&schema),
        14_400
    );
    assert_eq!(
        schema
            .attr("customer", "store")
            .unwrap()
            .cardinality(&schema),
        1_440
    );
    assert_eq!(
        schema.attr("time", "month").unwrap().cardinality(&schema),
        24
    );
    assert_eq!(
        schema
            .attr("channel", "channel")
            .unwrap()
            .cardinality(&schema),
        15
    );
}

/// §3.2 / Table 1 — encoded bitmap join indices: 15 + 12 encoded bitmaps,
/// 76 bitmaps in total, 10 prefix bitmaps to locate a product group.
#[test]
fn paper_bitmap_counts() {
    let schema = schema::apb1::apb1_schema();
    let catalog = IndexCatalog::default_for(&schema);
    assert_eq!(catalog.total_bitmaps(), 76);
    let product = schema.dimension_index("product").unwrap();
    let customer = schema.dimension_index("customer").unwrap();
    assert_eq!(catalog.spec(product).bitmap_count(), 15);
    assert_eq!(catalog.spec(customer).bitmap_count(), 12);
    assert_eq!(catalog.spec(product).bitmaps_for_selection(3), 10);
    // §4.2: F_MonthGroup leaves at most 32 bitmaps.
    let time = schema.dimension_index("time").unwrap();
    assert_eq!(
        catalog.total_bitmaps_under_fragmentation(&[(time, 2), (product, 3)]),
        32
    );
}

/// §4.1 — fragment counts of the fragmentations discussed in the paper.
#[test]
fn paper_fragment_counts() {
    let schema = schema::apb1::apb1_schema();
    for (spec, expected) in [
        (vec!["time::month", "product::group"], 11_520u64),
        (vec!["time::month", "product::class"], 23_040),
        (vec!["time::month", "product::code"], 345_600),
        (
            vec![
                "time::quarter",
                "product::group",
                "customer::retailer",
                "channel::channel",
            ],
            8 * 480 * 144 * 15,
        ),
    ] {
        let f = Fragmentation::parse(&schema, &spec).unwrap();
        assert_eq!(f.fragment_count(), expected, "{spec:?}");
    }
}

/// §4.4 — the n_max threshold and the Table 2 census shape.
#[test]
fn paper_thresholds_and_table2() {
    let schema = schema::apb1::apb1_schema();
    let sizing = PageSizing::new(&schema);
    let constraints = FragmentationConstraints::default();
    assert_eq!(constraints.n_max(&sizing), 14_238);

    let rows = table2_census(&schema);
    let total = rows.iter().find(|r| r.dimensions == 0).unwrap();
    assert_eq!(total.any, 167);
    // Roughly half the options survive the 1-page constraint, and only about
    // a quarter the 8-page constraint (paper: 72 and 47 of 167).
    assert!(total.at_least_1_page >= 65 && total.at_least_1_page <= 80);
    assert!(total.at_least_8_pages >= 40 && total.at_least_8_pages <= 55);
    let four_dim = rows.iter().find(|r| r.dimensions == 4).unwrap();
    assert!(four_dim.at_least_1_page <= 1);
}

/// §4.5 / Table 3 — the analytic cost model reproduces the orders of
/// magnitude for query 1STORE.
#[test]
fn paper_table3_orders_of_magnitude() {
    let schema = schema::apb1::apb1_schema();
    let catalog = IndexCatalog::default_for(&schema);
    let model = CostModel::new(schema.clone(), catalog);
    let query = StarQuery::exact_match(&schema, "1STORE", &["customer::store"]);

    let f_opt = Fragmentation::parse(&schema, &["customer::store"]).unwrap();
    let (c_opt, cost_opt) = model.evaluate(&f_opt, &query);
    assert_eq!(c_opt.io_class, IoClass::Ioc1Opt);
    assert_eq!(cost_opt.fragments_to_process, 1);
    assert!((cost_opt.fact_io_ops - 795.0).abs() < 10.0);
    assert!(cost_opt.total_megabytes(4_096) < 30.0);

    let f_nosupp = Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
    let (c_nosupp, cost_nosupp) = model.evaluate(&f_nosupp, &query);
    assert_eq!(c_nosupp.io_class, IoClass::Ioc2NoSupp);
    assert_eq!(cost_nosupp.fragments_to_process, 11_520);
    assert!((cost_nosupp.bitmap_pages_read - 691_200.0).abs() < 1.0);
    assert!(cost_nosupp.total_megabytes(4_096) > 10_000.0);

    let improvement = cost_nosupp.total_pages() / cost_opt.total_pages();
    assert!(improvement > 500.0, "improvement only {improvement}x");
}

/// §4.6 — the gcd-clustering example: 1CODE on 100 disks reaches only 5 of
/// them; a prime disk count or a gapped allocation fixes it.
#[test]
fn paper_gcd_clustering_example() {
    use warehouse::allocation::{effective_parallelism, PhysicalAllocation};
    let schema = schema::apb1::apb1_schema();
    let fragmentation = Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
    let bound = BoundQuery::new(&schema, QueryType::OneCode.to_star_query(&schema), vec![0]);
    let fragments = bound.relevant_fragments(&schema, &fragmentation);
    assert_eq!(
        effective_parallelism(&PhysicalAllocation::round_robin(100), &fragments),
        5
    );
    assert_eq!(
        effective_parallelism(&PhysicalAllocation::round_robin(101), &fragments),
        24
    );
    assert!(
        effective_parallelism(
            &PhysicalAllocation::round_robin_with_gap(100, 1),
            &fragments
        ) >= 20
    );
}

/// §6.2 / Figure 5 — parallel bitmap I/O is at least as good as serial bitmap
/// I/O, with a noticeable advantage at low subquery counts (checked on a
/// reduced configuration to keep the test fast).
#[test]
fn paper_parallel_bitmap_io_helps() {
    let schema = schema::apb1::apb1_schema();
    let fragmentation = Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
    let run = |parallel: bool| {
        let config = SimConfig {
            disks: 30,
            nodes: 6,
            subqueries_per_node: 1,
            parallel_bitmap_io: parallel,
            ..SimConfig::default()
        };
        let setup = ExperimentSetup::new(
            schema.clone(),
            fragmentation.clone(),
            config,
            QueryType::OneGroupOneStore,
            1,
        );
        run_experiment(&setup).mean_response_ms
    };
    let parallel = run(true);
    let serial = run(false);
    assert!(
        parallel < serial,
        "parallel {parallel} ms should beat serial {serial} ms"
    );
}

/// §6.3 / Figure 6 — the fragmentation trade-off: finer product fragmentation
/// helps 1CODE1QUARTER (simulated) but hurts 1STORE (analytic model), so no
/// single fragmentation wins for every query type.
#[test]
fn paper_fragmentation_tradeoff() {
    let schema = schema::apb1::apb1_schema();
    let catalog = IndexCatalog::default_for(&schema);
    let model = CostModel::new(schema.clone(), catalog);

    let store_query = QueryType::OneStore.to_star_query(&schema);
    let cq_query = QueryType::OneCodeOneQuarter.to_star_query(&schema);
    let group = Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
    let code = Fragmentation::parse(&schema, &["time::month", "product::code"]).unwrap();

    // 1CODE1QUARTER: code fragmentation is better.
    assert!(
        model.evaluate(&code, &cq_query).1.total_pages()
            < model.evaluate(&group, &cq_query).1.total_pages()
    );
    // 1STORE: code fragmentation is worse.
    assert!(
        model.evaluate(&code, &store_query).1.total_pages()
            > model.evaluate(&group, &store_query).1.total_pages()
    );
}
