//! Vendored minimal stand-in for `criterion`.
//!
//! Offline builds cannot fetch the real criterion crate, so this provides the
//! subset of its API the bench targets use: `Criterion::bench_function`,
//! benchmark groups with `sample_size`, `Bencher::iter` / `iter_batched`,
//! `black_box` and the `criterion_group!` / `criterion_main!` macros.
//!
//! Timing is a plain wall-clock median over a fixed number of samples — good
//! enough for coarse regression spotting; swap in the real criterion for
//! statistically rigorous numbers once the registry is reachable.

use std::time::Instant;

/// Re-export of the standard opaque value barrier.
pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost; only a marker here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Drives the measured closure of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    /// Measures `routine` over this sample's iteration budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed_ns = start.elapsed().as_nanos();
    }

    /// Measures `routine` on inputs produced by `setup`, excluding setup time
    /// from the aggregate only in the trivial sense of timing per call.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        let mut total: u128 = 0;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed().as_nanos();
        }
        self.elapsed_ns = total;
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, self.sample_size, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, name), self.sample_size, f);
        self
    }

    /// Ends the group (report flushing in real criterion; a no-op here).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(name: &str, samples: usize, mut f: F) {
    let mut per_iter_ns: Vec<u128> = Vec::with_capacity(samples);
    for _ in 0..samples.max(1) {
        let mut bencher = Bencher {
            iters: 1,
            elapsed_ns: 0,
        };
        f(&mut bencher);
        per_iter_ns.push(bencher.elapsed_ns / u128::from(bencher.iters.max(1)));
    }
    per_iter_ns.sort_unstable();
    let median = per_iter_ns[per_iter_ns.len() / 2];
    println!(
        "{name:<50} median {:>12} ns/iter ({} samples)",
        median,
        per_iter_ns.len()
    );
}

/// Collects bench functions into a runnable group, like `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the listed groups, like `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
