//! Vendored stand-in for `serde_derive`.
//!
//! The workspace builds offline, so the real `serde` / `serde_derive` crates
//! from crates.io are unavailable. The codebase only uses
//! `#[derive(Serialize, Deserialize)]` as an interface marker — nothing
//! serialises at run time yet — so these derives expand to marker-trait
//! impls for the vendored `serde` facade.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the identifier of the type a `derive` was applied to.
///
/// Scans the item's tokens for the first identifier following a `struct` or
/// `enum` keyword; generics and attributes are skipped by construction.
fn derived_type_name(input: &TokenStream) -> Option<String> {
    let mut saw_kw = false;
    for tt in input.clone() {
        if let TokenTree::Ident(ident) = tt {
            let text = ident.to_string();
            if saw_kw {
                return Some(text);
            }
            if text == "struct" || text == "enum" {
                saw_kw = true;
            }
        }
    }
    None
}

/// Emits `impl serde::Trait for Type {}` with a blanket-safe generic guard:
/// types deriving the markers in this workspace are all non-generic, which
/// keeps the stub expansion trivial.
fn marker_impl(trait_name: &str, input: &TokenStream) -> TokenStream {
    match derived_type_name(input) {
        Some(name) => format!("impl serde::{trait_name} for {name} {{}}")
            .parse()
            .unwrap_or_default(),
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("Serialize", &input)
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("Deserialize", &input)
}
