//! Vendored deterministic stand-in for `proptest`.
//!
//! The workspace builds offline, so the real `proptest` is unavailable. This
//! crate implements the subset of its API that the test suites use, with two
//! deliberate simplifications:
//!
//! * **Deterministic sampling.** Each property's case stream is seeded from
//!   the test's module path and name, so runs are fully reproducible and
//!   failures can be re-run without a persisted regression file.
//! * **No shrinking.** A failing case reports its inputs through the normal
//!   panic message (via `prop_assert!`'s formatting) instead of minimising
//!   them.
//!
//! Supported surface: `proptest!` with an optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header, integer and
//! float range strategies, tuple strategies, [`collection::vec`],
//! [`bool::ANY`], [`option::of`], [`Strategy::prop_map`],
//! `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!` and `prop_assume!`.

use std::ops::Range;

/// Deterministic xoshiro256++ random source used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: [u64; 4],
}

impl TestRng {
    /// Builds the RNG for one test case, seeded from the test's identity and
    /// the case number so every `(test, case)` pair replays identically.
    #[must_use]
    pub fn deterministic(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut seed = h;
        let mut next = || {
            // SplitMix64 to expand the single seed into four state words.
            seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = seed;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            state: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        // Canonical xoshiro256++ transition: s1/s0 mix in the already-updated
        // s2/s3 words (s1 ^= s2 ^ s0, s0 ^= s3 ^ s1).
        let s2x = s2 ^ s0;
        let s3x = s3 ^ s1;
        let s1n = s1 ^ s2x;
        let s0n = s0 ^ s3x;
        self.state = [s0n, s1n, s2x ^ t, s3x.rotate_left(45)];
        result
    }

    /// Uniform value in `[0, bound)`; `bound` must be positive.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() needs a positive bound");
        let zone = u64::MAX - u64::MAX % bound;
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % bound;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Outcome of one sampled test case.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!`; it does not count towards the
    /// configured number of cases.
    Reject,
    /// The property failed.
    Fail(String),
}

/// `Result` alias used by the generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Run configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Samples one value from the deterministic random source.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps sampled values through `f`, like `proptest`'s `prop_map`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy producing a fixed value, like `proptest`'s `Just`.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = u64::from(self.end - self.start);
                self.start + <$t>::try_from(rng.below(span)).expect("span fits source type")
            }
        }
    )*};
}

unsigned_range_strategy!(u8, u16, u32, u64);

impl Strategy for Range<usize> {
    type Value = usize;

    fn sample(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty range strategy");
        let span = (self.end - self.start) as u64;
        self.start + usize::try_from(rng.below(span)).expect("span fits usize")
    }
}

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (i64::from(self.end) - i64::from(self.start)) as u64;
                let offset = rng.below(span);
                (i64::from(self.start) + offset as i64) as $t
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;

    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + (self.end - self.start) * rng.unit_f64();
        // Guard against round-up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3));

/// Boolean strategies (`proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy type behind [`ANY`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// Uniformly random booleans.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Admissible length range for [`vec()`], mirroring `proptest::collection::SizeRange`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(len: usize) -> Self {
            SizeRange {
                min: len,
                max: len + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec length range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` whose length is drawn from `size` and whose elements are drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    rng.below(span) as usize
                };
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option`).
pub mod option {
    use super::{Strategy, TestRng};

    /// Strategy returned by [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `Some` values from `inner` three quarters of the time, `None` otherwise
    /// (the real crate's default weighting).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.sample(rng))
            }
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Defines property tests; see the crate docs for the supported subset.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut passed: u32 = 0;
            let mut attempt: u32 = 0;
            while passed < config.cases {
                attempt += 1;
                assert!(
                    attempt <= config.cases.saturating_mul(16).saturating_add(1024),
                    "prop_assume! rejected too many cases ({} attempts for {} target cases)",
                    attempt,
                    config.cases,
                );
                let mut prop_rng = $crate::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    attempt,
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut prop_rng);)+
                let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => passed += 1,
                    Err($crate::TestCaseError::Reject) => {}
                    Err($crate::TestCaseError::Fail(message)) => {
                        panic!("property {} failed on case {}: {}", stringify!($name), attempt, message)
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Rejects the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = super::TestRng::deterministic("x", 1);
        let mut b = super::TestRng::deterministic("x", 1);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -5i32..5, f in 1.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((1.0..2.0).contains(&f));
        }

        #[test]
        fn vec_respects_size(v in crate::collection::vec(0u32..10, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn assume_rejects(x in 0u64..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_header_accepted(o in crate::option::of(0usize..4)) {
            if let Some(v) = o {
                prop_assert!(v < 4);
            }
        }
    }
}
