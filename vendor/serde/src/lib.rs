//! Vendored stand-in for `serde`.
//!
//! Offline builds cannot fetch the real `serde`; the workspace only relies on
//! `#[derive(Serialize, Deserialize)]` as a marker for "this type is part of
//! the serialisable configuration/result surface". The traits here carry no
//! methods, and the re-exported derives emit empty marker impls. Swapping in
//! the real serde later is a one-line Cargo.toml change per crate.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize {}
