//! `allocation` — physical placement of fact and bitmap fragments on disks.
//!
//! The second allocation step of the paper (§4.6): having chosen an MDHF
//! fragmentation, assign the resulting fact fragments and bitmap fragments to
//! the shared disks.
//!
//! * [`layout::PhysicalAllocation`] — round-robin placement of fact fragments
//!   and **staggered round robin** for the associated bitmap fragments (the
//!   bitmap fragments of fact fragment *i* on disk *j* go to disks
//!   *j+1 … j+k*, enabling parallel bitmap I/O within a subquery), plus the
//!   co-located variant used as the "non-parallel I/O" baseline of Figure 5
//!   and a gap-modified scheme that avoids gcd clustering.
//! * [`analysis`] — the §4.6 declustering analysis: how many distinct disks a
//!   query's fragments land on, the gcd pitfall (480-stride access on 100
//!   disks uses only 5 of them), the prime-declustering recommendation, and
//!   analytic per-disk load shares for weighted (e.g. Zipf-skewed) fragment
//!   sets.
//! * [`capacity`] — per-disk storage accounting and balance metrics.

#![forbid(unsafe_code)]

pub mod analysis;
pub mod capacity;
pub mod layout;

pub use analysis::{
    disk_load_shares, effective_parallelism, load_imbalance, stride_parallelism,
    DeclusteringAnalysis,
};
pub use capacity::{CapacityReport, DiskUsage};
pub use layout::{BitmapPlacement, PhysicalAllocation};
