//! `allocation` — physical placement of fact and bitmap fragments on disks.
//!
//! The second allocation step of the paper (§4.6): having chosen an MDHF
//! fragmentation, assign the resulting fact fragments and bitmap fragments to
//! the shared disks.
//!
//! * [`layout::PhysicalAllocation`] — round-robin placement of fact fragments
//!   and **staggered round robin** for the associated bitmap fragments (the
//!   bitmap fragments of fact fragment *i* on disk *j* go to disks
//!   *j+1 … j+k*, enabling parallel bitmap I/O within a subquery), plus the
//!   co-located variant used as the "non-parallel I/O" baseline of Figure 5
//!   and a gap-modified scheme that avoids gcd clustering.
//! * [`analysis`] — the §4.6 declustering analysis: how many distinct disks a
//!   query's fragments land on, the gcd pitfall (480-stride access on 100
//!   disks uses only 5 of them), the prime-declustering recommendation, and
//!   analytic per-disk load shares for weighted (e.g. Zipf-skewed) fragment
//!   sets.
//! * [`capacity`] — per-disk storage accounting and balance metrics.
//! * [`nodes`] — the two-level **node → disk** generalisation for multi-node
//!   scale-out: contiguous disk ranges owned by simulated nodes, shared-nothing
//!   vs shared-disk reachability, and analytic per-node load shares.
//!
//! # Quick start
//!
//! ```
//! use allocation::{NodePlacement, NodeStrategy, PhysicalAllocation};
//!
//! // 7 disks, round-robin facts, staggered bitmaps: fragment 10's fact
//! // pages live on disk 3, its first two bitmaps on disks 4 and 5 — the
//! // subquery reads three disks in parallel.
//! let allocation = PhysicalAllocation::round_robin(7);
//! assert_eq!(allocation.fact_disk(10), 3);
//! assert_eq!(allocation.subquery_disks(10, 2), vec![3, 4, 5]);
//!
//! // Two-level scale-out placement: 4 nodes owning 2 disks each.  Under
//! // shared-nothing only the owning node reads a disk without paying the
//! // interconnect.
//! let placement = NodePlacement::new(4, 2, NodeStrategy::SharedNothing);
//! assert_eq!(placement.total_disks(), 8);
//! assert_eq!(placement.home_node(10), 1); // fact disk 10 % 8 = 2 → node 1
//! assert!(placement.is_local(1, 2) && !placement.is_local(0, 2));
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod capacity;
pub mod layout;
pub mod nodes;

pub use analysis::{
    disk_load_shares, effective_parallelism, load_imbalance, stride_parallelism,
    DeclusteringAnalysis,
};
pub use capacity::{CapacityReport, DiskUsage};
pub use layout::{BitmapPlacement, PhysicalAllocation};
pub use nodes::{node_load_shares, NodePlacement, NodeStrategy};
