//! Declustering analysis (§4.6).
//!
//! Round robin can "artificially restrict parallelism for certain query
//! classes": if a query has to access every `s`-th fragment and
//! `gcd(s, d) > 1`, the relevant fragments land on only `d / gcd(s, d)`
//! disks.  The paper's example: `F_MonthGroup` on `d = 100` disks allocated
//! month-major; query 1CODE accesses every 480th fragment and
//! `gcd(480, 100) = 20`, so only 5 disks are used — a 4.8× parallelism loss.
//! The suggested counter-measures are a prime number of disks or a
//! gap-modified allocation.

use serde::{Deserialize, Serialize};

use crate::layout::PhysicalAllocation;

/// Number of distinct disks that hold the given fact fragments under an
/// allocation — the maximum achievable I/O parallelism for a query that has
/// to read exactly those fragments.
#[must_use]
pub fn effective_parallelism(allocation: &PhysicalAllocation, fragments: &[u64]) -> usize {
    let mut disks: Vec<u64> = fragments.iter().map(|&f| allocation.fact_disk(f)).collect();
    disks.sort_unstable();
    disks.dedup();
    disks.len()
}

/// Effective parallelism of a strided fragment set under *plain* round robin:
/// accessing fragments `start, start+stride, …` (`count` of them) on `d`
/// disks reaches `min(count, d / gcd(stride, d))` distinct disks.
#[must_use]
pub fn stride_parallelism(disks: u64, stride: u64, count: u64) -> u64 {
    assert!(disks > 0);
    if count == 0 {
        return 0;
    }
    let stride = if stride == 0 { disks } else { stride };
    let reachable = disks / gcd(stride, disks);
    reachable.min(count)
}

/// Greatest common divisor (Euclid).
#[must_use]
pub fn gcd(a: u64, b: u64) -> u64 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// True if `n` is prime (trial division; disk counts are small).
#[must_use]
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    if n < 4 {
        return true;
    }
    if n.is_multiple_of(2) {
        return false;
    }
    let mut i = 3;
    while i * i <= n {
        if n.is_multiple_of(i) {
            return false;
        }
        i += 2;
    }
    true
}

/// The smallest prime greater than or equal to `n` — the paper's
/// "choose a prime number for the degree of declustering" recommendation.
#[must_use]
pub fn next_prime_at_least(n: u64) -> u64 {
    let mut candidate = n.max(2);
    while !is_prime(candidate) {
        candidate += 1;
    }
    candidate
}

/// The per-disk load shares of an allocation for a weighted fragment set:
/// `weights[f]` is fact fragment `f`'s load (pages, rows, expected scans —
/// any non-negative measure) and the result sums it per
/// [`PhysicalAllocation::fact_disk`], normalised to a total of 1.
///
/// This is the analytic counterpart of a measured per-disk utilisation
/// profile: under uniform weights round robin balances perfectly, while a
/// Zipf-skewed weight vector predicts exactly how much load the disk
/// holding the hot head must absorb.
#[must_use]
pub fn disk_load_shares(allocation: &PhysicalAllocation, weights: &[f64]) -> Vec<f64> {
    let mut loads = vec![0.0f64; usize::try_from(allocation.disks()).expect("disk count fits")];
    for (fragment, &weight) in weights.iter().enumerate() {
        loads[allocation.fact_disk(fragment as u64) as usize] += weight;
    }
    let total: f64 = loads.iter().sum();
    if total > 0.0 {
        for load in &mut loads {
            *load /= total;
        }
    }
    loads
}

/// Load imbalance of a per-disk (or per-worker) load vector: the maximum
/// load over the mean load.  1.0 is perfect balance; an all-idle vector
/// reports 1.0 rather than NaN.
#[must_use]
pub fn load_imbalance(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        return 1.0;
    }
    let max = loads.iter().copied().fold(0.0f64, f64::max);
    let mean = loads.iter().sum::<f64>() / loads.len() as f64;
    if mean <= f64::EPSILON {
        1.0
    } else {
        max / mean
    }
}

/// Summary of how well an allocation supports a set of strided access
/// patterns (one per query type of interest).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeclusteringAnalysis {
    /// Number of disks analysed.
    pub disks: u64,
    /// Per-pattern `(stride, fragments accessed, distinct disks reached)`.
    pub patterns: Vec<(u64, u64, u64)>,
    /// Worst-case parallelism loss factor over all patterns
    /// (`1.0` = no loss; the paper's 1CODE example loses 4.8×).
    pub worst_loss_factor: f64,
}

impl DeclusteringAnalysis {
    /// Analyses plain round robin on `disks` disks for the given
    /// `(stride, count)` access patterns.
    #[must_use]
    pub fn analyse(disks: u64, patterns: &[(u64, u64)]) -> Self {
        let mut rows = Vec::with_capacity(patterns.len());
        let mut worst = 1.0f64;
        for &(stride, count) in patterns {
            let reached = stride_parallelism(disks, stride, count);
            let ideal = count.min(disks);
            if reached > 0 {
                worst = worst.max(ideal as f64 / reached as f64);
            }
            rows.push((stride, count, reached));
        }
        DeclusteringAnalysis {
            disks,
            patterns: rows,
            worst_loss_factor: worst,
        }
    }

    /// True if no analysed pattern loses parallelism.
    #[must_use]
    pub fn is_clustering_free(&self) -> bool {
        self.worst_loss_factor <= 1.0 + 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_1code_on_100_disks() {
        // §4.6: 1CODE accesses 24 fragments with stride 480 on 100 disks;
        // gcd(480, 100) = 20 → only 5 disks, "reducing possible parallelism
        // by a factor of 4.8".
        assert_eq!(gcd(480, 100), 20);
        assert_eq!(stride_parallelism(100, 480, 24), 5);
        let a = PhysicalAllocation::round_robin(100);
        let fragments: Vec<u64> = (0..24).map(|m| m * 480).collect();
        assert_eq!(effective_parallelism(&a, &fragments), 5);
        let analysis = DeclusteringAnalysis::analyse(100, &[(480, 24)]);
        assert!((analysis.worst_loss_factor - 4.8).abs() < 1e-9);
        assert!(!analysis.is_clustering_free());
    }

    #[test]
    fn paper_example_group_major_allocation() {
        // "If we decide to allocate the other way round, 1CODE is optimally
        // supported while, e.g., 1MONTH queries are restricted to 25 disks
        // (gcd = 4)".  Group-major order gives 1MONTH a stride of 24 over 480
        // fragments.
        assert_eq!(gcd(24, 100), 4);
        assert_eq!(stride_parallelism(100, 24, 480), 25);
    }

    #[test]
    fn prime_disk_count_avoids_clustering() {
        // A prime number of disks makes gcd(stride, d) = 1 for every stride
        // not a multiple of d.
        let d = next_prime_at_least(100);
        assert_eq!(d, 101);
        assert_eq!(stride_parallelism(d, 480, 101), 101);
        assert_eq!(stride_parallelism(d, 24, 101), 101);
        let analysis = DeclusteringAnalysis::analyse(101, &[(480, 480), (24, 480)]);
        assert!(analysis.is_clustering_free());
    }

    #[test]
    fn stride_parallelism_edge_cases() {
        assert_eq!(stride_parallelism(10, 1, 100), 10);
        assert_eq!(stride_parallelism(10, 1, 3), 3);
        assert_eq!(stride_parallelism(10, 0, 5), 1); // stride 0 ≡ stride d
        assert_eq!(stride_parallelism(10, 10, 5), 1);
        assert_eq!(stride_parallelism(10, 5, 100), 2);
        assert_eq!(stride_parallelism(7, 3, 0), 0);
    }

    #[test]
    fn gcd_and_primality() {
        assert_eq!(gcd(12, 18), 6);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
        assert_eq!(gcd(5, 0), 5);
        assert!(is_prime(2));
        assert!(is_prime(97));
        assert!(is_prime(101));
        assert!(!is_prime(1));
        assert!(!is_prime(0));
        assert!(!is_prime(100));
        assert_eq!(next_prime_at_least(2), 2);
        assert_eq!(next_prime_at_least(8), 11);
        assert_eq!(next_prime_at_least(20), 23);
    }

    #[test]
    fn uniform_weights_balance_round_robin_perfectly() {
        let a = PhysicalAllocation::round_robin(5);
        let shares = disk_load_shares(&a, &[1.0; 100]);
        assert_eq!(shares.len(), 5);
        for &s in &shares {
            assert!((s - 0.2).abs() < 1e-12, "{shares:?}");
        }
        assert!((load_imbalance(&shares) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_weights_predict_the_hot_disk() {
        // Fragment 0 carries half the load on 4 disks: disk 0's share is
        // 0.5 + 0.5/4 of the remainder spread and imbalance exceeds 2x.
        let mut weights = vec![1.0f64; 16];
        weights[0] = 15.0;
        let a = PhysicalAllocation::round_robin(4);
        let shares = disk_load_shares(&a, &weights);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((shares[0] - 18.0 / 30.0).abs() < 1e-12, "{shares:?}");
        assert!((load_imbalance(&shares) - (18.0 / 30.0) / 0.25).abs() < 1e-12);
    }

    #[test]
    fn load_imbalance_degenerate_inputs() {
        assert_eq!(load_imbalance(&[]), 1.0);
        assert_eq!(load_imbalance(&[0.0, 0.0]), 1.0);
        assert!((load_imbalance(&[2.0, 1.0, 1.0]) - 1.5).abs() < 1e-12);
        // Weight vectors shorter than a full round leave trailing disks idle.
        let a = PhysicalAllocation::round_robin(4);
        let shares = disk_load_shares(&a, &[1.0, 1.0]);
        assert_eq!(shares, vec![0.5, 0.5, 0.0, 0.0]);
        assert!((load_imbalance(&shares) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn effective_parallelism_with_duplicates_and_empty() {
        let a = PhysicalAllocation::round_robin(10);
        assert_eq!(effective_parallelism(&a, &[]), 0);
        assert_eq!(effective_parallelism(&a, &[3, 13, 23]), 1);
        assert_eq!(effective_parallelism(&a, &[0, 1, 2, 3]), 4);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// gcd divides both arguments and the stride formula matches a direct
        /// simulation of plain round robin.
        #[test]
        fn prop_gcd_and_stride(d in 1u64..200, stride in 1u64..2_000, count in 1u64..500) {
            let g = gcd(stride, d);
            prop_assert_eq!(stride % g, 0);
            prop_assert_eq!(d % g, 0);
            let a = PhysicalAllocation::round_robin(d);
            let fragments: Vec<u64> = (0..count).map(|i| i * stride).collect();
            let direct = effective_parallelism(&a, &fragments) as u64;
            prop_assert_eq!(direct, stride_parallelism(d, stride, count));
        }

        /// Prime disk counts never lose parallelism for strides below d.
        #[test]
        fn prop_prime_disks_are_clustering_free(seed in 2u64..150, stride in 1u64..149) {
            let d = next_prime_at_least(seed);
            prop_assume!(stride % d != 0);
            prop_assert_eq!(stride_parallelism(d, stride, d), d);
        }
    }
}
