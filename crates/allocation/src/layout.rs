//! Round-robin and staggered round-robin disk placement (§4, §4.6, Figure 2).

use serde::{Deserialize, Serialize};

/// Where the bitmap fragments of a fact fragment are placed relative to the
/// fact fragment's disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BitmapPlacement {
    /// Staggered round robin (Figure 2): the `k` bitmap fragments of fact
    /// fragment on disk `j` go to disks `j+1, …, j+k (mod d)`, so that all
    /// bitmap fragments needed by one subquery can be read in parallel.
    Staggered,
    /// Bitmap fragments share the disk of their fact fragment — the
    /// "non-parallel I/O" baseline of Figure 5.
    CoLocated,
}

/// A physical allocation of fact fragments and bitmap fragments onto `d`
/// disks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhysicalAllocation {
    disks: u64,
    bitmap_placement: BitmapPlacement,
    /// Extra offset added per allocation round ("gaps") to break up the gcd
    /// clustering of plain round robin; 0 reproduces plain round robin.
    round_gap: u64,
}

impl PhysicalAllocation {
    /// Plain round robin with staggered bitmap placement — the paper's
    /// default configuration.
    ///
    /// # Panics
    ///
    /// Panics if `disks` is zero.
    #[must_use]
    pub fn round_robin(disks: u64) -> Self {
        assert!(disks > 0, "need at least one disk");
        PhysicalAllocation {
            disks,
            bitmap_placement: BitmapPlacement::Staggered,
            round_gap: 0,
        }
    }

    /// Round robin with co-located bitmap fragments (Figure 5 baseline).
    #[must_use]
    pub fn round_robin_colocated(disks: u64) -> Self {
        PhysicalAllocation {
            bitmap_placement: BitmapPlacement::CoLocated,
            ..Self::round_robin(disks)
        }
    }

    /// Gap-modified round robin: after each full round over the disks the
    /// starting disk is shifted by `gap`, which breaks the disk clustering
    /// that plain round robin exhibits for strided fragment sets whose stride
    /// shares a divisor with `d` (§4.6 "a modified allocation scheme
    /// introducing certain gaps").
    #[must_use]
    pub fn round_robin_with_gap(disks: u64, gap: u64) -> Self {
        PhysicalAllocation {
            round_gap: gap % disks.max(1),
            ..Self::round_robin(disks)
        }
    }

    /// Number of disks.
    #[must_use]
    pub fn disks(&self) -> u64 {
        self.disks
    }

    /// The bitmap placement policy.
    #[must_use]
    pub fn bitmap_placement(&self) -> BitmapPlacement {
        self.bitmap_placement
    }

    /// The per-round gap (0 for plain round robin).
    #[must_use]
    pub fn round_gap(&self) -> u64 {
        self.round_gap
    }

    /// The disk holding fact fragment `fragment_no` (fragments are numbered
    /// in the fragmentation's allocation order).
    #[must_use]
    pub fn fact_disk(&self, fragment_no: u64) -> u64 {
        if self.round_gap == 0 {
            fragment_no % self.disks
        } else {
            let round = fragment_no / self.disks;
            (fragment_no + round * self.round_gap) % self.disks
        }
    }

    /// The disk holding bitmap fragment `bitmap_index` (0-based among the `k`
    /// bitmaps that exist) of fact fragment `fragment_no`.
    #[must_use]
    pub fn bitmap_disk(&self, fragment_no: u64, bitmap_index: u64) -> u64 {
        let base = self.fact_disk(fragment_no);
        match self.bitmap_placement {
            BitmapPlacement::CoLocated => base,
            BitmapPlacement::Staggered => (base + 1 + bitmap_index) % self.disks,
        }
    }

    /// The disks touched when a subquery reads its fact fragment plus
    /// `bitmap_count` bitmap fragments.
    #[must_use]
    pub fn subquery_disks(&self, fragment_no: u64, bitmap_count: u64) -> Vec<u64> {
        let mut disks = vec![self.fact_disk(fragment_no)];
        for b in 0..bitmap_count {
            disks.push(self.bitmap_disk(fragment_no, b));
        }
        disks.sort_unstable();
        disks.dedup();
        disks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_round_robin_cycles_over_disks() {
        let a = PhysicalAllocation::round_robin(100);
        assert_eq!(a.disks(), 100);
        assert_eq!(a.fact_disk(0), 0);
        assert_eq!(a.fact_disk(99), 99);
        assert_eq!(a.fact_disk(100), 0);
        assert_eq!(a.fact_disk(11_519), 11_519 % 100);
        assert_eq!(a.round_gap(), 0);
    }

    #[test]
    fn staggered_bitmaps_follow_consecutive_disks() {
        // Figure 2: "if fact fragment frag i is placed on disk j, the
        // associated bitmap fragments of all k different bitmaps are placed
        // on disk j+1, …, j+k (modulo d)".
        let a = PhysicalAllocation::round_robin(10);
        assert_eq!(a.bitmap_placement(), BitmapPlacement::Staggered);
        assert_eq!(a.fact_disk(3), 3);
        assert_eq!(a.bitmap_disk(3, 0), 4);
        assert_eq!(a.bitmap_disk(3, 5), 9);
        assert_eq!(a.bitmap_disk(3, 6), 0); // wraps around
                                            // With 12 bitmaps on 10 disks, some disks receive two bitmap
                                            // fragments but the subquery still spans all 10 disks.
        let disks = a.subquery_disks(3, 12);
        assert_eq!(disks.len(), 10);
    }

    #[test]
    fn colocated_bitmaps_share_the_fact_disk() {
        let a = PhysicalAllocation::round_robin_colocated(10);
        assert_eq!(a.bitmap_placement(), BitmapPlacement::CoLocated);
        for b in 0..12 {
            assert_eq!(a.bitmap_disk(7, b), a.fact_disk(7));
        }
        assert_eq!(a.subquery_disks(7, 12), vec![7]);
    }

    #[test]
    fn parallel_bitmap_io_uses_distinct_disks_when_k_fits() {
        // With k ≤ d-1 bitmaps, staggering gives k distinct bitmap disks,
        // none equal to the fact disk.
        let a = PhysicalAllocation::round_robin(100);
        let k = 12;
        let disks = a.subquery_disks(42, k);
        assert_eq!(disks.len() as u64, k + 1);
    }

    #[test]
    fn gap_scheme_breaks_stride_clustering() {
        // §4.6: with d = 100 and F_MonthGroup allocated month-major, query
        // 1CODE accesses every 480th fragment; gcd(480, 100) = 20 confines
        // plain round robin to 5 disks.  A gap of 1 per round spreads the
        // same fragments over far more disks.
        let plain = PhysicalAllocation::round_robin(100);
        let gapped = PhysicalAllocation::round_robin_with_gap(100, 1);
        let fragments: Vec<u64> = (0..24).map(|m| m * 480).collect();
        let distinct = |a: &PhysicalAllocation| {
            let mut d: Vec<u64> = fragments.iter().map(|&f| a.fact_disk(f)).collect();
            d.sort_unstable();
            d.dedup();
            d.len()
        };
        assert_eq!(distinct(&plain), 5);
        assert!(
            distinct(&gapped) >= 20,
            "gapped spread: {}",
            distinct(&gapped)
        );
    }

    #[test]
    fn gap_allocation_still_covers_all_disks_evenly() {
        let a = PhysicalAllocation::round_robin_with_gap(10, 3);
        let mut counts = vec![0u64; 10];
        for f in 0..1_000 {
            counts[a.fact_disk(f) as usize] += 1;
        }
        // Every disk receives the same number of fragments.
        assert!(counts.iter().all(|&c| c == 100), "{counts:?}");
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_disks_rejected() {
        let _ = PhysicalAllocation::round_robin(0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Disk numbers are always within range and round robin balances
        /// perfectly over any full number of rounds.
        #[test]
        fn prop_disks_in_range(disks in 1u64..128, gap in 0u64..64, frag in 0u64..100_000, bitmap in 0u64..80) {
            let a = PhysicalAllocation::round_robin_with_gap(disks, gap);
            prop_assert!(a.fact_disk(frag) < disks);
            prop_assert!(a.bitmap_disk(frag, bitmap) < disks);
        }

        /// Over one full round, plain round robin hits every disk exactly once.
        #[test]
        fn prop_round_robin_one_round_balance(disks in 1u64..200) {
            let a = PhysicalAllocation::round_robin(disks);
            let mut seen: Vec<u64> = (0..disks).map(|f| a.fact_disk(f)).collect();
            seen.sort_unstable();
            prop_assert_eq!(seen, (0..disks).collect::<Vec<_>>());
        }
    }
}
