//! Two-level **node → disk** placement for multi-node scale-out.
//!
//! The paper allocates fragments across the disks of a single parallel
//! machine.  This module generalises [`PhysicalAllocation`] one level up: the
//! `d` disks are owned by `n` simulated nodes (`d / n` consecutive disks
//! each), and the placement strategy decides what a *remote* disk costs:
//!
//! * [`NodeStrategy::SharedNothing`] — each node can reach only its own
//!   disks directly; a scan executing on node `i` that touches a disk owned
//!   by node `j ≠ i` must ship the pages over the interconnect (the
//!   execution layer charges a per-page network cost).
//! * [`NodeStrategy::SharedDisk`] — every node reaches every disk at equal
//!   cost (the paper's Shared Disk architecture); only the per-node buffer
//!   caches are private.
//!
//! The fragment-level placement itself is still the wrapped
//! [`PhysicalAllocation`] — round-robin facts with staggered bitmaps — so a
//! single-node `NodePlacement` is bit-for-bit the flat allocation it wraps.
//!
//! ```
//! use allocation::{NodePlacement, NodeStrategy};
//!
//! // 4 nodes × 3 disks = 12 disks, shared-nothing.
//! let p = NodePlacement::shared_nothing(4, 3);
//! assert_eq!(p.total_disks(), 12);
//! assert_eq!(p.node_of_disk(7), 2);
//! // Fact fragment 7 lands on disk 7 (round robin), owned by node 2.
//! assert_eq!(p.home_node(7), 2);
//! assert!(p.is_local(2, 7));
//! assert!(!p.is_local(0, 7));
//! // Shared disk treats every disk as local.
//! assert!(NodePlacement::shared_disk(4, 3).is_local(0, 7));
//! ```

use serde::{Deserialize, Serialize};

use crate::analysis::disk_load_shares;
use crate::layout::PhysicalAllocation;

/// How the nodes of a [`NodePlacement`] reach each other's disks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeStrategy {
    /// Each node owns its disks exclusively; remote pages travel over the
    /// interconnect and pay a per-page network charge.
    SharedNothing,
    /// Every node reaches every disk at equal cost (the paper's Shared Disk
    /// architecture); only buffer caches are per-node.
    SharedDisk,
}

/// A two-level placement: `nodes × disks_per_node` disks, fragment placement
/// delegated to a wrapped [`PhysicalAllocation`], disk `d` owned by node
/// `d / disks_per_node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodePlacement {
    nodes: u64,
    strategy: NodeStrategy,
    allocation: PhysicalAllocation,
}

impl NodePlacement {
    /// A placement of `nodes × disks_per_node` disks under `strategy`, with
    /// plain round-robin fact placement and staggered bitmaps.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` or `disks_per_node` is zero.
    #[must_use]
    pub fn new(nodes: u64, disks_per_node: u64, strategy: NodeStrategy) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(disks_per_node > 0, "need at least one disk per node");
        NodePlacement {
            nodes,
            strategy,
            allocation: PhysicalAllocation::round_robin(nodes * disks_per_node),
        }
    }

    /// Shared-nothing placement: `nodes × disks_per_node` disks, remote
    /// pages pay the interconnect.
    #[must_use]
    pub fn shared_nothing(nodes: u64, disks_per_node: u64) -> Self {
        Self::new(nodes, disks_per_node, NodeStrategy::SharedNothing)
    }

    /// Shared-disk placement: `nodes × disks_per_node` disks, every disk
    /// equally reachable.
    #[must_use]
    pub fn shared_disk(nodes: u64, disks_per_node: u64) -> Self {
        Self::new(nodes, disks_per_node, NodeStrategy::SharedDisk)
    }

    /// Wraps an existing flat allocation in a node layer.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero or does not divide the allocation's disk
    /// count (nodes own equal, contiguous disk ranges).
    #[must_use]
    pub fn over(allocation: PhysicalAllocation, nodes: u64, strategy: NodeStrategy) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(
            allocation.disks().is_multiple_of(nodes),
            "node count {nodes} must divide disk count {}",
            allocation.disks()
        );
        NodePlacement {
            nodes,
            strategy,
            allocation,
        }
    }

    /// The degenerate single-node placement over `allocation` — exactly the
    /// flat single-machine configuration.
    #[must_use]
    pub fn single(allocation: PhysicalAllocation) -> Self {
        Self::over(allocation, 1, NodeStrategy::SharedDisk)
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> u64 {
        self.nodes
    }

    /// Disks owned by each node.
    #[must_use]
    pub fn disks_per_node(&self) -> u64 {
        self.allocation.disks() / self.nodes
    }

    /// Total number of disks across all nodes.
    #[must_use]
    pub fn total_disks(&self) -> u64 {
        self.allocation.disks()
    }

    /// The wrapped fragment-level allocation.
    #[must_use]
    pub fn allocation(&self) -> &PhysicalAllocation {
        &self.allocation
    }

    /// The placement strategy.
    #[must_use]
    pub fn strategy(&self) -> NodeStrategy {
        self.strategy
    }

    /// The node owning disk `disk`.
    #[must_use]
    pub fn node_of_disk(&self, disk: u64) -> u64 {
        (disk / self.disks_per_node()).min(self.nodes - 1)
    }

    /// The node owning fact fragment `fragment_no`'s disk — the node a scan
    /// of that fragment executes on.
    #[must_use]
    pub fn home_node(&self, fragment_no: u64) -> u64 {
        self.node_of_disk(self.allocation.fact_disk(fragment_no))
    }

    /// True when `node` can read `disk` without paying the interconnect:
    /// always under [`NodeStrategy::SharedDisk`], only for owned disks under
    /// [`NodeStrategy::SharedNothing`].
    #[must_use]
    pub fn is_local(&self, node: u64, disk: u64) -> bool {
        match self.strategy {
            NodeStrategy::SharedDisk => true,
            NodeStrategy::SharedNothing => self.node_of_disk(disk) == node,
        }
    }
}

/// The per-node load shares of a two-level placement for a weighted fragment
/// set: [`disk_load_shares`] folded over each node's owned disk range, so
/// the result has one entry per node and sums to 1 whenever any weight is
/// positive.
///
/// This is the analytic counterpart of a measured per-node utilisation
/// profile — under Zipf skew it predicts how much load the node owning the
/// hot head's disk must absorb, for comparison against
/// [`crate::load_imbalance`] of the measured per-node busy times.
#[must_use]
pub fn node_load_shares(placement: &NodePlacement, weights: &[f64]) -> Vec<f64> {
    let disk_shares = disk_load_shares(placement.allocation(), weights);
    let mut shares = vec![0.0f64; usize::try_from(placement.nodes()).expect("node count fits")];
    for (disk, &share) in disk_shares.iter().enumerate() {
        shares[usize::try_from(placement.node_of_disk(disk as u64)).expect("node fits")] += share;
    }
    shares
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::load_imbalance;

    #[test]
    fn ownership_is_contiguous_and_complete() {
        let p = NodePlacement::shared_nothing(4, 3);
        assert_eq!(p.nodes(), 4);
        assert_eq!(p.disks_per_node(), 3);
        assert_eq!(p.total_disks(), 12);
        for disk in 0..12 {
            assert_eq!(p.node_of_disk(disk), disk / 3);
        }
    }

    #[test]
    fn home_node_follows_the_fact_disk() {
        let p = NodePlacement::shared_nothing(2, 5);
        for fragment in 0..100 {
            let disk = p.allocation().fact_disk(fragment);
            assert_eq!(p.home_node(fragment), disk / 5);
        }
    }

    #[test]
    fn locality_depends_on_the_strategy() {
        let sn = NodePlacement::shared_nothing(2, 2);
        assert!(sn.is_local(0, 0));
        assert!(sn.is_local(0, 1));
        assert!(!sn.is_local(0, 2));
        assert!(sn.is_local(1, 3));
        let sd = NodePlacement::shared_disk(2, 2);
        for node in 0..2 {
            for disk in 0..4 {
                assert!(sd.is_local(node, disk));
            }
        }
    }

    #[test]
    fn single_node_is_the_flat_allocation() {
        let flat = PhysicalAllocation::round_robin(7);
        let p = NodePlacement::single(flat);
        assert_eq!(p.nodes(), 1);
        assert_eq!(p.total_disks(), 7);
        assert_eq!(p.allocation(), &flat);
        for fragment in 0..50 {
            assert_eq!(p.home_node(fragment), 0);
        }
        for disk in 0..7 {
            assert!(p.is_local(0, disk));
        }
    }

    #[test]
    fn uniform_weights_balance_nodes_perfectly() {
        let p = NodePlacement::shared_nothing(4, 3);
        let shares = node_load_shares(&p, &[1.0; 120]);
        assert_eq!(shares.len(), 4);
        for &s in &shares {
            assert!((s - 0.25).abs() < 1e-12, "{shares:?}");
        }
        assert!((load_imbalance(&shares) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_weights_load_the_hot_node() {
        // Fragment 0 carries most of the load; node 0 owns its disk.
        let mut weights = vec![1.0f64; 12];
        weights[0] = 23.0;
        let p = NodePlacement::shared_nothing(4, 3);
        let shares = node_load_shares(&p, &weights);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Node 0: fragments 0,1,2 → (23 + 1 + 1) / 34.
        assert!((shares[0] - 25.0 / 34.0).abs() < 1e-12, "{shares:?}");
        assert!(load_imbalance(&shares) > 2.0);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn uneven_node_split_rejected() {
        let _ = NodePlacement::over(
            PhysicalAllocation::round_robin(7),
            2,
            NodeStrategy::SharedNothing,
        );
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_nodes_rejected() {
        let _ = NodePlacement::new(0, 3, NodeStrategy::SharedDisk);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::analysis::disk_load_shares;
    use proptest::prelude::*;

    proptest! {
        /// Node shares are exactly the disk shares folded by ownership: they
        /// sum to 1 and each node's share equals the sum over its disks
        /// (conservation — no load appears or vanishes in the node layer).
        #[test]
        fn prop_node_shares_conserve_disk_shares(
            nodes in 1u64..9,
            disks_per_node in 1u64..7,
            weights in proptest::collection::vec(0.0f64..100.0, 1..200),
        ) {
            let p = NodePlacement::shared_nothing(nodes, disks_per_node);
            let node_shares = node_load_shares(&p, &weights);
            let disk_shares = disk_load_shares(p.allocation(), &weights);
            prop_assert_eq!(node_shares.len() as u64, nodes);
            let total: f64 = node_shares.iter().sum();
            let disk_total: f64 = disk_shares.iter().sum();
            prop_assert!((total - disk_total).abs() < 1e-9);
            if weights.iter().any(|&w| w > 0.0) {
                prop_assert!((total - 1.0).abs() < 1e-9);
            }
            for (node, &share) in node_shares.iter().enumerate() {
                let owned: f64 = disk_shares
                    .iter()
                    .enumerate()
                    .filter(|(d, _)| p.node_of_disk(*d as u64) == node as u64)
                    .map(|(_, &s)| s)
                    .sum();
                prop_assert!((share - owned).abs() < 1e-9);
            }
        }

        /// Every fragment's home node is in range and owns the fact disk.
        #[test]
        fn prop_home_node_owns_the_fact_disk(
            nodes in 1u64..9,
            disks_per_node in 1u64..7,
            fragment in 0u64..100_000,
        ) {
            let p = NodePlacement::shared_disk(nodes, disks_per_node);
            let home = p.home_node(fragment);
            prop_assert!(home < nodes);
            prop_assert!(p.node_of_disk(p.allocation().fact_disk(fragment)) == home);
        }
    }
}
