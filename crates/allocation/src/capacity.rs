//! Per-disk storage accounting and balance metrics.
//!
//! §4.6: "the minimal number of disks is determined by the capacity
//! requirements to store the fact table, bitmaps and other data"; fact and
//! bitmap data share the same disks so that all disks can serve fact I/O.
//! [`CapacityReport`] computes how many bytes of fact and bitmap data each
//! disk receives under an allocation and how balanced the distribution is.

use serde::{Deserialize, Serialize};

use mdhf::Fragmentation;
use schema::{PageSizing, StarSchema};

use crate::layout::PhysicalAllocation;

/// Storage assigned to one disk.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct DiskUsage {
    /// Bytes of fact-fragment data.
    pub fact_bytes: f64,
    /// Bytes of bitmap-fragment data.
    pub bitmap_bytes: f64,
    /// Number of fact fragments.
    pub fact_fragments: u64,
    /// Number of bitmap fragments.
    pub bitmap_fragments: u64,
}

impl DiskUsage {
    /// Total bytes on the disk.
    #[must_use]
    pub fn total_bytes(&self) -> f64 {
        self.fact_bytes + self.bitmap_bytes
    }
}

/// Capacity accounting of a full allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityReport {
    per_disk: Vec<DiskUsage>,
}

impl CapacityReport {
    /// Computes per-disk usage for `fragmentation` with `bitmap_count`
    /// bitmaps, placed according to `allocation`.
    ///
    /// Fragment sizes use the uniform-distribution averages of the paper's
    /// sizing model.
    #[must_use]
    pub fn compute(
        schema: &StarSchema,
        fragmentation: &Fragmentation,
        allocation: &PhysicalAllocation,
        bitmap_count: u64,
    ) -> Self {
        let sizing = PageSizing::new(schema);
        let n = fragmentation.fragment_count();
        let fact_fragment_bytes =
            sizing.fact_rows() as f64 / n as f64 * sizing.fact_tuple_bytes() as f64;
        let bitmap_fragment_bytes = sizing.fact_rows() as f64 / n as f64 / 8.0;
        let mut per_disk = vec![DiskUsage::default(); allocation.disks() as usize];

        // Iterating over billions of fragments is unnecessary: round robin is
        // periodic with period `disks`, so distribute whole rounds in bulk and
        // walk only the remainder explicitly.
        // Both the plain and the gap-modified scheme place exactly one fact
        // fragment per disk per full round, so full rounds can be distributed
        // in bulk; only the final partial round is walked explicitly.
        let disks = allocation.disks();
        let full_rounds = n / disks;
        let remainder = n % disks;
        for usage in &mut per_disk {
            usage.fact_fragments = full_rounds;
            usage.fact_bytes = full_rounds as f64 * fact_fragment_bytes;
        }
        for f in (n - remainder)..n {
            let d = allocation.fact_disk(f) as usize;
            per_disk[d].fact_fragments += 1;
            per_disk[d].fact_bytes += fact_fragment_bytes;
        }

        // Bitmap fragments: every fact fragment has `bitmap_count` bitmap
        // fragments.  Over one full round-robin round every disk ends up with
        // exactly `bitmap_count` of them, both for the staggered placement
        // (the per-fragment offsets shift uniformly with the fact disk) and
        // for the co-located one.
        let bitmap_per_disk_per_round = bitmap_count;
        for usage in &mut per_disk {
            usage.bitmap_fragments = full_rounds * bitmap_per_disk_per_round;
            usage.bitmap_bytes =
                (full_rounds * bitmap_per_disk_per_round) as f64 * bitmap_fragment_bytes;
        }
        for f in (n - remainder)..n {
            for b in 0..bitmap_count {
                let d = allocation.bitmap_disk(f, b) as usize;
                per_disk[d].bitmap_fragments += 1;
                per_disk[d].bitmap_bytes += bitmap_fragment_bytes;
            }
        }

        CapacityReport { per_disk }
    }

    /// Per-disk usage, indexed by disk number.
    #[must_use]
    pub fn per_disk(&self) -> &[DiskUsage] {
        &self.per_disk
    }

    /// Total bytes across all disks.
    #[must_use]
    pub fn total_bytes(&self) -> f64 {
        self.per_disk.iter().map(DiskUsage::total_bytes).sum()
    }

    /// Imbalance factor: maximum disk load divided by the mean load
    /// (1.0 = perfectly balanced).
    #[must_use]
    pub fn imbalance(&self) -> f64 {
        if self.per_disk.is_empty() {
            return 1.0;
        }
        let loads: Vec<f64> = self.per_disk.iter().map(DiskUsage::total_bytes).collect();
        let mean = loads.iter().sum::<f64>() / loads.len() as f64;
        if mean == 0.0 {
            return 1.0;
        }
        loads.iter().copied().fold(0.0f64, f64::max) / mean
    }

    /// Minimum per-disk capacity (in bytes) needed to hold this allocation.
    #[must_use]
    pub fn required_disk_capacity(&self) -> f64 {
        self.per_disk
            .iter()
            .map(DiskUsage::total_bytes)
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::apb1::apb1_schema;

    #[test]
    fn month_group_on_100_disks_balances_and_sums_correctly() {
        let s = apb1_schema();
        let f = Fragmentation::parse(&s, &["time::month", "product::group"]).unwrap();
        let a = PhysicalAllocation::round_robin(100);
        // 32 bitmaps remain under F_MonthGroup.
        let report = CapacityReport::compute(&s, &f, &a, 32);
        assert_eq!(report.per_disk().len(), 100);
        // Total fact bytes ≈ 37.3 GB; total bitmap bytes = 32 × 233 MB ≈ 7.5 GB.
        let fact_total: f64 = report.per_disk().iter().map(|d| d.fact_bytes).sum();
        let bitmap_total: f64 = report.per_disk().iter().map(|d| d.bitmap_bytes).sum();
        assert!((fact_total - 37.3e9).abs() < 0.2e9, "{fact_total}");
        assert!(
            (bitmap_total - 32.0 * 233.28e6).abs() < 0.1e9,
            "{bitmap_total}"
        );
        // 11 520 fragments over 100 disks: near-perfect balance.
        assert!(report.imbalance() < 1.02, "{}", report.imbalance());
        // Each disk needs roughly (37.3 + 7.5) GB / 100 ≈ 450 MB.
        let cap = report.required_disk_capacity();
        assert!(cap > 4.0e8 && cap < 5.0e8, "{cap}");
    }

    #[test]
    fn fragment_counts_per_disk() {
        let s = apb1_schema();
        let f = Fragmentation::parse(&s, &["time::month", "product::group"]).unwrap();
        let a = PhysicalAllocation::round_robin(100);
        let report = CapacityReport::compute(&s, &f, &a, 12);
        let total_fact: u64 = report.per_disk().iter().map(|d| d.fact_fragments).sum();
        let total_bitmap: u64 = report.per_disk().iter().map(|d| d.bitmap_fragments).sum();
        assert_eq!(total_fact, 11_520);
        assert_eq!(total_bitmap, 11_520 * 12);
        // 11 520 does not divide evenly by 100 — 20 disks get one extra fragment.
        let max = report
            .per_disk()
            .iter()
            .map(|d| d.fact_fragments)
            .max()
            .unwrap();
        let min = report
            .per_disk()
            .iter()
            .map(|d| d.fact_fragments)
            .min()
            .unwrap();
        assert_eq!(max - min, 1);
    }

    #[test]
    fn colocated_allocation_accounts_bitmaps_on_fact_disks() {
        let s = apb1_schema();
        let f = Fragmentation::parse(&s, &["customer::store"]).unwrap();
        let a = PhysicalAllocation::round_robin_colocated(10);
        let report = CapacityReport::compute(&s, &f, &a, 5);
        let total_bitmap: u64 = report.per_disk().iter().map(|d| d.bitmap_fragments).sum();
        assert_eq!(total_bitmap, 1_440 * 5);
        assert!(report.imbalance() < 1.05);
        assert!(report.total_bytes() > 0.0);
    }
}
