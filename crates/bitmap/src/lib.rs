//! `bitmap` — bitmap join index substrate for star-query processing.
//!
//! Star queries are processed in the paper by reading and intersecting
//! bitmaps: one bit per fact row indicates whether that row matches a given
//! dimension value (a *bitmap join index*, [O'Neil/Graefe 1995]).  For
//! high-cardinality dimensions the paper uses *encoded* bitmap indices
//! [Wu/Buchmann 1998] with a **hierarchical encoding**: each hierarchy level
//! contributes a sub-pattern of bits, so the PRODUCT dimension needs only 15
//! bitmaps instead of 14 400 and any ancestor level can be matched by reading
//! only its prefix bitmaps (Table 1 of the paper).
//!
//! This crate provides:
//!
//! * [`bitvec::Bitmap`] — an uncompressed bitmap with the Boolean operations
//!   used by star-join processing,
//! * [`wah::WahBitmap`] — a word-aligned-hybrid compressed representation
//!   with compressed-domain AND/OR/iteration (no decompress round-trips),
//! * [`roaring::RoaringBitmap`] — roaring-style hybrid containers (sorted
//!   array / bitset / run list per 64 Ki-bit chunk, canonically chosen per
//!   chunk) with fully compressed-domain Boolean operations,
//! * [`repr::BitmapRepr`] / [`repr::RepresentationPolicy`] — the adaptive
//!   measured-size per-bitmap choice among the three, used by every
//!   materialised index,
//! * [`encoding::HierarchicalEncoding`] — the per-level bit layout of an
//!   encoded bitmap index derived from a dimension hierarchy — plus the
//!   `BMRP` byte codec ([`encoding::encode_bitmap_repr`]) that serializes
//!   any representation,
//! * [`index::BitmapIndexSpec`] / [`index::IndexCatalog`] — the logical
//!   description (how many bitmaps, which bitmaps a selection must read) used
//!   by the cost model and the simulator,
//! * [`builder::MaterialisedIndex`] — a real, in-memory bitmap join index
//!   over a materialised (scaled-down) fact table, used by the examples and
//!   integration tests to validate the logical model against actual data,
//! * [`fragment`] — bitmap fragmentation aligned with fact-table fragments.
//!
//! # Quick start
//!
//! ```
//! use bitmap::{Bitmap, WahBitmap};
//!
//! // Two selection bitmaps over ten fact rows…
//! let month = Bitmap::from_positions(10, [1, 3, 5, 7, 9]);
//! let group = Bitmap::from_positions(10, [3, 4, 5]);
//!
//! // …ANDed to the qualifying rows, uncompressed or compressed-domain.
//! let hits = month.and(&group);
//! assert_eq!(hits, Bitmap::from_positions(10, [3, 5]));
//! let wah = WahBitmap::compress(&month).and(&WahBitmap::compress(&group));
//! assert_eq!(wah.decompress(), hits);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bitvec;
pub mod builder;
pub mod encoding;
pub mod fragment;
pub mod index;
pub mod repr;
pub mod roaring;
pub mod wah;

pub use bitvec::Bitmap;
pub use builder::{
    evaluate_star_query, FactRow, MaterialisedFactTable, MaterialisedIndex, StoredBitmaps,
};
pub use encoding::{decode_bitmap_repr, encode_bitmap_repr, HierarchicalEncoding, ReprDecodeError};
pub use fragment::BitmapFragmentation;
pub use index::{BitmapIndexKind, BitmapIndexSpec, IndexCatalog};
pub use repr::{BitmapRepr, ReprStats, RepresentationPolicy};
pub use roaring::RoaringBitmap;
pub use wah::WahBitmap;

#[cfg(test)]
pub(crate) mod test_shapes {
    use crate::bitvec::Bitmap;

    /// A bitmap drawn from one of four shapes, together exercising every
    /// WAH run kind: all-zero, all-one, seeded pseudo-random scatter, and a
    /// clustered run of ones over a zero background.  Shared by the
    /// property tests of [`crate::wah`] and [`crate::repr`].
    pub(crate) fn shaped_bitmap(
        len: usize,
        shape: u8,
        run_start: usize,
        run_len: usize,
        seed: u64,
    ) -> Bitmap {
        match shape % 4 {
            0 => Bitmap::new(len),
            1 => Bitmap::ones(len),
            2 => Bitmap::from_positions(
                len,
                (0..len).filter(|&i| {
                    (i as u64)
                        .wrapping_mul(0x9E37_79B9)
                        .wrapping_add(seed)
                        .is_multiple_of(7)
                }),
            ),
            _ => {
                let mut b = Bitmap::new(len);
                for p in run_start..(run_start + run_len).min(len) {
                    b.set(p, true);
                }
                b
            }
        }
    }
}
