//! Word-aligned hybrid (WAH-style) bitmap compression.
//!
//! The paper notes that the storage overhead of simple bitmap indices "may be
//! reduced by compressing the bitmaps".  This module provides a 64-bit
//! word-aligned hybrid scheme: runs of all-zero or all-one 63-bit groups are
//! collapsed into fill words, everything else is stored as literal words.
//! The compressed form supports loss-free round-tripping and — crucially for
//! the star-join hot path — Boolean operations ([`WahBitmap::and_many`],
//! [`WahBitmap::or_many`]) and set-bit iteration ([`WahBitmap::iter_ones`])
//! that work *directly on the runs*, without any decompress round-trip: a
//! zero fill in any AND operand lets the whole intersection skip that run.
//!
//! All `WahBitmap`s in the system are kept in *canonical* form (adjacent
//! fills merged, full all-zero/all-one groups stored as fills, a partial
//! tail group always stored as a literal), so structural equality coincides
//! with logical equality.

use serde::{Deserialize, Serialize};

use crate::bitvec::Bitmap;

const GROUP_BITS: usize = 63;
const LITERAL_FLAG: u64 = 1 << 63;
const FILL_VALUE_FLAG: u64 = 1 << 62;
const MAX_FILL_LEN: u64 = (1 << 62) - 1;
const FULL_GROUP: u64 = (1u64 << GROUP_BITS) - 1;

/// A WAH-compressed bitmap.
///
/// Words are either *literals* (top bit set; low 63 bits are payload) or
/// *fills* (top bit clear; bit 62 is the fill value, low 62 bits the number of
/// consecutive 63-bit groups with that value).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WahBitmap {
    len: usize,
    words: Vec<u64>,
}

impl WahBitmap {
    /// Compresses an uncompressed bitmap.
    #[must_use]
    pub fn compress(bitmap: &Bitmap) -> Self {
        let len = bitmap.len();
        let mut words = Vec::new();
        let mut pending_fill: Option<(bool, u64)> = None;

        let flush_fill = |words: &mut Vec<u64>, fill: &mut Option<(bool, u64)>| {
            if let Some((value, count)) = fill.take() {
                let mut remaining = count;
                while remaining > 0 {
                    let chunk = remaining.min(MAX_FILL_LEN);
                    let mut w = chunk;
                    if value {
                        w |= FILL_VALUE_FLAG;
                    }
                    words.push(w);
                    remaining -= chunk;
                }
            }
        };

        for group_idx in 0..len.div_ceil(GROUP_BITS) {
            let group = read_group(bitmap, group_idx);
            let group_len = (len - group_idx * GROUP_BITS).min(GROUP_BITS);
            let full_mask = if group_len == GROUP_BITS {
                (1u64 << GROUP_BITS) - 1
            } else {
                (1u64 << group_len) - 1
            };
            let is_last_partial = group_len < GROUP_BITS;

            if !is_last_partial && group == 0 {
                match &mut pending_fill {
                    Some((false, c)) => *c += 1,
                    _ => {
                        flush_fill(&mut words, &mut pending_fill);
                        pending_fill = Some((false, 1));
                    }
                }
            } else if !is_last_partial && group == full_mask {
                match &mut pending_fill {
                    Some((true, c)) => *c += 1,
                    _ => {
                        flush_fill(&mut words, &mut pending_fill);
                        pending_fill = Some((true, 1));
                    }
                }
            } else {
                flush_fill(&mut words, &mut pending_fill);
                words.push(LITERAL_FLAG | group);
            }
        }
        flush_fill(&mut words, &mut pending_fill);
        WahBitmap { len, words }
    }

    /// Decompresses back into an uncompressed bitmap.
    #[must_use]
    pub fn decompress(&self) -> Bitmap {
        let mut out = Bitmap::new(self.len);
        let mut bit_pos = 0usize;
        for &w in &self.words {
            if w & LITERAL_FLAG != 0 {
                let payload = w & !LITERAL_FLAG;
                let group_len = (self.len - bit_pos).min(GROUP_BITS);
                for i in 0..group_len {
                    if (payload >> i) & 1 == 1 {
                        out.set(bit_pos + i, true);
                    }
                }
                bit_pos += group_len;
            } else {
                let value = w & FILL_VALUE_FLAG != 0;
                let groups = (w & MAX_FILL_LEN) as usize;
                let bits = groups * GROUP_BITS;
                if value {
                    for i in 0..bits.min(self.len - bit_pos) {
                        out.set(bit_pos + i, true);
                    }
                }
                bit_pos += bits;
            }
        }
        out
    }

    /// Number of rows covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when covering zero rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits (computed without full decompression).
    #[must_use]
    pub fn count_ones(&self) -> usize {
        let mut count = 0usize;
        let mut bit_pos = 0usize;
        for &w in &self.words {
            if w & LITERAL_FLAG != 0 {
                // Mask bits beyond `len`, which non-canonical (deserialized)
                // tail literals may carry.
                let valid = self.len.saturating_sub(bit_pos).min(GROUP_BITS);
                count += (w & (FULL_GROUP >> (GROUP_BITS - valid))).count_ones() as usize;
                bit_pos += valid;
            } else {
                let groups = (w & MAX_FILL_LEN) as usize;
                let bits = (groups * GROUP_BITS).min(self.len.saturating_sub(bit_pos));
                if w & FILL_VALUE_FLAG != 0 {
                    count += bits;
                }
                bit_pos += bits;
            }
        }
        count
    }

    /// Compressed size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Raw compressed words (the serialization encode path).
    #[must_use]
    pub(crate) fn raw_words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds from raw compressed words (the serialization decode path).
    /// Non-canonical input is tolerated by every operation — see the module
    /// docs — so no validation is needed here.
    #[must_use]
    pub(crate) fn from_raw_words(len: usize, words: Vec<u64>) -> WahBitmap {
        WahBitmap { len, words }
    }

    /// Compression ratio relative to the uncompressed representation
    /// (values > 1 mean the compressed form is smaller).
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        let uncompressed = self.len.div_ceil(8).max(1);
        uncompressed as f64 / self.size_bytes().max(1) as f64
    }

    /// Fraction of set bits, in `[0, 1]` (0 for an empty bitmap).
    #[must_use]
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Logical AND of two compressed bitmaps, computed entirely in the
    /// compressed domain (no decompress round-trip).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn and(&self, other: &WahBitmap) -> WahBitmap {
        WahBitmap::and_many(&[self, other])
    }

    /// Logical OR of two compressed bitmaps, computed entirely in the
    /// compressed domain.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn or(&self, other: &WahBitmap) -> WahBitmap {
        WahBitmap::or_many(&[self, other])
    }

    /// Multi-way intersection over the compressed representations — the
    /// compressed-domain counterpart of [`Bitmap::and_many`].
    ///
    /// Runs in lockstep over all operands: a zero fill in *any* operand
    /// advances every cursor by the whole run, so sparse clustered bitmaps
    /// intersect in time proportional to their compressed size rather than
    /// their logical length.
    ///
    /// # Panics
    ///
    /// Panics if `bitmaps` is empty or the lengths differ.
    #[must_use]
    pub fn and_many(bitmaps: &[&WahBitmap]) -> WahBitmap {
        let Some(first) = bitmaps.first() else {
            panic!(
                "WahBitmap::and_many of zero operands has no defined length; \
                 pass at least one bitmap"
            )
        };
        Self::merge_many(bitmaps, first.len, false)
    }

    /// Multi-way union over the compressed representations — the dual of
    /// [`WahBitmap::and_many`]: a one fill in *any* operand advances every
    /// cursor by the whole run.
    ///
    /// # Panics
    ///
    /// Panics if `bitmaps` is empty or the lengths differ.
    #[must_use]
    pub fn or_many(bitmaps: &[&WahBitmap]) -> WahBitmap {
        let Some(first) = bitmaps.first() else {
            panic!(
                "WahBitmap::or_many of zero operands has no defined length; \
                 pass at least one bitmap"
            )
        };
        Self::merge_many(bitmaps, first.len, true)
    }

    /// The lockstep run-merging loop shared by [`WahBitmap::and_many`]
    /// (`absorbing = false`: a zero fill in any operand forces zeros) and
    /// [`WahBitmap::or_many`] (`absorbing = true`: a one fill forces ones).
    ///
    /// # Panics
    ///
    /// Panics if the operand lengths differ from `len`.
    fn merge_many(bitmaps: &[&WahBitmap], len: usize, absorbing: bool) -> WahBitmap {
        assert!(
            bitmaps.iter().all(|b| b.len == len),
            "bitmap length mismatch"
        );
        let mut out = WahAppender::new(len);
        let mut cursors: Vec<RunCursor> =
            bitmaps.iter().map(|b| RunCursor::new(&b.words)).collect();
        while out.remaining() > 0 {
            let mut identity_step = out.remaining();
            let mut absorbing_step: Option<u64> = None;
            let mut literal_acc = if absorbing { 0 } else { FULL_GROUP };
            let mut has_literal = false;
            for cursor in &cursors {
                // A cursor past the end of a truncated (non-canonical, e.g.
                // deserialized) word stream reads as zeros to the end,
                // matching `decompress`.
                let run = cursor.current.unwrap_or(Run::Fill {
                    value: false,
                    groups: out.remaining(),
                });
                match run {
                    Run::Fill { value, groups } if value == absorbing => {
                        absorbing_step = Some(absorbing_step.map_or(groups, |s| s.min(groups)));
                    }
                    Run::Fill { groups, .. } => identity_step = identity_step.min(groups),
                    Run::Literal(payload) => {
                        has_literal = true;
                        if absorbing {
                            literal_acc |= payload;
                        } else {
                            literal_acc &= payload;
                        }
                    }
                }
            }
            let step = if let Some(s) = absorbing_step {
                let s = s.min(out.remaining());
                out.fill(absorbing, s);
                s
            } else if has_literal {
                out.literal(literal_acc);
                1
            } else {
                out.fill(!absorbing, identity_step);
                identity_step
            };
            for cursor in &mut cursors {
                cursor.advance(step);
            }
        }
        out.finish()
    }

    /// Iterates over the positions of set bits in ascending order, walking
    /// the compressed runs directly: zero fills are skipped in O(1), one
    /// fills are emitted as consecutive ranges.
    #[must_use]
    pub fn iter_ones(&self) -> WahOnes<'_> {
        WahOnes {
            words: &self.words,
            word_idx: 0,
            len: self.len,
            group_start: 0,
            literal: 0,
            literal_base: 0,
            run_pos: 0,
            run_end: 0,
        }
    }
}

/// One decoded run of a compressed bitmap.
#[derive(Debug, Clone, Copy)]
enum Run {
    /// `groups` consecutive 63-bit groups of all-`value` bits.
    Fill { value: bool, groups: u64 },
    /// One 63-bit group with the given payload.
    Literal(u64),
}

fn decode_word(w: u64) -> Run {
    if w & LITERAL_FLAG != 0 {
        Run::Literal(w & !LITERAL_FLAG)
    } else {
        Run::Fill {
            value: w & FILL_VALUE_FLAG != 0,
            groups: w & MAX_FILL_LEN,
        }
    }
}

/// A cursor over the runs of one compressed operand, supporting multi-group
/// advancement (fills are consumed partially, literals whole).
struct RunCursor<'a> {
    words: std::slice::Iter<'a, u64>,
    current: Option<Run>,
}

impl<'a> RunCursor<'a> {
    fn new(words: &'a [u64]) -> Self {
        let mut cursor = RunCursor {
            words: words.iter(),
            current: None,
        };
        cursor.load_next();
        cursor
    }

    fn load_next(&mut self) {
        // Canonical compression never emits zero-length fills, but a
        // deserialized bitmap may contain them; skipping here keeps the
        // lockstep loops of `and_many`/`or_many` from stalling on a run
        // that covers no groups.
        self.current = None;
        for &w in self.words.by_ref() {
            let run = decode_word(w);
            if matches!(run, Run::Fill { groups: 0, .. }) {
                continue;
            }
            self.current = Some(run);
            return;
        }
    }

    /// Consumes `groups` 63-bit groups, crossing run boundaries as needed.
    fn advance(&mut self, mut groups: u64) {
        while groups > 0 {
            match self.current {
                Some(Run::Fill { value, groups: g }) => {
                    if g > groups {
                        self.current = Some(Run::Fill {
                            value,
                            groups: g - groups,
                        });
                        return;
                    }
                    groups -= g;
                    self.load_next();
                }
                Some(Run::Literal(_)) => {
                    groups -= 1;
                    self.load_next();
                }
                None => return,
            }
        }
    }
}

/// Builds a canonical compressed word stream: adjacent fills are merged,
/// full all-zero/all-one literal groups become fills, and a partial tail
/// group is always emitted as a literal (matching [`WahBitmap::compress`]).
struct WahAppender {
    len: usize,
    total_groups: u64,
    /// Bits in the final, partial group (0 when the last group is full).
    tail_bits: usize,
    groups: u64,
    words: Vec<u64>,
}

impl WahAppender {
    fn new(len: usize) -> Self {
        WahAppender {
            len,
            total_groups: len.div_ceil(GROUP_BITS) as u64,
            tail_bits: len % GROUP_BITS,
            groups: 0,
            words: Vec::new(),
        }
    }

    fn remaining(&self) -> u64 {
        self.total_groups - self.groups
    }

    fn fill(&mut self, value: bool, mut groups: u64) {
        if groups == 0 {
            return;
        }
        // Canonical form: the partial tail group is a literal, never part of
        // a fill.
        if self.tail_bits != 0 && self.groups + groups == self.total_groups {
            groups -= 1;
            self.fill(value, groups);
            let payload = if value {
                (1u64 << self.tail_bits) - 1
            } else {
                0
            };
            self.push_literal_word(payload);
            return;
        }
        while groups > 0 {
            if let Some(last) = self.words.last_mut() {
                if *last & LITERAL_FLAG == 0 && (*last & FILL_VALUE_FLAG != 0) == value {
                    let count = *last & MAX_FILL_LEN;
                    let add = groups.min(MAX_FILL_LEN - count);
                    if add > 0 {
                        *last += add;
                        self.groups += add;
                        groups -= add;
                        continue;
                    }
                }
            }
            let chunk = groups.min(MAX_FILL_LEN);
            let mut w = chunk;
            if value {
                w |= FILL_VALUE_FLAG;
            }
            self.words.push(w);
            self.groups += chunk;
            groups -= chunk;
        }
    }

    fn literal(&mut self, payload: u64) {
        let is_partial_tail = self.tail_bits != 0 && self.groups + 1 == self.total_groups;
        if is_partial_tail {
            // Mask payload bits beyond the tail, which merging non-canonical
            // (deserialized) operands may produce.
            self.push_literal_word(payload & ((1u64 << self.tail_bits) - 1));
        } else if payload == 0 {
            self.fill(false, 1);
        } else if payload == FULL_GROUP {
            self.fill(true, 1);
        } else {
            self.push_literal_word(payload);
        }
    }

    fn push_literal_word(&mut self, payload: u64) {
        self.words.push(LITERAL_FLAG | payload);
        self.groups += 1;
    }

    fn finish(self) -> WahBitmap {
        debug_assert_eq!(self.groups, self.total_groups, "appender under/overfilled");
        WahBitmap {
            len: self.len,
            words: self.words,
        }
    }
}

/// Iterator over the set-bit positions of a [`WahBitmap`], run by run.
#[derive(Debug)]
pub struct WahOnes<'a> {
    words: &'a [u64],
    word_idx: usize,
    len: usize,
    /// Bit position of the next undecoded group.
    group_start: usize,
    /// Remaining payload bits of the current literal group.
    literal: u64,
    literal_base: usize,
    /// Current one-fill run, as a half-open position range.
    run_pos: usize,
    run_end: usize,
}

impl Iterator for WahOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.run_pos < self.run_end {
                let position = self.run_pos;
                self.run_pos += 1;
                return Some(position);
            }
            if self.literal != 0 {
                let bit = self.literal.trailing_zeros() as usize;
                self.literal &= self.literal - 1;
                return Some(self.literal_base + bit);
            }
            let &word = self.words.get(self.word_idx)?;
            self.word_idx += 1;
            match decode_word(word) {
                Run::Literal(payload) => {
                    // Mask bits beyond `len`, which non-canonical
                    // (deserialized) tail literals may carry.
                    let valid = self.len.saturating_sub(self.group_start).min(GROUP_BITS);
                    self.literal = payload & (FULL_GROUP >> (GROUP_BITS - valid));
                    self.literal_base = self.group_start;
                    self.group_start += GROUP_BITS;
                }
                Run::Fill { value, groups } => {
                    let start = self.group_start;
                    self.group_start += groups as usize * GROUP_BITS;
                    if value {
                        self.run_pos = start;
                        self.run_end = self.group_start.min(self.len);
                    }
                }
            }
        }
    }
}

fn read_group(bitmap: &Bitmap, group_idx: usize) -> u64 {
    let start = group_idx * GROUP_BITS;
    let end = (start + GROUP_BITS).min(bitmap.len());
    let mut g = 0u64;
    // Fast path over whole words would be possible; clarity wins here because
    // compression happens only at index-build time in examples/tests.
    let words = bitmap.words();
    for (offset, idx) in (start..end).enumerate() {
        if (words[idx / 64] >> (idx % 64)) & 1 == 1 {
            g |= 1 << offset;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_sparse() {
        let b = Bitmap::from_positions(10_000, [0, 5_000, 9_999]);
        let w = WahBitmap::compress(&b);
        assert_eq!(w.decompress(), b);
        assert_eq!(w.count_ones(), 3);
        assert_eq!(w.len(), 10_000);
        assert!(!w.is_empty());
        // A sparse bitmap compresses well.
        assert!(w.compression_ratio() > 10.0, "{}", w.compression_ratio());
    }

    #[test]
    fn roundtrip_dense() {
        let b = Bitmap::ones(5_000);
        let w = WahBitmap::compress(&b);
        assert_eq!(w.decompress(), b);
        assert_eq!(w.count_ones(), 5_000);
        assert!(w.size_bytes() < 64);
    }

    #[test]
    fn roundtrip_alternating_is_incompressible() {
        let b = Bitmap::from_positions(1_000, (0..1_000).filter(|i| i % 2 == 0));
        let w = WahBitmap::compress(&b);
        assert_eq!(w.decompress(), b);
        // Alternating bits are all literals; ratio close to the 63/64 overhead.
        assert!(w.compression_ratio() < 1.1);
    }

    #[test]
    fn empty_and_tiny_bitmaps() {
        for len in [0usize, 1, 62, 63, 64, 65, 126, 127] {
            let b = Bitmap::from_positions(len, (0..len).filter(|i| i % 7 == 0));
            let w = WahBitmap::compress(&b);
            assert_eq!(w.decompress(), b, "len={len}");
            assert_eq!(w.count_ones(), b.count_ones(), "len={len}");
        }
    }

    #[test]
    fn compressed_and() {
        let a = Bitmap::from_positions(500, (0..500).filter(|i| i % 3 == 0));
        let b = Bitmap::from_positions(500, (0..500).filter(|i| i % 5 == 0));
        let wa = WahBitmap::compress(&a);
        let wb = WahBitmap::compress(&b);
        assert_eq!(wa.and(&wb).decompress(), a.and(&b));
    }

    #[test]
    fn compressed_ops_are_canonical() {
        // The result of a compressed-domain operation is structurally equal
        // to compressing the plain result — fills merged, partial tail
        // literal — so Eq on WahBitmap is logical equality.
        for len in [0usize, 1, 63, 64, 126, 1_000, 4_096] {
            let a = Bitmap::from_positions(len, (0..len).filter(|i| i % 3 == 0));
            let b = Bitmap::from_positions(len, (0..len).filter(|i| (500..900).contains(i)));
            let (wa, wb) = (WahBitmap::compress(&a), WahBitmap::compress(&b));
            assert_eq!(
                wa.and(&wb),
                WahBitmap::compress(&a.and(&b)),
                "and len={len}"
            );
            assert_eq!(wa.or(&wb), WahBitmap::compress(&a.or(&b)), "or len={len}");
        }
    }

    #[test]
    fn compressed_and_many_skips_zero_fills() {
        let n = 100_000;
        let sparse = Bitmap::from_positions(n, [10, 50_000, 99_999]);
        let runs = Bitmap::from_positions(n, (40_000..60_000).chain(99_000..n));
        let all = Bitmap::ones(n);
        let expected = Bitmap::and_many(&[&sparse, &runs, &all]);
        let compressed: Vec<WahBitmap> = [&sparse, &runs, &all]
            .iter()
            .map(|b| WahBitmap::compress(b))
            .collect();
        let refs: Vec<&WahBitmap> = compressed.iter().collect();
        let result = WahBitmap::and_many(&refs);
        assert_eq!(result.decompress(), expected);
        // Intersection of a 3-hit bitmap stays tiny in compressed form.
        assert!(result.size_bytes() < 100, "{}", result.size_bytes());
    }

    #[test]
    fn compressed_or_many_matches_plain() {
        let n = 10_000;
        let a = Bitmap::from_positions(n, (0..n).filter(|i| i % 97 == 0));
        let b = Bitmap::from_positions(n, 3_000..5_000);
        let c = Bitmap::new(n);
        let compressed: Vec<WahBitmap> = [&a, &b, &c]
            .iter()
            .map(|x| WahBitmap::compress(x))
            .collect();
        let refs: Vec<&WahBitmap> = compressed.iter().collect();
        assert_eq!(WahBitmap::or_many(&refs).decompress(), a.or(&b).or(&c));
    }

    #[test]
    fn iter_ones_walks_runs_in_order() {
        let n = 5_000;
        let positions: Vec<usize> = (0..n)
            .filter(|i| *i < 3 || (1_000..1_200).contains(i) || *i == n - 1)
            .collect();
        let w = WahBitmap::compress(&Bitmap::from_positions(n, positions.iter().copied()));
        assert_eq!(w.iter_ones().collect::<Vec<_>>(), positions);
        assert_eq!(WahBitmap::compress(&Bitmap::new(0)).iter_ones().count(), 0);
        assert_eq!(
            WahBitmap::compress(&Bitmap::ones(130))
                .iter_ones()
                .collect::<Vec<_>>(),
            (0..130).collect::<Vec<_>>()
        );
    }

    #[test]
    fn density_and_boundaries() {
        assert_eq!(WahBitmap::compress(&Bitmap::new(0)).density(), 0.0);
        assert_eq!(WahBitmap::compress(&Bitmap::ones(77)).density(), 1.0);
        let half = Bitmap::from_positions(100, 0..50);
        assert!((WahBitmap::compress(&half).density() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn non_canonical_zero_length_fills_are_tolerated() {
        // Canonical compression never produces a fill of zero groups, but a
        // deserialized bitmap can carry one; Boolean ops must terminate and
        // still produce the canonical result.
        let b = Bitmap::from_positions(70, [1usize, 64]);
        let mut w = WahBitmap::compress(&b);
        w.words.insert(0, 0); // zero-length zero fill
        w.words.insert(1, FILL_VALUE_FLAG); // zero-length one fill
        assert_eq!(w.decompress(), b);
        let ones = WahBitmap::compress(&Bitmap::ones(70));
        assert_eq!(w.and(&ones), WahBitmap::compress(&b));
        let zeros = WahBitmap::compress(&Bitmap::new(70));
        assert_eq!(w.or(&zeros), WahBitmap::compress(&b));
        assert_eq!(w.iter_ones().collect::<Vec<_>>(), vec![1, 64]);
    }

    #[test]
    fn tail_literal_bits_beyond_len_are_masked() {
        // A deserialized tail literal may carry set bits beyond `len`;
        // queries and merges must ignore them like `decompress` does.
        let b = Bitmap::ones(70);
        let mut w = WahBitmap::compress(&b);
        let last = w.words.len() - 1;
        assert_ne!(w.words[last] & LITERAL_FLAG, 0, "tail group is a literal");
        w.words[last] = LITERAL_FLAG | FULL_GROUP; // junk bits 70..126
        assert_eq!(w.decompress(), b);
        assert_eq!(w.count_ones(), 70);
        assert_eq!(
            w.iter_ones().collect::<Vec<_>>(),
            (0..70).collect::<Vec<_>>()
        );
        let zeros = WahBitmap::compress(&Bitmap::new(70));
        assert_eq!(w.or(&zeros), WahBitmap::compress(&b));
    }

    #[test]
    fn truncated_word_streams_read_as_zeros() {
        // A deserialized WahBitmap whose words cover fewer groups than `len`
        // reads as zeros past the last run — the same behaviour as
        // `decompress` — instead of panicking mid-merge.
        let b = Bitmap::from_positions(126, [1usize, 5]);
        let mut w = WahBitmap::compress(&b);
        w.words.truncate(1); // drop the trailing zero fill
        let expected = WahBitmap::compress(&b);
        assert_eq!(w.decompress(), b);
        assert_eq!(w.and(&WahBitmap::compress(&Bitmap::ones(126))), expected);
        assert_eq!(w.or(&WahBitmap::compress(&Bitmap::new(126))), expected);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_many_rejects_length_mismatch() {
        let a = WahBitmap::compress(&Bitmap::new(10));
        let b = WahBitmap::compress(&Bitmap::new(11));
        let _ = WahBitmap::and_many(&[&a, &b]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    /// A bitmap drawn from a mix of shapes that exercises every WAH run
    /// kind: all-zero, all-one, random at a given density, and clustered
    /// runs of ones over a zero background.
    fn arb_shaped_bitmap(max_len: usize) -> impl Strategy<Value = Bitmap> {
        (
            (0usize..max_len, 0u8..4),
            (0usize..max_len, 0usize..max_len, 0u64..1_000),
        )
            .prop_map(|((len, shape), (run_start, run_len, seed))| {
                crate::test_shapes::shaped_bitmap(len, shape, run_start, run_len, seed)
            })
    }

    proptest! {
        /// Compression is lossless for arbitrary bit patterns and lengths.
        #[test]
        fn prop_roundtrip(
            len in 0usize..2_000,
            seed_positions in proptest::collection::vec(0usize..2_000, 0..200),
            run_start in 0usize..2_000,
            run_len in 0usize..500,
        ) {
            let mut b = Bitmap::new(len);
            for &p in &seed_positions {
                if p < len {
                    b.set(p, true);
                }
            }
            // Add a dense run to exercise one-fills.
            for p in run_start..(run_start + run_len).min(len) {
                b.set(p, true);
            }
            let w = WahBitmap::compress(&b);
            prop_assert_eq!(w.decompress(), b.clone());
            prop_assert_eq!(w.count_ones(), b.count_ones());
        }

        /// Round-trip over the shaped generator, covering all-zero and
        /// all-one runs explicitly.
        #[test]
        fn prop_shaped_roundtrip(b in arb_shaped_bitmap(1_500)) {
            let w = WahBitmap::compress(&b);
            prop_assert_eq!(w.decompress(), b.clone());
            prop_assert_eq!(w.count_ones(), b.count_ones());
            prop_assert_eq!(w.iter_ones().collect::<Vec<_>>(),
                            b.iter_ones().collect::<Vec<_>>());
        }

        /// Compressed-domain multi-way AND agrees with the plain-domain
        /// ground truth after decompression, for random densities including
        /// all-zero/all-one runs; OR and canonicality ride along.
        #[test]
        fn prop_and_many_matches_plain(
            len in 1usize..800,
            shapes in proptest::collection::vec((0u8..4, 0usize..800, 0usize..800, 0u64..1_000), 1..5),
        ) {
            let plain: Vec<Bitmap> = shapes
                .into_iter()
                .map(|(shape, run_start, run_len, seed)| {
                    crate::test_shapes::shaped_bitmap(len, shape, run_start, run_len, seed)
                })
                .collect();
            let plain_refs: Vec<&Bitmap> = plain.iter().collect();
            let compressed: Vec<WahBitmap> = plain.iter().map(WahBitmap::compress).collect();
            let refs: Vec<&WahBitmap> = compressed.iter().collect();

            let and = WahBitmap::and_many(&refs);
            let expected_and = Bitmap::and_many(&plain_refs);
            prop_assert_eq!(and.decompress(), expected_and.clone());
            prop_assert_eq!(and, WahBitmap::compress(&expected_and));

            let or = WahBitmap::or_many(&refs);
            let expected_or = plain[1..]
                .iter()
                .fold(plain[0].clone(), |acc, b| acc.or(b));
            prop_assert_eq!(or.decompress(), expected_or.clone());
            prop_assert_eq!(or, WahBitmap::compress(&expected_or));
        }
    }
}
