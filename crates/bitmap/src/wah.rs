//! Word-aligned hybrid (WAH-style) bitmap compression.
//!
//! The paper notes that the storage overhead of simple bitmap indices "may be
//! reduced by compressing the bitmaps".  This module provides a 64-bit
//! word-aligned hybrid scheme: runs of all-zero or all-one 63-bit groups are
//! collapsed into fill words, everything else is stored as literal words.
//! The compressed form supports loss-free round-tripping and an AND operation
//! that works directly on the compressed representation via iteration.

use serde::{Deserialize, Serialize};

use crate::bitvec::Bitmap;

const GROUP_BITS: usize = 63;
const LITERAL_FLAG: u64 = 1 << 63;
const FILL_VALUE_FLAG: u64 = 1 << 62;
const MAX_FILL_LEN: u64 = (1 << 62) - 1;

/// A WAH-compressed bitmap.
///
/// Words are either *literals* (top bit set; low 63 bits are payload) or
/// *fills* (top bit clear; bit 62 is the fill value, low 62 bits the number of
/// consecutive 63-bit groups with that value).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WahBitmap {
    len: usize,
    words: Vec<u64>,
}

impl WahBitmap {
    /// Compresses an uncompressed bitmap.
    #[must_use]
    pub fn compress(bitmap: &Bitmap) -> Self {
        let len = bitmap.len();
        let mut words = Vec::new();
        let mut pending_fill: Option<(bool, u64)> = None;

        let flush_fill = |words: &mut Vec<u64>, fill: &mut Option<(bool, u64)>| {
            if let Some((value, count)) = fill.take() {
                let mut remaining = count;
                while remaining > 0 {
                    let chunk = remaining.min(MAX_FILL_LEN);
                    let mut w = chunk;
                    if value {
                        w |= FILL_VALUE_FLAG;
                    }
                    words.push(w);
                    remaining -= chunk;
                }
            }
        };

        for group_idx in 0..len.div_ceil(GROUP_BITS) {
            let group = read_group(bitmap, group_idx);
            let group_len = (len - group_idx * GROUP_BITS).min(GROUP_BITS);
            let full_mask = if group_len == GROUP_BITS {
                (1u64 << GROUP_BITS) - 1
            } else {
                (1u64 << group_len) - 1
            };
            let is_last_partial = group_len < GROUP_BITS;

            if !is_last_partial && group == 0 {
                match &mut pending_fill {
                    Some((false, c)) => *c += 1,
                    _ => {
                        flush_fill(&mut words, &mut pending_fill);
                        pending_fill = Some((false, 1));
                    }
                }
            } else if !is_last_partial && group == full_mask {
                match &mut pending_fill {
                    Some((true, c)) => *c += 1,
                    _ => {
                        flush_fill(&mut words, &mut pending_fill);
                        pending_fill = Some((true, 1));
                    }
                }
            } else {
                flush_fill(&mut words, &mut pending_fill);
                words.push(LITERAL_FLAG | group);
            }
        }
        flush_fill(&mut words, &mut pending_fill);
        WahBitmap { len, words }
    }

    /// Decompresses back into an uncompressed bitmap.
    #[must_use]
    pub fn decompress(&self) -> Bitmap {
        let mut out = Bitmap::new(self.len);
        let mut bit_pos = 0usize;
        for &w in &self.words {
            if w & LITERAL_FLAG != 0 {
                let payload = w & !LITERAL_FLAG;
                let group_len = (self.len - bit_pos).min(GROUP_BITS);
                for i in 0..group_len {
                    if (payload >> i) & 1 == 1 {
                        out.set(bit_pos + i, true);
                    }
                }
                bit_pos += group_len;
            } else {
                let value = w & FILL_VALUE_FLAG != 0;
                let groups = (w & MAX_FILL_LEN) as usize;
                let bits = groups * GROUP_BITS;
                if value {
                    for i in 0..bits.min(self.len - bit_pos) {
                        out.set(bit_pos + i, true);
                    }
                }
                bit_pos += bits;
            }
        }
        out
    }

    /// Number of rows covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when covering zero rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits (computed without full decompression).
    #[must_use]
    pub fn count_ones(&self) -> usize {
        let mut count = 0usize;
        let mut bit_pos = 0usize;
        for &w in &self.words {
            if w & LITERAL_FLAG != 0 {
                count += (w & !LITERAL_FLAG).count_ones() as usize;
                bit_pos += GROUP_BITS.min(self.len - bit_pos);
            } else {
                let groups = (w & MAX_FILL_LEN) as usize;
                let bits = (groups * GROUP_BITS).min(self.len - bit_pos);
                if w & FILL_VALUE_FLAG != 0 {
                    count += bits;
                }
                bit_pos += bits;
            }
        }
        count
    }

    /// Compressed size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Compression ratio relative to the uncompressed representation
    /// (values > 1 mean the compressed form is smaller).
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        let uncompressed = self.len.div_ceil(8).max(1);
        uncompressed as f64 / self.size_bytes().max(1) as f64
    }

    /// Logical AND of two compressed bitmaps (decompress-free semantics are
    /// not required by the simulator, so this uses the simple decompress
    /// path; it exists so callers can stay in the compressed domain).
    #[must_use]
    pub fn and(&self, other: &WahBitmap) -> WahBitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        WahBitmap::compress(&self.decompress().and(&other.decompress()))
    }
}

fn read_group(bitmap: &Bitmap, group_idx: usize) -> u64 {
    let start = group_idx * GROUP_BITS;
    let end = (start + GROUP_BITS).min(bitmap.len());
    let mut g = 0u64;
    // Fast path over whole words would be possible; clarity wins here because
    // compression happens only at index-build time in examples/tests.
    let words = bitmap.words();
    for (offset, idx) in (start..end).enumerate() {
        if (words[idx / 64] >> (idx % 64)) & 1 == 1 {
            g |= 1 << offset;
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_sparse() {
        let b = Bitmap::from_positions(10_000, [0, 5_000, 9_999]);
        let w = WahBitmap::compress(&b);
        assert_eq!(w.decompress(), b);
        assert_eq!(w.count_ones(), 3);
        assert_eq!(w.len(), 10_000);
        assert!(!w.is_empty());
        // A sparse bitmap compresses well.
        assert!(w.compression_ratio() > 10.0, "{}", w.compression_ratio());
    }

    #[test]
    fn roundtrip_dense() {
        let b = Bitmap::ones(5_000);
        let w = WahBitmap::compress(&b);
        assert_eq!(w.decompress(), b);
        assert_eq!(w.count_ones(), 5_000);
        assert!(w.size_bytes() < 64);
    }

    #[test]
    fn roundtrip_alternating_is_incompressible() {
        let b = Bitmap::from_positions(1_000, (0..1_000).filter(|i| i % 2 == 0));
        let w = WahBitmap::compress(&b);
        assert_eq!(w.decompress(), b);
        // Alternating bits are all literals; ratio close to the 63/64 overhead.
        assert!(w.compression_ratio() < 1.1);
    }

    #[test]
    fn empty_and_tiny_bitmaps() {
        for len in [0usize, 1, 62, 63, 64, 65, 126, 127] {
            let b = Bitmap::from_positions(len, (0..len).filter(|i| i % 7 == 0));
            let w = WahBitmap::compress(&b);
            assert_eq!(w.decompress(), b, "len={len}");
            assert_eq!(w.count_ones(), b.count_ones(), "len={len}");
        }
    }

    #[test]
    fn compressed_and() {
        let a = Bitmap::from_positions(500, (0..500).filter(|i| i % 3 == 0));
        let b = Bitmap::from_positions(500, (0..500).filter(|i| i % 5 == 0));
        let wa = WahBitmap::compress(&a);
        let wb = WahBitmap::compress(&b);
        assert_eq!(wa.and(&wb).decompress(), a.and(&b));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Compression is lossless for arbitrary bit patterns and lengths.
        #[test]
        fn prop_roundtrip(
            len in 0usize..2_000,
            seed_positions in proptest::collection::vec(0usize..2_000, 0..200),
            run_start in 0usize..2_000,
            run_len in 0usize..500,
        ) {
            let mut b = Bitmap::new(len);
            for &p in &seed_positions {
                if p < len {
                    b.set(p, true);
                }
            }
            // Add a dense run to exercise one-fills.
            for p in run_start..(run_start + run_len).min(len) {
                b.set(p, true);
            }
            let w = WahBitmap::compress(&b);
            prop_assert_eq!(w.decompress(), b.clone());
            prop_assert_eq!(w.count_ones(), b.count_ones());
        }
    }
}
