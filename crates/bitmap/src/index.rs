//! Logical description of the bitmap join indices of a star schema.
//!
//! The cost model and the simulator do not need materialised bitmaps for the
//! full-size warehouse (a single bitmap is 223 MB); they need to know *how
//! many* bitmaps exist per dimension, *how many must be read* for a selection
//! on a given hierarchy level, and *how many can be eliminated* under a given
//! fragmentation.  [`IndexCatalog`] answers those questions.
//!
//! Following §3.2 of the paper, the default catalog uses hierarchically
//! encoded bitmap join indices for the high-cardinality dimensions (PRODUCT:
//! 15 bitmaps, CUSTOMER: 12) and simple bitmap indices — one bitmap per value
//! of every hierarchy level — for the low-cardinality dimensions (TIME: up to
//! 34, CHANNEL: 15), for a maximum of 76 bitmaps.

use serde::{Deserialize, Serialize};

use schema::StarSchema;

use crate::encoding::HierarchicalEncoding;

/// The kind of bitmap join index maintained for a dimension.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BitmapIndexKind {
    /// One bitmap per attribute value, for every hierarchy level.
    Simple,
    /// A hierarchically encoded index with `ceil(log2(fanout))` bitmaps per
    /// level (Table 1).
    Encoded(HierarchicalEncoding),
}

/// The bitmap join index of one dimension.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BitmapIndexSpec {
    dimension: usize,
    kind: BitmapIndexKind,
    /// Total cardinality per hierarchy level (coarsest first), cached from the
    /// schema so the spec is self-contained.
    level_cardinalities: Vec<u64>,
}

impl BitmapIndexSpec {
    /// Builds a simple bitmap index spec for dimension `dimension`.
    #[must_use]
    pub fn simple(schema: &StarSchema, dimension: usize) -> Self {
        let dim = &schema.dimensions()[dimension];
        BitmapIndexSpec {
            dimension,
            kind: BitmapIndexKind::Simple,
            level_cardinalities: (0..dim.hierarchy().depth())
                .map(|l| dim.level_cardinality(l))
                .collect(),
        }
    }

    /// Builds an encoded bitmap index spec for dimension `dimension`.
    #[must_use]
    pub fn encoded(schema: &StarSchema, dimension: usize) -> Self {
        let dim = &schema.dimensions()[dimension];
        BitmapIndexSpec {
            dimension,
            kind: BitmapIndexKind::Encoded(HierarchicalEncoding::for_hierarchy(dim.hierarchy())),
            level_cardinalities: (0..dim.hierarchy().depth())
                .map(|l| dim.level_cardinality(l))
                .collect(),
        }
    }

    /// The dimension this index belongs to.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// The index kind.
    #[must_use]
    pub fn kind(&self) -> &BitmapIndexKind {
        &self.kind
    }

    /// Number of hierarchy levels covered.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.level_cardinalities.len()
    }

    /// Total number of bitmaps maintained for this dimension.
    #[must_use]
    pub fn bitmap_count(&self) -> u64 {
        match &self.kind {
            BitmapIndexKind::Simple => self.level_cardinalities.iter().sum(),
            BitmapIndexKind::Encoded(e) => u64::from(e.total_bits()),
        }
    }

    /// Number of bitmaps that must be read to evaluate an exact-match
    /// selection on hierarchy level `level` (0 = coarsest).
    ///
    /// * Simple index: exactly one bitmap (the one for the selected value).
    /// * Encoded index: the prefix bitmaps of that level (Table 1 — e.g. 10 of
    ///   15 bitmaps to locate a product GROUP, all 15 for a CODE).
    #[must_use]
    pub fn bitmaps_for_selection(&self, level: usize) -> u64 {
        assert!(level < self.levels(), "level out of range");
        match &self.kind {
            BitmapIndexKind::Simple => 1,
            BitmapIndexKind::Encoded(e) => u64::from(e.prefix_bits(level)),
        }
    }

    /// Number of bitmaps of this index that become unnecessary when the
    /// dimension is a fragmentation dimension with fragmentation attribute at
    /// `frag_level`.
    ///
    /// Under MDHF, selections on the fragmentation attribute and on all
    /// *coarser* levels touch only complete fragments, so their bitmaps would
    /// contain only `1` bits and can be dropped (§4.2):
    ///
    /// * Simple index: the bitmaps of all levels `0..=frag_level`.
    /// * Encoded index: the prefix bits of `frag_level`.
    #[must_use]
    pub fn bitmaps_eliminated_by_fragmentation(&self, frag_level: usize) -> u64 {
        assert!(frag_level < self.levels(), "level out of range");
        match &self.kind {
            BitmapIndexKind::Simple => self.level_cardinalities[..=frag_level].iter().sum(),
            BitmapIndexKind::Encoded(e) => u64::from(e.prefix_bits(frag_level)),
        }
    }

    /// Number of bitmaps remaining under such a fragmentation.
    #[must_use]
    pub fn bitmaps_remaining_under_fragmentation(&self, frag_level: usize) -> u64 {
        self.bitmap_count() - self.bitmaps_eliminated_by_fragmentation(frag_level)
    }
}

/// The complete set of bitmap join indices of a star schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndexCatalog {
    specs: Vec<BitmapIndexSpec>,
}

impl IndexCatalog {
    /// Leaf-cardinality threshold above which the default catalog switches
    /// from simple to encoded indices (the paper encodes PRODUCT with 14 400
    /// codes and CUSTOMER with 1 440 stores, but keeps TIME with 24 months and
    /// CHANNEL with 15 channels simple).
    pub const ENCODING_THRESHOLD: u64 = 100;

    /// Builds the paper's default catalog for a schema: encoded indices for
    /// dimensions whose leaf cardinality exceeds
    /// [`Self::ENCODING_THRESHOLD`], simple indices otherwise.
    #[must_use]
    pub fn default_for(schema: &StarSchema) -> Self {
        let specs = schema
            .dimensions()
            .iter()
            .enumerate()
            .map(|(i, d)| {
                if d.cardinality() > Self::ENCODING_THRESHOLD {
                    BitmapIndexSpec::encoded(schema, i)
                } else {
                    BitmapIndexSpec::simple(schema, i)
                }
            })
            .collect();
        IndexCatalog { specs }
    }

    /// Builds a catalog from explicit per-dimension specs.
    ///
    /// # Panics
    ///
    /// Panics if the specs do not cover dimensions `0..n` exactly once, in
    /// order.
    #[must_use]
    pub fn from_specs(specs: Vec<BitmapIndexSpec>) -> Self {
        for (i, s) in specs.iter().enumerate() {
            assert_eq!(s.dimension(), i, "specs must cover dimensions in order");
        }
        IndexCatalog { specs }
    }

    /// Per-dimension index specs, in dimension order.
    #[must_use]
    pub fn specs(&self) -> &[BitmapIndexSpec] {
        &self.specs
    }

    /// The index spec of one dimension.
    #[must_use]
    pub fn spec(&self, dimension: usize) -> &BitmapIndexSpec {
        &self.specs[dimension]
    }

    /// Total number of bitmaps across all dimensions (76 for APB-1).
    #[must_use]
    pub fn total_bitmaps(&self) -> u64 {
        self.specs.iter().map(BitmapIndexSpec::bitmap_count).sum()
    }

    /// Total bitmaps remaining when the given `(dimension, frag_level)` pairs
    /// are fragmentation attributes (at most one entry per dimension).
    #[must_use]
    pub fn total_bitmaps_under_fragmentation(&self, frag_attrs: &[(usize, usize)]) -> u64 {
        let eliminated: u64 = frag_attrs
            .iter()
            .map(|&(dim, level)| self.specs[dim].bitmaps_eliminated_by_fragmentation(level))
            .sum();
        self.total_bitmaps() - eliminated
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::apb1::apb1_schema;

    #[test]
    fn default_catalog_matches_paper_counts() {
        let s = apb1_schema();
        let catalog = IndexCatalog::default_for(&s);
        let product = catalog.spec(s.dimension_index("product").unwrap());
        let customer = catalog.spec(s.dimension_index("customer").unwrap());
        let time = catalog.spec(s.dimension_index("time").unwrap());
        let channel = catalog.spec(s.dimension_index("channel").unwrap());

        assert!(matches!(product.kind(), BitmapIndexKind::Encoded(_)));
        assert!(matches!(customer.kind(), BitmapIndexKind::Encoded(_)));
        assert!(matches!(time.kind(), BitmapIndexKind::Simple));
        assert!(matches!(channel.kind(), BitmapIndexKind::Simple));

        assert_eq!(product.bitmap_count(), 15);
        assert_eq!(customer.bitmap_count(), 12);
        // TIME: 2 years + 8 quarters + 24 months = 34 bitmaps.
        assert_eq!(time.bitmap_count(), 34);
        assert_eq!(channel.bitmap_count(), 15);
        // "This results in a maximum of 76 bitmaps for our configuration."
        assert_eq!(catalog.total_bitmaps(), 76);
    }

    #[test]
    fn selection_costs() {
        let s = apb1_schema();
        let catalog = IndexCatalog::default_for(&s);
        let pd = s.dimension_index("product").unwrap();
        let td = s.dimension_index("time").unwrap();
        // Product code selection reads all 15 bitmaps; group only 10.
        assert_eq!(catalog.spec(pd).bitmaps_for_selection(5), 15);
        assert_eq!(catalog.spec(pd).bitmaps_for_selection(3), 10);
        assert_eq!(catalog.spec(pd).bitmaps_for_selection(0), 3);
        // Simple index: always exactly one bitmap.
        assert_eq!(catalog.spec(td).bitmaps_for_selection(2), 1);
        assert_eq!(catalog.spec(td).bitmaps_for_selection(0), 1);
    }

    #[test]
    fn fragmentation_eliminates_bitmaps_as_in_section_4_2() {
        let s = apb1_schema();
        let catalog = IndexCatalog::default_for(&s);
        let pd = s.dimension_index("product").unwrap();
        let td = s.dimension_index("time").unwrap();
        // F_MonthGroup = {time::month, product::group}:
        // - time is fragmented at its finest level, so all 34 TIME bitmaps go;
        // - product at group level saves the 10 prefix bitmaps.
        let frag = [(td, 2), (pd, 3)];
        assert_eq!(catalog.spec(td).bitmaps_eliminated_by_fragmentation(2), 34);
        assert_eq!(catalog.spec(pd).bitmaps_eliminated_by_fragmentation(3), 10);
        assert_eq!(catalog.spec(pd).bitmaps_remaining_under_fragmentation(3), 5);
        // "for F_MonthGroup at most 32 bitmaps are thus to be maintained"
        assert_eq!(catalog.total_bitmaps_under_fragmentation(&frag), 32);
    }

    #[test]
    fn explicit_catalog_construction() {
        let s = apb1_schema();
        let specs = (0..s.dimension_count())
            .map(|i| BitmapIndexSpec::simple(&s, i))
            .collect::<Vec<_>>();
        let catalog = IndexCatalog::from_specs(specs);
        // All-simple catalog: one bitmap per value per level of every
        // dimension, i.e. a huge number dominated by product codes.
        assert!(catalog.total_bitmaps() > 14_400);
        assert_eq!(catalog.specs().len(), 4);
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_specs_rejected() {
        let s = apb1_schema();
        let _ = IndexCatalog::from_specs(vec![BitmapIndexSpec::simple(&s, 1)]);
    }
}
