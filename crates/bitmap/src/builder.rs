//! Materialised fact tables and bitmap join indices (scaled-down scale).
//!
//! The full APB-1 fact table (1.87 billion rows) is never materialised — the
//! paper's simulator and our cost model work on cardinalities alone.  To make
//! sure the *logical* model (how many bitmaps, which rows match) is actually
//! correct, this module can generate a scaled-down fact table and build real
//! bitmap join indices over it.  Examples and integration tests compare
//! bitmap-driven star-join results against a brute-force scan.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use schema::StarSchema;

use crate::bitvec::Bitmap;
use crate::encoding::HierarchicalEncoding;
use crate::index::{BitmapIndexKind, BitmapIndexSpec, IndexCatalog};
use crate::repr::{BitmapRepr, ReprStats, RepresentationPolicy};

/// One materialised fact row: the leaf-level foreign key per dimension plus
/// the measure values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactRow {
    /// Leaf key per dimension, in schema dimension order.
    pub keys: Vec<u64>,
    /// Measure values, in schema measure order.
    pub measures: Vec<f64>,
}

/// A small, fully materialised fact table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MaterialisedFactTable {
    rows: Vec<FactRow>,
    dimension_cardinalities: Vec<u64>,
}

impl MaterialisedFactTable {
    /// Generates a fact table for `schema` deterministically from `seed`.
    ///
    /// Every possible combination of dimension leaf values is included with
    /// probability equal to the schema's density factor, using a splitmix-
    /// style hash of the combination index and the seed, so the same seed
    /// always produces the same table.  Measure values are derived from the
    /// same hash.
    ///
    /// # Panics
    ///
    /// Panics if the schema's dimension cross product exceeds 50 million
    /// combinations — this generator is for scaled-down schemas only.
    #[must_use]
    pub fn generate(schema: &StarSchema, seed: u64) -> Self {
        let combos = schema.max_fact_combinations();
        assert!(
            combos <= 50_000_000,
            "refusing to materialise {combos} combinations; use a scaled-down schema"
        );
        let cards: Vec<u64> = schema
            .dimensions()
            .iter()
            .map(schema::Dimension::cardinality)
            .collect();
        let density = schema.fact().density();
        let measures = schema.fact().measures().len().max(1);
        let mut rows = Vec::new();
        for combo in 0..combos {
            let h = mix(seed, combo);
            // Map the hash to [0, 1) and keep the combination with
            // probability `density`.
            let u = (h >> 11) as f64 / (1u64 << 53) as f64;
            if u < density {
                let keys = unrank(combo, &cards);
                let measure_values = (0..measures)
                    .map(|m| f64::from((mix(h, m as u64) % 1_000) as u32) + 1.0)
                    .collect();
                rows.push(FactRow {
                    keys,
                    measures: measure_values,
                });
            }
        }
        MaterialisedFactTable {
            rows,
            dimension_cardinalities: cards,
        }
    }

    /// Builds a table directly from rows — used to assemble per-fragment
    /// sub-tables when a generated table is partitioned under an MDHF
    /// fragmentation, so that real bitmap indices can be built fragment by
    /// fragment.
    ///
    /// # Panics
    ///
    /// Panics if a row's key arity does not match `dimension_cardinalities`
    /// or a key is outside its dimension's cardinality.
    #[must_use]
    pub fn from_rows(rows: Vec<FactRow>, dimension_cardinalities: Vec<u64>) -> Self {
        for row in &rows {
            assert_eq!(
                row.keys.len(),
                dimension_cardinalities.len(),
                "one leaf key per dimension required"
            );
            for (key, &card) in row.keys.iter().zip(&dimension_cardinalities) {
                assert!(*key < card, "leaf key {key} out of range (< {card})");
            }
        }
        MaterialisedFactTable {
            rows,
            dimension_cardinalities,
        }
    }

    /// The materialised rows.
    #[must_use]
    pub fn rows(&self) -> &[FactRow] {
        &self.rows
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if no rows were generated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Leaf cardinality per dimension, in schema order.
    #[must_use]
    pub fn dimension_cardinalities(&self) -> &[u64] {
        &self.dimension_cardinalities
    }

    /// Brute-force evaluation of a conjunction of leaf-range predicates:
    /// `predicates[d] = Some(range)` restricts dimension `d`'s leaf key to
    /// `range`.  Returns matching row indices — the ground truth the bitmap
    /// indices are validated against.
    #[must_use]
    pub fn scan(&self, predicates: &[Option<std::ops::Range<u64>>]) -> Vec<usize> {
        assert_eq!(predicates.len(), self.dimension_cardinalities.len());
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| {
                predicates
                    .iter()
                    .zip(&row.keys)
                    .all(|(p, k)| p.as_ref().is_none_or(|r| r.contains(k)))
            })
            .map(|(i, _)| i)
            .collect()
    }
}

/// Splitmix64-style mixing of `(seed, value)`.
fn mix(seed: u64, value: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(value)
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Converts a combination index into per-dimension leaf keys
/// (mixed-radix decomposition, last dimension varying fastest).
fn unrank(mut combo: u64, cards: &[u64]) -> Vec<u64> {
    let mut keys = vec![0u64; cards.len()];
    for (i, &c) in cards.iter().enumerate().rev() {
        keys[i] = combo % c;
        combo /= c;
    }
    keys
}

/// A materialised bitmap join index for one dimension of a
/// [`MaterialisedFactTable`].
///
/// Every bitmap is stored in its [`RepresentationPolicy`]-chosen
/// representation ([`BitmapRepr`]): under the default adaptive policy the
/// sparse per-value bitmaps of simple indices compress to WAH runs while
/// the ~50 %-density bit slices of encoded indices stay plain.
#[derive(Debug, Clone, PartialEq)]
pub struct MaterialisedIndex {
    dimension: usize,
    spec: BitmapIndexSpec,
    policy: RepresentationPolicy,
    /// For encoded indices: one bitmap per encoding bit (most significant /
    /// coarsest first).  For simple indices: bitmaps keyed by (level, value).
    encoded_bitmaps: Vec<BitmapRepr>,
    simple_bitmaps: BTreeMap<(usize, u64), BitmapRepr>,
    encoding: Option<HierarchicalEncoding>,
    schema: StarSchema,
}

impl MaterialisedIndex {
    /// Builds the bitmap join index for dimension `dimension` of `table`,
    /// using the index kind given by `catalog` and the default adaptive
    /// representation policy.
    #[must_use]
    pub fn build(
        schema: &StarSchema,
        catalog: &IndexCatalog,
        table: &MaterialisedFactTable,
        dimension: usize,
    ) -> Self {
        Self::build_with_policy(
            schema,
            catalog,
            table,
            dimension,
            RepresentationPolicy::default(),
        )
    }

    /// Builds the index with an explicit per-bitmap representation policy.
    #[must_use]
    pub fn build_with_policy(
        schema: &StarSchema,
        catalog: &IndexCatalog,
        table: &MaterialisedFactTable,
        dimension: usize,
        policy: RepresentationPolicy,
    ) -> Self {
        let spec = catalog.spec(dimension).clone();
        let n = table.len();
        let hierarchy = schema.dimensions()[dimension].hierarchy().clone();

        let mut encoded_bitmaps = Vec::new();
        let mut simple_bitmaps: BTreeMap<(usize, u64), BitmapRepr> = BTreeMap::new();
        let mut encoding = None;

        match spec.kind() {
            BitmapIndexKind::Encoded(enc) => {
                let total = enc.total_bits() as usize;
                let mut plain = vec![Bitmap::new(n); total];
                for (row_idx, row) in table.rows().iter().enumerate() {
                    let pattern = enc.encode_leaf(row.keys[dimension]);
                    for (bit, bitmap) in plain.iter_mut().enumerate() {
                        let shift = total - 1 - bit;
                        if (pattern >> shift) & 1 == 1 {
                            bitmap.set(row_idx, true);
                        }
                    }
                }
                encoded_bitmaps = plain
                    .into_iter()
                    .map(|b| BitmapRepr::from_bitmap(b, policy))
                    .collect();
                encoding = Some(enc.clone());
            }
            BitmapIndexKind::Simple => {
                let mut plain: BTreeMap<(usize, u64), Bitmap> = BTreeMap::new();
                for level in 0..hierarchy.depth() {
                    for value in 0..hierarchy.cardinality(level) {
                        plain.insert((level, value), Bitmap::new(n));
                    }
                }
                for (row_idx, row) in table.rows().iter().enumerate() {
                    let leaf = row.keys[dimension];
                    for level in 0..hierarchy.depth() {
                        let value = hierarchy.ancestor_of_leaf(leaf, level);
                        plain
                            .get_mut(&(level, value))
                            .expect("bitmap pre-created")
                            .set(row_idx, true);
                    }
                }
                simple_bitmaps = plain
                    .into_iter()
                    .map(|(key, b)| (key, BitmapRepr::from_bitmap(b, policy)))
                    .collect();
            }
        }

        MaterialisedIndex {
            dimension,
            spec,
            policy,
            encoded_bitmaps,
            simple_bitmaps,
            encoding,
            schema: schema.clone(),
        }
    }

    /// The dimension this index covers.
    #[must_use]
    pub fn dimension(&self) -> usize {
        self.dimension
    }

    /// The logical spec this index was built from.
    #[must_use]
    pub fn spec(&self) -> &BitmapIndexSpec {
        &self.spec
    }

    /// Number of physical bitmaps actually materialised.
    #[must_use]
    pub fn materialised_bitmap_count(&self) -> usize {
        if self.encoded_bitmaps.is_empty() {
            self.simple_bitmaps.len()
        } else {
            self.encoded_bitmaps.len()
        }
    }

    /// Returns the bitmap of fact rows matching `value` at hierarchy `level`
    /// (0 = coarsest) in its stored representation.
    ///
    /// For simple indices this is a clone of the stored (possibly
    /// compressed) per-value bitmap, so a query whose predicates all hit
    /// simple indices can intersect entirely in the compressed domain.  For
    /// encoded indices the selection is *computed* from the prefix bit
    /// slices and returned plain — re-compressing a query-time temporary
    /// would cost more than it saves.
    #[must_use]
    pub fn select_repr(&self, level: usize, value: u64) -> BitmapRepr {
        match self.spec.kind() {
            BitmapIndexKind::Simple => self
                .simple_bitmaps
                .get(&(level, value))
                .cloned()
                .unwrap_or_else(|| panic!("no bitmap for level {level} value {value}")),
            BitmapIndexKind::Encoded(_) => {
                let enc = self.encoding.as_ref().expect("encoded index has encoding");
                let n = self.encoded_bitmaps.first().map_or(0, BitmapRepr::len);
                let mut result = Bitmap::ones(n);
                for (bit, must_be_one) in enc.match_pattern(level, value) {
                    let bm = self.encoded_bitmaps[bit as usize].borrow_plain();
                    if must_be_one {
                        result.and_assign(&bm);
                    } else {
                        result.and_assign(&bm.not());
                    }
                }
                BitmapRepr::Plain(result)
            }
        }
    }

    /// Returns the selection of [`MaterialisedIndex::select_repr`] as a
    /// plain bitmap (decompressing if necessary).
    #[must_use]
    pub fn select(&self, level: usize, value: u64) -> Bitmap {
        self.select_repr(level, value).into_plain()
    }

    /// Number of bitmaps that a selection on `level` has to read — must equal
    /// [`BitmapIndexSpec::bitmaps_for_selection`].
    #[must_use]
    pub fn bitmaps_read_for_selection(&self, level: usize) -> u64 {
        self.spec.bitmaps_for_selection(level)
    }

    /// The representation policy the index was built with.
    #[must_use]
    pub fn policy(&self) -> RepresentationPolicy {
        self.policy
    }

    /// Storage statistics over every materialised bitmap: representation
    /// counts, measured `size_bytes()` and the verbatim baseline.
    #[must_use]
    pub fn repr_stats(&self) -> ReprStats {
        let mut stats = ReprStats::default();
        for repr in &self.encoded_bitmaps {
            stats.absorb(repr);
        }
        for repr in self.simple_bitmaps.values() {
            stats.absorb(repr);
        }
        stats
    }

    /// Measured physical size of the index in bytes, summed over the chosen
    /// representation of every bitmap.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.repr_stats().size_bytes
    }

    /// The schema the index was built against.
    #[must_use]
    pub fn schema(&self) -> &StarSchema {
        &self.schema
    }

    /// Borrowed view of the physical bitmaps backing this index, in the
    /// shape matching its [`BitmapIndexKind`].  This is the serialisation
    /// surface: a storage engine writes exactly these bitmaps (e.g. through
    /// [`crate::encode_bitmap_repr`]) and later reconstructs the index with
    /// [`MaterialisedIndex::from_stored_encoded`] /
    /// [`MaterialisedIndex::from_stored_simple`].
    #[must_use]
    pub fn stored_bitmaps(&self) -> StoredBitmaps<'_> {
        match self.spec.kind() {
            BitmapIndexKind::Encoded(_) => StoredBitmaps::Encoded(&self.encoded_bitmaps),
            BitmapIndexKind::Simple => StoredBitmaps::Simple(&self.simple_bitmaps),
        }
    }

    /// Reconstructs an *encoded* index for `dimension` from its stored bit
    /// slices (most significant / coarsest first), as previously exposed by
    /// [`MaterialisedIndex::stored_bitmaps`].
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch when `catalog` does not declare
    /// an encoded index for `dimension`, the slice count differs from the
    /// encoding's total bits, or the slices disagree on row count.
    pub fn from_stored_encoded(
        schema: &StarSchema,
        catalog: &IndexCatalog,
        dimension: usize,
        policy: RepresentationPolicy,
        bitmaps: Vec<BitmapRepr>,
    ) -> Result<Self, String> {
        let spec = catalog.spec(dimension).clone();
        let BitmapIndexKind::Encoded(enc) = spec.kind() else {
            return Err(format!(
                "catalog declares a simple index for dimension {dimension}, got encoded bitmaps"
            ));
        };
        let enc = enc.clone();
        if bitmaps.len() != enc.total_bits() as usize {
            return Err(format!(
                "encoded index for dimension {dimension} needs {} bit slices, got {}",
                enc.total_bits(),
                bitmaps.len()
            ));
        }
        let rows = bitmaps.first().map_or(0, BitmapRepr::len);
        if bitmaps.iter().any(|b| b.len() != rows) {
            return Err(format!(
                "bit slices of dimension {dimension} disagree on row count"
            ));
        }
        Ok(MaterialisedIndex {
            dimension,
            spec,
            policy,
            encoded_bitmaps: bitmaps,
            simple_bitmaps: BTreeMap::new(),
            encoding: Some(enc),
            schema: schema.clone(),
        })
    }

    /// Reconstructs a *simple* index for `dimension` from its stored
    /// per-`(level, value)` bitmaps, as previously exposed by
    /// [`MaterialisedIndex::stored_bitmaps`].
    ///
    /// # Errors
    ///
    /// Returns a description of the mismatch when `catalog` does not declare
    /// a simple index for `dimension`, the bitmap count differs from the
    /// spec, a key is outside the dimension hierarchy, or the bitmaps
    /// disagree on row count.
    pub fn from_stored_simple(
        schema: &StarSchema,
        catalog: &IndexCatalog,
        dimension: usize,
        policy: RepresentationPolicy,
        bitmaps: BTreeMap<(usize, u64), BitmapRepr>,
    ) -> Result<Self, String> {
        let spec = catalog.spec(dimension).clone();
        if !matches!(spec.kind(), BitmapIndexKind::Simple) {
            return Err(format!(
                "catalog declares an encoded index for dimension {dimension}, got simple bitmaps"
            ));
        }
        if bitmaps.len() as u64 != spec.bitmap_count() {
            return Err(format!(
                "simple index for dimension {dimension} needs {} bitmaps, got {}",
                spec.bitmap_count(),
                bitmaps.len()
            ));
        }
        let hierarchy = schema.dimensions()[dimension].hierarchy();
        let rows = bitmaps.values().next().map_or(0, BitmapRepr::len);
        for (&(level, value), bitmap) in &bitmaps {
            if level >= hierarchy.depth() || value >= hierarchy.cardinality(level) {
                return Err(format!(
                    "bitmap key (level {level}, value {value}) outside dimension {dimension}"
                ));
            }
            if bitmap.len() != rows {
                return Err(format!(
                    "bitmaps of dimension {dimension} disagree on row count"
                ));
            }
        }
        Ok(MaterialisedIndex {
            dimension,
            spec,
            policy,
            encoded_bitmaps: Vec::new(),
            simple_bitmaps: bitmaps,
            encoding: None,
            schema: schema.clone(),
        })
    }
}

/// Borrowed view of the physical bitmaps of a [`MaterialisedIndex`], shaped
/// by the index kind.
#[derive(Debug, Clone, Copy)]
pub enum StoredBitmaps<'a> {
    /// Encoded index: one bit slice per encoding bit, coarsest first.
    Encoded(&'a [BitmapRepr]),
    /// Simple index: one bitmap per `(level, value)` pair.
    Simple(&'a BTreeMap<(usize, u64), BitmapRepr>),
}

/// Evaluates a star query over a materialised table using bitmap indices:
/// intersects the selection bitmaps of all `(dimension, level, value)`
/// predicates and sums the requested measure over the matching rows.
///
/// This is the *reference implementation* of bitmap star-join evaluation
/// over the unfragmented table; the `exec` engine's fragmented, parallel
/// pipeline is cross-checked against it in the repository-level
/// integration tests.
///
/// Returns `(hit_count, measure_sum)`.
#[must_use]
pub fn evaluate_star_query(
    table: &MaterialisedFactTable,
    indices: &[MaterialisedIndex],
    predicates: &[(usize, usize, u64)],
    measure: usize,
) -> (usize, f64) {
    let n = table.len();
    let mut result = Bitmap::ones(n);
    for &(dim, level, value) in predicates {
        let index = indices
            .iter()
            .find(|i| i.dimension() == dim)
            .expect("index exists for predicate dimension");
        result.and_assign(&index.select(level, value));
    }
    let mut sum = 0.0;
    let mut hits = 0usize;
    for row_idx in result.iter_ones() {
        hits += 1;
        sum += table.rows()[row_idx].measures[measure];
    }
    (hits, sum)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::apb1::apb1_scaled_down;

    fn setup() -> (
        StarSchema,
        MaterialisedFactTable,
        IndexCatalog,
        Vec<MaterialisedIndex>,
    ) {
        let schema = apb1_scaled_down();
        let table = MaterialisedFactTable::generate(&schema, 42);
        let catalog = IndexCatalog::default_for(&schema);
        let indices = (0..schema.dimension_count())
            .map(|d| MaterialisedIndex::build(&schema, &catalog, &table, d))
            .collect();
        (schema, table, catalog, indices)
    }

    #[test]
    fn generation_is_deterministic_and_respects_density() {
        let schema = apb1_scaled_down();
        let t1 = MaterialisedFactTable::generate(&schema, 7);
        let t2 = MaterialisedFactTable::generate(&schema, 7);
        assert_eq!(t1, t2);
        let t3 = MaterialisedFactTable::generate(&schema, 8);
        assert_ne!(t1, t3);

        let combos = schema.max_fact_combinations() as f64;
        let expected = combos * schema.fact().density();
        let actual = t1.len() as f64;
        // Within 15 % of the expected density (binomial fluctuation).
        assert!(
            (actual - expected).abs() / expected < 0.15,
            "expected ~{expected}, got {actual}"
        );
        assert!(!t1.is_empty());
        assert_eq!(t1.dimension_cardinalities().len(), 4);
    }

    #[test]
    fn keys_are_within_cardinalities() {
        let (schema, table, _, _) = setup();
        for row in table.rows() {
            assert_eq!(row.keys.len(), schema.dimension_count());
            for (d, &k) in row.keys.iter().enumerate() {
                assert!(k < schema.dimensions()[d].cardinality());
            }
            assert_eq!(row.measures.len(), 3);
            assert!(row.measures.iter().all(|&m| m >= 1.0));
        }
    }

    #[test]
    fn bitmap_selection_matches_scan_at_leaf_level() {
        let (schema, table, _, indices) = setup();
        let product = schema.dimension_index("product").unwrap();
        let hierarchy = schema.dimensions()[product].hierarchy();
        let leaf_level = hierarchy.finest_level();
        for value in [0u64, 7, 59, 119] {
            let bitmap_rows: Vec<usize> = indices[product]
                .select(leaf_level, value)
                .iter_ones()
                .collect();
            let mut preds = vec![None, None, None, None];
            preds[product] = Some(value..value + 1);
            let scan_rows = table.scan(&preds);
            assert_eq!(bitmap_rows, scan_rows, "value {value}");
        }
    }

    #[test]
    fn bitmap_selection_matches_scan_at_inner_levels() {
        let (schema, table, _, indices) = setup();
        for (dim_name, level_name) in [
            ("product", "group"),
            ("product", "division"),
            ("customer", "retailer"),
            ("time", "quarter"),
            ("time", "year"),
            ("channel", "channel"),
        ] {
            let dim = schema.dimension_index(dim_name).unwrap();
            let attr = schema.attr(dim_name, level_name).unwrap();
            let hierarchy = schema.dimensions()[dim].hierarchy();
            let card = hierarchy.cardinality(attr.level);
            for value in 0..card.min(4) {
                let bitmap_rows: Vec<usize> =
                    indices[dim].select(attr.level, value).iter_ones().collect();
                let range = hierarchy.leaf_range_of(attr.level, value);
                let mut preds = vec![None, None, None, None];
                preds[dim] = Some(range);
                let scan_rows = table.scan(&preds);
                assert_eq!(bitmap_rows, scan_rows, "{dim_name}::{level_name}={value}");
            }
        }
    }

    #[test]
    fn star_query_matches_brute_force() {
        let (schema, table, _, indices) = setup();
        let product = schema.dimension_index("product").unwrap();
        let time = schema.dimension_index("time").unwrap();
        let group = schema.attr("product", "group").unwrap();
        let month = schema.attr("time", "month").unwrap();

        // 1MONTH1GROUP-style query on the scaled schema.
        let (hits, sum) = evaluate_star_query(
            &table,
            &indices,
            &[(product, group.level, 1), (time, month.level, 3)],
            0,
        );
        let p_hier = schema.dimensions()[product].hierarchy();
        let mut preds = vec![None, None, None, None];
        preds[product] = Some(p_hier.leaf_range_of(group.level, 1));
        preds[time] = Some(3..4);
        let expected = table.scan(&preds);
        assert_eq!(hits, expected.len());
        let expected_sum: f64 = expected.iter().map(|&i| table.rows()[i].measures[0]).sum();
        assert!((sum - expected_sum).abs() < 1e-9);
    }

    #[test]
    fn materialised_counts_match_logical_spec() {
        let (schema, _, catalog, indices) = setup();
        for idx in &indices {
            assert_eq!(
                idx.materialised_bitmap_count() as u64,
                catalog.spec(idx.dimension()).bitmap_count()
            );
            let finest = schema.dimensions()[idx.dimension()]
                .hierarchy()
                .finest_level();
            assert_eq!(
                idx.bitmaps_read_for_selection(finest),
                catalog.spec(idx.dimension()).bitmaps_for_selection(finest)
            );
        }
    }

    #[test]
    fn representations_do_not_change_selections() {
        let (schema, table, catalog, _) = setup();
        let time = schema.dimension_index("time").unwrap();
        let product = schema.dimension_index("product").unwrap();
        let baseline = MaterialisedIndex::build_with_policy(
            &schema,
            &catalog,
            &table,
            time,
            RepresentationPolicy::Plain,
        );
        for policy in [RepresentationPolicy::Wah, RepresentationPolicy::default()] {
            for dimension in [time, product] {
                let reference_index =
                    MaterialisedIndex::build(&schema, &catalog, &table, dimension);
                let index = MaterialisedIndex::build_with_policy(
                    &schema, &catalog, &table, dimension, policy,
                );
                assert_eq!(index.policy(), policy);
                let hierarchy = schema.dimensions()[dimension].hierarchy();
                for level in 0..hierarchy.depth() {
                    for value in 0..hierarchy.cardinality(level).min(3) {
                        let reference = reference_index.select(level, value);
                        assert_eq!(index.select(level, value), reference, "{policy:?}");
                        assert_eq!(
                            index.select_repr(level, value).to_plain(),
                            reference,
                            "{policy:?}"
                        );
                    }
                }
            }
        }
        // The forced-WAH time index stores every bitmap compressed; its
        // stats reflect the chosen representation's measured bytes.
        let wah_time = MaterialisedIndex::build_with_policy(
            &schema,
            &catalog,
            &table,
            time,
            RepresentationPolicy::Wah,
        );
        let stats = wah_time.repr_stats();
        assert_eq!(stats.bitmaps, wah_time.materialised_bitmap_count());
        assert_eq!(stats.compressed, stats.bitmaps);
        assert_eq!(wah_time.size_bytes(), stats.size_bytes);
        assert_eq!(
            baseline.repr_stats().plain_size_bytes,
            stats.plain_size_bytes
        );
    }

    #[test]
    fn from_rows_roundtrips_and_scans() {
        let (schema, table, catalog, _) = setup();
        let rebuilt = MaterialisedFactTable::from_rows(
            table.rows().to_vec(),
            table.dimension_cardinalities().to_vec(),
        );
        assert_eq!(rebuilt, table);
        // Indices built over a from_rows table behave identically.
        let product = schema.dimension_index("product").unwrap();
        let index = MaterialisedIndex::build(&schema, &catalog, &rebuilt, product);
        let leaf = schema.dimensions()[product].hierarchy().finest_level();
        let mut preds = vec![None, None, None, None];
        preds[product] = Some(7..8);
        assert_eq!(
            index.select(leaf, 7).iter_ones().collect::<Vec<_>>(),
            rebuilt.scan(&preds)
        );
        // An empty sub-table is valid (empty fragments exist under sparse data).
        let empty =
            MaterialisedFactTable::from_rows(vec![], table.dimension_cardinalities().to_vec());
        assert!(empty.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_rows_rejects_out_of_range_keys() {
        let _ = MaterialisedFactTable::from_rows(
            vec![FactRow {
                keys: vec![5, 0],
                measures: vec![1.0],
            }],
            vec![3, 10],
        );
    }

    #[test]
    fn stored_bitmaps_roundtrip_reconstruction() {
        let (schema, _, catalog, indices) = setup();
        for idx in &indices {
            let rebuilt = match idx.stored_bitmaps() {
                StoredBitmaps::Encoded(slices) => MaterialisedIndex::from_stored_encoded(
                    &schema,
                    &catalog,
                    idx.dimension(),
                    idx.policy(),
                    slices.to_vec(),
                ),
                StoredBitmaps::Simple(map) => MaterialisedIndex::from_stored_simple(
                    &schema,
                    &catalog,
                    idx.dimension(),
                    idx.policy(),
                    map.clone(),
                ),
            }
            .expect("reconstruction succeeds");
            assert_eq!(&rebuilt, idx);
        }
    }

    #[test]
    fn from_stored_rejects_shape_mismatches() {
        let (schema, _, catalog, indices) = setup();
        // Dimension 0 (product) defaults to an encoded index; feeding it
        // simple bitmaps (and vice versa) must fail, as must a wrong count.
        let encoded_dim = indices
            .iter()
            .find(|i| matches!(i.stored_bitmaps(), StoredBitmaps::Encoded(_)))
            .expect("an encoded index exists");
        let simple_dim = indices
            .iter()
            .find(|i| matches!(i.stored_bitmaps(), StoredBitmaps::Simple(_)))
            .expect("a simple index exists");
        let policy = RepresentationPolicy::default();
        assert!(MaterialisedIndex::from_stored_simple(
            &schema,
            &catalog,
            encoded_dim.dimension(),
            policy,
            BTreeMap::new(),
        )
        .is_err());
        assert!(MaterialisedIndex::from_stored_encoded(
            &schema,
            &catalog,
            simple_dim.dimension(),
            policy,
            Vec::new(),
        )
        .is_err());
        assert!(MaterialisedIndex::from_stored_encoded(
            &schema,
            &catalog,
            encoded_dim.dimension(),
            policy,
            vec![BitmapRepr::Plain(Bitmap::new(4))],
        )
        .is_err());
    }

    #[test]
    fn unrank_is_mixed_radix() {
        assert_eq!(unrank(0, &[3, 4, 5]), vec![0, 0, 0]);
        assert_eq!(unrank(59, &[3, 4, 5]), vec![2, 3, 4]);
        assert_eq!(unrank(5, &[3, 4, 5]), vec![0, 1, 0]);
    }

    #[test]
    #[should_panic(expected = "refusing to materialise")]
    fn full_size_schema_rejected() {
        let schema = schema::apb1::apb1_schema();
        let _ = MaterialisedFactTable::generate(&schema, 1);
    }
}
