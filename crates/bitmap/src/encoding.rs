//! Hierarchical encoding of encoded bitmap join indices (Table 1).
//!
//! An encoded bitmap index represents attribute values from a domain of size
//! `|Dom|` in roughly `log2 |Dom|` bitmaps.  The paper uses a *hierarchical*
//! encoding: the bit pattern of a leaf value (e.g. a product code) is the
//! concatenation of sub-patterns, one per hierarchy level, where each
//! sub-pattern encodes the element's ordinal *within its parent*:
//!
//! ```text
//! PRODUCT:  ddd ll fff gg c oooo   (3+2+3+2+1+4 = 15 bits)
//! ```
//!
//! All codes of the same GROUP share the 10-bit prefix `dddllfffgg`, so a
//! selection on GROUP needs to match only the first 10 bitmaps instead of all
//! 15 — the prefix property exploited by MDHF.
//!
//! The module also hosts the *physical* byte codec of stored bitmaps:
//! [`encode_bitmap_repr`] / [`decode_bitmap_repr`] serialize any
//! [`BitmapRepr`] (plain, WAH or roaring) into a self-describing stream —
//! the page-image format the on-disk storage engine will persist.

use serde::{Deserialize, Serialize};

use schema::Hierarchy;

use crate::bitvec::Bitmap;
use crate::repr::BitmapRepr;
use crate::roaring::RoaringBitmap;
use crate::wah::WahBitmap;

/// The bit layout of a hierarchically encoded bitmap index for one dimension.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchicalEncoding {
    /// Bits allocated to each level, coarsest level first.
    bits_per_level: Vec<u32>,
    /// Fan-out of each level (elements within parent), coarsest first.
    fanouts: Vec<u64>,
}

impl HierarchicalEncoding {
    /// Derives the encoding from a dimension hierarchy: each level gets
    /// `ceil(log2(fanout))` bits (minimum 0 bits for fan-out 1).
    #[must_use]
    pub fn for_hierarchy(hierarchy: &Hierarchy) -> Self {
        let fanouts: Vec<u64> = hierarchy
            .levels()
            .iter()
            .map(schema::HierarchyLevel::fanout)
            .collect();
        let bits_per_level = fanouts.iter().map(|&f| bits_for(f)).collect();
        HierarchicalEncoding {
            bits_per_level,
            fanouts,
        }
    }

    /// Bits allocated to each level, coarsest first.
    #[must_use]
    pub fn bits_per_level(&self) -> &[u32] {
        &self.bits_per_level
    }

    /// Total number of bits — the number of bitmaps in the encoded index.
    #[must_use]
    pub fn total_bits(&self) -> u32 {
        self.bits_per_level.iter().sum()
    }

    /// Number of hierarchy levels.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.bits_per_level.len()
    }

    /// Number of *prefix* bits required to identify an element at `level`
    /// (level 0 = coarsest): the sum of the bits of levels `0..=level`.
    ///
    /// A selection on that level must evaluate exactly this many bitmaps.
    #[must_use]
    pub fn prefix_bits(&self, level: usize) -> u32 {
        assert!(level < self.levels(), "level out of range");
        self.bits_per_level[..=level].iter().sum()
    }

    /// Encodes a leaf element (numbered `0..leaf_cardinality`, grouped by the
    /// hierarchy as in [`Hierarchy::ancestor_of_leaf`]) into its bit pattern.
    ///
    /// The pattern is returned with the coarsest level's sub-pattern in the
    /// most significant bits, matching the `dddllfffggcoooo` layout.
    #[must_use]
    pub fn encode_leaf(&self, leaf: u64) -> u64 {
        let mut remaining = leaf;
        // Ordinals within parent, finest level first.
        let mut ordinals = vec![0u64; self.levels()];
        for (i, &fanout) in self.fanouts.iter().enumerate().rev() {
            ordinals[i] = remaining % fanout;
            remaining /= fanout;
        }
        assert_eq!(remaining, 0, "leaf id out of range for this hierarchy");
        let mut pattern = 0u64;
        for (i, &ord) in ordinals.iter().enumerate() {
            pattern = (pattern << self.bits_per_level[i]) | ord;
        }
        pattern
    }

    /// Decodes a bit pattern produced by [`Self::encode_leaf`] back into the
    /// leaf element number.  Patterns containing unused code points (possible
    /// because `ceil(log2)` rounds up) return `None`.
    #[must_use]
    pub fn decode_leaf(&self, pattern: u64) -> Option<u64> {
        let mut ordinals = vec![0u64; self.levels()];
        let mut p = pattern;
        for i in (0..self.levels()).rev() {
            let bits = self.bits_per_level[i];
            let mask = if bits == 0 { 0 } else { (1u64 << bits) - 1 };
            let ord = p & mask;
            if ord >= self.fanouts[i] {
                return None;
            }
            ordinals[i] = ord;
            p >>= bits;
        }
        if p != 0 {
            return None;
        }
        let mut leaf = 0u64;
        for (i, &ord) in ordinals.iter().enumerate() {
            leaf = leaf * self.fanouts[i] + ord;
        }
        Some(leaf)
    }

    /// The `(prefix pattern, prefix bit count)` identifying element `value` of
    /// `level`: all leaves below that element share this prefix in their most
    /// significant `prefix_bits(level)` bits.
    #[must_use]
    pub fn encode_prefix(&self, level: usize, value: u64) -> (u64, u32) {
        assert!(level < self.levels(), "level out of range");
        let mut remaining = value;
        let mut ordinals = vec![0u64; level + 1];
        for i in (0..=level).rev() {
            ordinals[i] = remaining % self.fanouts[i];
            remaining /= self.fanouts[i];
        }
        assert_eq!(remaining, 0, "value out of range for level {level}");
        let mut pattern = 0u64;
        for (i, &ord) in ordinals.iter().enumerate() {
            pattern = (pattern << self.bits_per_level[i]) | ord;
        }
        (pattern, self.prefix_bits(level))
    }

    /// Returns, for a selection of `value` at `level`, which bitmaps (by bit
    /// index, 0 = most significant / coarsest) must be read and whether each
    /// must be 1 (`true`) or 0 (`false`).
    #[must_use]
    pub fn match_pattern(&self, level: usize, value: u64) -> Vec<(u32, bool)> {
        let (pattern, bits) = self.encode_prefix(level, value);
        (0..bits)
            .map(|i| {
                let shift = bits - 1 - i;
                (i, (pattern >> shift) & 1 == 1)
            })
            .collect()
    }
}

/// Bits needed to encode `fanout` distinct values (`ceil(log2(fanout))`),
/// with fan-out 1 needing zero bits.
fn bits_for(fanout: u64) -> u32 {
    if fanout <= 1 {
        0
    } else {
        64 - (fanout - 1).leading_zeros()
    }
}

// ---------------------------------------------------------------------------
// Physical bitmap serialization
// ---------------------------------------------------------------------------
//
// The vendored `serde` is an offline marker stub, so the byte form of a
// stored bitmap is a hand-rolled, self-describing little-endian codec: a
// 4-byte magic, a format version, a representation tag, then the
// representation's own payload (raw words for plain and WAH, the per-chunk
// container stream for roaring).  This is the page-image format the
// on-disk storage engine (ROADMAP item 1) will write.

/// Magic prefix of a serialized [`BitmapRepr`].
const MAGIC: [u8; 4] = *b"BMRP";
/// Current format version.
const VERSION: u8 = 1;
const TAG_PLAIN: u8 = 0;
const TAG_WAH: u8 = 1;
const TAG_ROARING: u8 = 2;

/// Why a [`decode_bitmap_repr`] call rejected its input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReprDecodeError {
    /// The stream ended before the structure it promised.
    Truncated,
    /// The stream does not start with the `BMRP` magic.
    BadMagic,
    /// The stream's format version is newer than this build understands.
    UnsupportedVersion(u8),
    /// The representation tag byte is unknown.
    UnknownReprTag(u8),
    /// A roaring container tag byte is unknown.
    UnknownContainerTag(u8),
    /// A structural invariant failed (sortedness, ranges, counts).
    Malformed(&'static str),
}

impl std::fmt::Display for ReprDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReprDecodeError::Truncated => write!(f, "bitmap byte stream is truncated"),
            ReprDecodeError::BadMagic => write!(f, "bitmap byte stream lacks the BMRP magic"),
            ReprDecodeError::UnsupportedVersion(v) => {
                write!(f, "unsupported bitmap format version {v}")
            }
            ReprDecodeError::UnknownReprTag(t) => {
                write!(f, "unknown bitmap representation tag {t}")
            }
            ReprDecodeError::UnknownContainerTag(t) => {
                write!(f, "unknown roaring container tag {t}")
            }
            ReprDecodeError::Malformed(what) => write!(f, "malformed bitmap stream: {what}"),
        }
    }
}

impl std::error::Error for ReprDecodeError {}

/// Little-endian byte-stream reader shared by the decode paths (here and in
/// [`crate::roaring`]).  All accessors fail with
/// [`ReprDecodeError::Truncated`] instead of panicking.
pub(crate) struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ReprDecodeError> {
        let end = self.at.checked_add(n).ok_or(ReprDecodeError::Truncated)?;
        let slice = self
            .bytes
            .get(self.at..end)
            .ok_or(ReprDecodeError::Truncated)?;
        self.at = end;
        Ok(slice)
    }

    /// The not-yet-consumed remainder of the stream.
    pub(crate) fn rest(&self) -> &'a [u8] {
        &self.bytes[self.at..]
    }

    /// True when every byte has been consumed.
    pub(crate) fn is_exhausted(&self) -> bool {
        self.at == self.bytes.len()
    }

    pub(crate) fn u8(&mut self) -> Result<u8, ReprDecodeError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> Result<u16, ReprDecodeError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    pub(crate) fn u32(&mut self) -> Result<u32, ReprDecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, ReprDecodeError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }
}

/// Serializes a [`BitmapRepr`] — any of the three physical representations —
/// into the self-describing `BMRP` byte format.
#[must_use]
pub fn encode_bitmap_repr(repr: &BitmapRepr) -> Vec<u8> {
    let mut out = Vec::with_capacity(repr.size_bytes() + 16);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    match repr {
        BitmapRepr::Plain(b) => {
            out.push(TAG_PLAIN);
            out.extend_from_slice(&(b.len() as u64).to_le_bytes());
            for &w in b.words() {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        BitmapRepr::Wah(w) => {
            out.push(TAG_WAH);
            out.extend_from_slice(&(w.len() as u64).to_le_bytes());
            out.extend_from_slice(&(w.raw_words().len() as u64).to_le_bytes());
            for &word in w.raw_words() {
                out.extend_from_slice(&word.to_le_bytes());
            }
        }
        BitmapRepr::Roaring(r) => {
            out.push(TAG_ROARING);
            r.write_bytes(&mut out);
        }
    }
    out
}

/// Deserializes a stream produced by [`encode_bitmap_repr`].
///
/// Decoded bitmaps are restored to the crate's internal invariants: plain
/// tail bits beyond `len` are cleared, roaring containers are validated and
/// re-canonicalised, and WAH words are accepted verbatim (every WAH
/// operation tolerates non-canonical input by design).
///
/// # Errors
///
/// Returns a [`ReprDecodeError`] on truncated, foreign or structurally
/// invalid input.
pub fn decode_bitmap_repr(bytes: &[u8]) -> Result<BitmapRepr, ReprDecodeError> {
    let mut cursor = Cursor::new(bytes);
    if cursor.take(4)? != MAGIC {
        return Err(ReprDecodeError::BadMagic);
    }
    let version = cursor.u8()?;
    if version != VERSION {
        return Err(ReprDecodeError::UnsupportedVersion(version));
    }
    let tag = cursor.u8()?;
    match tag {
        TAG_PLAIN => {
            let len = cursor.u64()? as usize;
            let word_count = len.div_ceil(64);
            let mut words = Vec::with_capacity(word_count);
            for _ in 0..word_count {
                words.push(cursor.u64()?);
            }
            if !cursor.is_exhausted() {
                return Err(ReprDecodeError::Malformed(
                    "trailing bytes after plain words",
                ));
            }
            Ok(BitmapRepr::Plain(Bitmap::from_words(len, words)))
        }
        TAG_WAH => {
            let len = cursor.u64()? as usize;
            let word_count = cursor.u64()? as usize;
            if word_count > cursor.rest().len() / 8 {
                return Err(ReprDecodeError::Truncated);
            }
            let mut words = Vec::with_capacity(word_count);
            for _ in 0..word_count {
                words.push(cursor.u64()?);
            }
            if !cursor.is_exhausted() {
                return Err(ReprDecodeError::Malformed("trailing bytes after WAH words"));
            }
            Ok(BitmapRepr::Wah(WahBitmap::from_raw_words(len, words)))
        }
        TAG_ROARING => Ok(BitmapRepr::Roaring(RoaringBitmap::read_bytes(
            cursor.rest(),
        )?)),
        other => Err(ReprDecodeError::UnknownReprTag(other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::apb1::apb1_schema;

    fn product_encoding() -> HierarchicalEncoding {
        let s = apb1_schema();
        let product = &s.dimensions()[s.dimension_index("product").unwrap()];
        HierarchicalEncoding::for_hierarchy(product.hierarchy())
    }

    fn customer_encoding() -> HierarchicalEncoding {
        let s = apb1_schema();
        let customer = &s.dimensions()[s.dimension_index("customer").unwrap()];
        HierarchicalEncoding::for_hierarchy(customer.hierarchy())
    }

    #[test]
    fn table_1_product_layout() {
        // Table 1: ddd ll fff gg c oooo = 3+2+3+2+1+4 = 15 bits.
        let e = product_encoding();
        assert_eq!(e.bits_per_level(), &[3, 2, 3, 2, 1, 4]);
        assert_eq!(e.total_bits(), 15);
        assert_eq!(e.levels(), 6);
        // Locating a GROUP needs only the 10-bit prefix dddllfffgg.
        assert_eq!(e.prefix_bits(3), 10);
        // Locating a CODE needs all 15.
        assert_eq!(e.prefix_bits(5), 15);
        assert_eq!(e.prefix_bits(0), 3);
    }

    #[test]
    fn customer_needs_12_bitmaps() {
        // Paper §3.2: encoded index on CUSTOMER needs 12 bitmaps
        // (144 retailers → 8 bits, 10 stores per retailer → 4 bits).
        let e = customer_encoding();
        assert_eq!(e.total_bits(), 12);
        assert_eq!(e.bits_per_level(), &[8, 4]);
    }

    #[test]
    fn encode_decode_roundtrip_for_all_codes() {
        let e = product_encoding();
        for leaf in (0..14_400).step_by(97) {
            let pattern = e.encode_leaf(leaf);
            assert_eq!(e.decode_leaf(pattern), Some(leaf));
        }
        // First and last codes.
        assert_eq!(e.decode_leaf(e.encode_leaf(0)), Some(0));
        assert_eq!(e.decode_leaf(e.encode_leaf(14_399)), Some(14_399));
    }

    #[test]
    fn codes_of_same_group_share_prefix() {
        let e = product_encoding();
        // Codes 0..29 belong to group 0; they must share the 10-bit prefix.
        let (prefix, bits) = e.encode_prefix(3, 0);
        assert_eq!(bits, 10);
        for code in 0..30 {
            let pattern = e.encode_leaf(code);
            assert_eq!(pattern >> (15 - 10), prefix, "code {code}");
        }
        // A code of another group differs in the prefix.
        let other = e.encode_leaf(30);
        assert_ne!(other >> 5, prefix);
    }

    #[test]
    fn match_pattern_structure() {
        let e = product_encoding();
        let m = e.match_pattern(3, 1); // group 1
        assert_eq!(m.len(), 10);
        // Group 1 is (division 0, line 0, family 0, group 1):
        // pattern 000 00 000 01 → only the last prefix bit is 1.
        let ones: Vec<u32> = m.iter().filter(|(_, v)| *v).map(|(i, _)| *i).collect();
        assert_eq!(ones, vec![9]);
    }

    #[test]
    fn decode_rejects_invalid_code_points() {
        let e = product_encoding();
        // Line ordinal 3 is invalid (fan-out 3 → ordinals 0..2).
        // Pattern: division 0, line bits = 0b11, rest zero. The digit groups
        // mirror the per-level bit widths (3|2|3|2|1|4), not uniform nibbles.
        #[allow(clippy::unusual_byte_groupings)]
        let invalid = 0b000_11_000_00_0_0000u64;
        assert_eq!(e.decode_leaf(invalid), None);
        // Extra high bits beyond 15 are invalid.
        assert_eq!(e.decode_leaf(1 << 20), None);
    }

    #[test]
    fn bits_for_edge_cases() {
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(1_024), 10);
        assert_eq!(bits_for(1_025), 11);
    }

    #[test]
    fn single_level_hierarchy_encoding() {
        let h = Hierarchy::from_fanouts(&[("channel", 15)]);
        let e = HierarchicalEncoding::for_hierarchy(&h);
        assert_eq!(e.total_bits(), 4);
        assert_eq!(e.prefix_bits(0), 4);
        for v in 0..15 {
            assert_eq!(e.decode_leaf(e.encode_leaf(v)), Some(v));
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use schema::Hierarchy;

    fn arb_hierarchy() -> impl Strategy<Value = Hierarchy> {
        proptest::collection::vec(1u64..12, 1..5).prop_map(|fanouts| {
            Hierarchy::new(
                fanouts
                    .iter()
                    .enumerate()
                    .map(|(i, &f)| schema::HierarchyLevel::new(format!("l{i}"), f))
                    .collect(),
            )
        })
    }

    proptest! {
        /// Encoding round-trips for every leaf of arbitrary hierarchies.
        #[test]
        fn prop_roundtrip(h in arb_hierarchy()) {
            let e = HierarchicalEncoding::for_hierarchy(&h);
            for leaf in 0..h.leaf_cardinality() {
                prop_assert_eq!(e.decode_leaf(e.encode_leaf(leaf)), Some(leaf));
            }
        }

        /// All leaves below an ancestor share exactly that ancestor's prefix,
        /// and leaves below different ancestors have different prefixes.
        #[test]
        fn prop_prefix_property(h in arb_hierarchy(), level_seed in 0usize..8) {
            let e = HierarchicalEncoding::for_hierarchy(&h);
            let level = level_seed % h.depth();
            let prefix_bits = e.prefix_bits(level);
            let total = e.total_bits();
            for leaf in 0..h.leaf_cardinality() {
                let anc = h.ancestor_of_leaf(leaf, level);
                let (prefix, bits) = e.encode_prefix(level, anc);
                prop_assert_eq!(bits, prefix_bits);
                let leaf_pattern = e.encode_leaf(leaf);
                prop_assert_eq!(leaf_pattern >> (total - prefix_bits), prefix);
            }
        }
    }
}

#[cfg(test)]
mod codec_tests {
    use super::*;
    use crate::repr::RepresentationPolicy;

    fn shaped(kind: u8) -> Bitmap {
        let n = 70_000;
        match kind {
            0 => Bitmap::from_positions(n, (0..n).step_by(997)),
            1 => Bitmap::from_positions(n, 30_000..67_000),
            _ => Bitmap::from_positions(n, (0..n).filter(|i| i % 3 != 0)),
        }
    }

    #[test]
    fn all_three_representations_round_trip() {
        for kind in 0..3u8 {
            let bitmap = shaped(kind);
            for policy in [
                RepresentationPolicy::Plain,
                RepresentationPolicy::Wah,
                RepresentationPolicy::Roaring,
                RepresentationPolicy::default(),
            ] {
                let repr = BitmapRepr::from_bitmap(bitmap.clone(), policy);
                let bytes = encode_bitmap_repr(&repr);
                let decoded = decode_bitmap_repr(&bytes);
                assert_eq!(decoded.as_ref(), Ok(&repr), "{policy:?} kind {kind}");
                assert_eq!(
                    decoded.map(|d| d.to_plain()),
                    Ok(bitmap.clone()),
                    "{policy:?} kind {kind}"
                );
            }
        }
    }

    #[test]
    fn zero_length_bitmap_round_trips() {
        for policy in [
            RepresentationPolicy::Plain,
            RepresentationPolicy::Wah,
            RepresentationPolicy::Roaring,
        ] {
            let repr = BitmapRepr::from_bitmap(Bitmap::new(0), policy);
            assert_eq!(decode_bitmap_repr(&encode_bitmap_repr(&repr)), Ok(repr));
        }
    }

    #[test]
    fn decode_rejects_malformed_streams() {
        let repr = BitmapRepr::from_bitmap(shaped(0), RepresentationPolicy::Roaring);
        let bytes = encode_bitmap_repr(&repr);

        assert_eq!(decode_bitmap_repr(&[]), Err(ReprDecodeError::Truncated));
        assert_eq!(
            decode_bitmap_repr(&bytes[..bytes.len() - 1]),
            Err(ReprDecodeError::Truncated)
        );

        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert_eq!(
            decode_bitmap_repr(&bad_magic),
            Err(ReprDecodeError::BadMagic)
        );

        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert_eq!(
            decode_bitmap_repr(&bad_version),
            Err(ReprDecodeError::UnsupportedVersion(99))
        );

        let mut bad_tag = bytes.clone();
        bad_tag[5] = 7;
        assert_eq!(
            decode_bitmap_repr(&bad_tag),
            Err(ReprDecodeError::UnknownReprTag(7))
        );

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(decode_bitmap_repr(&trailing).is_err());

        // Container tag 3 does not exist: corrupt the first container tag,
        // which sits right after magic(4) + version(1) + repr tag(1) + len(8).
        let mut bad_container = bytes;
        bad_container[14] = 3;
        assert_eq!(
            decode_bitmap_repr(&bad_container),
            Err(ReprDecodeError::UnknownContainerTag(3))
        );
    }

    #[test]
    fn decode_rejects_out_of_range_roaring_positions() {
        // A run container reaching past `len` in the final chunk.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"BMRP");
        bytes.push(1); // version
        bytes.push(2); // roaring tag
        bytes.extend_from_slice(&100u64.to_le_bytes()); // len = 100
        bytes.push(2); // runs container
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes()); // start 0
        bytes.extend_from_slice(&100u16.to_le_bytes()); // end 100 >= len
        assert!(matches!(
            decode_bitmap_repr(&bytes),
            Err(ReprDecodeError::Malformed(_))
        ));
    }

    #[test]
    fn deserialized_non_canonical_containers_are_recanonicalised() {
        // An array container holding one long run: the encoder would have
        // chosen a run container, but the decoder must accept the array
        // form and restore canonical equality with a freshly built bitmap.
        let len = 1_000u64;
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"BMRP");
        bytes.push(1);
        bytes.push(2);
        bytes.extend_from_slice(&len.to_le_bytes());
        bytes.push(0); // array container
        bytes.extend_from_slice(&500u32.to_le_bytes());
        for v in 0..500u16 {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        let decoded = decode_bitmap_repr(&bytes).map(|r| r.to_plain());
        assert_eq!(decoded, Ok(Bitmap::from_positions(1_000, 0..500)));
        let rebuilt = BitmapRepr::from_bitmap(
            Bitmap::from_positions(1_000, 0..500),
            RepresentationPolicy::Roaring,
        );
        assert_eq!(decode_bitmap_repr(&bytes), Ok(rebuilt));
    }
}
