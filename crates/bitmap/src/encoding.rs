//! Hierarchical encoding of encoded bitmap join indices (Table 1).
//!
//! An encoded bitmap index represents attribute values from a domain of size
//! `|Dom|` in roughly `log2 |Dom|` bitmaps.  The paper uses a *hierarchical*
//! encoding: the bit pattern of a leaf value (e.g. a product code) is the
//! concatenation of sub-patterns, one per hierarchy level, where each
//! sub-pattern encodes the element's ordinal *within its parent*:
//!
//! ```text
//! PRODUCT:  ddd ll fff gg c oooo   (3+2+3+2+1+4 = 15 bits)
//! ```
//!
//! All codes of the same GROUP share the 10-bit prefix `dddllfffgg`, so a
//! selection on GROUP needs to match only the first 10 bitmaps instead of all
//! 15 — the prefix property exploited by MDHF.

use serde::{Deserialize, Serialize};

use schema::Hierarchy;

/// The bit layout of a hierarchically encoded bitmap index for one dimension.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchicalEncoding {
    /// Bits allocated to each level, coarsest level first.
    bits_per_level: Vec<u32>,
    /// Fan-out of each level (elements within parent), coarsest first.
    fanouts: Vec<u64>,
}

impl HierarchicalEncoding {
    /// Derives the encoding from a dimension hierarchy: each level gets
    /// `ceil(log2(fanout))` bits (minimum 0 bits for fan-out 1).
    #[must_use]
    pub fn for_hierarchy(hierarchy: &Hierarchy) -> Self {
        let fanouts: Vec<u64> = hierarchy
            .levels()
            .iter()
            .map(schema::HierarchyLevel::fanout)
            .collect();
        let bits_per_level = fanouts.iter().map(|&f| bits_for(f)).collect();
        HierarchicalEncoding {
            bits_per_level,
            fanouts,
        }
    }

    /// Bits allocated to each level, coarsest first.
    #[must_use]
    pub fn bits_per_level(&self) -> &[u32] {
        &self.bits_per_level
    }

    /// Total number of bits — the number of bitmaps in the encoded index.
    #[must_use]
    pub fn total_bits(&self) -> u32 {
        self.bits_per_level.iter().sum()
    }

    /// Number of hierarchy levels.
    #[must_use]
    pub fn levels(&self) -> usize {
        self.bits_per_level.len()
    }

    /// Number of *prefix* bits required to identify an element at `level`
    /// (level 0 = coarsest): the sum of the bits of levels `0..=level`.
    ///
    /// A selection on that level must evaluate exactly this many bitmaps.
    #[must_use]
    pub fn prefix_bits(&self, level: usize) -> u32 {
        assert!(level < self.levels(), "level out of range");
        self.bits_per_level[..=level].iter().sum()
    }

    /// Encodes a leaf element (numbered `0..leaf_cardinality`, grouped by the
    /// hierarchy as in [`Hierarchy::ancestor_of_leaf`]) into its bit pattern.
    ///
    /// The pattern is returned with the coarsest level's sub-pattern in the
    /// most significant bits, matching the `dddllfffggcoooo` layout.
    #[must_use]
    pub fn encode_leaf(&self, leaf: u64) -> u64 {
        let mut remaining = leaf;
        // Ordinals within parent, finest level first.
        let mut ordinals = vec![0u64; self.levels()];
        for (i, &fanout) in self.fanouts.iter().enumerate().rev() {
            ordinals[i] = remaining % fanout;
            remaining /= fanout;
        }
        assert_eq!(remaining, 0, "leaf id out of range for this hierarchy");
        let mut pattern = 0u64;
        for (i, &ord) in ordinals.iter().enumerate() {
            pattern = (pattern << self.bits_per_level[i]) | ord;
        }
        pattern
    }

    /// Decodes a bit pattern produced by [`Self::encode_leaf`] back into the
    /// leaf element number.  Patterns containing unused code points (possible
    /// because `ceil(log2)` rounds up) return `None`.
    #[must_use]
    pub fn decode_leaf(&self, pattern: u64) -> Option<u64> {
        let mut ordinals = vec![0u64; self.levels()];
        let mut p = pattern;
        for i in (0..self.levels()).rev() {
            let bits = self.bits_per_level[i];
            let mask = if bits == 0 { 0 } else { (1u64 << bits) - 1 };
            let ord = p & mask;
            if ord >= self.fanouts[i] {
                return None;
            }
            ordinals[i] = ord;
            p >>= bits;
        }
        if p != 0 {
            return None;
        }
        let mut leaf = 0u64;
        for (i, &ord) in ordinals.iter().enumerate() {
            leaf = leaf * self.fanouts[i] + ord;
        }
        Some(leaf)
    }

    /// The `(prefix pattern, prefix bit count)` identifying element `value` of
    /// `level`: all leaves below that element share this prefix in their most
    /// significant `prefix_bits(level)` bits.
    #[must_use]
    pub fn encode_prefix(&self, level: usize, value: u64) -> (u64, u32) {
        assert!(level < self.levels(), "level out of range");
        let mut remaining = value;
        let mut ordinals = vec![0u64; level + 1];
        for i in (0..=level).rev() {
            ordinals[i] = remaining % self.fanouts[i];
            remaining /= self.fanouts[i];
        }
        assert_eq!(remaining, 0, "value out of range for level {level}");
        let mut pattern = 0u64;
        for (i, &ord) in ordinals.iter().enumerate() {
            pattern = (pattern << self.bits_per_level[i]) | ord;
        }
        (pattern, self.prefix_bits(level))
    }

    /// Returns, for a selection of `value` at `level`, which bitmaps (by bit
    /// index, 0 = most significant / coarsest) must be read and whether each
    /// must be 1 (`true`) or 0 (`false`).
    #[must_use]
    pub fn match_pattern(&self, level: usize, value: u64) -> Vec<(u32, bool)> {
        let (pattern, bits) = self.encode_prefix(level, value);
        (0..bits)
            .map(|i| {
                let shift = bits - 1 - i;
                (i, (pattern >> shift) & 1 == 1)
            })
            .collect()
    }
}

/// Bits needed to encode `fanout` distinct values (`ceil(log2(fanout))`),
/// with fan-out 1 needing zero bits.
fn bits_for(fanout: u64) -> u32 {
    if fanout <= 1 {
        0
    } else {
        64 - (fanout - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::apb1::apb1_schema;

    fn product_encoding() -> HierarchicalEncoding {
        let s = apb1_schema();
        let product = &s.dimensions()[s.dimension_index("product").unwrap()];
        HierarchicalEncoding::for_hierarchy(product.hierarchy())
    }

    fn customer_encoding() -> HierarchicalEncoding {
        let s = apb1_schema();
        let customer = &s.dimensions()[s.dimension_index("customer").unwrap()];
        HierarchicalEncoding::for_hierarchy(customer.hierarchy())
    }

    #[test]
    fn table_1_product_layout() {
        // Table 1: ddd ll fff gg c oooo = 3+2+3+2+1+4 = 15 bits.
        let e = product_encoding();
        assert_eq!(e.bits_per_level(), &[3, 2, 3, 2, 1, 4]);
        assert_eq!(e.total_bits(), 15);
        assert_eq!(e.levels(), 6);
        // Locating a GROUP needs only the 10-bit prefix dddllfffgg.
        assert_eq!(e.prefix_bits(3), 10);
        // Locating a CODE needs all 15.
        assert_eq!(e.prefix_bits(5), 15);
        assert_eq!(e.prefix_bits(0), 3);
    }

    #[test]
    fn customer_needs_12_bitmaps() {
        // Paper §3.2: encoded index on CUSTOMER needs 12 bitmaps
        // (144 retailers → 8 bits, 10 stores per retailer → 4 bits).
        let e = customer_encoding();
        assert_eq!(e.total_bits(), 12);
        assert_eq!(e.bits_per_level(), &[8, 4]);
    }

    #[test]
    fn encode_decode_roundtrip_for_all_codes() {
        let e = product_encoding();
        for leaf in (0..14_400).step_by(97) {
            let pattern = e.encode_leaf(leaf);
            assert_eq!(e.decode_leaf(pattern), Some(leaf));
        }
        // First and last codes.
        assert_eq!(e.decode_leaf(e.encode_leaf(0)), Some(0));
        assert_eq!(e.decode_leaf(e.encode_leaf(14_399)), Some(14_399));
    }

    #[test]
    fn codes_of_same_group_share_prefix() {
        let e = product_encoding();
        // Codes 0..29 belong to group 0; they must share the 10-bit prefix.
        let (prefix, bits) = e.encode_prefix(3, 0);
        assert_eq!(bits, 10);
        for code in 0..30 {
            let pattern = e.encode_leaf(code);
            assert_eq!(pattern >> (15 - 10), prefix, "code {code}");
        }
        // A code of another group differs in the prefix.
        let other = e.encode_leaf(30);
        assert_ne!(other >> 5, prefix);
    }

    #[test]
    fn match_pattern_structure() {
        let e = product_encoding();
        let m = e.match_pattern(3, 1); // group 1
        assert_eq!(m.len(), 10);
        // Group 1 is (division 0, line 0, family 0, group 1):
        // pattern 000 00 000 01 → only the last prefix bit is 1.
        let ones: Vec<u32> = m.iter().filter(|(_, v)| *v).map(|(i, _)| *i).collect();
        assert_eq!(ones, vec![9]);
    }

    #[test]
    fn decode_rejects_invalid_code_points() {
        let e = product_encoding();
        // Line ordinal 3 is invalid (fan-out 3 → ordinals 0..2).
        // Pattern: division 0, line bits = 0b11, rest zero. The digit groups
        // mirror the per-level bit widths (3|2|3|2|1|4), not uniform nibbles.
        #[allow(clippy::unusual_byte_groupings)]
        let invalid = 0b000_11_000_00_0_0000u64;
        assert_eq!(e.decode_leaf(invalid), None);
        // Extra high bits beyond 15 are invalid.
        assert_eq!(e.decode_leaf(1 << 20), None);
    }

    #[test]
    fn bits_for_edge_cases() {
        assert_eq!(bits_for(1), 0);
        assert_eq!(bits_for(2), 1);
        assert_eq!(bits_for(3), 2);
        assert_eq!(bits_for(4), 2);
        assert_eq!(bits_for(5), 3);
        assert_eq!(bits_for(1_024), 10);
        assert_eq!(bits_for(1_025), 11);
    }

    #[test]
    fn single_level_hierarchy_encoding() {
        let h = Hierarchy::from_fanouts(&[("channel", 15)]);
        let e = HierarchicalEncoding::for_hierarchy(&h);
        assert_eq!(e.total_bits(), 4);
        assert_eq!(e.prefix_bits(0), 4);
        for v in 0..15 {
            assert_eq!(e.decode_leaf(e.encode_leaf(v)), Some(v));
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use schema::Hierarchy;

    fn arb_hierarchy() -> impl Strategy<Value = Hierarchy> {
        proptest::collection::vec(1u64..12, 1..5).prop_map(|fanouts| {
            Hierarchy::new(
                fanouts
                    .iter()
                    .enumerate()
                    .map(|(i, &f)| schema::HierarchyLevel::new(format!("l{i}"), f))
                    .collect(),
            )
        })
    }

    proptest! {
        /// Encoding round-trips for every leaf of arbitrary hierarchies.
        #[test]
        fn prop_roundtrip(h in arb_hierarchy()) {
            let e = HierarchicalEncoding::for_hierarchy(&h);
            for leaf in 0..h.leaf_cardinality() {
                prop_assert_eq!(e.decode_leaf(e.encode_leaf(leaf)), Some(leaf));
            }
        }

        /// All leaves below an ancestor share exactly that ancestor's prefix,
        /// and leaves below different ancestors have different prefixes.
        #[test]
        fn prop_prefix_property(h in arb_hierarchy(), level_seed in 0usize..8) {
            let e = HierarchicalEncoding::for_hierarchy(&h);
            let level = level_seed % h.depth();
            let prefix_bits = e.prefix_bits(level);
            let total = e.total_bits();
            for leaf in 0..h.leaf_cardinality() {
                let anc = h.ancestor_of_leaf(leaf, level);
                let (prefix, bits) = e.encode_prefix(level, anc);
                prop_assert_eq!(bits, prefix_bits);
                let leaf_pattern = e.encode_leaf(leaf);
                prop_assert_eq!(leaf_pattern >> (total - prefix_bits), prefix);
            }
        }
    }
}
