//! Uncompressed bitmaps.
//!
//! One bit per fact row.  The operations mirror what star-join processing
//! needs: AND (intersect selections), OR (multiple values of one attribute),
//! NOT, population count and iteration over matching row numbers.

use serde::{Deserialize, Serialize};

/// A fixed-length, uncompressed bitmap (one bit per fact row).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitmap {
    len: usize,
    words: Vec<u64>,
}

impl Bitmap {
    /// Creates an all-zero bitmap covering `len` rows.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Bitmap {
            len,
            words: vec![0u64; len.div_ceil(64)],
        }
    }

    /// Creates an all-one bitmap covering `len` rows.
    #[must_use]
    pub fn ones(len: usize) -> Self {
        let mut b = Bitmap {
            len,
            words: vec![!0u64; len.div_ceil(64)],
        };
        b.clear_tail();
        b
    }

    /// Builds a bitmap from an iterator of set-bit positions.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range.
    #[must_use]
    pub fn from_positions(len: usize, positions: impl IntoIterator<Item = usize>) -> Self {
        let mut b = Bitmap::new(len);
        for p in positions {
            b.set(p, true);
        }
        b
    }

    fn clear_tail(&mut self) {
        let tail_bits = self.len % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }

    /// Number of rows covered by the bitmap.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap covers zero rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn get(&self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "bit index {idx} out of range ({})",
            self.len
        );
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Sets bit `idx` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set(&mut self, idx: usize, value: bool) {
        assert!(
            idx < self.len,
            "bit index {idx} out of range ({})",
            self.len
        );
        let mask = 1u64 << (idx % 64);
        if value {
            self.words[idx / 64] |= mask;
        } else {
            self.words[idx / 64] &= !mask;
        }
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    #[must_use]
    pub fn is_all_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if every bit is set.
    #[must_use]
    pub fn is_all_one(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Bitwise AND with another bitmap of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Multi-way intersection: ANDs all `bitmaps` together in a single
    /// word-at-a-time pass, avoiding the intermediate bitmaps a chain of
    /// [`Bitmap::and`] calls would allocate.  This is the hot operation of
    /// star-join selection, where one bitmap per predicate is intersected.
    ///
    /// # Panics
    ///
    /// Panics if `bitmaps` is empty or the lengths differ.
    #[must_use]
    pub fn and_many(bitmaps: &[&Bitmap]) -> Bitmap {
        let first = *bitmaps.first().expect("and_many needs at least one bitmap");
        assert!(
            bitmaps[1..].iter().all(|b| b.len == first.len),
            "bitmap length mismatch"
        );
        let words = (0..first.words.len())
            .map(|i| bitmaps.iter().fold(!0u64, |acc, b| acc & b.words[i]))
            .collect();
        Bitmap {
            len: first.len,
            words,
        }
    }

    /// In-place bitwise AND.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place multi-way AND: intersects all `others` into `self` in a
    /// single word-at-a-time pass.  Unlike [`Bitmap::and_many`] this
    /// allocates nothing — the engine's per-fragment selection uses it to
    /// fold every predicate bitmap into the first one.
    ///
    /// # Panics
    ///
    /// Panics if any length differs.
    pub fn and_assign_many(&mut self, others: &[&Bitmap]) {
        assert!(
            others.iter().all(|b| b.len == self.len),
            "bitmap length mismatch"
        );
        for (i, word) in self.words.iter_mut().enumerate() {
            *word = others.iter().fold(*word, |acc, b| acc & b.words[i]);
        }
    }

    /// Fraction of set bits, in `[0, 1]` (0 for an empty bitmap).
    #[must_use]
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Bitwise OR with another bitmap of the same length.
    #[must_use]
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            len: self.len,
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
        }
    }

    /// In-place bitwise OR.
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// Bitwise complement (within the bitmap's length).
    #[must_use]
    pub fn not(&self) -> Bitmap {
        let mut out = Bitmap {
            len: self.len,
            words: self.words.iter().map(|w| !w).collect(),
        };
        out.clear_tail();
        out
    }

    /// Iterates over the positions of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Extracts the sub-bitmap for rows `range` (used for fragment-aligned
    /// bitmap fragments).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the bitmap length.
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bitmap {
        assert!(range.end <= self.len, "slice out of range");
        let mut out = Bitmap::new(range.len());
        for (i, idx) in range.enumerate() {
            if self.get(idx) {
                out.set(i, true);
            }
        }
        out
    }

    /// Size of the uncompressed representation in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Access to the underlying words (for compression).
    #[must_use]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bitmap::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        assert!(b.is_all_zero());
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.count_ones(), 3);
        b.set(64, false);
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn ones_and_not_respect_length() {
        let b = Bitmap::ones(70);
        assert_eq!(b.count_ones(), 70);
        assert!(b.is_all_one());
        let z = b.not();
        assert!(z.is_all_zero());
        assert_eq!(z.not().count_ones(), 70);
    }

    #[test]
    fn boolean_operations() {
        let a = Bitmap::from_positions(10, [1, 3, 5, 7]);
        let b = Bitmap::from_positions(10, [3, 4, 5, 6]);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![3, 5]);
        assert_eq!(
            a.or(&b).iter_ones().collect::<Vec<_>>(),
            vec![1, 3, 4, 5, 6, 7]
        );
        let mut c = a.clone();
        c.and_assign(&b);
        assert_eq!(c, a.and(&b));
        let mut d = a.clone();
        d.or_assign(&b);
        assert_eq!(d, a.or(&b));
    }

    #[test]
    fn and_many_matches_chained_and() {
        let a = Bitmap::from_positions(200, (0..200).filter(|i| i % 2 == 0));
        let b = Bitmap::from_positions(200, (0..200).filter(|i| i % 3 == 0));
        let c = Bitmap::from_positions(200, (0..200).filter(|i| i % 5 == 0));
        assert_eq!(Bitmap::and_many(&[&a, &b, &c]), a.and(&b).and(&c));
        assert_eq!(Bitmap::and_many(&[&a]), a);
        assert_eq!(
            Bitmap::and_many(&[&a, &b, &c])
                .iter_ones()
                .collect::<Vec<_>>(),
            (0..200usize).filter(|i| i % 30 == 0).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "at least one bitmap")]
    fn and_many_rejects_empty_input() {
        let _ = Bitmap::and_many(&[]);
    }

    #[test]
    fn and_assign_many_matches_and_many() {
        let a = Bitmap::from_positions(200, (0..200).filter(|i| i % 2 == 0));
        let b = Bitmap::from_positions(200, (0..200).filter(|i| i % 3 == 0));
        let c = Bitmap::from_positions(200, (0..200).filter(|i| i % 5 == 0));
        let mut acc = a.clone();
        acc.and_assign_many(&[&b, &c]);
        assert_eq!(acc, Bitmap::and_many(&[&a, &b, &c]));
        let mut unchanged = a.clone();
        unchanged.and_assign_many(&[]);
        assert_eq!(unchanged, a);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_assign_many_rejects_length_mismatch() {
        let mut a = Bitmap::new(10);
        let b = Bitmap::new(11);
        a.and_assign_many(&[&b]);
    }

    #[test]
    fn density_is_fraction_of_ones() {
        assert_eq!(Bitmap::new(0).density(), 0.0);
        assert_eq!(Bitmap::ones(64).density(), 1.0);
        assert!((Bitmap::from_positions(100, 0..25).density() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_many_rejects_length_mismatch() {
        let a = Bitmap::new(10);
        let b = Bitmap::new(11);
        let _ = Bitmap::and_many(&[&a, &b]);
    }

    #[test]
    fn iter_ones_in_order() {
        let positions = vec![0, 63, 64, 65, 127, 128, 199];
        let b = Bitmap::from_positions(200, positions.clone());
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), positions);
    }

    #[test]
    fn slicing() {
        let b = Bitmap::from_positions(100, [10, 20, 30, 40]);
        let s = b.slice(15..35);
        assert_eq!(s.len(), 20);
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![5, 15]);
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert!(b.is_all_zero());
        assert!(b.is_all_one()); // vacuously true
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    fn size_bytes() {
        assert_eq!(Bitmap::new(64).size_bytes(), 8);
        assert_eq!(Bitmap::new(65).size_bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let _ = Bitmap::new(10).get(10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_length_mismatch_panics() {
        let _ = Bitmap::new(10).and(&Bitmap::new(11));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_bitmap(len: usize) -> impl Strategy<Value = Bitmap> {
        proptest::collection::vec(proptest::bool::ANY, len).prop_map(move |bits| {
            let mut b = Bitmap::new(len);
            for (i, bit) in bits.into_iter().enumerate() {
                b.set(i, bit);
            }
            b
        })
    }

    proptest! {
        /// De Morgan: !(a & b) == !a | !b, restricted to the bitmap length.
        #[test]
        fn prop_de_morgan(a in arb_bitmap(200), b in arb_bitmap(200)) {
            prop_assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        }

        /// AND is an intersection of set-bit positions; OR a union.
        #[test]
        fn prop_and_or_set_semantics(a in arb_bitmap(150), b in arb_bitmap(150)) {
            use std::collections::BTreeSet;
            let sa: BTreeSet<_> = a.iter_ones().collect();
            let sb: BTreeSet<_> = b.iter_ones().collect();
            let and: BTreeSet<_> = a.and(&b).iter_ones().collect();
            let or: BTreeSet<_> = a.or(&b).iter_ones().collect();
            prop_assert_eq!(and, sa.intersection(&sb).copied().collect::<BTreeSet<_>>());
            prop_assert_eq!(or, sa.union(&sb).copied().collect::<BTreeSet<_>>());
        }

        /// and_many over any stack of bitmaps equals the left fold of binary
        /// ANDs, including the tail-word invariant.
        #[test]
        fn prop_and_many_is_fold_of_and(
            a in arb_bitmap(170), b in arb_bitmap(170), c in arb_bitmap(170)
        ) {
            let folded = a.and(&b).and(&c);
            prop_assert_eq!(Bitmap::and_many(&[&a, &b, &c]), folded.clone());
            prop_assert_eq!(folded.count_ones(), Bitmap::and_many(&[&c, &b, &a]).count_ones());
        }

        /// count_ones matches iter_ones length; complement counts are exact.
        #[test]
        fn prop_counts(a in arb_bitmap(173)) {
            prop_assert_eq!(a.count_ones(), a.iter_ones().count());
            prop_assert_eq!(a.count_ones() + a.not().count_ones(), 173);
        }

        /// Slicing then counting equals counting within the range.
        #[test]
        fn prop_slice_counts(a in arb_bitmap(256), start in 0usize..256, len in 0usize..256) {
            let end = (start + len).min(256);
            let slice = a.slice(start..end);
            let expected = a.iter_ones().filter(|&p| p >= start && p < end).count();
            prop_assert_eq!(slice.count_ones(), expected);
        }
    }
}
