//! Uncompressed bitmaps.
//!
//! One bit per fact row.  The operations mirror what star-join processing
//! needs: AND (intersect selections), OR (multiple values of one attribute),
//! NOT, population count and iteration over matching row numbers.

use serde::{Deserialize, Serialize};

/// Unroll width of the word kernels below.
///
/// The MSRV (1.87) predates `std::simd`, so the hot loops are written as
/// explicitly 4×-unrolled scalar loops over [`slice::chunks_exact`]: four
/// independent 64-bit lanes per iteration give LLVM a straight-line body it
/// autovectorizes to 256-bit vector ops in release builds, while the
/// `chunks_exact` shape eliminates bounds checks.  Verified to vectorize on
/// x86-64 (`vpand`/`vpor` over `ymm`) at the default release opt-level.
const UNROLL: usize = 4;

/// In-place bitwise AND over raw word slices: `dst[i] &= src[i]`.
///
/// 4×-unrolled with a scalar tail; shared by [`Bitmap`] and the roaring
/// bitset containers ([`crate::roaring`]).
pub(crate) fn and_words(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len(), "kernel word-count mismatch");
    let mut d = dst.chunks_exact_mut(UNROLL);
    let mut s = src.chunks_exact(UNROLL);
    for (dw, sw) in d.by_ref().zip(s.by_ref()) {
        let ([d0, d1, d2, d3], [s0, s1, s2, s3]) = (dw, sw) else {
            unreachable!("chunks_exact yields exact chunks")
        };
        *d0 &= *s0;
        *d1 &= *s1;
        *d2 &= *s2;
        *d3 &= *s3;
    }
    for (dw, sw) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dw &= *sw;
    }
}

/// In-place two-operand AND over raw word slices: `dst[i] &= a[i] & b[i]`.
///
/// Folding two operands per pass halves the number of times `dst` streams
/// through the cache hierarchy in a multi-way intersection — the difference
/// between k-1 and ⌈(k-1)/2⌉ full passes for a k-way AND.
pub(crate) fn and2_words(dst: &mut [u64], a: &[u64], b: &[u64]) {
    debug_assert_eq!(dst.len(), a.len(), "kernel word-count mismatch");
    debug_assert_eq!(dst.len(), b.len(), "kernel word-count mismatch");
    let mut d = dst.chunks_exact_mut(UNROLL);
    let mut x = a.chunks_exact(UNROLL);
    let mut y = b.chunks_exact(UNROLL);
    for ((dw, xw), yw) in d.by_ref().zip(x.by_ref()).zip(y.by_ref()) {
        let (([d0, d1, d2, d3], [x0, x1, x2, x3]), [y0, y1, y2, y3]) = ((dw, xw), yw) else {
            unreachable!("chunks_exact yields exact chunks")
        };
        *d0 &= *x0 & *y0;
        *d1 &= *x1 & *y1;
        *d2 &= *x2 & *y2;
        *d3 &= *x3 & *y3;
    }
    for ((dw, xw), yw) in d
        .into_remainder()
        .iter_mut()
        .zip(x.remainder())
        .zip(y.remainder())
    {
        *dw &= *xw & *yw;
    }
}

/// Fused construct-and-AND over raw word slices: returns `a[i] & b[i]` as a
/// fresh vector, writing each word exactly once (no clone-then-AND pass).
/// The exact-size zip lowers to the same autovectorized straight-line body
/// as the unrolled kernels.
pub(crate) fn and2_new(a: &[u64], b: &[u64]) -> Vec<u64> {
    debug_assert_eq!(a.len(), b.len(), "kernel word-count mismatch");
    a.iter().zip(b).map(|(x, y)| x & y).collect()
}

/// In-place bitwise OR over raw word slices: `dst[i] |= src[i]`.
pub(crate) fn or_words(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len(), "kernel word-count mismatch");
    let mut d = dst.chunks_exact_mut(UNROLL);
    let mut s = src.chunks_exact(UNROLL);
    for (dw, sw) in d.by_ref().zip(s.by_ref()) {
        let ([d0, d1, d2, d3], [s0, s1, s2, s3]) = (dw, sw) else {
            unreachable!("chunks_exact yields exact chunks")
        };
        *d0 |= *s0;
        *d1 |= *s1;
        *d2 |= *s2;
        *d3 |= *s3;
    }
    for (dw, sw) in d.into_remainder().iter_mut().zip(s.remainder()) {
        *dw |= *sw;
    }
}

/// Population count over raw words, 4×-unrolled into four independent
/// accumulators (breaks the loop-carried dependency of a single running sum).
pub(crate) fn popcount_words(words: &[u64]) -> usize {
    let mut chunks = words.chunks_exact(UNROLL);
    let (mut c0, mut c1, mut c2, mut c3) = (0usize, 0usize, 0usize, 0usize);
    for w in chunks.by_ref() {
        let [w0, w1, w2, w3] = w else {
            unreachable!("chunks_exact yields exact chunks")
        };
        c0 += w0.count_ones() as usize;
        c1 += w1.count_ones() as usize;
        c2 += w2.count_ones() as usize;
        c3 += w3.count_ones() as usize;
    }
    let tail: usize = chunks
        .remainder()
        .iter()
        .map(|w| w.count_ones() as usize)
        .sum();
    c0 + c1 + c2 + c3 + tail
}

/// A fixed-length, uncompressed bitmap (one bit per fact row).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitmap {
    len: usize,
    words: Vec<u64>,
}

impl Bitmap {
    /// Creates an all-zero bitmap covering `len` rows.
    #[must_use]
    pub fn new(len: usize) -> Self {
        Bitmap {
            len,
            words: vec![0u64; len.div_ceil(64)],
        }
    }

    /// Creates an all-one bitmap covering `len` rows.
    #[must_use]
    pub fn ones(len: usize) -> Self {
        let mut b = Bitmap {
            len,
            words: vec![!0u64; len.div_ceil(64)],
        };
        b.clear_tail();
        b
    }

    /// Builds a bitmap from an iterator of set-bit positions.
    ///
    /// # Panics
    ///
    /// Panics if any position is out of range.
    #[must_use]
    pub fn from_positions(len: usize, positions: impl IntoIterator<Item = usize>) -> Self {
        let mut b = Bitmap::new(len);
        for p in positions {
            b.set(p, true);
        }
        b
    }

    fn clear_tail(&mut self) {
        let tail_bits = self.len % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }

    /// Number of rows covered by the bitmap.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap covers zero rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    #[must_use]
    pub fn get(&self, idx: usize) -> bool {
        assert!(
            idx < self.len,
            "bit index {idx} out of range ({})",
            self.len
        );
        (self.words[idx / 64] >> (idx % 64)) & 1 == 1
    }

    /// Sets bit `idx` to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn set(&mut self, idx: usize, value: bool) {
        assert!(
            idx < self.len,
            "bit index {idx} out of range ({})",
            self.len
        );
        let mask = 1u64 << (idx % 64);
        if value {
            self.words[idx / 64] |= mask;
        } else {
            self.words[idx / 64] &= !mask;
        }
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        popcount_words(&self.words)
    }

    /// True if no bit is set.
    #[must_use]
    pub fn is_all_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if every bit is set.
    #[must_use]
    pub fn is_all_one(&self) -> bool {
        self.count_ones() == self.len
    }

    /// Bitwise AND with another bitmap of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        Bitmap {
            len: self.len,
            words: and2_new(&self.words, &other.words),
        }
    }

    /// Multi-way intersection: ANDs all `bitmaps` together with the unrolled
    /// kernels — a fused construct-and-AND pass builds the accumulator from
    /// the first two operands, then the remaining operands fold in two per
    /// memory pass.  This is the hot operation of star-join selection, where
    /// one bitmap per predicate is intersected.
    ///
    /// An intersection of *zero* operands has no defined result length (its
    /// neutral element would be an all-one bitmap of unknown length) — use
    /// [`Bitmap::try_and_many`] when the operand list may be empty.
    ///
    /// # Panics
    ///
    /// Panics if `bitmaps` is empty or the lengths differ.
    #[must_use]
    pub fn and_many(bitmaps: &[&Bitmap]) -> Bitmap {
        let Some(result) = Self::try_and_many(bitmaps) else {
            panic!(
                "Bitmap::and_many of zero operands has no defined length \
                 (the neutral element would be Bitmap::ones of unknown size); \
                 pass at least one bitmap or use try_and_many"
            )
        };
        result
    }

    /// Multi-way intersection that reports the empty-operand case instead of
    /// panicking: returns `None` for an empty slice (the intersection of
    /// nothing is all-ones of *unknown* length and cannot be represented).
    ///
    /// # Panics
    ///
    /// Panics if the operand lengths differ.
    #[must_use]
    pub fn try_and_many(bitmaps: &[&Bitmap]) -> Option<Bitmap> {
        let (&first, rest) = bitmaps.split_first()?;
        let Some((&second, more)) = rest.split_first() else {
            return Some(first.clone());
        };
        assert_eq!(first.len, second.len, "bitmap length mismatch");
        let mut acc = Bitmap {
            len: first.len,
            words: and2_new(&first.words, &second.words),
        };
        acc.and_assign_many(more);
        Some(acc)
    }

    /// In-place bitwise AND (4×-unrolled kernel).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn and_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        and_words(&mut self.words, &other.words);
    }

    /// In-place multi-way AND: folds all `others` into `self` with the
    /// unrolled kernels, two operands per pass plus one single-operand pass
    /// for an odd trailing operand.  Unlike
    /// [`Bitmap::and_many`] this allocates nothing — the engine's
    /// per-fragment selection uses it to fold every predicate bitmap into
    /// the first one.
    ///
    /// # Panics
    ///
    /// Panics if any length differs.
    pub fn and_assign_many(&mut self, others: &[&Bitmap]) {
        assert!(
            others.iter().all(|b| b.len == self.len),
            "bitmap length mismatch"
        );
        let mut pairs = others.chunks_exact(2);
        for pair in pairs.by_ref() {
            let [a, b] = pair else {
                unreachable!("chunks_exact yields exact chunks")
            };
            and2_words(&mut self.words, &a.words, &b.words);
        }
        if let [last] = pairs.remainder() {
            and_words(&mut self.words, &last.words);
        }
    }

    /// Fraction of set bits, in `[0, 1]` (0 for an empty bitmap).
    #[must_use]
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Bitwise OR with another bitmap of the same length.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// In-place bitwise OR (4×-unrolled kernel).
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn or_assign(&mut self, other: &Bitmap) {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        or_words(&mut self.words, &other.words);
    }

    /// Bitwise complement (within the bitmap's length).
    #[must_use]
    pub fn not(&self) -> Bitmap {
        let mut out = Bitmap {
            len: self.len,
            words: self.words.iter().map(|w| !w).collect(),
        };
        out.clear_tail();
        out
    }

    /// Iterates over the positions of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(wi, &word)| {
            let mut w = word;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros() as usize;
                    w &= w - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }

    /// Extracts the sub-bitmap for rows `range` (used for fragment-aligned
    /// bitmap fragments).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the bitmap length.
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bitmap {
        assert!(range.end <= self.len, "slice out of range");
        let mut out = Bitmap::new(range.len());
        for (i, idx) in range.enumerate() {
            if self.get(idx) {
                out.set(i, true);
            }
        }
        out
    }

    /// Size of the uncompressed representation in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Access to the underlying words (for compression).
    #[must_use]
    pub(crate) fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the underlying words (for decompression).  Callers
    /// must preserve the tail invariant (bits beyond `len` stay zero).
    #[must_use]
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Rebuilds a bitmap from its raw words (the serialization decode path).
    /// Tail bits beyond `len` are cleared to restore the invariant.
    ///
    /// # Panics
    ///
    /// Panics if the word count does not match `len`.
    #[must_use]
    pub(crate) fn from_words(len: usize, words: Vec<u64>) -> Bitmap {
        assert_eq!(words.len(), len.div_ceil(64), "bitmap word-count mismatch");
        let mut b = Bitmap { len, words };
        b.clear_tail();
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = Bitmap::new(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        assert!(b.is_all_zero());
        b.set(0, true);
        b.set(64, true);
        b.set(129, true);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert!(!b.get(1));
        assert_eq!(b.count_ones(), 3);
        b.set(64, false);
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn ones_and_not_respect_length() {
        let b = Bitmap::ones(70);
        assert_eq!(b.count_ones(), 70);
        assert!(b.is_all_one());
        let z = b.not();
        assert!(z.is_all_zero());
        assert_eq!(z.not().count_ones(), 70);
    }

    #[test]
    fn boolean_operations() {
        let a = Bitmap::from_positions(10, [1, 3, 5, 7]);
        let b = Bitmap::from_positions(10, [3, 4, 5, 6]);
        assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), vec![3, 5]);
        assert_eq!(
            a.or(&b).iter_ones().collect::<Vec<_>>(),
            vec![1, 3, 4, 5, 6, 7]
        );
        let mut c = a.clone();
        c.and_assign(&b);
        assert_eq!(c, a.and(&b));
        let mut d = a.clone();
        d.or_assign(&b);
        assert_eq!(d, a.or(&b));
    }

    #[test]
    fn and_many_matches_chained_and() {
        let a = Bitmap::from_positions(200, (0..200).filter(|i| i % 2 == 0));
        let b = Bitmap::from_positions(200, (0..200).filter(|i| i % 3 == 0));
        let c = Bitmap::from_positions(200, (0..200).filter(|i| i % 5 == 0));
        assert_eq!(Bitmap::and_many(&[&a, &b, &c]), a.and(&b).and(&c));
        assert_eq!(Bitmap::and_many(&[&a]), a);
        assert_eq!(
            Bitmap::and_many(&[&a, &b, &c])
                .iter_ones()
                .collect::<Vec<_>>(),
            (0..200usize).filter(|i| i % 30 == 0).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "at least one bitmap")]
    fn and_many_rejects_empty_input() {
        let _ = Bitmap::and_many(&[]);
    }

    #[test]
    fn try_and_many_reports_empty_input_instead_of_panicking() {
        assert_eq!(Bitmap::try_and_many(&[]), None);
        let a = Bitmap::from_positions(100, [1, 50, 99]);
        let b = Bitmap::from_positions(100, [1, 99]);
        assert_eq!(Bitmap::try_and_many(&[&a, &b]), Some(a.and(&b)));
        assert_eq!(Bitmap::try_and_many(&[&a]), Some(a));
    }

    #[test]
    fn unrolled_kernels_handle_non_multiple_of_four_word_counts() {
        // 7 words = one full 4-word chunk + a 3-word scalar tail, and the
        // last word is also partial whenever len % 64 != 0.
        for len in [0usize, 1, 63, 64, 65, 256, 257, 448, 449] {
            let a = Bitmap::from_positions(len, (0..len).filter(|i| i % 3 == 0));
            let b = Bitmap::from_positions(len, (0..len).filter(|i| i % 4 == 0));
            let and_expected: Vec<usize> = (0..len).filter(|i| i % 12 == 0).collect();
            let or_expected: Vec<usize> = (0..len).filter(|i| i % 3 == 0 || i % 4 == 0).collect();
            assert_eq!(a.and(&b).iter_ones().collect::<Vec<_>>(), and_expected);
            assert_eq!(a.or(&b).iter_ones().collect::<Vec<_>>(), or_expected);
            assert_eq!(a.count_ones(), len.div_ceil(3));
        }
    }

    #[test]
    fn and_assign_many_matches_and_many() {
        let a = Bitmap::from_positions(200, (0..200).filter(|i| i % 2 == 0));
        let b = Bitmap::from_positions(200, (0..200).filter(|i| i % 3 == 0));
        let c = Bitmap::from_positions(200, (0..200).filter(|i| i % 5 == 0));
        let mut acc = a.clone();
        acc.and_assign_many(&[&b, &c]);
        assert_eq!(acc, Bitmap::and_many(&[&a, &b, &c]));
        let mut unchanged = a.clone();
        unchanged.and_assign_many(&[]);
        assert_eq!(unchanged, a);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_assign_many_rejects_length_mismatch() {
        let mut a = Bitmap::new(10);
        let b = Bitmap::new(11);
        a.and_assign_many(&[&b]);
    }

    #[test]
    fn density_is_fraction_of_ones() {
        assert_eq!(Bitmap::new(0).density(), 0.0);
        assert_eq!(Bitmap::ones(64).density(), 1.0);
        assert!((Bitmap::from_positions(100, 0..25).density() - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_many_rejects_length_mismatch() {
        let a = Bitmap::new(10);
        let b = Bitmap::new(11);
        let _ = Bitmap::and_many(&[&a, &b]);
    }

    #[test]
    fn iter_ones_in_order() {
        let positions = vec![0, 63, 64, 65, 127, 128, 199];
        let b = Bitmap::from_positions(200, positions.clone());
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), positions);
    }

    #[test]
    fn slicing() {
        let b = Bitmap::from_positions(100, [10, 20, 30, 40]);
        let s = b.slice(15..35);
        assert_eq!(s.len(), 20);
        assert_eq!(s.iter_ones().collect::<Vec<_>>(), vec![5, 15]);
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::new(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert!(b.is_all_zero());
        assert!(b.is_all_one()); // vacuously true
        assert_eq!(b.iter_ones().count(), 0);
    }

    #[test]
    fn size_bytes() {
        assert_eq!(Bitmap::new(64).size_bytes(), 8);
        assert_eq!(Bitmap::new(65).size_bytes(), 16);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        let _ = Bitmap::new(10).get(10);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_length_mismatch_panics() {
        let _ = Bitmap::new(10).and(&Bitmap::new(11));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_bitmap(len: usize) -> impl Strategy<Value = Bitmap> {
        proptest::collection::vec(proptest::bool::ANY, len).prop_map(move |bits| {
            let mut b = Bitmap::new(len);
            for (i, bit) in bits.into_iter().enumerate() {
                b.set(i, bit);
            }
            b
        })
    }

    proptest! {
        /// De Morgan: !(a & b) == !a | !b, restricted to the bitmap length.
        #[test]
        fn prop_de_morgan(a in arb_bitmap(200), b in arb_bitmap(200)) {
            prop_assert_eq!(a.and(&b).not(), a.not().or(&b.not()));
        }

        /// AND is an intersection of set-bit positions; OR a union.
        #[test]
        fn prop_and_or_set_semantics(a in arb_bitmap(150), b in arb_bitmap(150)) {
            use std::collections::BTreeSet;
            let sa: BTreeSet<_> = a.iter_ones().collect();
            let sb: BTreeSet<_> = b.iter_ones().collect();
            let and: BTreeSet<_> = a.and(&b).iter_ones().collect();
            let or: BTreeSet<_> = a.or(&b).iter_ones().collect();
            prop_assert_eq!(and, sa.intersection(&sb).copied().collect::<BTreeSet<_>>());
            prop_assert_eq!(or, sa.union(&sb).copied().collect::<BTreeSet<_>>());
        }

        /// and_many over any stack of bitmaps equals the left fold of binary
        /// ANDs, including the tail-word invariant.
        #[test]
        fn prop_and_many_is_fold_of_and(
            a in arb_bitmap(170), b in arb_bitmap(170), c in arb_bitmap(170)
        ) {
            let folded = a.and(&b).and(&c);
            prop_assert_eq!(Bitmap::and_many(&[&a, &b, &c]), folded.clone());
            prop_assert_eq!(folded.count_ones(), Bitmap::and_many(&[&c, &b, &a]).count_ones());
        }

        /// count_ones matches iter_ones length; complement counts are exact.
        #[test]
        fn prop_counts(a in arb_bitmap(173)) {
            prop_assert_eq!(a.count_ones(), a.iter_ones().count());
            prop_assert_eq!(a.count_ones() + a.not().count_ones(), 173);
        }

        /// Slicing then counting equals counting within the range.
        #[test]
        fn prop_slice_counts(a in arb_bitmap(256), start in 0usize..256, len in 0usize..256) {
            let end = (start + len).min(256);
            let slice = a.slice(start..end);
            let expected = a.iter_ones().filter(|&p| p >= start && p < end).count();
            prop_assert_eq!(slice.count_ones(), expected);
        }
    }
}
