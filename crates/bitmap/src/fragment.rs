//! Bitmap fragmentation aligned with fact-table fragments.
//!
//! The paper partitions every bitmap with the *same* fragmentation as the
//! fact table, "meaning that each bitmap of any bitmap index is partitioned
//! into n bitmap fragments.  This ensures that the bits of a bitmap fragment
//! refer to exactly one fact fragment and allows different fact fragments to
//! be processed independently" (§4).  This module provides the sizing
//! arithmetic used by the thresholds, the cost model and the simulator, plus
//! a materialised splitter used in tests to verify the alignment property.

use serde::{Deserialize, Serialize};

use schema::PageSizing;

use crate::bitvec::Bitmap;

/// Sizing of bitmap fragments for an `n`-fragment fact-table fragmentation.
///
/// By default sizes are verbatim (one bit per fact row).  When the bitmaps
/// are stored in a compressed representation, a *measured* compression
/// ratio ([`BitmapFragmentation::with_compression_ratio`]) scales the
/// physical byte/page figures so analytic page counts reflect what the
/// chosen representation actually occupies.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BitmapFragmentation {
    fragments: u64,
    fact_rows: u64,
    page_size_bytes: u64,
    /// Verbatim bytes over stored bytes; 1.0 = uncompressed.
    compression_ratio: f64,
}

impl BitmapFragmentation {
    /// Creates sizing information for `fragments` fact fragments with
    /// verbatim (uncompressed) bitmap sizes.
    ///
    /// # Panics
    ///
    /// Panics if `fragments` is zero.
    #[must_use]
    pub fn new(sizing: &PageSizing, fragments: u64) -> Self {
        assert!(fragments > 0, "fragment count must be positive");
        BitmapFragmentation {
            fragments,
            fact_rows: sizing.fact_rows(),
            page_size_bytes: sizing.page_size_bytes(),
            compression_ratio: 1.0,
        }
    }

    /// Applies a measured compression ratio (verbatim bytes over stored
    /// bytes, e.g. from [`crate::ReprStats::compression_ratio`]) to the
    /// physical byte/page figures.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not strictly positive and finite.
    #[must_use]
    pub fn with_compression_ratio(mut self, ratio: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio > 0.0,
            "compression ratio must be positive and finite"
        );
        self.compression_ratio = ratio;
        self
    }

    /// The applied compression ratio (1.0 = verbatim).
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        self.compression_ratio
    }

    /// Number of fact (and therefore bitmap) fragments.
    #[must_use]
    pub fn fragments(&self) -> u64 {
        self.fragments
    }

    /// Average number of fact rows (*logical* bits) per fragment —
    /// unaffected by compression.
    #[must_use]
    pub fn bits_per_fragment(&self) -> f64 {
        self.fact_rows as f64 / self.fragments as f64
    }

    /// Average *stored* bitmap-fragment size in bytes, after compression.
    #[must_use]
    pub fn bytes_per_fragment(&self) -> f64 {
        self.bits_per_fragment() / 8.0 / self.compression_ratio
    }

    /// Average bitmap-fragment size in pages (fractional) — the quantity
    /// reported in Table 6 and constrained by the thresholds of §4.4.
    #[must_use]
    pub fn pages_per_fragment(&self) -> f64 {
        self.bytes_per_fragment() / self.page_size_bytes as f64
    }

    /// Whole pages that must be read to fetch one bitmap fragment.
    #[must_use]
    pub fn whole_pages_per_fragment(&self) -> u64 {
        (self.pages_per_fragment().ceil() as u64).max(1)
    }

    /// I/O operations needed to read one bitmap fragment with the given
    /// prefetch granule (in pages).
    #[must_use]
    pub fn io_ops_per_fragment(&self, prefetch_pages: u64) -> u64 {
        assert!(prefetch_pages > 0);
        self.whole_pages_per_fragment().div_ceil(prefetch_pages)
    }
}

/// Splits a materialised bitmap into per-fragment bitmaps, given the fragment
/// id of every fact row.  Used to verify the alignment invariant: bit `i` of
/// fragment `f`'s bitmap refers to the `i`-th row assigned to fragment `f`.
#[must_use]
pub fn split_bitmap_by_fragment(
    bitmap: &Bitmap,
    row_fragments: &[u64],
    fragment_count: u64,
) -> Vec<Bitmap> {
    assert_eq!(bitmap.len(), row_fragments.len(), "one fragment id per row");
    // Count rows per fragment to size the per-fragment bitmaps.
    let mut counts = vec![0usize; fragment_count as usize];
    for &f in row_fragments {
        counts[f as usize] += 1;
    }
    let mut fragments: Vec<Bitmap> = counts.iter().map(|&c| Bitmap::new(c)).collect();
    let mut next_local = vec![0usize; fragment_count as usize];
    for (row, &f) in row_fragments.iter().enumerate() {
        let local = next_local[f as usize];
        next_local[f as usize] += 1;
        if bitmap.get(row) {
            fragments[f as usize].set(local, true);
        }
    }
    fragments
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::apb1::apb1_schema;
    use schema::PageSizing;

    #[test]
    fn table_6_fragment_sizes() {
        let sizing = PageSizing::new(&apb1_schema());
        let mg = BitmapFragmentation::new(&sizing, 11_520);
        let mc = BitmapFragmentation::new(&sizing, 23_040);
        let mcode = BitmapFragmentation::new(&sizing, 345_600);
        assert!((mg.pages_per_fragment() - 4.94).abs() < 0.05);
        assert!((mc.pages_per_fragment() - 2.47).abs() < 0.05);
        assert!((mcode.pages_per_fragment() - 0.165).abs() < 0.01);
        // Whole-page / prefetch rounding as used in Table 6's parentheses.
        assert_eq!(mg.whole_pages_per_fragment(), 5);
        assert_eq!(mc.whole_pages_per_fragment(), 3);
        assert_eq!(mcode.whole_pages_per_fragment(), 1);
    }

    #[test]
    fn io_ops_respect_prefetch_granule() {
        let sizing = PageSizing::new(&apb1_schema());
        let mg = BitmapFragmentation::new(&sizing, 11_520);
        assert_eq!(mg.io_ops_per_fragment(5), 1);
        assert_eq!(mg.io_ops_per_fragment(1), 5);
        assert_eq!(mg.io_ops_per_fragment(2), 3);
    }

    #[test]
    fn bits_and_bytes_consistent() {
        let sizing = PageSizing::new(&apb1_schema());
        let f = BitmapFragmentation::new(&sizing, 1_000);
        assert!((f.bits_per_fragment() - 1_866_240.0).abs() < 1.0);
        assert!((f.bytes_per_fragment() * 8.0 - f.bits_per_fragment()).abs() < 1e-6);
        assert_eq!(f.fragments(), 1_000);
        assert_eq!(f.compression_ratio(), 1.0);
    }

    #[test]
    fn compression_ratio_scales_physical_sizes_only() {
        let sizing = PageSizing::new(&apb1_schema());
        let verbatim = BitmapFragmentation::new(&sizing, 11_520);
        let compressed = verbatim.with_compression_ratio(4.0);
        assert_eq!(compressed.compression_ratio(), 4.0);
        // Logical bits are untouched; physical bytes/pages shrink 4x.
        assert_eq!(compressed.bits_per_fragment(), verbatim.bits_per_fragment());
        assert!(
            (compressed.bytes_per_fragment() * 4.0 - verbatim.bytes_per_fragment()).abs() < 1e-6
        );
        assert!(
            (compressed.pages_per_fragment() * 4.0 - verbatim.pages_per_fragment()).abs() < 1e-9
        );
        // 4.94 pages verbatim -> 1.23 compressed -> 2 whole pages, 1 I/O.
        assert_eq!(compressed.whole_pages_per_fragment(), 2);
        assert_eq!(compressed.io_ops_per_fragment(5), 1);
        assert_eq!(compressed.io_ops_per_fragment(1), 2);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_positive_compression_ratio_rejected() {
        let sizing = PageSizing::new(&apb1_schema());
        let _ = BitmapFragmentation::new(&sizing, 10).with_compression_ratio(0.0);
    }

    #[test]
    fn split_preserves_bits_and_alignment() {
        // 10 rows in 3 fragments assigned round-robin.
        let row_fragments: Vec<u64> = (0..10).map(|i| i % 3).collect();
        let bitmap = Bitmap::from_positions(10, [0, 3, 4, 9]);
        let parts = split_bitmap_by_fragment(&bitmap, &row_fragments, 3);
        assert_eq!(parts.len(), 3);
        // Fragment 0 holds rows 0,3,6,9 → local bits 0 (row0), 1 (row3), 3 (row9).
        assert_eq!(parts[0].iter_ones().collect::<Vec<_>>(), vec![0, 1, 3]);
        // Fragment 1 holds rows 1,4,7 → local bit 1 (row 4).
        assert_eq!(parts[1].iter_ones().collect::<Vec<_>>(), vec![1]);
        // Fragment 2 holds rows 2,5,8 → no hits.
        assert!(parts[2].is_all_zero());
        // Total set bits preserved.
        let total: usize = parts.iter().map(Bitmap::count_ones).sum();
        assert_eq!(total, bitmap.count_ones());
    }

    #[test]
    #[should_panic(expected = "fragment count must be positive")]
    fn zero_fragments_rejected() {
        let sizing = PageSizing::new(&apb1_schema());
        let _ = BitmapFragmentation::new(&sizing, 0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Splitting conserves set bits and sizes fragments by row counts.
        #[test]
        fn prop_split_conservation(
            bits in proptest::collection::vec(proptest::bool::ANY, 1..300),
            fragment_count in 1u64..8,
        ) {
            let n = bits.len();
            let mut bitmap = Bitmap::new(n);
            for (i, b) in bits.iter().enumerate() {
                bitmap.set(i, *b);
            }
            let row_fragments: Vec<u64> = (0..n as u64).map(|i| i % fragment_count).collect();
            let parts = split_bitmap_by_fragment(&bitmap, &row_fragments, fragment_count);
            let total: usize = parts.iter().map(Bitmap::count_ones).sum();
            prop_assert_eq!(total, bitmap.count_ones());
            let total_len: usize = parts.iter().map(Bitmap::len).sum();
            prop_assert_eq!(total_len, n);
        }
    }
}
