//! Adaptive bitmap representations: plain, WAH or roaring, per bitmap.
//!
//! The paper sizes its bitmap join indices as if every bitmap were stored
//! verbatim, noting only that the overhead "may be reduced by compressing
//! the bitmaps".  This module makes the whole stack representation-aware:
//! a [`BitmapRepr`] is an uncompressed [`Bitmap`], a run-compressed
//! [`WahBitmap`] or a hybrid-container [`RoaringBitmap`], and a
//! [`RepresentationPolicy`] decides — per bitmap, at index-build time —
//! which form to keep.
//!
//! The adaptive policy chooses among all three by **measured size**: the
//! roaring form is always a candidate (its per-chunk chooser degrades
//! gracefully at any density), the WAH form is attempted when the density
//! `d` satisfies `min(d, 1 - d) <= max_density` (sparse bitmaps compress
//! through zero fills, near-full ones through one fills), and a compressed
//! form is kept only when it wins by at least
//! [`RepresentationPolicy::MIN_COMPRESSION_GAIN`] over verbatim storage —
//! the smallest winner is stored, ties preferring roaring (whose kernels
//! are faster than WAH's run merge).  Mid-density bitmaps — e.g. the
//! ~50 %-density bit slices of a hierarchically encoded index — fail the
//! gain bar and stay on the plain fast path.
//!
//! Boolean operations stay in the compressed domain whenever every operand
//! shares a compressed representation ([`WahBitmap::and_many`],
//! [`RoaringBitmap::and_many`]); mixed operand sets fall back to the plain
//! domain.

use serde::{Deserialize, Serialize};

use crate::bitvec::Bitmap;
use crate::roaring::RoaringBitmap;
use crate::wah::WahBitmap;

/// How bitmaps of an index are physically represented.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RepresentationPolicy {
    /// Every bitmap is stored verbatim.
    Plain,
    /// Every bitmap is stored WAH-compressed, even when that is larger.
    Wah,
    /// Every bitmap is stored in roaring hybrid containers, even when the
    /// plain form would be smaller.
    Roaring,
    /// Measured-size choice per bitmap among all three representations:
    /// roaring is always a candidate, WAH when
    /// `min(density, 1 - density) <= max_density`, and a compressed form is
    /// kept only when it wins by at least
    /// [`RepresentationPolicy::MIN_COMPRESSION_GAIN`] — the smallest wins,
    /// ties preferring roaring; keep plain otherwise.
    Adaptive {
        /// The density threshold gating the WAH compression attempt.
        max_density: f64,
    },
}

impl RepresentationPolicy {
    /// Default density threshold of the adaptive policy.
    ///
    /// With 63-bit WAH groups, uniformly random bitmaps denser than ~1.5 %
    /// rarely produce fills, so compression only pays off below that or for
    /// *clustered* bit patterns; 0.1 admits the clustered shapes (hierarchy
    /// ranges, fragment-aligned selections) while the size check rejects
    /// incompressible random ones.
    pub const DEFAULT_MAX_DENSITY: f64 = 0.1;

    /// Minimum size win required before the adaptive policy keeps the
    /// compressed form.
    ///
    /// Compressed-domain intersection costs more per *word* than the plain
    /// word-parallel AND, so a marginal size win (say 1.3x) would trade a
    /// little memory for a much slower hot path.  Requiring at least a 2x
    /// reduction keeps weakly compressible bitmaps (scattered sparse or
    /// near-full patterns) on the plain fast path while still capturing
    /// the order-of-magnitude wins of clustered runs.
    pub const MIN_COMPRESSION_GAIN: f64 = 2.0;

    /// The adaptive policy with the default density threshold.
    #[must_use]
    pub fn adaptive() -> Self {
        RepresentationPolicy::Adaptive {
            max_density: Self::DEFAULT_MAX_DENSITY,
        }
    }
}

impl Default for RepresentationPolicy {
    fn default() -> Self {
        Self::adaptive()
    }
}

/// One bitmap in its chosen physical representation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum BitmapRepr {
    /// Uncompressed, one bit per fact row.
    Plain(Bitmap),
    /// WAH-compressed runs.
    Wah(WahBitmap),
    /// Roaring hybrid containers (array / bitset / runs per 64 Ki chunk).
    Roaring(RoaringBitmap),
}

impl BitmapRepr {
    /// Chooses the representation of `bitmap` under `policy`.
    #[must_use]
    pub fn from_bitmap(bitmap: Bitmap, policy: RepresentationPolicy) -> Self {
        match policy {
            RepresentationPolicy::Plain => BitmapRepr::Plain(bitmap),
            RepresentationPolicy::Wah => BitmapRepr::Wah(WahBitmap::compress(&bitmap)),
            RepresentationPolicy::Roaring => BitmapRepr::Roaring(RoaringBitmap::compress(&bitmap)),
            RepresentationPolicy::Adaptive { max_density } => {
                let plain_bytes = bitmap.size_bytes() as f64;
                let gain_ok = |bytes: usize| {
                    bytes as f64 * RepresentationPolicy::MIN_COMPRESSION_GAIN <= plain_bytes
                };

                // Roaring is always a candidate: its per-chunk chooser never
                // explodes, so only the gain bar can reject it.
                let roaring = RoaringBitmap::compress(&bitmap);
                let mut best: Option<BitmapRepr> = None;
                let mut best_bytes = usize::MAX;
                if gain_ok(roaring.size_bytes()) {
                    best_bytes = roaring.size_bytes();
                    best = Some(BitmapRepr::Roaring(roaring));
                }
                // WAH only under the density gate; it must beat roaring
                // *strictly* — on ties roaring wins, whose container
                // kernels are faster than the WAH run merge, so the
                // chooser never keeps a form that is both larger and
                // slower than an alternative.
                let d = bitmap.density();
                if d.min(1.0 - d) <= max_density {
                    let wah = WahBitmap::compress(&bitmap);
                    if gain_ok(wah.size_bytes()) && wah.size_bytes() < best_bytes {
                        best = Some(BitmapRepr::Wah(wah));
                    }
                }
                best.unwrap_or(BitmapRepr::Plain(bitmap))
            }
        }
    }

    /// Number of rows covered.
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            BitmapRepr::Plain(b) => b.len(),
            BitmapRepr::Wah(w) => w.len(),
            BitmapRepr::Roaring(r) => r.len(),
        }
    }

    /// True when covering zero rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when stored in a compressed form (WAH or roaring).
    #[must_use]
    pub fn is_compressed(&self) -> bool {
        matches!(self, BitmapRepr::Wah(_) | BitmapRepr::Roaring(_))
    }

    /// Number of set bits (computed without decompression).
    #[must_use]
    pub fn count_ones(&self) -> usize {
        match self {
            BitmapRepr::Plain(b) => b.count_ones(),
            BitmapRepr::Wah(w) => w.count_ones(),
            BitmapRepr::Roaring(r) => r.count_ones(),
        }
    }

    /// Fraction of set bits, in `[0, 1]` (0 for an empty bitmap).
    #[must_use]
    pub fn density(&self) -> f64 {
        match self {
            BitmapRepr::Plain(b) => b.density(),
            BitmapRepr::Wah(w) => w.density(),
            BitmapRepr::Roaring(r) => r.density(),
        }
    }

    /// Physical size of the chosen representation in bytes — the quantity
    /// the cost model and page sizing consume.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        match self {
            BitmapRepr::Plain(b) => b.size_bytes(),
            BitmapRepr::Wah(w) => w.size_bytes(),
            BitmapRepr::Roaring(r) => r.size_bytes(),
        }
    }

    /// Size the bitmap would occupy if stored verbatim.
    #[must_use]
    pub fn plain_size_bytes(&self) -> usize {
        self.len().div_ceil(64) * 8
    }

    /// The plain form: a move for [`BitmapRepr::Plain`], a decompression
    /// otherwise.
    #[must_use]
    pub fn into_plain(self) -> Bitmap {
        match self {
            BitmapRepr::Plain(b) => b,
            BitmapRepr::Wah(w) => w.decompress(),
            BitmapRepr::Roaring(r) => r.decompress(),
        }
    }

    /// A plain copy (decompressing if needed).
    #[must_use]
    pub fn to_plain(&self) -> Bitmap {
        self.clone().into_plain()
    }

    /// Borrows the WAH form, if this is the WAH representation.
    #[must_use]
    pub fn as_wah(&self) -> Option<&WahBitmap> {
        match self {
            BitmapRepr::Wah(w) => Some(w),
            _ => None,
        }
    }

    /// Borrows the roaring form, if this is the roaring representation.
    #[must_use]
    pub fn as_roaring(&self) -> Option<&RoaringBitmap> {
        match self {
            BitmapRepr::Roaring(r) => Some(r),
            _ => None,
        }
    }

    /// Collects the WAH forms when *every* operand is WAH.
    fn all_wah<'a>(reprs: impl Iterator<Item = &'a BitmapRepr>) -> Option<Vec<&'a WahBitmap>> {
        reprs.map(BitmapRepr::as_wah).collect()
    }

    /// Collects the roaring forms when *every* operand is roaring.
    fn all_roaring<'a>(
        reprs: impl Iterator<Item = &'a BitmapRepr>,
    ) -> Option<Vec<&'a RoaringBitmap>> {
        reprs.map(BitmapRepr::as_roaring).collect()
    }

    /// Multi-way intersection over representations: stays entirely in the
    /// compressed domain when every operand shares a compressed
    /// representation (all WAH or all roaring), otherwise falls back to a
    /// plain-domain intersection.
    ///
    /// # Panics
    ///
    /// Panics if `reprs` is empty or the lengths differ; use
    /// [`BitmapRepr::try_and_many`] when the operand list may be empty.
    #[must_use]
    pub fn and_many(reprs: &[&BitmapRepr]) -> BitmapRepr {
        assert!(!reprs.is_empty(), "and_many needs at least one bitmap");
        Self::try_and_many(reprs).expect("non-empty operand list intersects")
    }

    /// Fallible multi-way intersection: `None` for an empty operand list
    /// (which has no defined bitmap length), otherwise exactly
    /// [`BitmapRepr::and_many`].
    ///
    /// # Panics
    ///
    /// Panics if the operand lengths differ.
    #[must_use]
    pub fn try_and_many(reprs: &[&BitmapRepr]) -> Option<BitmapRepr> {
        if reprs.is_empty() {
            return None;
        }
        if let Some(wahs) = Self::all_wah(reprs.iter().copied()) {
            return Some(BitmapRepr::Wah(WahBitmap::and_many(&wahs)));
        }
        if let Some(roars) = Self::all_roaring(reprs.iter().copied()) {
            return Some(BitmapRepr::Roaring(RoaringBitmap::and_many(&roars)));
        }
        // Mixed operands: borrow plain ones, decompress only compressed ones.
        let plain: Vec<std::borrow::Cow<'_, Bitmap>> =
            reprs.iter().map(|r| r.borrow_plain()).collect();
        let refs: Vec<&Bitmap> = plain.iter().map(std::convert::AsRef::as_ref).collect();
        Some(BitmapRepr::Plain(Bitmap::and_many(&refs)))
    }

    /// Consuming multi-way intersection — the hot-path variant used by the
    /// execution engine's per-fragment selection: stays entirely in the
    /// compressed domain when every operand shares a compressed
    /// representation (all WAH or all roaring), otherwise folds every
    /// further operand into the first operand's plain form **in place**
    /// ([`Bitmap::and_assign_many`]), with no per-operand result
    /// allocation.  The result is compressed exactly when the whole
    /// intersection ran in the compressed domain.
    ///
    /// # Panics
    ///
    /// Panics if `reprs` is empty or the lengths differ; use
    /// [`BitmapRepr::try_and_many_owned`] when the operand list may be
    /// empty.
    #[must_use]
    pub fn and_many_owned(reprs: Vec<BitmapRepr>) -> BitmapRepr {
        let Some(result) = Self::try_and_many_owned(reprs) else {
            panic!(
                "BitmapRepr::and_many of zero operands has no defined length; \
                 pass at least one bitmap"
            )
        };
        result
    }

    /// Fallible consuming multi-way intersection: `None` for an empty
    /// operand list, otherwise exactly [`BitmapRepr::and_many_owned`].
    ///
    /// # Panics
    ///
    /// Panics if the operand lengths differ.
    #[must_use]
    pub fn try_and_many_owned(reprs: Vec<BitmapRepr>) -> Option<BitmapRepr> {
        if let Some(wahs) = Self::all_wah(reprs.iter()) {
            if !wahs.is_empty() {
                return Some(BitmapRepr::Wah(WahBitmap::and_many(&wahs)));
            }
        }
        if let Some(roars) = Self::all_roaring(reprs.iter()) {
            if !roars.is_empty() {
                return Some(BitmapRepr::Roaring(RoaringBitmap::and_many(&roars)));
            }
        }
        let mut reprs = reprs.into_iter();
        let first = reprs.next()?;
        let mut acc = first.into_plain();
        let rest: Vec<Bitmap> = reprs.map(BitmapRepr::into_plain).collect();
        let rest_refs: Vec<&Bitmap> = rest.iter().collect();
        acc.and_assign_many(&rest_refs);
        Some(BitmapRepr::Plain(acc))
    }

    /// Union of two representations, compressed-domain when both operands
    /// share a compressed representation.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn or(&self, other: &BitmapRepr) -> BitmapRepr {
        match (self, other) {
            (BitmapRepr::Wah(a), BitmapRepr::Wah(b)) => BitmapRepr::Wah(a.or(b)),
            (BitmapRepr::Roaring(a), BitmapRepr::Roaring(b)) => BitmapRepr::Roaring(a.or(b)),
            _ => {
                let a = self.borrow_plain();
                let b = other.borrow_plain();
                BitmapRepr::Plain(a.or(&b))
            }
        }
    }

    /// Borrows the plain form when stored plain, decompressing otherwise.
    pub(crate) fn borrow_plain(&self) -> std::borrow::Cow<'_, Bitmap> {
        match self {
            BitmapRepr::Plain(b) => std::borrow::Cow::Borrowed(b),
            BitmapRepr::Wah(w) => std::borrow::Cow::Owned(w.decompress()),
            BitmapRepr::Roaring(r) => std::borrow::Cow::Owned(r.decompress()),
        }
    }

    /// Iterates over set-bit positions in ascending order, without
    /// decompressing compressed representations.
    pub fn iter_ones(&self) -> Box<dyn Iterator<Item = usize> + '_> {
        match self {
            BitmapRepr::Plain(b) => Box::new(b.iter_ones()),
            BitmapRepr::Wah(w) => Box::new(w.iter_ones()),
            BitmapRepr::Roaring(r) => Box::new(r.iter_ones()),
        }
    }

    /// Serializes into the self-describing `BMRP` byte format
    /// ([`crate::encoding::encode_bitmap_repr`]).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        crate::encoding::encode_bitmap_repr(self)
    }

    /// Deserializes a stream produced by [`BitmapRepr::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns a [`crate::encoding::ReprDecodeError`] on truncated, foreign
    /// or structurally invalid input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, crate::encoding::ReprDecodeError> {
        crate::encoding::decode_bitmap_repr(bytes)
    }
}

/// Aggregate storage statistics over a set of [`BitmapRepr`]s — how many
/// bitmaps chose which representation and how many bytes that saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReprStats {
    /// Total bitmaps counted.
    pub bitmaps: usize,
    /// Bitmaps stored in any compressed form (`wah + roaring`).
    pub compressed: usize,
    /// Bitmaps stored WAH-compressed.
    pub wah: usize,
    /// Bitmaps stored in roaring hybrid containers.
    pub roaring: usize,
    /// Total physical bytes of the chosen representations.
    pub size_bytes: usize,
    /// Total bytes a verbatim (plain) representation would occupy.
    pub plain_size_bytes: usize,
}

impl ReprStats {
    /// Accounts for one more bitmap.
    pub fn absorb(&mut self, repr: &BitmapRepr) {
        self.bitmaps += 1;
        match repr {
            BitmapRepr::Plain(_) => {}
            BitmapRepr::Wah(_) => {
                self.compressed += 1;
                self.wah += 1;
            }
            BitmapRepr::Roaring(_) => {
                self.compressed += 1;
                self.roaring += 1;
            }
        }
        self.size_bytes += repr.size_bytes();
        self.plain_size_bytes += repr.plain_size_bytes();
    }

    /// Merges another aggregate into this one.
    pub fn merge(&mut self, other: ReprStats) {
        self.bitmaps += other.bitmaps;
        self.compressed += other.compressed;
        self.wah += other.wah;
        self.roaring += other.roaring;
        self.size_bytes += other.size_bytes;
        self.plain_size_bytes += other.plain_size_bytes;
    }

    /// Measured compression ratio: verbatim bytes over chosen-representation
    /// bytes (1.0 for an empty set; values > 1 mean compression won).
    #[must_use]
    pub fn compression_ratio(&self) -> f64 {
        if self.size_bytes == 0 {
            1.0
        } else {
            self.plain_size_bytes as f64 / self.size_bytes as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sparse(n: usize) -> Bitmap {
        Bitmap::from_positions(n, (0..n).filter(|i| i % 1_000 == 0))
    }

    fn mid_random(n: usize) -> Bitmap {
        Bitmap::from_positions(n, (0..n).filter(|i| i % 2 == 0))
    }

    #[test]
    fn adaptive_compresses_sparse_keeps_mid_density_plain() {
        let n = 100_000;
        let policy = RepresentationPolicy::default();
        let s = BitmapRepr::from_bitmap(sparse(n), policy);
        assert!(s.is_compressed());
        assert!(s.size_bytes() < s.plain_size_bytes() / 3);

        let m = BitmapRepr::from_bitmap(mid_random(n), policy);
        assert!(!m.is_compressed());
        assert_eq!(m.size_bytes(), m.plain_size_bytes());

        // Near-full bitmaps compress through one fills.
        let dense = BitmapRepr::from_bitmap(Bitmap::ones(n), policy);
        assert!(dense.is_compressed());
        assert!(dense.size_bytes() < 64);
    }

    #[test]
    fn adaptive_rejects_incompressible_sparse_random() {
        // ~6 % density with no clustering: under the density gate, but WAH
        // literals would not shrink it — the size check keeps it plain.
        let n = 100_000;
        let b = Bitmap::from_positions(n, (0..n).filter(|i| i % 17 == 0));
        let repr = BitmapRepr::from_bitmap(b, RepresentationPolicy::default());
        assert!(!repr.is_compressed());
    }

    #[test]
    fn forced_policies_override_the_chooser() {
        let n = 10_000;
        let w = BitmapRepr::from_bitmap(mid_random(n), RepresentationPolicy::Wah);
        assert!(w.is_compressed());
        let p = BitmapRepr::from_bitmap(sparse(n), RepresentationPolicy::Plain);
        assert!(!p.is_compressed());
        let r = BitmapRepr::from_bitmap(mid_random(n), RepresentationPolicy::Roaring);
        assert!(r.is_compressed());
        assert!(r.as_roaring().is_some());
        assert_eq!(r.to_plain(), mid_random(n));
    }

    #[test]
    fn adaptive_prefers_the_smaller_compressed_form() {
        let n = 100_000;
        // Scattered-sparse: WAH literals can't merge (one set bit per
        // 63-bit group) but a roaring array stores 2 bytes per bit.
        let scattered = BitmapRepr::from_bitmap(sparse(n), RepresentationPolicy::default());
        assert!(scattered.as_roaring().is_some(), "{scattered:?}");
        let wah_size = WahBitmap::compress(&sparse(n)).size_bytes();
        assert!(scattered.size_bytes() < wah_size);

        // All-one: a couple of WAH one-fill words beat roaring's per-chunk
        // headers.
        let full = BitmapRepr::from_bitmap(Bitmap::ones(n), RepresentationPolicy::default());
        assert!(full.as_wah().is_some(), "{full:?}");
    }

    #[test]
    fn operations_agree_across_representations() {
        let n = 20_000;
        let a = sparse(n);
        let b = Bitmap::from_positions(n, 5_000..9_000);
        for policy in [
            RepresentationPolicy::Plain,
            RepresentationPolicy::Wah,
            RepresentationPolicy::Roaring,
            RepresentationPolicy::default(),
        ] {
            let ra = BitmapRepr::from_bitmap(a.clone(), policy);
            let rb = BitmapRepr::from_bitmap(b.clone(), policy);
            let and = BitmapRepr::and_many(&[&ra, &rb]);
            assert_eq!(and.to_plain(), a.and(&b), "{policy:?}");
            assert_eq!(
                and.iter_ones().collect::<Vec<_>>(),
                a.and(&b).iter_ones().collect::<Vec<_>>(),
                "{policy:?}"
            );
            assert_eq!(ra.or(&rb).to_plain(), a.or(&b), "{policy:?}");
            assert_eq!(ra.count_ones(), a.count_ones());
            assert_eq!(ra.len(), n);
            assert!(!ra.is_empty());
        }
    }

    #[test]
    fn mixed_operands_fall_back_to_plain() {
        let n = 8_000;
        let wah = BitmapRepr::from_bitmap(sparse(n), RepresentationPolicy::Wah);
        let plain = BitmapRepr::from_bitmap(mid_random(n), RepresentationPolicy::Plain);
        let and = BitmapRepr::and_many(&[&wah, &plain]);
        assert!(!and.is_compressed());
        assert_eq!(and.to_plain(), sparse(n).and(&mid_random(n)));

        // WAH × roaring is also "mixed": both compressed, but there is no
        // shared compressed domain, so the fold lands in the plain one.
        let roaring = BitmapRepr::from_bitmap(mid_random(n), RepresentationPolicy::Roaring);
        let and = BitmapRepr::and_many(&[&wah, &roaring]);
        assert!(!and.is_compressed());
        assert_eq!(and.to_plain(), sparse(n).and(&mid_random(n)));
        let and_owned = BitmapRepr::and_many_owned(vec![wah, roaring]);
        assert!(!and_owned.is_compressed());
        assert_eq!(and_owned.to_plain(), sparse(n).and(&mid_random(n)));
    }

    #[test]
    fn homogeneous_roaring_operands_stay_in_the_roaring_domain() {
        let n = 70_000;
        let a = Bitmap::from_positions(n, (0..n).filter(|i| i % 2 == 0));
        let b = Bitmap::from_positions(n, 10_000..68_000);
        let ra = BitmapRepr::from_bitmap(a.clone(), RepresentationPolicy::Roaring);
        let rb = BitmapRepr::from_bitmap(b.clone(), RepresentationPolicy::Roaring);
        let and = BitmapRepr::and_many(&[&ra, &rb]);
        assert!(and.as_roaring().is_some());
        assert_eq!(and.to_plain(), a.and(&b));
        let and_owned = BitmapRepr::and_many_owned(vec![ra.clone(), rb.clone()]);
        assert!(and_owned.as_roaring().is_some());
        assert_eq!(and_owned.to_plain(), a.and(&b));
        let or = ra.or(&rb);
        assert!(or.as_roaring().is_some());
        assert_eq!(or.to_plain(), a.or(&b));
    }

    #[test]
    fn stats_accumulate_and_measure_compression() {
        let n = 100_000;
        let mut stats = ReprStats::default();
        assert_eq!(stats.compression_ratio(), 1.0);
        let policy = RepresentationPolicy::default();
        stats.absorb(&BitmapRepr::from_bitmap(sparse(n), policy));
        stats.absorb(&BitmapRepr::from_bitmap(mid_random(n), policy));
        stats.absorb(&BitmapRepr::from_bitmap(Bitmap::ones(n), policy));
        assert_eq!(stats.bitmaps, 3);
        assert_eq!(stats.compressed, 2);
        assert_eq!(stats.compressed, stats.wah + stats.roaring);
        assert_eq!(stats.roaring, 1); // scattered-sparse → array containers
        assert_eq!(stats.wah, 1); // all-one → one-fill words
        assert!(stats.size_bytes < stats.plain_size_bytes);
        assert!(stats.compression_ratio() > 1.0);

        let mut merged = ReprStats::default();
        merged.merge(stats);
        merged.merge(stats);
        assert_eq!(merged.bitmaps, 6);
        assert_eq!(merged.wah, 2 * stats.wah);
        assert_eq!(merged.roaring, 2 * stats.roaring);
        assert_eq!(merged.plain_size_bytes, 2 * stats.plain_size_bytes);
    }

    #[test]
    #[should_panic(expected = "at least one bitmap")]
    fn and_many_rejects_empty_input() {
        let _ = BitmapRepr::and_many(&[]);
    }

    #[test]
    fn try_and_many_reports_empty_input_instead_of_panicking() {
        assert_eq!(BitmapRepr::try_and_many(&[]), None);
        assert_eq!(BitmapRepr::try_and_many_owned(vec![]), None);
        let a = BitmapRepr::Plain(Bitmap::from_positions(16, [1, 5, 9]));
        let b = BitmapRepr::Plain(Bitmap::from_positions(16, [5, 9, 12]));
        let expected = BitmapRepr::and_many(&[&a, &b]);
        assert_eq!(BitmapRepr::try_and_many(&[&a, &b]), Some(expected.clone()));
        assert_eq!(BitmapRepr::try_and_many_owned(vec![a, b]), Some(expected));
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The chooser never loses information and the adaptive form is
        /// never larger than the plain one.
        #[test]
        fn prop_chooser_is_lossless_and_never_larger(
            len in 0usize..2_000,
            run_start in 0usize..2_000,
            run_len in 0usize..2_000,
            shape in 0u8..4,
            seed in 0u64..1_000,
        ) {
            let bitmap = crate::test_shapes::shaped_bitmap(len, shape, run_start, run_len, seed);
            let adaptive = BitmapRepr::from_bitmap(bitmap.clone(), RepresentationPolicy::default());
            prop_assert_eq!(adaptive.to_plain(), bitmap.clone());
            prop_assert!(adaptive.size_bytes() <= bitmap.size_bytes());
            prop_assert_eq!(adaptive.count_ones(), bitmap.count_ones());
            let forced = BitmapRepr::from_bitmap(bitmap.clone(), RepresentationPolicy::Wah);
            prop_assert_eq!(forced.to_plain(), bitmap.clone());
            let forced = BitmapRepr::from_bitmap(bitmap.clone(), RepresentationPolicy::Roaring);
            prop_assert_eq!(forced.to_plain(), bitmap);
        }

        /// `and_many` / `or` agree bit-for-bit across all three forced
        /// representations and the adaptive chooser.
        #[test]
        fn prop_and_or_agree_across_representations(
            len in 0usize..1_500,
            run_start in 0usize..1_500,
            run_len in 0usize..1_500,
            shape_a in 0u8..4,
            shape_b in 0u8..4,
            seed in 0u64..1_000,
        ) {
            let a = crate::test_shapes::shaped_bitmap(len, shape_a, run_start, run_len, seed);
            let b = crate::test_shapes::shaped_bitmap(len, shape_b, run_len, run_start, seed ^ 0x5a);
            let expected_and = a.and(&b);
            let expected_or = a.or(&b);
            for policy in [
                RepresentationPolicy::Plain,
                RepresentationPolicy::Wah,
                RepresentationPolicy::Roaring,
                RepresentationPolicy::default(),
            ] {
                let ra = BitmapRepr::from_bitmap(a.clone(), policy);
                let rb = BitmapRepr::from_bitmap(b.clone(), policy);
                let and = BitmapRepr::and_many(&[&ra, &rb]);
                prop_assert_eq!(and.to_plain(), expected_and.clone(), "{:?}", policy);
                prop_assert_eq!(
                    and.count_ones(), expected_and.count_ones(), "{:?}", policy
                );
                let owned = BitmapRepr::and_many_owned(vec![ra.clone(), rb.clone()]);
                prop_assert_eq!(owned.to_plain(), expected_and.clone(), "{:?}", policy);
                prop_assert_eq!(ra.or(&rb).to_plain(), expected_or.clone(), "{:?}", policy);
            }
        }
    }
}
