//! Roaring-style hybrid bitmap containers.
//!
//! The bitmap is split into 64 Ki-bit *chunks* and every chunk is stored in
//! whichever of three container forms encodes it smallest — the classic
//! RoaringBitmap design adapted to this crate's fixed-length bitmaps:
//!
//! * **Array** — a sorted `u16` array of set positions (2 bytes per set
//!   bit): wins for sparse chunks (fewer than 4 096 set bits),
//! * **Bitset** — a verbatim 1 024-word (8 KiB) bitset: wins for dense
//!   mid-entropy chunks where neither positions nor runs compress,
//! * **Runs** — a list of inclusive `(start, end)` runs (4 bytes per run):
//!   wins for clustered chunks (hierarchy ranges, fragment-aligned
//!   selections, all-zero / all-one chunks).
//!
//! Container selection is *canonical*: `select_kind` picks the minimal
//! encoding (ties prefer Array, then Runs) from the chunk's exact
//! cardinality and run count, and every operation re-canonicalises its
//! output, so structural equality coincides with logical equality — the
//! same guarantee [`crate::wah`] gives for WAH.
//!
//! All Boolean operations ([`RoaringBitmap::and`], [`RoaringBitmap::and_many`],
//! [`RoaringBitmap::or`]), counting and iteration work *directly on the
//! containers* — an array∩array intersection touches 2·min(card) bytes
//! instead of 8 KiB, and a bitset∩bitset runs the same 4×-unrolled word
//! kernel as the plain path ([`crate::bitvec`]).  Nothing round-trips
//! through a plain decompress.

use serde::{Deserialize, Serialize};

use crate::bitvec::{self, Bitmap};
use crate::encoding::{Cursor, ReprDecodeError};

/// Bits covered by one container.
pub(crate) const CHUNK_BITS: usize = 1 << 16;
/// Words of a bitset container.
const CHUNK_WORDS: usize = CHUNK_BITS / 64;
/// Encoded payload size of a bitset container.
const BITSET_BYTES: usize = CHUNK_WORDS * 8;
/// Per-container header in [`RoaringBitmap::size_bytes`] accounting and in
/// the serialized form: a 1-byte kind tag plus a 4-byte element count.
const CONTAINER_HEADER_BYTES: usize = 5;
/// Fixed header of the bitmap itself (length + container count bookkeeping).
const BITMAP_HEADER_BYTES: usize = 16;

/// One 64 Ki-bit chunk in its canonical container form.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Container {
    /// Sorted, duplicate-free positions within the chunk.
    Array(Vec<u16>),
    /// Verbatim 1 024-word bitset.
    Bitset(Box<[u64; CHUNK_WORDS]>),
    /// Sorted, disjoint, non-adjacent inclusive runs.
    Runs(Vec<(u16, u16)>),
}

/// Which container form [`select_kind`] chose.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Array,
    Bitset,
    Runs,
}

/// Canonical container choice: minimal encoded payload, ties preferring
/// Array (cheapest to intersect), then Runs, then Bitset.
fn select_kind(card: u32, runs: u32) -> Kind {
    let array_bytes = 2 * card as usize;
    let run_bytes = 4 * runs as usize;
    let mut best = (array_bytes, Kind::Array);
    if run_bytes < best.0 {
        best = (run_bytes, Kind::Runs);
    }
    if BITSET_BYTES < best.0 {
        best = (BITSET_BYTES, Kind::Bitset);
    }
    best.1
}

/// Cardinality and run count of raw chunk words, in one pass.  A run starts
/// at every set bit whose predecessor (across word boundaries) is clear.
fn word_stats(words: &[u64]) -> (u32, u32) {
    let mut card = 0u32;
    let mut runs = 0u32;
    let mut prev_msb = 0u64;
    for &w in words {
        card += w.count_ones();
        runs += (w & !((w << 1) | prev_msb)).count_ones();
        prev_msb = w >> 63;
    }
    (card, runs)
}

/// Applies `f(word_index, mask)` for every word the inclusive run
/// `start..=end` overlaps, with `mask` covering exactly the run's bits in
/// that word.
fn for_run_words(start: u16, end: u16, mut f: impl FnMut(usize, u64)) {
    let (s, e) = (start as usize, end as usize);
    let (ws, we) = (s / 64, e / 64);
    for wi in ws..=we {
        let lo = if wi == ws { s % 64 } else { 0 };
        let hi = if wi == we { e % 64 } else { 63 };
        let width = hi - lo + 1;
        let mask = if width == 64 {
            !0u64
        } else {
            ((1u64 << width) - 1) << lo
        };
        f(wi, mask);
    }
}

/// Extracts the sorted set positions of raw chunk words.
fn array_from_words(words: &[u64]) -> Vec<u16> {
    let mut out = Vec::new();
    for (wi, &word) in words.iter().enumerate() {
        let mut w = word;
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            w &= w - 1;
            out.push((wi * 64 + bit) as u16);
        }
    }
    out
}

/// Extracts the maximal runs of raw chunk words, word-at-a-time (no
/// per-bit loop for long runs).
fn runs_from_words(words: &[u64]) -> Vec<(u16, u16)> {
    let mut out: Vec<(u16, u16)> = Vec::new();
    for (wi, &word) in words.iter().enumerate() {
        let base = (wi * 64) as u32;
        let mut w = word;
        while w != 0 {
            let tz = w.trailing_zeros();
            let ones = (w >> tz).trailing_ones();
            let start = base + tz;
            let end = start + ones - 1;
            match out.last_mut() {
                Some(last) if u32::from(last.1) + 1 == start => last.1 = end as u16,
                _ => out.push((start as u16, end as u16)),
            }
            if tz + ones >= 64 {
                w = 0;
            } else {
                w &= !(((1u64 << ones) - 1) << tz);
            }
        }
    }
    out
}

/// A fresh all-zero bitset container payload.
fn zero_words() -> Box<[u64; CHUNK_WORDS]> {
    // Box the zeroed vec rather than a stack array so debug builds (and
    // Miri) never move 8 KiB through the stack.
    let words: Box<[u64]> = vec![0u64; CHUNK_WORDS].into_boxed_slice();
    match words.try_into() {
        Ok(array) => array,
        Err(_) => unreachable!("vec of CHUNK_WORDS words converts exactly"),
    }
}

/// Run count of a sorted duplicate-free position array.
fn runs_in_sorted(values: &[u16]) -> u32 {
    let mut runs = 0u32;
    // The value that would extend the current run; None before the first
    // value and after a run ending at 65535.
    let mut continuation: Option<u16> = None;
    for &v in values {
        if continuation != Some(v) {
            runs += 1;
        }
        continuation = v.checked_add(1);
    }
    runs
}

impl Container {
    /// Canonical container for raw chunk words (zero-padded conceptually:
    /// `words` may be shorter than [`CHUNK_WORDS`] for the last chunk).
    fn from_words(words: &[u64]) -> Container {
        let (card, runs) = word_stats(words);
        match select_kind(card, runs) {
            Kind::Array => Container::Array(array_from_words(words)),
            Kind::Runs => Container::Runs(runs_from_words(words)),
            Kind::Bitset => {
                let mut out = zero_words();
                out[..words.len()].copy_from_slice(words);
                Container::Bitset(out)
            }
        }
    }

    /// Canonical container for a sorted duplicate-free position array.
    fn from_sorted(values: Vec<u16>) -> Container {
        let card = values.len() as u32;
        match select_kind(card, runs_in_sorted(&values)) {
            Kind::Array => Container::Array(values),
            Kind::Runs => {
                let mut runs: Vec<(u16, u16)> = Vec::new();
                for v in values {
                    match runs.last_mut() {
                        Some(last) if u32::from(last.1) + 1 == u32::from(v) => last.1 = v,
                        _ => runs.push((v, v)),
                    }
                }
                Container::Runs(runs)
            }
            Kind::Bitset => {
                let mut out = zero_words();
                for v in values {
                    out[v as usize / 64] |= 1u64 << (v % 64);
                }
                Container::Bitset(out)
            }
        }
    }

    /// Canonical container for sorted, disjoint, non-adjacent runs.
    fn from_runs(runs: Vec<(u16, u16)>) -> Container {
        let card: u32 = runs
            .iter()
            .map(|&(s, e)| u32::from(e) - u32::from(s) + 1)
            .sum();
        match select_kind(card, runs.len() as u32) {
            Kind::Runs => Container::Runs(runs),
            Kind::Array => {
                let mut out = Vec::with_capacity(card as usize);
                for (s, e) in runs {
                    out.extend((u32::from(s)..=u32::from(e)).map(|v| v as u16));
                }
                Container::Array(out)
            }
            Kind::Bitset => {
                let mut out = zero_words();
                for (s, e) in runs {
                    for_run_words(s, e, |wi, mask| out[wi] |= mask);
                }
                Container::Bitset(out)
            }
        }
    }

    /// Set bits in this container.
    fn count_ones(&self) -> usize {
        match self {
            Container::Array(v) => v.len(),
            Container::Bitset(w) => bitvec::popcount_words(&w[..]),
            Container::Runs(r) => r
                .iter()
                .map(|&(s, e)| (u32::from(e) - u32::from(s) + 1) as usize)
                .sum(),
        }
    }

    /// True when no bit is set (canonical empty containers are arrays or
    /// run lists; a canonical bitset is never empty).
    fn is_empty(&self) -> bool {
        match self {
            Container::Array(v) => v.is_empty(),
            Container::Runs(r) => r.is_empty(),
            Container::Bitset(_) => false,
        }
    }

    /// Encoded payload bytes (excluding the per-container header).
    fn payload_bytes(&self) -> usize {
        match self {
            Container::Array(v) => 2 * v.len(),
            Container::Bitset(_) => BITSET_BYTES,
            Container::Runs(r) => 4 * r.len(),
        }
    }

    /// ORs this container's bits into raw chunk words.
    fn write_into_words(&self, out: &mut [u64; CHUNK_WORDS]) {
        match self {
            Container::Array(v) => {
                for &p in v {
                    out[p as usize / 64] |= 1u64 << (p % 64);
                }
            }
            Container::Bitset(w) => bitvec::or_words(&mut out[..], &w[..]),
            Container::Runs(r) => {
                for &(s, e) in r {
                    for_run_words(s, e, |wi, mask| out[wi] |= mask);
                }
            }
        }
    }
}

/// Sorted-array two-pointer intersection.
fn intersect_sorted(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Galloping-free array × run-list intersection: keeps every array value
/// covered by some run.
fn intersect_array_runs(values: &[u16], runs: &[(u16, u16)]) -> Vec<u16> {
    let mut out = Vec::new();
    let mut ri = 0usize;
    for &v in values {
        while ri < runs.len() && runs[ri].1 < v {
            ri += 1;
        }
        let Some(&(start, _)) = runs.get(ri) else {
            break;
        };
        if start <= v {
            out.push(v);
        }
    }
    out
}

/// Run-list two-pointer intersection (output runs stay sorted, disjoint and
/// non-adjacent because each operand's are).
fn intersect_runs(a: &[(u16, u16)], b: &[(u16, u16)]) -> Vec<(u16, u16)> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let lo = a[i].0.max(b[j].0);
        let hi = a[i].1.min(b[j].1);
        if lo <= hi {
            out.push((lo, hi));
        }
        if a[i].1 <= b[j].1 {
            i += 1;
        } else {
            j += 1;
        }
    }
    out
}

/// Sorted-array union (duplicates collapse).
fn union_sorted(a: &[u16], b: &[u16]) -> Vec<u16> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Run-list union: merge by start, coalescing overlapping *and adjacent*
/// runs so the output stays canonical-maximal.
fn union_runs(a: &[(u16, u16)], b: &[(u16, u16)]) -> Vec<(u16, u16)> {
    let mut out: Vec<(u16, u16)> = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() || j < b.len() {
        let take_a = match (a.get(i), b.get(j)) {
            (Some(ra), Some(rb)) => ra.0 <= rb.0,
            (Some(_), None) => true,
            _ => false,
        };
        let (s, e) = if take_a {
            i += 1;
            a[i - 1]
        } else {
            j += 1;
            b[j - 1]
        };
        match out.last_mut() {
            Some(last) if u32::from(s) <= u32::from(last.1) + 1 => last.1 = last.1.max(e),
            _ => out.push((s, e)),
        }
    }
    out
}

/// Compressed-domain pairwise intersection of two canonical containers.
fn and_containers(a: &Container, b: &Container) -> Container {
    use Container::{Array, Bitset, Runs};
    match (a, b) {
        (Array(x), Array(y)) => Container::from_sorted(intersect_sorted(x, y)),
        (Array(x), Bitset(w)) | (Bitset(w), Array(x)) => Container::from_sorted(
            x.iter()
                .copied()
                .filter(|&v| (w[v as usize / 64] >> (v % 64)) & 1 == 1)
                .collect(),
        ),
        (Array(x), Runs(r)) | (Runs(r), Array(x)) => {
            Container::from_sorted(intersect_array_runs(x, r))
        }
        (Bitset(x), Bitset(y)) => {
            let mut out = x.clone();
            bitvec::and_words(&mut out[..], &y[..]);
            Container::from_words(&out[..])
        }
        (Bitset(w), Runs(r)) | (Runs(r), Bitset(w)) => {
            let mut out = zero_words();
            for &(s, e) in r {
                for_run_words(s, e, |wi, mask| out[wi] |= w[wi] & mask);
            }
            Container::from_words(&out[..])
        }
        (Runs(x), Runs(y)) => Container::from_runs(intersect_runs(x, y)),
    }
}

/// Compressed-domain pairwise union of two canonical containers.
fn or_containers(a: &Container, b: &Container) -> Container {
    use Container::{Array, Runs};
    match (a, b) {
        (Array(x), Array(y)) => Container::from_sorted(union_sorted(x, y)),
        (Runs(x), Runs(y)) => Container::from_runs(union_runs(x, y)),
        // Any operand with a bitset (or the array × runs mix) materialises
        // one 8 KiB chunk and re-canonicalises — still chunk-local, never a
        // whole-bitmap decompress.
        _ => {
            let mut words = zero_words();
            a.write_into_words(&mut words);
            b.write_into_words(&mut words);
            Container::from_words(&words[..])
        }
    }
}

/// A roaring-style compressed bitmap: one canonical container per
/// 64 Ki-bit chunk of a fixed-length bitmap.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoaringBitmap {
    len: usize,
    containers: Vec<Container>,
}

impl RoaringBitmap {
    /// Compresses an uncompressed bitmap.
    #[must_use]
    pub fn compress(bitmap: &Bitmap) -> Self {
        let len = bitmap.len();
        let words = bitmap.words();
        let chunks = len.div_ceil(CHUNK_BITS);
        let mut containers = Vec::with_capacity(chunks);
        for c in 0..chunks {
            let start = c * CHUNK_WORDS;
            let end = (start + CHUNK_WORDS).min(words.len());
            containers.push(Container::from_words(&words[start..end]));
        }
        RoaringBitmap { len, containers }
    }

    /// Decompresses back into an uncompressed bitmap.
    #[must_use]
    pub fn decompress(&self) -> Bitmap {
        let mut out = Bitmap::new(self.len);
        let total_words = out.words().len();
        let words = out.words_mut();
        for (ci, container) in self.containers.iter().enumerate() {
            let start = ci * CHUNK_WORDS;
            let end = (start + CHUNK_WORDS).min(total_words);
            let chunk_words = &mut words[start..end];
            match container {
                // A canonical container never carries bits beyond `len`, so
                // copying only the chunk's in-range words loses nothing.
                Container::Bitset(w) => chunk_words.copy_from_slice(&w[..chunk_words.len()]),
                Container::Array(v) => {
                    for &p in v {
                        chunk_words[p as usize / 64] |= 1u64 << (p % 64);
                    }
                }
                Container::Runs(r) => {
                    for &(s, e) in r {
                        for_run_words(s, e, |wi, mask| chunk_words[wi] |= mask);
                    }
                }
            }
        }
        out
    }

    /// Number of rows covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when covering zero rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits (computed without decompression).
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.containers.iter().map(Container::count_ones).sum()
    }

    /// Fraction of set bits, in `[0, 1]` (0 for an empty bitmap).
    #[must_use]
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Size of the compressed representation in bytes: a fixed header plus
    /// a tag-and-count header and the payload per container.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        BITMAP_HEADER_BYTES
            + self
                .containers
                .iter()
                .map(|c| CONTAINER_HEADER_BYTES + c.payload_bytes())
                .sum::<usize>()
    }

    /// Compressed-domain intersection.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn and(&self, other: &RoaringBitmap) -> RoaringBitmap {
        RoaringBitmap::and_many(&[self, other])
    }

    /// Compressed-domain multi-way intersection: every chunk is intersected
    /// container-by-container with chunk-level early exit (an empty
    /// accumulator chunk skips all remaining operands), never materialising
    /// a plain bitmap.
    ///
    /// # Panics
    ///
    /// Panics if `bitmaps` is empty or the lengths differ.
    #[must_use]
    pub fn and_many(bitmaps: &[&RoaringBitmap]) -> RoaringBitmap {
        let Some((&first, rest)) = bitmaps.split_first() else {
            panic!(
                "RoaringBitmap::and_many of zero operands has no defined length; \
                 pass at least one bitmap"
            )
        };
        assert!(
            rest.iter().all(|b| b.len == first.len),
            "bitmap length mismatch"
        );
        let containers = first
            .containers
            .iter()
            .enumerate()
            .map(|(ci, c)| {
                let mut acc: Option<Container> = None;
                for b in rest {
                    let lhs = acc.as_ref().unwrap_or(c);
                    if lhs.is_empty() {
                        break;
                    }
                    acc = Some(and_containers(lhs, &b.containers[ci]));
                }
                acc.unwrap_or_else(|| c.clone())
            })
            .collect();
        RoaringBitmap {
            len: first.len,
            containers,
        }
    }

    /// Compressed-domain union.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    #[must_use]
    pub fn or(&self, other: &RoaringBitmap) -> RoaringBitmap {
        assert_eq!(self.len, other.len, "bitmap length mismatch");
        let containers = self
            .containers
            .iter()
            .zip(&other.containers)
            .map(|(a, b)| or_containers(a, b))
            .collect();
        RoaringBitmap {
            len: self.len,
            containers,
        }
    }

    /// Iterates over set-bit positions in ascending order, directly over the
    /// containers.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.containers
            .iter()
            .enumerate()
            .flat_map(|(ci, container)| {
                let base = ci * CHUNK_BITS;
                container_ones(container).map(move |p| base + p as usize)
            })
    }

    /// Serializes into a self-describing byte stream (consumed by
    /// [`crate::encoding::encode_bitmap_repr`]).
    pub(crate) fn write_bytes(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        for container in &self.containers {
            match container {
                Container::Array(v) => {
                    out.push(0);
                    out.extend_from_slice(&(v.len() as u32).to_le_bytes());
                    for &p in v {
                        out.extend_from_slice(&p.to_le_bytes());
                    }
                }
                Container::Bitset(w) => {
                    out.push(1);
                    out.extend_from_slice(&(CHUNK_WORDS as u32).to_le_bytes());
                    for word in w.iter() {
                        out.extend_from_slice(&word.to_le_bytes());
                    }
                }
                Container::Runs(r) => {
                    out.push(2);
                    out.extend_from_slice(&(r.len() as u32).to_le_bytes());
                    for &(s, e) in r {
                        out.extend_from_slice(&s.to_le_bytes());
                        out.extend_from_slice(&e.to_le_bytes());
                    }
                }
            }
        }
    }

    /// Deserializes a stream produced by [`RoaringBitmap::write_bytes`],
    /// validating structure (sortedness, chunk ranges, the final-chunk
    /// length bound) and re-canonicalising each container so deserialized
    /// bitmaps compare equal to freshly built ones.
    pub(crate) fn read_bytes(bytes: &[u8]) -> Result<RoaringBitmap, ReprDecodeError> {
        let mut cursor = Cursor::new(bytes);
        let len = cursor.u64()? as usize;
        let chunks = len.div_ceil(CHUNK_BITS);
        let mut containers = Vec::with_capacity(chunks);
        for ci in 0..chunks {
            // Bits of the final chunk beyond `len` must stay clear.
            let chunk_limit = (len - ci * CHUNK_BITS).min(CHUNK_BITS) as u32;
            let tag = cursor.u8()?;
            let count = cursor.u32()? as usize;
            let container = match tag {
                0 => {
                    let mut values = Vec::with_capacity(count.min(CHUNK_BITS));
                    let mut prev: Option<u16> = None;
                    for _ in 0..count {
                        let v = cursor.u16()?;
                        if prev.is_some_and(|p| p >= v) || u32::from(v) >= chunk_limit {
                            return Err(ReprDecodeError::Malformed(
                                "unsorted or out-of-range array container",
                            ));
                        }
                        prev = Some(v);
                        values.push(v);
                    }
                    Container::from_sorted(values)
                }
                1 => {
                    if count != CHUNK_WORDS {
                        return Err(ReprDecodeError::Malformed("bitset container word count"));
                    }
                    let mut words = zero_words();
                    for word in words.iter_mut() {
                        *word = cursor.u64()?;
                    }
                    if any_bit_at_or_above(&words, chunk_limit) {
                        return Err(ReprDecodeError::Malformed(
                            "bitset container sets bits beyond len",
                        ));
                    }
                    Container::from_words(&words[..])
                }
                2 => {
                    let mut runs = Vec::with_capacity(count.min(CHUNK_BITS));
                    let mut prev_end: Option<u16> = None;
                    for _ in 0..count {
                        let s = cursor.u16()?;
                        let e = cursor.u16()?;
                        let disjoint = match prev_end {
                            // Adjacent runs must have been coalesced.
                            Some(p) => u32::from(s) > u32::from(p) + 1,
                            None => true,
                        };
                        if s > e || !disjoint || u32::from(e) >= chunk_limit {
                            return Err(ReprDecodeError::Malformed(
                                "unsorted or out-of-range run container",
                            ));
                        }
                        prev_end = Some(e);
                        runs.push((s, e));
                    }
                    Container::from_runs(runs)
                }
                other => return Err(ReprDecodeError::UnknownContainerTag(other)),
            };
            containers.push(container);
        }
        if !cursor.is_exhausted() {
            return Err(ReprDecodeError::Malformed(
                "trailing bytes after last container",
            ));
        }
        Ok(RoaringBitmap { len, containers })
    }

    /// The container kinds chosen per chunk, for tests and studies:
    /// `'a'` array, `'b'` bitset, `'r'` runs.
    #[must_use]
    pub fn container_kinds(&self) -> Vec<char> {
        self.containers
            .iter()
            .map(|c| match c {
                Container::Array(_) => 'a',
                Container::Bitset(_) => 'b',
                Container::Runs(_) => 'r',
            })
            .collect()
    }
}

/// True when any bit at position `limit` or above is set in the chunk.
fn any_bit_at_or_above(words: &[u64; CHUNK_WORDS], limit: u32) -> bool {
    let limit = limit as usize;
    let full = limit / 64;
    let rem = limit % 64;
    if full >= CHUNK_WORDS {
        return false;
    }
    if rem != 0 && (words[full] >> rem) != 0 {
        return true;
    }
    let rest_from = if rem == 0 { full } else { full + 1 };
    words[rest_from..].iter().any(|&w| w != 0)
}

/// Iterator over one container's set positions.
fn container_ones(container: &Container) -> ContainerOnes<'_> {
    match container {
        Container::Array(v) => ContainerOnes::Array(v.iter()),
        Container::Bitset(w) => ContainerOnes::Bitset {
            words: &w[..],
            word_idx: 0,
            current: w[0],
        },
        Container::Runs(r) => ContainerOnes::Runs {
            runs: r.iter(),
            pos: 1,
            end: 0,
        },
    }
}

/// See [`container_ones`].
enum ContainerOnes<'a> {
    Array(std::slice::Iter<'a, u16>),
    Bitset {
        words: &'a [u64],
        word_idx: usize,
        current: u64,
    },
    Runs {
        runs: std::slice::Iter<'a, (u16, u16)>,
        pos: u32,
        end: u32,
    },
}

impl Iterator for ContainerOnes<'_> {
    type Item = u16;

    fn next(&mut self) -> Option<u16> {
        match self {
            ContainerOnes::Array(iter) => iter.next().copied(),
            ContainerOnes::Bitset {
                words,
                word_idx,
                current,
            } => loop {
                if *current != 0 {
                    let bit = current.trailing_zeros() as usize;
                    *current &= *current - 1;
                    return Some((*word_idx * 64 + bit) as u16);
                }
                *word_idx += 1;
                let &w = words.get(*word_idx)?;
                *current = w;
            },
            ContainerOnes::Runs { runs, pos, end } => {
                if *pos <= *end {
                    let v = *pos as u16;
                    *pos += 1;
                    Some(v)
                } else {
                    let &(s, e) = runs.next()?;
                    *pos = u32::from(s) + 1;
                    *end = u32::from(e);
                    Some(s)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(bitmap: &Bitmap) -> RoaringBitmap {
        let r = RoaringBitmap::compress(bitmap);
        assert_eq!(&r.decompress(), bitmap, "round trip");
        assert_eq!(r.count_ones(), bitmap.count_ones());
        assert_eq!(
            r.iter_ones().collect::<Vec<_>>(),
            bitmap.iter_ones().collect::<Vec<_>>()
        );
        r
    }

    #[test]
    fn container_kinds_follow_chunk_shape() {
        let n = 3 * CHUNK_BITS;
        // Chunk 0 sparse scatter, chunk 1 all-one, chunk 2 dense random.
        let b = Bitmap::from_positions(
            n,
            (0..CHUNK_BITS)
                .step_by(1_000)
                .chain(CHUNK_BITS..2 * CHUNK_BITS)
                .chain((2 * CHUNK_BITS..3 * CHUNK_BITS).filter(|i| i % 2 == 0)),
        );
        let r = rt(&b);
        assert_eq!(r.container_kinds(), vec!['a', 'r', 'b']);
    }

    #[test]
    fn chunk_edge_positions_round_trip() {
        // The canonical boundary cases: last bit of chunk 0 (65535), first
        // bit of chunk 1 (65536), and a run crossing the edge.
        for positions in [
            vec![CHUNK_BITS - 1],
            vec![CHUNK_BITS],
            vec![CHUNK_BITS - 1, CHUNK_BITS],
            (CHUNK_BITS - 10..CHUNK_BITS + 10).collect::<Vec<_>>(),
        ] {
            let b = Bitmap::from_positions(2 * CHUNK_BITS, positions.iter().copied());
            let r = rt(&b);
            assert_eq!(r.iter_ones().collect::<Vec<_>>(), positions);
        }
    }

    #[test]
    fn all_zero_and_all_one_chunks() {
        let n = 2 * CHUNK_BITS + 500;
        let zero = rt(&Bitmap::new(n));
        assert_eq!(zero.count_ones(), 0);
        assert!(zero.size_bytes() < 64);
        let one = rt(&Bitmap::ones(n));
        assert_eq!(one.count_ones(), n);
        // One run per chunk: 4 bytes payload each.
        assert_eq!(one.container_kinds(), vec!['r', 'r', 'r']);
        assert!(one.size_bytes() < 64);
    }

    #[test]
    fn partial_final_chunk_holds_the_length_bound() {
        let n = CHUNK_BITS + 7;
        let b = Bitmap::from_positions(n, [0, CHUNK_BITS - 1, CHUNK_BITS, n - 1]);
        let r = rt(&b);
        assert_eq!(r.len(), n);
        let ones = Bitmap::ones(n);
        let r = rt(&ones);
        assert_eq!(r.count_ones(), n);
    }

    #[test]
    fn and_or_match_plain_across_container_mixes() {
        let n = 2 * CHUNK_BITS + 123;
        // One operand per flavour: scatter (arrays), block (runs), dense
        // (bitsets) — every pairwise container combination is exercised.
        let scatter = Bitmap::from_positions(n, (0..n).step_by(701));
        let block = Bitmap::from_positions(n, 60_000..70_000);
        let dense = Bitmap::from_positions(n, (0..n).filter(|i| i % 2 == 0));
        let operands = [&scatter, &block, &dense];
        for a in operands {
            for b in operands {
                let ra = RoaringBitmap::compress(a);
                let rb = RoaringBitmap::compress(b);
                assert_eq!(ra.and(&rb).decompress(), a.and(b));
                assert_eq!(ra.or(&rb).decompress(), a.or(b));
            }
        }
        let all: Vec<&RoaringBitmap> = operands
            .iter()
            .map(|b| Box::leak(Box::new(RoaringBitmap::compress(b))) as &RoaringBitmap)
            .collect();
        let expected = scatter.and(&block).and(&dense);
        assert_eq!(RoaringBitmap::and_many(&all).decompress(), expected);
    }

    #[test]
    fn empty_and_single_operand() {
        let b = Bitmap::from_positions(100, [1, 2, 3]);
        let r = RoaringBitmap::compress(&b);
        assert_eq!(RoaringBitmap::and_many(&[&r]).decompress(), b);
        let empty = RoaringBitmap::compress(&Bitmap::new(0));
        assert!(empty.is_empty());
        assert_eq!(empty.decompress(), Bitmap::new(0));
        assert_eq!(empty.iter_ones().count(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one bitmap")]
    fn and_many_rejects_empty_input() {
        let _ = RoaringBitmap::and_many(&[]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_many_rejects_length_mismatch() {
        let a = RoaringBitmap::compress(&Bitmap::new(10));
        let b = RoaringBitmap::compress(&Bitmap::new(11));
        let _ = RoaringBitmap::and_many(&[&a, &b]);
    }

    #[test]
    fn size_bytes_tracks_container_payloads() {
        let n = CHUNK_BITS;
        // 100 scattered bits -> array container: 16 + 5 + 200 bytes.
        let sparse = RoaringBitmap::compress(&Bitmap::from_positions(
            n,
            (0..n).step_by(n / 100).take(100),
        ));
        assert_eq!(sparse.size_bytes(), 16 + 5 + 200);
        // Dense random -> bitset container.
        let dense =
            RoaringBitmap::compress(&Bitmap::from_positions(n, (0..n).filter(|i| i % 2 == 0)));
        assert_eq!(dense.size_bytes(), 16 + 5 + 8192);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Compress → decompress is the identity, count/iteration agree with
        /// the plain form, and the serialized stream round-trips — across
        /// lengths straddling the 64 Ki chunk boundary.
        #[test]
        fn prop_roaring_round_trip(
            len in 0usize..140_000,
            run_start in 0usize..140_000,
            run_len in 0usize..140_000,
            shape in 0u8..4,
            seed in 0u64..1_000,
        ) {
            let bitmap = crate::test_shapes::shaped_bitmap(len, shape, run_start, run_len, seed);
            let roaring = RoaringBitmap::compress(&bitmap);
            prop_assert_eq!(roaring.decompress(), bitmap.clone());
            prop_assert_eq!(roaring.count_ones(), bitmap.count_ones());
            prop_assert_eq!(
                roaring.iter_ones().collect::<Vec<_>>(),
                bitmap.iter_ones().collect::<Vec<_>>()
            );
            // build → serialize → deserialize → iter_ones
            let mut bytes = Vec::new();
            roaring.write_bytes(&mut bytes);
            let decoded = RoaringBitmap::read_bytes(&bytes);
            prop_assert_eq!(decoded.as_ref().ok(), Some(&roaring));
            if let Ok(decoded) = decoded {
                prop_assert_eq!(
                    decoded.iter_ones().collect::<Vec<_>>(),
                    bitmap.iter_ones().collect::<Vec<_>>()
                );
            }
        }

        /// Compressed-domain AND/OR equal the plain-domain results.
        #[test]
        fn prop_and_or_match_plain(
            len in 0usize..140_000,
            run_start in 0usize..140_000,
            run_len in 0usize..140_000,
            shape_a in 0u8..4,
            shape_b in 0u8..4,
            seed in 0u64..1_000,
        ) {
            let a = crate::test_shapes::shaped_bitmap(len, shape_a, run_start, run_len, seed);
            let b = crate::test_shapes::shaped_bitmap(len, shape_b, run_len, run_start, seed ^ 0xff);
            let ra = RoaringBitmap::compress(&a);
            let rb = RoaringBitmap::compress(&b);
            prop_assert_eq!(ra.and(&rb).decompress(), a.and(&b));
            prop_assert_eq!(ra.or(&rb).decompress(), a.or(&b));
            prop_assert_eq!(
                RoaringBitmap::and_many(&[&ra, &rb, &ra]).decompress(),
                a.and(&b)
            );
        }
    }
}
