//! End-to-end reconciliation of the `obs` trace with the engine's own
//! metrics: every traced quantity (per-worker busy time, steal counts, rows
//! scanned, per-disk cache traffic) must agree *exactly* with
//! [`exec::ExecMetrics`] / [`exec::IoMetrics`], and the deterministic trace
//! section must be bit-identical across runs, worker counts and MPLs.

#![forbid(unsafe_code)]

use exec::{ExecConfig, FragmentStore, IoConfig, ObsConfig, SchedulerConfig, StarJoinEngine};
use mdhf::Fragmentation;
use obs::{EventKind, FieldKey, Trace, Track};
use schema::apb1::apb1_scaled_down;
use workload::{BoundQuery, InterleavedStream, QueryType};

fn engine() -> StarJoinEngine {
    let schema = apb1_scaled_down();
    let fragmentation = Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
    StarJoinEngine::new(FragmentStore::build(&schema, &fragmentation, 2024))
}

fn stream(engine: &StarJoinEngine, count: usize) -> Vec<BoundQuery> {
    let mut source = InterleavedStream::new(
        engine.store().schema(),
        &[
            QueryType::OneMonthOneGroup,
            QueryType::OneCode,
            QueryType::OneGroup,
            QueryType::OneStore,
        ],
        7,
    );
    source.take_queries(count)
}

fn traced_config(workers: usize, mpl: usize) -> SchedulerConfig {
    SchedulerConfig::new(workers, mpl)
        .with_io(IoConfig::with_disks(5).cache(20_000))
        .with_obs(ObsConfig::enabled())
}

/// Asserts every reconciliation invariant between one run's trace and its
/// pool/disk metrics.
fn assert_reconciles(outcome: &exec::StreamOutcome, trace: &Trace, queries: usize) {
    let pool = &outcome.metrics.pool;
    assert_eq!(trace.dropped, 0, "ring must not overflow in this workload");

    // Query lifecycle: one submit/plan/admit/span/complete per query.
    for kind in [
        EventKind::QuerySubmit,
        EventKind::QueryPlan,
        EventKind::QueryAdmit,
        EventKind::Query,
        EventKind::QueryComplete,
    ] {
        assert_eq!(trace.count_of(kind), queries, "{} per query", kind.name());
    }

    // Worker section: one TaskRun per processed fragment, rows and steals
    // summing to the pool totals.
    assert_eq!(trace.count_of(EventKind::TaskRun), pool.total_fragments());
    assert_eq!(
        trace.sum_field(EventKind::TaskRun, FieldKey::Rows),
        pool.total_rows_scanned()
    );
    assert_eq!(
        trace.count_of(EventKind::Steal),
        pool.total_stolen(),
        "one Steal event per stolen fragment"
    );
    assert_eq!(
        trace.sum_field(EventKind::TaskRun, FieldKey::Stolen) as usize,
        pool.total_stolen()
    );

    // Per-worker simulated busy time reconciles *bitwise*: the trace folds
    // the same f64 charges in the same order as the worker's own counter.
    for worker in &pool.workers {
        let traced = trace.sim_ms_on(Track::Worker(worker.worker as u32), EventKind::TaskRun);
        assert_eq!(
            traced.to_bits(),
            worker.sim_io_ms.to_bits(),
            "worker {} simulated busy time",
            worker.worker
        );
    }

    // Scan section: one Scan per planned task, covering every scanned row.
    assert_eq!(trace.count_of(EventKind::Scan), pool.total_fragments());
    assert_eq!(
        trace.sum_field(EventKind::Scan, FieldKey::Rows),
        pool.total_rows_scanned()
    );

    // Disk section: per-disk service events reconcile with the simulated
    // disk statistics — scans, cache hits, cache misses and pages read.
    let io = pool.io.as_ref().expect("I/O layer enabled");
    for disk in &io.per_disk {
        let track = Track::Disk(disk.disk as u32);
        let events: Vec<_> = trace
            .events_of(EventKind::DiskService)
            .filter(|e| e.track == track)
            .collect();
        assert_eq!(events.len() as u64, disk.scans, "disk {} scans", disk.disk);
        let hits: u64 = events
            .iter()
            .filter_map(|e| e.field(FieldKey::CacheHits))
            .sum();
        let misses: u64 = events
            .iter()
            .filter_map(|e| e.field(FieldKey::CacheMisses))
            .sum();
        assert_eq!(hits, disk.cache_hits, "disk {} cache hits", disk.disk);
        assert_eq!(misses, disk.cache_misses, "disk {} cache misses", disk.disk);
        assert_eq!(misses, disk.pages_read, "disk {} pages read", disk.disk);
    }
}

#[test]
fn scheduler_trace_reconciles_with_metrics() {
    let engine = engine();
    let queries = stream(&engine, 12);
    let outcome = engine.execute_stream(&queries, &traced_config(4, 4));
    let trace = outcome.trace.as_ref().expect("tracing enabled");
    assert_reconciles(&outcome, trace, queries.len());
}

#[test]
fn deterministic_section_is_bit_identical_across_runs_and_shapes() {
    let engine = engine();
    let queries = stream(&engine, 10);
    let reference = engine.execute_stream(&queries, &traced_config(4, 4));
    let reference_trace = reference.trace.as_ref().expect("tracing enabled");
    let reference_events = reference_trace.deterministic_events();

    // Same configuration twice, plus different worker counts and MPLs: the
    // deterministic section never moves.
    for (workers, mpl) in [(4usize, 4usize), (1, 1), (2, 8), (7, 2)] {
        let outcome = engine.execute_stream(&queries, &traced_config(workers, mpl));
        let trace = outcome.trace.as_ref().expect("tracing enabled");
        assert_reconciles(&outcome, trace, queries.len());
        assert_eq!(
            trace.digest(),
            reference_trace.digest(),
            "{workers}w mpl{mpl}"
        );
        assert_eq!(trace.deterministic_events(), reference_events);
    }
}

#[test]
fn disabled_tracing_returns_no_trace_and_identical_results() {
    let engine = engine();
    let queries = stream(&engine, 8);
    let io = IoConfig::with_disks(5).cache(20_000);
    let plain = engine.execute_stream(&queries, &SchedulerConfig::new(4, 4).with_io(io));
    assert!(plain.trace.is_none(), "tracing is off by default");
    let traced = engine.execute_stream(&queries, &traced_config(4, 4));
    for (a, b) in plain.queries.iter().zip(&traced.queries) {
        assert_eq!(a.hits, b.hits);
        let a_bits: Vec<u64> = a.measure_sums.iter().map(|s| s.to_bits()).collect();
        let b_bits: Vec<u64> = b.measure_sums.iter().map(|s| s.to_bits()).collect();
        assert_eq!(a_bits, b_bits);
    }
    // The simulated disk subsystem is oblivious to tracing.
    assert_eq!(plain.metrics.pool.io, traced.metrics.pool.io);
}

#[test]
fn single_query_engine_trace_reconciles() {
    let engine = engine();
    let schema = engine.store().schema().clone();
    let query = QueryType::OneGroup.to_star_query(&schema);
    let bound = BoundQuery::new(&schema, query, vec![1]);
    let config = ExecConfig {
        workers: 3,
        io: Some(IoConfig::with_disks(4).cache(10_000)),
        obs: ObsConfig::enabled(),
        ..ExecConfig::default()
    };
    let result = engine.execute(&bound, &config);
    let trace = result.trace.as_ref().expect("tracing enabled");
    assert_eq!(trace.dropped, 0);
    assert_eq!(trace.count_of(EventKind::Query), 1);
    assert_eq!(trace.count_of(EventKind::QueryComplete), 1);
    assert_eq!(
        trace.sum_field(EventKind::TaskRun, FieldKey::Rows),
        result.metrics.total_rows_scanned()
    );
    assert_eq!(
        trace.count_of(EventKind::TaskRun),
        result.metrics.total_fragments()
    );
    assert_eq!(
        trace.count_of(EventKind::Steal),
        result.metrics.total_stolen()
    );
    // The engine path also reports the query's hit count at completion.
    let complete = trace
        .events_of(EventKind::QueryComplete)
        .next()
        .expect("one completion");
    assert_eq!(complete.field(FieldKey::Rows), Some(result.hits));
}
