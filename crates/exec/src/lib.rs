//! `exec` — a multi-threaded parallel star-join execution engine over MDHF
//! fragments.
//!
//! The repository validates the paper's claims through three pillars:
//!
//! 1. **analytically** — the [`mdhf`] cost model,
//! 2. **by simulation** — the `simpad` Shared Disk simulator,
//! 3. **physically** — *this crate*: real rows, real bitmaps, real threads,
//!    measured wall-clock speedup, and a deterministic simulated disk
//!    subsystem underneath the scan path ([`io`]).
//!
//! The pipeline mirrors §4.3 of the paper:
//!
//! * [`FragmentStore`] materialises a (scaled-down) fact table, partitions it
//!   under a [`mdhf::Fragmentation`] and builds *fragment-aligned* bitmap
//!   join indices per fragment, each bitmap stored in its
//!   [`bitmap::RepresentationPolicy`]-chosen representation (plain or
//!   WAH-compressed; adaptive by default),
//! * [`QueryPlan`] prunes the fragment list via the MDHF classifier and
//!   annotates which predicates still need bitmap access,
//! * [`StarJoinEngine`] executes the plan on a worker pool sharing a
//!   work-stealing [`FragmentQueue`] (the paper's dynamic load balancing
//!   across processing elements) — optionally seeded in
//!   [`allocation::PhysicalAllocation`] disk-affinity order — with
//!   per-worker bitmap-AND selection (compressed-domain when every
//!   selection bitmap is WAH) and partial aggregation, and a deterministic
//!   merge — parallel results are bit-identical to serial ones under every
//!   representation policy,
//! * [`ExecMetrics`] reports per-worker accounting and wall-clock speedup,
//! * [`SimulatedIo`] (optional, [`ExecConfig::io`]) charges every
//!   fragment scan against per-disk FIFO service queues (track-based seek +
//!   transfer costs) behind a shared LRU page cache, on a deterministic
//!   [`DiskClock`] — fragments finally *cost* something to read, steal
//!   victims are weighted by remaining simulated I/O (the skew-resilience
//!   path), and [`IoMetrics`] reports per-disk utilisation, queue depth and
//!   cache hit rates,
//! * [`QueryScheduler`] lifts the engine from one query at a time to the
//!   paper's **multi-user** regime: a stream of bound queries is admitted
//!   under an MPL limit onto a *single shared* work-stealing pool, tasks
//!   from all in-flight queries interleave (tagged with query id and disk
//!   affinity), each query's result is merged deterministically (bit-
//!   identical to its serial run) and [`ThroughputMetrics`] reports
//!   queries/sec, the latency distribution, utilisation, steals and the
//!   disk-affinity hit rate.
//!
//! # Quick start
//!
//! ```
//! use exec::{ExecConfig, FragmentStore, StarJoinEngine};
//! use mdhf::Fragmentation;
//! use workload::{BoundQuery, QueryType};
//!
//! let schema = schema::apb1::apb1_scaled_down();
//! let fragmentation =
//!     Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
//! let engine = StarJoinEngine::new(FragmentStore::build(&schema, &fragmentation, 2024));
//!
//! // One month, one product group — pruned to a single fragment (Q1).
//! let query = QueryType::OneMonthOneGroup.to_star_query(&schema);
//! let bound = BoundQuery::new(&schema, query, vec![3, 1]);
//! assert_eq!(engine.plan(&bound).fragments().len(), 1);
//!
//! let serial = engine.execute_serial(&bound);
//! let config = ExecConfig { workers: 2, ..ExecConfig::default() };
//! let parallel = engine.execute(&bound, &config);
//! assert_eq!(serial.hits, parallel.hits);
//! assert_eq!(serial.measure_sums, parallel.measure_sums); // bit-identical
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod file;
pub mod io;
pub mod metrics;
pub mod plan;
pub mod queue;
pub mod scheduler;
pub mod source;
pub mod store;
mod sync;

pub use engine::{ExecConfig, QueryResult, StarJoinEngine};
pub use file::{
    write_store, FileIoMetrics, FileStore, FileStoreOptions, StorageError, FORMAT_VERSION,
    PAGE_SIZE,
};
pub use io::{
    DiskClock, DiskIoStats, IoConfig, IoMetrics, NodeIoStats, ScanCtx, SimulatedIo, TaskIo,
};
pub use metrics::{ExecMetrics, ThroughputMetrics, WorkerMetrics};
pub use obs::ObsConfig;
pub use plan::{PredicateBinding, QueryPlan};
pub use queue::{Claim, FragmentQueue};
pub use scheduler::{QueryScheduler, ScheduledQuery, SchedulerConfig, StreamOutcome};
pub use source::{FragmentRef, ScanSource};
pub use store::{ColumnarFragment, FragmentStore};
