//! Deterministic simulated disk I/O underneath the measured engine.
//!
//! The measured engine runs entirely in memory, so fragments cost nothing to
//! "read" and the paper's central claim — MDHF plus round-robin allocation
//! keeps a parallel star join balanced *even under skew* — was exercised
//! only on the CPU side.  This module closes that gap with a simulated
//! multi-disk subsystem the engine charges every fragment scan against:
//!
//! * **Per-disk service queues.**  Each disk owns a
//!   [`storage::DiskModel`] (track-based seek + settle + per-page transfer,
//!   Table 4 parameters) and serves its requests FIFO.  A scan's fact pages
//!   go to the disk chosen by
//!   [`allocation::PhysicalAllocation::fact_disk`], its bitmap fragments to
//!   the staggered [`allocation::PhysicalAllocation::bitmap_disk`] disks —
//!   the same placement the seed order of the work-stealing pool follows.
//! * **Per-node LRU page caches.**  One [`storage::PagePool`] per simulated
//!   node (a single pool in front of all disks on the default one-node
//!   subsystem), with hits and misses attributed to the disk that would
//!   have served the page.  Repeated scans of hot fragments are absorbed
//!   here, which is exactly what flattens the per-disk load profile of a
//!   Zipf-skewed workload.
//! * **Simulated nodes and an interconnect.**  [`IoConfig::with_nodes`]
//!   splits the disks into equal contiguous ranges owned by simulated
//!   nodes ([`allocation::NodePlacement`]).  A scan executes on its fact
//!   fragment's home node; under
//!   [`allocation::NodeStrategy::SharedNothing`] every cache miss on
//!   another node's disk additionally ships its pages over the executing
//!   node's FIFO interconnect lane ([`IoConfig::network_ms_per_page`]),
//!   traced as `NetTransfer` spans on the node track.
//! * **A [`DiskClock`].**  All simulated time lives on a deterministic
//!   clock: scans are charged in *plan order* (single query) or *admission
//!   order* (scheduler), never in thread-arrival order, so every per-disk
//!   busy time, queue wait, cache hit count and the simulated makespan are
//!   bit-identical across runs and worker counts.
//!
//! Each charged scan returns a [`TaskIo`] whose simulated service time
//! becomes the task's *weight* in the work-stealing pool (steal victims are
//! picked by remaining simulated I/O, not deque length) and, optionally
//! ([`IoConfig::throttle`]), a wall-clock delay the worker spins for — so
//! skewed fragments are expensive in real time too and the stealing path is
//! exercised exactly as the paper's dynamic load balancing intends.
//!
//! The page arithmetic reuses the existing storage sizing model
//! ([`schema::PageSizing`]): 4 KB pages, `page / tuple-size` fact rows per
//! page, one bit per row for bitmap fragments.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use allocation::{NodePlacement, NodeStrategy, PhysicalAllocation};
use obs::{us_from_ms, EventKind, FieldKey, TraceRecorder, Track};
use schema::{PageSizing, StarSchema};
use storage::{BufferPoolStats, DiskModel, DiskParameters, PagePool};

use crate::plan::QueryPlan;
use crate::source::ScanSource;
use crate::sync::PoisonLock;

/// Distinct page-cache objects per fragment: the fact object plus up to
/// `OBJECT_STRIDE - 1` bitmap fragments.
const OBJECT_STRIDE: u64 = 128;

/// Configuration of the simulated disk subsystem.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoConfig {
    /// Placement of fact and bitmap fragments onto the simulated disks.
    pub allocation: PhysicalAllocation,
    /// Per-disk service-time parameters (Table 4 defaults).
    pub disk: DiskParameters,
    /// Capacity of the shared LRU page cache, in pages; `0` disables the
    /// cache (every page is read from disk).
    pub cache_pages: usize,
    /// Prefetch granule on fact fragments, in pages (Table 4: 8).
    pub fact_prefetch_pages: u64,
    /// Prefetch granule on bitmap fragments, in pages (Table 4: 5).
    pub bitmap_prefetch_pages: u64,
    /// Wall-clock nanoseconds a worker spins per simulated millisecond of
    /// I/O, so simulated cost shows up in measured wall time.  `0` (the
    /// default) charges accounting only.
    pub wall_ns_per_sim_ms: u64,
    /// When `true` (default), steal victims are picked by remaining
    /// simulated I/O; `false` falls back to plain deque-length weighting
    /// (the skew-oblivious baseline of the resilience experiments).
    pub steal_by_io: bool,
    /// Number of simulated nodes owning the disks in equal contiguous
    /// ranges; 1 (the default) is the flat single-machine subsystem.
    pub nodes: u64,
    /// How nodes reach each other's disks: under
    /// [`NodeStrategy::SharedNothing`] a scan executing on one node whose
    /// pages miss the cache on another node's disk ships them over the
    /// interconnect; [`NodeStrategy::SharedDisk`] (the default) reaches
    /// every disk directly.
    pub node_strategy: NodeStrategy,
    /// Simulated interconnect cost per cross-node page, in ms (only charged
    /// under [`NodeStrategy::SharedNothing`]).
    pub network_ms_per_page: f64,
}

impl IoConfig {
    /// Plain round-robin placement over `disks` disks with Table 4 disk
    /// parameters, a 1 000-page cache, Table 4 prefetch granules, no wall
    /// throttling and skew-aware stealing.
    ///
    /// # Panics
    ///
    /// Panics if `disks` is zero.
    #[must_use]
    pub fn with_disks(disks: u64) -> Self {
        Self::with_allocation(PhysicalAllocation::round_robin(disks))
    }

    /// The default configuration over an explicit placement.
    #[must_use]
    pub fn with_allocation(allocation: PhysicalAllocation) -> Self {
        IoConfig {
            allocation,
            disk: DiskParameters::default(),
            cache_pages: 1_000,
            fact_prefetch_pages: 8,
            bitmap_prefetch_pages: 5,
            wall_ns_per_sim_ms: 0,
            steal_by_io: true,
            nodes: 1,
            node_strategy: NodeStrategy::SharedDisk,
            network_ms_per_page: 0.1,
        }
    }

    /// The default configuration over a two-level node → disk placement:
    /// the wrapped allocation's disks, owned by the placement's nodes under
    /// its strategy, each node with its own page cache.
    #[must_use]
    pub fn with_nodes(placement: NodePlacement) -> Self {
        IoConfig {
            nodes: placement.nodes(),
            node_strategy: placement.strategy(),
            ..Self::with_allocation(*placement.allocation())
        }
    }

    /// Sets the simulated interconnect cost per cross-node page, in ms.
    #[must_use]
    pub fn network(mut self, network_ms_per_page: f64) -> Self {
        self.network_ms_per_page = network_ms_per_page;
        self
    }

    /// Sets the shared page-cache capacity (`0` disables the cache).
    #[must_use]
    pub fn cache(mut self, cache_pages: usize) -> Self {
        self.cache_pages = cache_pages;
        self
    }

    /// Makes workers spin `wall_ns_per_sim_ms` wall nanoseconds per
    /// simulated millisecond of I/O.
    #[must_use]
    pub fn throttle(mut self, wall_ns_per_sim_ms: u64) -> Self {
        self.wall_ns_per_sim_ms = wall_ns_per_sim_ms;
        self
    }

    /// Disables the skew-aware stealing weights (deque-length baseline).
    #[must_use]
    pub fn steal_by_queue_len(mut self) -> Self {
        self.steal_by_io = false;
        self
    }

    /// Number of simulated disks.
    #[must_use]
    pub fn disks(&self) -> u64 {
        self.allocation.disks()
    }

    /// The two-level placement this configuration describes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` does not divide the disk count.
    #[must_use]
    pub fn node_placement(&self) -> NodePlacement {
        NodePlacement::over(self.allocation, self.nodes, self.node_strategy)
    }
}

/// The simulated I/O charged to one fragment scan.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TaskIo {
    /// Simulated service time of the scan's disk requests, in ms (the sum
    /// over its requests; requests on distinct disks would overlap in a
    /// real system, so this is the scan's serial I/O demand).
    pub sim_ms: f64,
    /// Pages transferred from disk (equals `cache_misses`).
    pub pages_read: u64,
    /// Pages satisfied by the shared cache.
    pub cache_hits: u64,
    /// Pages that had to be fetched.
    pub cache_misses: u64,
    /// The disk holding the scan's fact fragment.
    pub fact_disk: u64,
    /// The node the scan executed on — the owner of its fact disk, a
    /// deterministic function of the fragment number (0 on a single node).
    pub node: u64,
    /// Pages that missed the cache on another node's disk and travelled
    /// over the interconnect (0 under shared disk).
    pub remote_pages: u64,
    /// Simulated interconnect time within `sim_ms`, in ms.
    pub net_ms: f64,
    /// Simulated time at which the scan's earliest disk request started, in
    /// ms on the [`DiskClock`] (0 for fully cached or empty scans).
    pub sim_start_ms: f64,
    /// Simulated time at which the scan's last disk request completed, in
    /// ms on the [`DiskClock`] (0 for fully cached or empty scans).
    pub sim_end_ms: f64,
}

impl TaskIo {
    /// The scan's weight for skew-aware stealing, in simulated microseconds
    /// (at least 1 so a fully cached scan still counts as a queued task).
    #[must_use]
    pub fn cost_units(&self) -> u64 {
        let us = (self.sim_ms * 1_000.0).ceil();
        if us >= 1.0 {
            us as u64
        } else {
            1
        }
    }
}

/// Who a traced scan belongs to: the query and task ids stamped onto the
/// `Scan` and `DiskService` trace events a charge emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScanCtx {
    /// Query id (0 for single-query engine runs).
    pub query: u32,
    /// Task index within the query's plan.
    pub task: u32,
}

/// The deterministic clock of the simulated disks.
///
/// Every disk serves its requests FIFO; charges arrive in a deterministic
/// order (plan order for a single query, admission order in the scheduler),
/// and the clock models the run as one batch: a request on disk `d` starts
/// when the disk finishes everything charged to it before.  Elapsed
/// simulated time is therefore the *makespan* of the parallel disks — and
/// reproducible bit for bit across runs, worker counts and MPLs.
#[derive(Debug, Clone)]
pub struct DiskClock {
    busy_ms: Vec<f64>,
    /// Per-disk sum of request start times — the total simulated queue wait
    /// under batch arrival, from which time-averaged queue depth derives.
    wait_ms: Vec<f64>,
}

impl DiskClock {
    /// A clock over `disks` idle disks.
    ///
    /// # Panics
    ///
    /// Panics if `disks` is zero.
    #[must_use]
    pub fn new(disks: u64) -> Self {
        assert!(disks > 0, "a disk clock needs at least one disk");
        let disks = usize::try_from(disks).expect("disk count fits usize");
        DiskClock {
            busy_ms: vec![0.0; disks],
            wait_ms: vec![0.0; disks],
        }
    }

    /// Appends a request of `service_ms` to `disk`'s FIFO queue and returns
    /// the simulated time at which it starts.
    pub fn advance(&mut self, disk: u64, service_ms: f64) -> f64 {
        let d = disk as usize;
        let start = self.busy_ms[d];
        self.wait_ms[d] += start;
        self.busy_ms[d] += service_ms;
        start
    }

    /// Simulated busy time of one disk, in ms.
    ///
    /// # Panics
    ///
    /// Panics if `disk` is out of range.
    #[must_use]
    pub fn busy_ms(&self, disk: u64) -> f64 {
        self.busy_ms[disk as usize]
    }

    /// Elapsed simulated time: the busiest disk's completion time (the
    /// makespan of the parallel disks).
    #[must_use]
    pub fn elapsed_ms(&self) -> f64 {
        self.busy_ms.iter().copied().fold(0.0, f64::max)
    }

    /// Total simulated busy time summed over all disks.
    #[must_use]
    pub fn total_busy_ms(&self) -> f64 {
        self.busy_ms.iter().sum()
    }
}

/// Per-disk accounting of one simulated subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DiskIoStats {
    /// Disk number under the configured allocation.
    pub disk: u64,
    /// Objects (fact fragments / bitmap fragments) accessed on this disk.
    pub scans: u64,
    /// Disk requests served (one per prefetch granule with at least one
    /// cache miss).
    pub io_ops: u64,
    /// Pages transferred.
    pub pages_read: u64,
    /// Simulated busy time, in ms.
    pub busy_ms: f64,
    /// Simulated seek time within `busy_ms`.
    pub seek_ms: f64,
    /// Time-averaged number of requests waiting in this disk's FIFO queue
    /// over the simulated makespan.
    pub mean_queue_depth: f64,
    /// Page requests for this disk satisfied by the shared cache.
    pub cache_hits: u64,
    /// Page requests for this disk that went to the platter.
    pub cache_misses: u64,
}

impl DiskIoStats {
    /// This disk's cache hit ratio in `[0, 1]` (0 when never accessed).
    #[must_use]
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Per-node accounting of one simulated subsystem: the node's disks folded
/// together plus its interconnect lane and private cache counters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NodeIoStats {
    /// Node number under the configured node placement.
    pub node: u64,
    /// Simulated busy time summed over the node's owned disks, in ms.
    pub disk_busy_ms: f64,
    /// Simulated busy time of the node's interconnect lane, in ms.
    pub net_ms: f64,
    /// Pages shipped to this node over the interconnect.
    pub net_pages: u64,
    /// Page requests satisfied by this node's private cache.
    pub cache_hits: u64,
    /// Page requests on this node that went to a platter.
    pub cache_misses: u64,
}

impl NodeIoStats {
    /// The node's total simulated load: disk busy time plus interconnect
    /// time — the per-node counterpart of a disk's `busy_ms`.
    #[must_use]
    pub fn load_ms(&self) -> f64 {
        self.disk_busy_ms + self.net_ms
    }
}

/// A snapshot of the simulated subsystem: per-disk utilisation and queue
/// statistics plus the shared cache's counters.
#[derive(Debug, Clone, PartialEq)]
pub struct IoMetrics {
    /// Per-disk accounting, indexed by disk number.
    pub per_disk: Vec<DiskIoStats>,
    /// Per-node accounting, indexed by node number (one entry on a flat
    /// single-machine subsystem).
    pub per_node: Vec<NodeIoStats>,
    /// LRU page-cache counters summed over the per-node pools (all zero
    /// when the cache is disabled).
    pub cache: BufferPoolStats,
    /// Elapsed simulated time (the parallel-disk makespan, including
    /// interconnect lanes), in ms.
    pub elapsed_ms: f64,
}

impl IoMetrics {
    /// Number of simulated disks.
    #[must_use]
    pub fn disk_count(&self) -> usize {
        self.per_disk.len()
    }

    /// Total simulated busy time over all disks, in ms.
    #[must_use]
    pub fn total_busy_ms(&self) -> f64 {
        self.per_disk.iter().map(|d| d.busy_ms).sum()
    }

    /// Total pages transferred from the simulated disks.
    #[must_use]
    pub fn total_pages_read(&self) -> u64 {
        self.per_disk.iter().map(|d| d.pages_read).sum()
    }

    /// Total disk requests served.
    #[must_use]
    pub fn total_io_ops(&self) -> u64 {
        self.per_disk.iter().map(|d| d.io_ops).sum()
    }

    /// Measured per-disk load imbalance: the busiest disk's simulated busy
    /// time over the mean busy time (1.0 = perfectly declustered; an idle
    /// subsystem reports 1.0), via the shared
    /// [`allocation::load_imbalance`] formula.  This is the quantity the
    /// skew-resilience experiments gate on.
    #[must_use]
    pub fn disk_imbalance(&self) -> f64 {
        allocation::load_imbalance(&self.busy_profile())
    }

    /// One disk's utilisation over the simulated makespan, in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `disk` is out of range.
    #[must_use]
    pub fn disk_utilisation(&self, disk: u64) -> f64 {
        if self.elapsed_ms <= f64::EPSILON {
            return 0.0;
        }
        (self.per_disk[disk as usize].busy_ms / self.elapsed_ms).min(1.0)
    }

    /// Hit ratio of the shared page cache in `[0, 1]`.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_ratio()
    }

    /// The per-disk busy times, for analytic cross-validation against
    /// [`allocation::analysis::disk_load_shares`].
    #[must_use]
    pub fn busy_profile(&self) -> Vec<f64> {
        self.per_disk.iter().map(|d| d.busy_ms).collect()
    }

    /// Number of simulated nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.per_node.len()
    }

    /// Measured per-node load imbalance: the busiest node's simulated load
    /// (disks + interconnect) over the mean, via the shared
    /// [`allocation::load_imbalance`] formula — the measured counterpart of
    /// [`allocation::node_load_shares`] predictions.
    #[must_use]
    pub fn node_imbalance(&self) -> f64 {
        allocation::load_imbalance(&self.node_load_profile())
    }

    /// The per-node simulated loads (disk busy + interconnect), for
    /// analytic cross-validation.
    #[must_use]
    pub fn node_load_profile(&self) -> Vec<f64> {
        self.per_node.iter().map(NodeIoStats::load_ms).collect()
    }

    /// Total simulated interconnect time over all nodes, in ms.
    #[must_use]
    pub fn total_net_ms(&self) -> f64 {
        self.per_node.iter().map(|n| n.net_ms).sum()
    }

    /// Total pages shipped across nodes over the interconnect.
    #[must_use]
    pub fn total_net_pages(&self) -> u64 {
        self.per_node.iter().map(|n| n.net_pages).sum()
    }
}

/// One simulated disk: the service-time model plus its counters.
#[derive(Debug)]
struct DiskSim {
    model: DiskModel,
    scans: u64,
    io_ops: u64,
    pages_read: u64,
    cache_hits: u64,
    cache_misses: u64,
}

/// Everything the charging path mutates, under one lock.
#[derive(Debug)]
struct IoState {
    disks: Vec<DiskSim>,
    clock: DiskClock,
    /// One private LRU page pool per node (empty when the cache is
    /// disabled); a single-node subsystem has exactly the old shared pool.
    caches: Vec<PagePool>,
    /// One interconnect FIFO lane per node, on the same clock model as the
    /// disks.
    net: DiskClock,
    /// Pages shipped to each node over the interconnect.
    net_pages: Vec<u64>,
}

/// The simulated multi-disk subsystem the engine charges fragment scans
/// against.  See the [module docs](crate::io) for the model.
#[derive(Debug)]
pub struct SimulatedIo {
    config: IoConfig,
    rows_per_page: u64,
    page_bytes: u64,
    state: Mutex<IoState>,
}

impl SimulatedIo {
    /// Creates an idle subsystem; page arithmetic derives from `schema`'s
    /// [`PageSizing`] (4 KB pages, tuple-size rows per page).
    ///
    /// # Panics
    ///
    /// Panics if the configured node count is zero or does not divide the
    /// disk count (nodes own equal, contiguous disk ranges).
    #[must_use]
    pub fn new(config: IoConfig, schema: &StarSchema) -> Self {
        assert!(config.nodes > 0, "need at least one node");
        assert!(
            config.disks().is_multiple_of(config.nodes),
            "node count {} must divide disk count {}",
            config.nodes,
            config.disks()
        );
        let sizing = PageSizing::new(schema);
        let disks = (0..config.disks())
            .map(|_| DiskSim {
                model: DiskModel::new(config.disk),
                scans: 0,
                io_ops: 0,
                pages_read: 0,
                cache_hits: 0,
                cache_misses: 0,
            })
            .collect();
        let nodes = usize::try_from(config.nodes).expect("node count fits usize");
        SimulatedIo {
            rows_per_page: sizing.fact_tuples_per_page().max(1),
            page_bytes: sizing.page_size_bytes(),
            state: Mutex::new(IoState {
                disks,
                clock: DiskClock::new(config.disks()),
                caches: if config.cache_pages > 0 {
                    (0..nodes)
                        .map(|_| PagePool::new(config.cache_pages))
                        .collect()
                } else {
                    Vec::new()
                },
                net: DiskClock::new(config.nodes),
                net_pages: vec![0; nodes],
            }),
            config,
        }
    }

    /// The node owning `disk` — disks are owned in equal contiguous ranges.
    fn node_of_disk(&self, disk: u64) -> u64 {
        let per_node = self.config.disks() / self.config.nodes;
        (disk / per_node).min(self.config.nodes - 1)
    }

    /// The subsystem's configuration.
    #[must_use]
    pub fn config(&self) -> &IoConfig {
        &self.config
    }

    /// Charges one fragment scan: the fragment's fact pages on its
    /// allocation disk plus `bitmap_fragments` bitmap fragments on their
    /// staggered disks, each in prefetch granules through the shared cache.
    /// Returns the scan's simulated cost.
    ///
    /// Charges must arrive in a deterministic order (the engine charges in
    /// plan order, the scheduler in admission order) — that order, not
    /// thread scheduling, defines the cache and arm state each scan sees.
    ///
    /// # Panics
    ///
    /// Panics if the scan needs more than `OBJECT_STRIDE - 1` bitmap
    /// fragments (the per-fragment cache-object budget) or the state lock
    /// is poisoned.
    pub fn charge_scan(&self, fragment_no: u64, rows: u64, bitmap_fragments: u64) -> TaskIo {
        self.charge_scan_traced(
            fragment_no,
            rows,
            bitmap_fragments,
            ScanCtx::default(),
            None,
        )
    }

    /// [`Self::charge_scan`] with trace attribution: when `recorder` is
    /// present, emits one `DiskService` event per charged object on its
    /// disk's track and one `Scan` event on the query's track, all stamped
    /// from the simulated clock.  The trace therefore inherits the charge
    /// order's determinism.
    ///
    /// # Panics
    ///
    /// As [`Self::charge_scan`].
    pub fn charge_scan_traced(
        &self,
        fragment_no: u64,
        rows: u64,
        bitmap_fragments: u64,
        ctx: ScanCtx,
        recorder: Option<&TraceRecorder>,
    ) -> TaskIo {
        assert!(
            bitmap_fragments < OBJECT_STRIDE,
            "at most {} bitmap fragments per scan",
            OBJECT_STRIDE - 1
        );
        let fact_disk = self.config.allocation.fact_disk(fragment_no);
        let mut out = TaskIo {
            fact_disk,
            node: self.node_of_disk(fact_disk),
            ..TaskIo::default()
        };
        if rows == 0 {
            return out;
        }
        let mut state = self.state.plock("simulated I/O state");
        let fact_pages = rows.div_ceil(self.rows_per_page);
        let (mut start_ms, mut end_ms) = self.charge_object(
            &mut state,
            out.fact_disk,
            fragment_no * OBJECT_STRIDE,
            fact_pages,
            self.config.fact_prefetch_pages,
            &mut out,
            ctx,
            recorder,
        );
        // One bitmap fragment per required bitmap, each covering this
        // fragment's rows at one bit per row (at least one page).
        let bitmap_pages = rows.div_ceil(8).div_ceil(self.page_bytes).max(1);
        for b in 0..bitmap_fragments {
            let disk = self.config.allocation.bitmap_disk(fragment_no, b);
            let (object_start, object_end) = self.charge_object(
                &mut state,
                disk,
                fragment_no * OBJECT_STRIDE + 1 + b,
                bitmap_pages,
                self.config.bitmap_prefetch_pages,
                &mut out,
                ctx,
                recorder,
            );
            start_ms = start_ms.min(object_start);
            end_ms = end_ms.max(object_end);
        }
        // Shared nothing: pages fetched from another node's disks travel
        // over the executing node's interconnect lane, FIFO like a disk.
        if out.remote_pages > 0 {
            let service = out.remote_pages as f64 * self.config.network_ms_per_page;
            let net_start = state.net.advance(out.node, service);
            let net_end = net_start + service;
            state.net_pages[usize::try_from(out.node).expect("node fits usize")] +=
                out.remote_pages;
            out.net_ms = service;
            out.sim_ms += service;
            start_ms = start_ms.min(net_start);
            end_ms = end_ms.max(net_end);
            if let Some(rec) = recorder {
                rec.record(
                    Track::Node(out.node as u32),
                    EventKind::NetTransfer,
                    us_from_ms(net_start),
                    us_from_ms(net_end).saturating_sub(us_from_ms(net_start)),
                    vec![
                        (FieldKey::Query, u64::from(ctx.query)),
                        (FieldKey::Task, u64::from(ctx.task)),
                        (FieldKey::Fragment, fragment_no),
                        (FieldKey::Pages, out.remote_pages),
                        (FieldKey::SimMsBits, service.to_bits()),
                    ],
                );
            }
        }
        out.sim_start_ms = start_ms;
        out.sim_end_ms = end_ms;
        if let Some(rec) = recorder {
            rec.record(
                Track::Query(ctx.query),
                EventKind::Scan,
                us_from_ms(start_ms),
                us_from_ms(end_ms).saturating_sub(us_from_ms(start_ms)),
                vec![
                    (FieldKey::Task, u64::from(ctx.task)),
                    (FieldKey::Fragment, fragment_no),
                    (FieldKey::Rows, rows),
                    (FieldKey::Pages, out.pages_read),
                    (FieldKey::CacheHits, out.cache_hits),
                    (FieldKey::CacheMisses, out.cache_misses),
                    (FieldKey::Disk, out.fact_disk),
                    (FieldKey::SimMsBits, out.sim_ms.to_bits()),
                ],
            );
        }
        out
    }

    /// Charges one contiguous object (a fact fragment or one bitmap
    /// fragment) on `disk`, granule by granule through the cache; returns
    /// the simulated `(start, end)` window of the object's disk activity
    /// (`start == end` when fully cached).
    #[allow(clippy::too_many_arguments)]
    fn charge_object(
        &self,
        state: &mut IoState,
        disk: u64,
        object: u64,
        pages: u64,
        prefetch_pages: u64,
        out: &mut TaskIo,
        ctx: ScanCtx,
        recorder: Option<&TraceRecorder>,
    ) -> (f64, f64) {
        let track = object_track(object, self.config.disk.tracks);
        let prefetch = prefetch_pages.max(1);
        // Cache lookups go through the *executing* node's private pool;
        // shared-nothing misses on a remote disk additionally ship their
        // pages over the interconnect (charged once per scan by the caller).
        let exec_node = usize::try_from(out.node).expect("node fits usize");
        let remote = matches!(self.config.node_strategy, NodeStrategy::SharedNothing)
            && self.node_of_disk(disk) != out.node;
        state.disks[disk as usize].scans += 1;
        let start_ms = state.clock.busy_ms(disk);
        let mut object_hits = 0u64;
        let mut object_misses = 0u64;
        let mut page = 0;
        while page < pages {
            let granule = prefetch.min(pages - page);
            let misses = match state.caches.get_mut(exec_node) {
                Some(cache) => cache.request_range(object, page, granule),
                None => granule,
            };
            let hits = granule - misses;
            let d = &mut state.disks[disk as usize];
            d.cache_hits += hits;
            out.cache_hits += hits;
            object_hits += hits;
            if misses > 0 {
                // The first granule of an object pays the seek to its
                // track; later granules are sequential on the same track.
                let service = d.model.service(track, misses);
                state.clock.advance(disk, service);
                d.io_ops += 1;
                d.pages_read += misses;
                d.cache_misses += misses;
                out.sim_ms += service;
                out.pages_read += misses;
                out.cache_misses += misses;
                object_misses += misses;
                if remote {
                    out.remote_pages += misses;
                }
            }
            page += granule;
        }
        let end_ms = state.clock.busy_ms(disk);
        if let Some(rec) = recorder {
            rec.record(
                Track::Disk(disk as u32),
                EventKind::DiskService,
                us_from_ms(start_ms),
                us_from_ms(end_ms).saturating_sub(us_from_ms(start_ms)),
                vec![
                    (FieldKey::Query, u64::from(ctx.query)),
                    (FieldKey::Task, u64::from(ctx.task)),
                    (FieldKey::Pages, pages),
                    (FieldKey::CacheHits, object_hits),
                    (FieldKey::CacheMisses, object_misses),
                ],
            );
        }
        (start_ms, end_ms)
    }

    /// Charges every fragment scan of `plan` in plan order — the engine's
    /// deterministic replay — returning one [`TaskIo`] per task.  Only the
    /// source's *metadata* (catalog, per-fragment row counts) is touched:
    /// charging a file-backed source performs no real I/O.
    #[must_use]
    pub fn charge_plan(&self, plan: &QueryPlan, source: &ScanSource) -> Vec<TaskIo> {
        self.charge_plan_traced(plan, source, 0, None)
    }

    /// [`Self::charge_plan`] with trace attribution for `query`.
    #[must_use]
    pub fn charge_plan_traced(
        &self,
        plan: &QueryPlan,
        source: &ScanSource,
        query: u32,
        recorder: Option<&TraceRecorder>,
    ) -> Vec<TaskIo> {
        let bitmap_fragments = plan.bitmap_fragments_per_subquery(source.catalog());
        plan.fragments()
            .iter()
            .enumerate()
            .map(|(task, &f)| {
                self.charge_scan_traced(
                    f,
                    source.fragment_rows(f),
                    bitmap_fragments,
                    ScanCtx {
                        query,
                        task: task as u32,
                    },
                    recorder,
                )
            })
            .collect()
    }

    /// Elapsed simulated time so far (the parallel-disk makespan), in ms —
    /// the admission timestamp source for deterministic trace events.
    ///
    /// # Panics
    ///
    /// Panics if the state lock is poisoned.
    #[must_use]
    pub fn sim_elapsed_ms(&self) -> f64 {
        let state = self.state.plock("simulated I/O state");
        state.clock.elapsed_ms().max(state.net.elapsed_ms())
    }

    /// A snapshot of the subsystem's accounting.
    ///
    /// # Panics
    ///
    /// Panics if the state lock is poisoned.
    #[must_use]
    pub fn metrics(&self) -> IoMetrics {
        let state = self.state.plock("simulated I/O state");
        let elapsed_ms = state.clock.elapsed_ms().max(state.net.elapsed_ms());
        let per_disk: Vec<DiskIoStats> = state
            .disks
            .iter()
            .enumerate()
            .map(|(i, d)| DiskIoStats {
                disk: i as u64,
                scans: d.scans,
                io_ops: d.io_ops,
                pages_read: d.pages_read,
                busy_ms: state.clock.busy_ms(i as u64),
                seek_ms: d.model.total_seek_ms(),
                mean_queue_depth: if elapsed_ms <= f64::EPSILON {
                    0.0
                } else {
                    state.clock.wait_ms[i] / elapsed_ms
                },
                cache_hits: d.cache_hits,
                cache_misses: d.cache_misses,
            })
            .collect();
        let per_node = (0..self.config.nodes)
            .map(|n| {
                let (pool_hits, pool_misses) = state
                    .caches
                    .get(usize::try_from(n).expect("node fits usize"))
                    .map(PagePool::stats)
                    .map_or((0, 0), |s| (s.hits, s.misses));
                NodeIoStats {
                    node: n,
                    disk_busy_ms: per_disk
                        .iter()
                        .filter(|d| self.node_of_disk(d.disk) == n)
                        .map(|d| d.busy_ms)
                        .sum(),
                    net_ms: state.net.busy_ms(n),
                    net_pages: state.net_pages[usize::try_from(n).expect("node fits usize")],
                    cache_hits: pool_hits,
                    cache_misses: pool_misses,
                }
            })
            .collect();
        let mut cache = BufferPoolStats::default();
        for pool in &state.caches {
            let s = pool.stats();
            cache.hits += s.hits;
            cache.misses += s.misses;
            cache.evictions += s.evictions;
        }
        IoMetrics {
            per_disk,
            per_node,
            cache,
            elapsed_ms,
        }
    }
}

/// Deterministically scatters cache objects over the disk's tracks, so
/// consecutive fragments do not trivially share arm positions.
fn object_track(object: u64, tracks: u64) -> u64 {
    crate::store::mix64(object, 0) % tracks.max(1)
}

/// Spins the calling worker for `sim_ms` of simulated I/O at the configured
/// throttle rate — how simulated disk time becomes measured wall time.
pub(crate) fn throttle_for(sim_ms: f64, wall_ns_per_sim_ms: u64) {
    if wall_ns_per_sim_ms == 0 || sim_ms <= 0.0 {
        return;
    }
    let wall = Duration::from_nanos((sim_ms * wall_ns_per_sim_ms as f64) as u64);
    // detlint: allow(wall-clock, reason = "this IS the wall throttle: it converts simulated ms into spun wall time")
    let start = Instant::now();
    while start.elapsed() < wall {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::apb1::apb1_scaled_down;

    fn subsystem(disks: u64, cache_pages: usize) -> SimulatedIo {
        SimulatedIo::new(
            IoConfig::with_disks(disks).cache(cache_pages),
            &apb1_scaled_down(),
        )
    }

    #[test]
    fn charging_is_deterministic_across_runs() {
        let charge = |io: &SimulatedIo| -> Vec<TaskIo> {
            (0..20)
                .map(|f| io.charge_scan(f, 5_000 + f * 131, 3))
                .collect()
        };
        let a = subsystem(4, 256);
        let b = subsystem(4, 256);
        assert_eq!(charge(&a), charge(&b));
        assert_eq!(a.metrics(), b.metrics());
        assert!(a.metrics().elapsed_ms > 0.0);
    }

    #[test]
    fn scans_land_on_their_allocation_disks() {
        let io = subsystem(4, 0);
        let t = io.charge_scan(6, 1_000, 2);
        assert_eq!(t.fact_disk, 2);
        let m = io.metrics();
        // Fact pages on disk 2; two staggered bitmap fragments on disks 3, 0.
        assert!(m.per_disk[2].pages_read > 0);
        assert!(m.per_disk[3].pages_read > 0);
        assert!(m.per_disk[0].pages_read > 0);
        assert_eq!(m.per_disk[1].pages_read, 0);
        assert_eq!(m.total_pages_read(), t.pages_read);
    }

    #[test]
    fn cache_absorbs_repeated_scans() {
        let io = subsystem(2, 512);
        let first = io.charge_scan(0, 10_000, 0);
        let second = io.charge_scan(0, 10_000, 0);
        assert!(first.cache_misses > 0);
        assert_eq!(first.cache_hits, 0);
        assert_eq!(second.cache_misses, 0);
        assert_eq!(second.sim_ms, 0.0);
        assert_eq!(second.cache_hits, first.cache_misses);
        let m = io.metrics();
        assert!((m.cache_hit_rate() - 0.5).abs() < 1e-12);
        // Pages read from disk always equal total cache misses.
        assert_eq!(m.total_pages_read(), m.cache.misses);
    }

    #[test]
    fn disabled_cache_reads_every_page_every_time() {
        let io = subsystem(2, 0);
        let first = io.charge_scan(0, 2_000, 1);
        let second = io.charge_scan(0, 2_000, 1);
        assert_eq!(first.pages_read, second.pages_read);
        assert!(second.sim_ms > 0.0);
        assert_eq!(io.metrics().cache, BufferPoolStats::default());
        assert_eq!(io.metrics().cache_hit_rate(), 0.0);
    }

    #[test]
    fn sequential_granules_pay_one_seek() {
        // A large scan's first granule pays the seek; the rest are
        // sequential transfers, so mean service per op approaches
        // settle + prefetch × per-page.
        let io = subsystem(1, 0);
        let t = io.charge_scan(0, 200 * 204, 0); // 200 pages → 25 granules
        let m = io.metrics();
        assert_eq!(m.per_disk[0].io_ops, 25);
        let sequential_floor = 25.0 * (3.0 + 8.0);
        assert!(t.sim_ms >= sequential_floor);
        assert!(t.sim_ms <= sequential_floor + 30.0 + 1e-9, "{}", t.sim_ms);
        assert!(m.per_disk[0].seek_ms <= 30.0);
    }

    #[test]
    fn empty_fragments_cost_nothing() {
        let io = subsystem(3, 16);
        let t = io.charge_scan(5, 0, 4);
        assert_eq!(
            t,
            TaskIo {
                fact_disk: 2,
                ..TaskIo::default()
            }
        );
        assert_eq!(io.metrics().total_io_ops(), 0);
        assert_eq!(io.metrics().elapsed_ms, 0.0);
        assert_eq!(io.metrics().disk_imbalance(), 1.0);
    }

    #[test]
    fn cost_units_floor_at_one() {
        assert_eq!(TaskIo::default().cost_units(), 1);
        let t = TaskIo {
            sim_ms: 2.5,
            ..TaskIo::default()
        };
        assert_eq!(t.cost_units(), 2_500);
    }

    #[test]
    fn clock_models_fifo_queues() {
        let mut clock = DiskClock::new(2);
        assert_eq!(clock.advance(0, 10.0), 0.0);
        assert_eq!(clock.advance(0, 5.0), 10.0);
        assert_eq!(clock.advance(1, 4.0), 0.0);
        assert_eq!(clock.busy_ms(0), 15.0);
        assert_eq!(clock.elapsed_ms(), 15.0);
        assert_eq!(clock.total_busy_ms(), 19.0);
    }

    #[test]
    fn queue_depth_and_utilisation_derive_from_the_clock() {
        let io = subsystem(2, 0);
        for f in 0..8 {
            // All on disk 0 (even fragments of a 2-disk round robin).
            io.charge_scan(f * 2, 4_000, 0);
        }
        let m = io.metrics();
        assert!(m.per_disk[0].mean_queue_depth > 0.0);
        assert_eq!(m.per_disk[1].mean_queue_depth, 0.0);
        assert!((m.disk_utilisation(0) - 1.0).abs() < 1e-12);
        assert_eq!(m.disk_utilisation(1), 0.0);
        assert!((m.disk_imbalance() - 2.0).abs() < 1e-12);
        assert_eq!(m.disk_count(), 2);
        assert_eq!(m.busy_profile().len(), 2);
    }

    #[test]
    fn skewed_loads_show_up_in_the_imbalance() {
        let io = subsystem(4, 0);
        // Fragment 0 is 20x the size of the others.
        io.charge_scan(0, 80_000, 0);
        for f in 1..16 {
            io.charge_scan(f, 4_000, 0);
        }
        let m = io.metrics();
        assert!(m.disk_imbalance() > 2.0, "{}", m.disk_imbalance());
    }

    fn node_subsystem(
        nodes: u64,
        disks_per_node: u64,
        strategy: NodeStrategy,
        cache_pages: usize,
    ) -> SimulatedIo {
        let placement = NodePlacement::new(nodes, disks_per_node, strategy);
        SimulatedIo::new(
            IoConfig::with_nodes(placement).cache(cache_pages),
            &apb1_scaled_down(),
        )
    }

    #[test]
    fn single_node_is_the_flat_subsystem() {
        // nodes = 1 + shared disk must reproduce the flat arithmetic bit
        // for bit: same charges, same metrics.
        let flat = subsystem(4, 256);
        let noded = node_subsystem(1, 4, NodeStrategy::SharedDisk, 256);
        for f in 0..20 {
            let a = flat.charge_scan(f, 5_000 + f * 131, 3);
            let b = noded.charge_scan(f, 5_000 + f * 131, 3);
            assert_eq!(a.sim_ms.to_bits(), b.sim_ms.to_bits());
            assert_eq!(a.pages_read, b.pages_read);
            assert_eq!(a.cache_hits, b.cache_hits);
            assert_eq!(b.node, 0);
            assert_eq!(b.remote_pages, 0);
            assert_eq!(b.net_ms, 0.0);
        }
        let (fm, nm) = (flat.metrics(), noded.metrics());
        assert_eq!(fm.per_disk, nm.per_disk);
        assert_eq!(fm.cache, nm.cache);
        assert_eq!(nm.node_count(), 1);
        assert_eq!(nm.node_imbalance(), 1.0);
        assert_eq!(nm.total_net_pages(), 0);
    }

    #[test]
    fn shared_nothing_charges_the_interconnect() {
        // 2 nodes × 2 disks, no cache.  Fragment 0's fact pages are local
        // to node 0 (disk 0) but its staggered bitmaps land on disks 1 and
        // 2 — disk 2 is node 1's, so those pages ship over the wire.
        let io = node_subsystem(2, 2, NodeStrategy::SharedNothing, 0);
        let t = io.charge_scan(0, 4_000, 2);
        assert_eq!(t.node, 0);
        assert!(t.remote_pages > 0);
        assert!(t.net_ms > 0.0);
        assert!((t.net_ms - t.remote_pages as f64 * 0.1).abs() < 1e-12);
        assert!(t.sim_end_ms >= t.net_ms);
        let m = io.metrics();
        assert_eq!(m.node_count(), 2);
        assert_eq!(m.per_node[0].net_pages, t.remote_pages);
        assert_eq!(m.per_node[1].net_pages, 0);
        assert!((m.total_net_ms() - t.net_ms).abs() < 1e-12);
        assert_eq!(m.total_net_pages(), t.remote_pages);
        // The makespan includes the interconnect lane.
        assert!(m.elapsed_ms >= m.per_node[0].net_ms);
    }

    #[test]
    fn shared_disk_never_pays_the_interconnect() {
        let io = node_subsystem(2, 2, NodeStrategy::SharedDisk, 0);
        let t = io.charge_scan(0, 4_000, 2);
        assert_eq!(t.remote_pages, 0);
        assert_eq!(t.net_ms, 0.0);
        assert_eq!(io.metrics().total_net_ms(), 0.0);
        assert_eq!(io.metrics().total_net_pages(), 0);
    }

    #[test]
    fn node_charging_is_deterministic_across_runs() {
        let charge = |io: &SimulatedIo| -> Vec<TaskIo> {
            (0..24)
                .map(|f| io.charge_scan(f, 3_000 + f * 97, 3))
                .collect()
        };
        let a = node_subsystem(4, 2, NodeStrategy::SharedNothing, 128);
        let b = node_subsystem(4, 2, NodeStrategy::SharedNothing, 128);
        assert_eq!(charge(&a), charge(&b));
        assert_eq!(a.metrics(), b.metrics());
        assert!(a.metrics().total_net_pages() > 0);
    }

    #[test]
    fn per_node_cache_counters_attribute_to_the_executing_node() {
        let io = node_subsystem(2, 2, NodeStrategy::SharedNothing, 512);
        // Fragment 0 executes on node 0, fragment 2 on node 1.
        io.charge_scan(0, 4_000, 0);
        io.charge_scan(0, 4_000, 0);
        io.charge_scan(2, 4_000, 0);
        let m = io.metrics();
        assert!(m.per_node[0].cache_hits > 0);
        assert!(m.per_node[0].cache_misses > 0);
        assert_eq!(m.per_node[1].cache_hits, 0);
        assert!(m.per_node[1].cache_misses > 0);
        assert_eq!(
            m.cache.hits,
            m.per_node.iter().map(|n| n.cache_hits).sum::<u64>()
        );
        assert_eq!(
            m.cache.misses,
            m.per_node.iter().map(|n| n.cache_misses).sum::<u64>()
        );
    }

    #[test]
    fn node_imbalance_reflects_a_hot_node() {
        let io = node_subsystem(2, 2, NodeStrategy::SharedNothing, 0);
        // All load on node 0's disks (fragments 0, 1 → disks 0, 1).
        io.charge_scan(0, 40_000, 0);
        io.charge_scan(1, 40_000, 0);
        let m = io.metrics();
        assert!(
            (m.node_imbalance() - 2.0).abs() < 1e-9,
            "{}",
            m.node_imbalance()
        );
        assert!((m.per_node[0].load_ms() - m.per_node[0].disk_busy_ms).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn uneven_node_split_rejected() {
        let config = IoConfig {
            nodes: 3,
            ..IoConfig::with_disks(4)
        };
        let _ = SimulatedIo::new(config, &apb1_scaled_down());
    }

    #[test]
    #[should_panic(expected = "bitmap fragments per scan")]
    fn oversized_bitmap_count_rejected() {
        subsystem(2, 0).charge_scan(0, 100, OBJECT_STRIDE);
    }

    #[test]
    #[should_panic(expected = "at least one disk")]
    fn zero_disk_clock_rejected() {
        let _ = DiskClock::new(0);
    }
}
