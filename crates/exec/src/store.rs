//! In-memory columnar storage of an MDHF-fragmented fact table.
//!
//! The simulator (`simpad`) works on cardinalities; this store holds *real*
//! rows so that wall-clock execution can be measured.  A generated
//! [`MaterialisedFactTable`] is partitioned by [`Fragmentation::fragment_of_row`]
//! into one [`ColumnarFragment`] per fragment number.  Each fragment keeps
//!
//! * its fact rows in columnar layout (one key column per dimension, one
//!   value column per measure), and
//! * one [`MaterialisedIndex`] per dimension built over *only its own rows* —
//!   the materialised counterpart of the paper's fragment-aligned bitmap
//!   fragments (§4): bit `i` of a fragment's bitmap refers to the `i`-th row
//!   of that fragment, so fragments can be processed independently.

use bitmap::{
    BitmapFragmentation, FactRow, IndexCatalog, MaterialisedFactTable, MaterialisedIndex,
    ReprStats, RepresentationPolicy,
};
use mdhf::Fragmentation;
use schema::{PageSizing, StarSchema};

use crate::file::StorageError;

/// Splitmix64-style mixing, shared by the deterministic skewed-row
/// generator here and the I/O layer's track scattering
/// ([`crate::io`]) — one copy of the finalizer constants.
pub(crate) fn mix64(seed: u64, value: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(value)
        .wrapping_add(0x2545_F491_4F6C_DD1D);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One fact fragment in columnar layout plus its fragment-aligned bitmap
/// join indices.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarFragment {
    fragment_number: u64,
    /// One column per schema dimension, each of `len()` leaf keys.
    keys: Vec<Vec<u64>>,
    /// One column per schema measure, each of `len()` values.
    measures: Vec<Vec<f64>>,
    /// One bitmap join index per dimension, covering only this fragment's rows.
    indices: Vec<MaterialisedIndex>,
}

impl ColumnarFragment {
    fn build(
        schema: &StarSchema,
        catalog: &IndexCatalog,
        policy: RepresentationPolicy,
        fragment_number: u64,
        rows: Vec<FactRow>,
        dimension_cardinalities: Vec<u64>,
    ) -> Self {
        let dimension_count = schema.dimension_count();
        let measure_count = schema.fact().measures().len();
        let mut keys: Vec<Vec<u64>> = (0..dimension_count)
            .map(|_| Vec::with_capacity(rows.len()))
            .collect();
        let mut measures: Vec<Vec<f64>> = (0..measure_count)
            .map(|_| Vec::with_capacity(rows.len()))
            .collect();
        for row in &rows {
            for (column, &key) in keys.iter_mut().zip(&row.keys) {
                column.push(key);
            }
            for (column, &value) in measures.iter_mut().zip(&row.measures) {
                column.push(value);
            }
        }
        let sub_table = MaterialisedFactTable::from_rows(rows, dimension_cardinalities);
        let indices = (0..dimension_count)
            .map(|d| MaterialisedIndex::build_with_policy(schema, catalog, &sub_table, d, policy))
            .collect();
        ColumnarFragment {
            fragment_number,
            keys,
            measures,
            indices,
        }
    }

    /// Reassembles a fragment from already-built columns and indices — the
    /// decode path of the on-disk format ([`crate::file`]), which
    /// deserialises exactly these parts.
    pub(crate) fn from_parts(
        fragment_number: u64,
        keys: Vec<Vec<u64>>,
        measures: Vec<Vec<f64>>,
        indices: Vec<MaterialisedIndex>,
    ) -> Self {
        ColumnarFragment {
            fragment_number,
            keys,
            measures,
            indices,
        }
    }

    /// The linear fragment number this fragment holds.
    #[must_use]
    pub fn fragment_number(&self) -> u64 {
        self.fragment_number
    }

    /// Number of fact rows in this fragment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keys.first().map_or(0, Vec::len)
    }

    /// True if no fact row falls into this fragment.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The leaf-key column of dimension `dimension`.
    #[must_use]
    pub fn key_column(&self, dimension: usize) -> &[u64] {
        &self.keys[dimension]
    }

    /// The value column of measure `measure`.
    #[must_use]
    pub fn measure_column(&self, measure: usize) -> &[f64] {
        &self.measures[measure]
    }

    /// The fragment-aligned bitmap join index of dimension `dimension`.
    #[must_use]
    pub fn bitmap_index(&self, dimension: usize) -> &MaterialisedIndex {
        &self.indices[dimension]
    }

    /// Aggregate representation statistics over this fragment's indices.
    #[must_use]
    pub fn index_stats(&self) -> ReprStats {
        let mut stats = ReprStats::default();
        for index in &self.indices {
            stats.merge(index.repr_stats());
        }
        stats
    }
}

/// A fully materialised, MDHF-fragmented fact table with fragment-aligned
/// bitmap join indices — the physical input of [`crate::StarJoinEngine`].
#[derive(Debug, Clone, PartialEq)]
pub struct FragmentStore {
    schema: StarSchema,
    fragmentation: Fragmentation,
    catalog: IndexCatalog,
    policy: RepresentationPolicy,
    /// Dense, indexed by fragment number (empty fragments included).
    fragments: Vec<ColumnarFragment>,
    total_rows: usize,
}

impl FragmentStore {
    /// Fragment-count ceiling for materialisation: a dense fragment directory
    /// with per-fragment indices is only sensible for scaled-down warehouses.
    pub const MAX_FRAGMENTS: u64 = 1_000_000;

    /// Generates a fact table for `schema` from `seed` (via
    /// [`MaterialisedFactTable::generate`]) and partitions it under
    /// `fragmentation`, with the default adaptive representation policy.
    #[must_use]
    pub fn build(schema: &StarSchema, fragmentation: &Fragmentation, seed: u64) -> Self {
        Self::build_with_policy(schema, fragmentation, seed, RepresentationPolicy::default())
    }

    /// [`FragmentStore::build`] with an explicit per-bitmap representation
    /// policy for every fragment's indices.
    #[must_use]
    pub fn build_with_policy(
        schema: &StarSchema,
        fragmentation: &Fragmentation,
        seed: u64,
        policy: RepresentationPolicy,
    ) -> Self {
        Self::from_table_with_policy(
            schema,
            fragmentation,
            &MaterialisedFactTable::generate(schema, seed),
            policy,
        )
    }

    /// Generates a **selectivity-skewed** fact table of exactly `rows` rows
    /// and partitions it under `fragmentation`: every dimension key is
    /// drawn from a [`workload::ZipfSampler`] with skew factor `theta` over
    /// the dimension's leaf cardinality, so hot values (key 0 first) own
    /// far more rows and fragment sizes differ wildly — the workload the
    /// skew-resilience experiments feed the simulated disk layer with.
    /// `theta = 0` draws keys uniformly.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is negative or not finite, or the fragmentation
    /// yields more than [`Self::MAX_FRAGMENTS`] fragments.
    #[must_use]
    pub fn build_skewed(
        schema: &StarSchema,
        fragmentation: &Fragmentation,
        seed: u64,
        theta: f64,
        rows: usize,
    ) -> Self {
        let samplers: Vec<workload::ZipfSampler> = schema
            .dimensions()
            .iter()
            .map(|d| workload::ZipfSampler::new(d.cardinality(), theta))
            .collect();
        let cards: Vec<u64> = schema
            .dimensions()
            .iter()
            .map(schema::Dimension::cardinality)
            .collect();
        let measure_count = schema.fact().measures().len().max(1);
        let dims = samplers.len() as u64;
        let fact_rows: Vec<FactRow> = (0..rows as u64)
            .map(|r| {
                let keys: Vec<u64> = samplers
                    .iter()
                    .enumerate()
                    .map(|(d, s)| s.sample_u64(mix64(seed, r * (dims + 1) + d as u64)))
                    .collect();
                let measures: Vec<f64> = (0..measure_count)
                    .map(|m| {
                        f64::from(
                            (mix64(seed ^ r, r * (dims + 1) + dims + m as u64) % 1_000) as u32,
                        ) + 1.0
                    })
                    .collect();
                FactRow { keys, measures }
            })
            .collect();
        let table = MaterialisedFactTable::from_rows(fact_rows, cards);
        Self::from_table(schema, fragmentation, &table)
    }

    /// Partitions an existing materialised table under `fragmentation` with
    /// the default adaptive representation policy.
    ///
    /// # Panics
    ///
    /// Panics if the fragmentation yields more than [`Self::MAX_FRAGMENTS`]
    /// fragments.
    #[must_use]
    pub fn from_table(
        schema: &StarSchema,
        fragmentation: &Fragmentation,
        table: &MaterialisedFactTable,
    ) -> Self {
        Self::from_table_with_policy(
            schema,
            fragmentation,
            table,
            RepresentationPolicy::default(),
        )
    }

    /// [`FragmentStore::from_table`] with an explicit representation policy.
    ///
    /// # Panics
    ///
    /// Panics if the fragmentation yields more than [`Self::MAX_FRAGMENTS`]
    /// fragments.  [`FragmentStore::try_from_table_with_policy`] is the
    /// fallible equivalent.
    #[must_use]
    pub fn from_table_with_policy(
        schema: &StarSchema,
        fragmentation: &Fragmentation,
        table: &MaterialisedFactTable,
        policy: RepresentationPolicy,
    ) -> Self {
        match Self::try_from_table_with_policy(schema, fragmentation, table, policy) {
            Ok(store) => store,
            Err(error) => panic!("{error}"),
        }
    }

    /// Fallible [`FragmentStore::from_table_with_policy`]: instead of
    /// panicking, over-fine fragmentations surface as
    /// [`StorageError::Config`].
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Config`] when the fragmentation yields more
    /// than [`Self::MAX_FRAGMENTS`] fragments.
    pub fn try_from_table_with_policy(
        schema: &StarSchema,
        fragmentation: &Fragmentation,
        table: &MaterialisedFactTable,
        policy: RepresentationPolicy,
    ) -> Result<Self, StorageError> {
        let fragment_count = fragmentation.fragment_count();
        if fragment_count > Self::MAX_FRAGMENTS {
            return Err(StorageError::Config(format!(
                "refusing to materialise {fragment_count} fragments; use a coarser fragmentation"
            )));
        }
        let catalog = IndexCatalog::default_for(schema);
        let mut per_fragment: Vec<Vec<FactRow>> = vec![Vec::new(); fragment_count as usize];
        for row in table.rows() {
            let fragment = fragmentation.fragment_of_row(schema, &row.keys);
            per_fragment[fragment as usize].push(row.clone());
        }
        let cards = table.dimension_cardinalities();
        let fragments = per_fragment
            .into_iter()
            .enumerate()
            .map(|(number, rows)| {
                ColumnarFragment::build(
                    schema,
                    &catalog,
                    policy,
                    number as u64,
                    rows,
                    cards.to_vec(),
                )
            })
            .collect();
        Ok(FragmentStore {
            schema: schema.clone(),
            fragmentation: fragmentation.clone(),
            catalog,
            policy,
            fragments,
            total_rows: table.len(),
        })
    }

    /// Reassembles a store from decoded parts — the final step of opening an
    /// on-disk fragment file through [`crate::file::FileStore::materialise`].
    pub(crate) fn from_parts(
        schema: StarSchema,
        fragmentation: Fragmentation,
        catalog: IndexCatalog,
        policy: RepresentationPolicy,
        fragments: Vec<ColumnarFragment>,
        total_rows: usize,
    ) -> Self {
        FragmentStore {
            schema,
            fragmentation,
            catalog,
            policy,
            fragments,
            total_rows,
        }
    }

    /// The schema the store was built for.
    #[must_use]
    pub fn schema(&self) -> &StarSchema {
        &self.schema
    }

    /// The fragmentation the store is partitioned under.
    #[must_use]
    pub fn fragmentation(&self) -> &Fragmentation {
        &self.fragmentation
    }

    /// The logical index catalog the per-fragment indices follow.
    #[must_use]
    pub fn catalog(&self) -> &IndexCatalog {
        &self.catalog
    }

    /// Number of fragments (including empty ones).
    #[must_use]
    pub fn fragment_count(&self) -> u64 {
        self.fragments.len() as u64
    }

    /// The fragment with the given linear fragment number.
    ///
    /// # Panics
    ///
    /// Panics if `fragment_number` is out of range.
    #[must_use]
    pub fn fragment(&self, fragment_number: u64) -> &ColumnarFragment {
        &self.fragments[usize::try_from(fragment_number).expect("fragment number fits usize")]
    }

    /// All fragments in fragment-number order.
    #[must_use]
    pub fn fragments(&self) -> &[ColumnarFragment] {
        &self.fragments
    }

    /// Total number of materialised fact rows across all fragments.
    #[must_use]
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// Total fact rows a plan's fragments hold — the rows a full execution
    /// of that plan scans, used to cross-check scheduler accounting against
    /// the sum of per-query plans.
    #[must_use]
    pub fn planned_rows(&self, plan: &crate::plan::QueryPlan) -> u64 {
        plan.fragments()
            .iter()
            .map(|&f| self.fragment(f).len() as u64)
            .sum()
    }

    /// Number of measures per fact row.
    #[must_use]
    pub fn measure_count(&self) -> usize {
        self.schema.fact().measures().len()
    }

    /// The representation policy every fragment's indices were built with.
    #[must_use]
    pub fn policy(&self) -> RepresentationPolicy {
        self.policy
    }

    /// Aggregate representation statistics over every fragment's indices:
    /// how many bitmaps compressed, measured bytes vs. the verbatim
    /// baseline.
    #[must_use]
    pub fn index_stats(&self) -> ReprStats {
        let mut stats = ReprStats::default();
        for fragment in &self.fragments {
            stats.merge(fragment.index_stats());
        }
        stats
    }

    /// Measured physical size of all fragment-aligned indices, in bytes.
    #[must_use]
    pub fn index_size_bytes(&self) -> usize {
        self.index_stats().size_bytes
    }

    /// Measured compression ratio of the store's indices (verbatim bytes
    /// over stored bytes; 1.0 when nothing compressed).
    #[must_use]
    pub fn measured_compression_ratio(&self) -> f64 {
        self.index_stats().compression_ratio()
    }

    /// The *logical* (full-scale) bitmap-fragment sizing this fragmentation
    /// would have under the schema's page sizing — the quantity the
    /// thresholds of §4.4 constrain.
    #[must_use]
    pub fn logical_bitmap_sizing(&self) -> BitmapFragmentation {
        BitmapFragmentation::new(&PageSizing::new(&self.schema), self.fragment_count())
    }

    /// The logical sizing with the store's *measured* compression ratio
    /// applied, so analytic page counts reflect what the chosen
    /// representations actually occupy.
    #[must_use]
    pub fn measured_bitmap_sizing(&self) -> BitmapFragmentation {
        self.logical_bitmap_sizing()
            .with_compression_ratio(self.measured_compression_ratio())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::apb1::apb1_scaled_down;

    fn store() -> FragmentStore {
        let schema = apb1_scaled_down();
        let fragmentation =
            Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
        FragmentStore::build(&schema, &fragmentation, 2024)
    }

    #[test]
    fn partitioning_conserves_rows_and_matches_fragment_of_row() {
        let schema = apb1_scaled_down();
        let fragmentation =
            Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
        let table = MaterialisedFactTable::generate(&schema, 2024);
        let store = FragmentStore::from_table(&schema, &fragmentation, &table);

        assert_eq!(store.fragment_count(), fragmentation.fragment_count());
        assert_eq!(store.total_rows(), table.len());
        let sum: usize = store.fragments().iter().map(ColumnarFragment::len).sum();
        assert_eq!(sum, table.len());

        // Every row of every fragment maps back to that fragment.
        for fragment in store.fragments() {
            for row in 0..fragment.len() {
                let keys: Vec<u64> = (0..schema.dimension_count())
                    .map(|d| fragment.key_column(d)[row])
                    .collect();
                assert_eq!(
                    fragmentation.fragment_of_row(&schema, &keys),
                    fragment.fragment_number()
                );
            }
        }
    }

    #[test]
    fn fragment_indices_agree_with_key_columns() {
        let store = store();
        let schema = store.schema().clone();
        let product = schema.dimension_index("product").unwrap();
        let group = schema.attr("product", "group").unwrap();
        let hierarchy = schema.dimensions()[product].hierarchy().clone();
        for fragment in store.fragments().iter().take(40) {
            for value in 0..hierarchy.cardinality(group.level).min(3) {
                let from_index: Vec<usize> = fragment
                    .bitmap_index(product)
                    .select(group.level, value)
                    .iter_ones()
                    .collect();
                let range = hierarchy.leaf_range_of(group.level, value);
                let from_column: Vec<usize> = fragment
                    .key_column(product)
                    .iter()
                    .enumerate()
                    .filter(|(_, k)| range.contains(k))
                    .map(|(i, _)| i)
                    .collect();
                assert_eq!(from_index, from_column);
            }
        }
    }

    #[test]
    fn columnar_layout_has_expected_shape() {
        let store = store();
        assert_eq!(store.measure_count(), 3);
        let fragment = store
            .fragments()
            .iter()
            .find(|f| !f.is_empty())
            .expect("some fragment holds rows");
        assert_eq!(fragment.key_column(0).len(), fragment.len());
        assert_eq!(fragment.measure_column(2).len(), fragment.len());
        assert!(fragment.measure_column(0).iter().all(|&m| m >= 1.0));
        assert_eq!(
            store.fragment(fragment.fragment_number()).len(),
            fragment.len()
        );
    }

    #[test]
    fn logical_sizing_reuses_bitmap_fragment_arithmetic() {
        let store = store();
        let sizing = store.logical_bitmap_sizing();
        assert_eq!(sizing.fragments(), store.fragment_count());
        assert!(sizing.bits_per_fragment() > 0.0);
    }

    #[test]
    fn representation_policies_yield_identical_selections_and_stats() {
        let schema = apb1_scaled_down();
        let fragmentation =
            Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
        let table = MaterialisedFactTable::generate(&schema, 2024);
        let plain = FragmentStore::from_table_with_policy(
            &schema,
            &fragmentation,
            &table,
            bitmap::RepresentationPolicy::Plain,
        );
        let adaptive = FragmentStore::from_table(&schema, &fragmentation, &table);
        assert_eq!(adaptive.policy(), bitmap::RepresentationPolicy::default());

        // The plain store measures exactly the verbatim baseline; the
        // adaptive store never exceeds it.
        let plain_stats = plain.index_stats();
        let adaptive_stats = adaptive.index_stats();
        assert_eq!(plain_stats.size_bytes, plain_stats.plain_size_bytes);
        assert_eq!(plain_stats.compressed, 0);
        assert_eq!(adaptive_stats.bitmaps, plain_stats.bitmaps);
        assert!(adaptive_stats.size_bytes <= plain_stats.size_bytes);
        assert!(adaptive.measured_compression_ratio() >= 1.0);

        // Selections agree bitmap-for-bitmap on a sample of fragments.
        let product = schema.dimension_index("product").unwrap();
        let group = schema.attr("product", "group").unwrap();
        for number in 0..plain.fragment_count().min(10) {
            let a = plain.fragment(number).bitmap_index(product);
            let b = adaptive.fragment(number).bitmap_index(product);
            assert_eq!(a.select(group.level, 1), b.select(group.level, 1));
        }

        // Measured sizing plumbs the ratio into the page arithmetic.
        let measured = adaptive.measured_bitmap_sizing();
        assert_eq!(
            measured.compression_ratio(),
            adaptive.measured_compression_ratio()
        );
        assert!(
            measured.bytes_per_fragment() <= adaptive.logical_bitmap_sizing().bytes_per_fragment()
        );
    }

    #[test]
    fn skewed_stores_concentrate_rows_on_hot_fragments() {
        let schema = apb1_scaled_down();
        let fragmentation =
            Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
        let rows = 60_000;
        let uniform = FragmentStore::build_skewed(&schema, &fragmentation, 7, 0.0, rows);
        let skewed = FragmentStore::build_skewed(&schema, &fragmentation, 7, 1.0, rows);
        assert_eq!(uniform.total_rows(), rows);
        assert_eq!(skewed.total_rows(), rows);

        let largest = |store: &FragmentStore| {
            store
                .fragments()
                .iter()
                .map(ColumnarFragment::len)
                .max()
                .unwrap()
        };
        let mean = rows / uniform.fragment_count() as usize;
        // Uniform keys stay near the mean; Zipf keys pile onto the hot
        // (month 0, group 0) fragment.
        assert!(largest(&uniform) < 3 * mean, "{}", largest(&uniform));
        assert!(largest(&skewed) > 10 * mean, "{}", largest(&skewed));
        // The hot fragment is the one holding the hottest values.
        let hot = skewed
            .fragments()
            .iter()
            .max_by_key(|f| f.len())
            .unwrap()
            .fragment_number();
        assert_eq!(skewed.fragmentation().coordinates(hot).0, vec![0, 0]);

        // Deterministic for a fixed seed.
        let again = FragmentStore::build_skewed(&schema, &fragmentation, 7, 1.0, rows);
        assert_eq!(largest(&again), largest(&skewed));
    }

    #[test]
    #[should_panic(expected = "refusing to materialise")]
    fn too_fine_fragmentations_rejected() {
        let schema = schema::apb1::apb1_schema();
        let fragmentation = Fragmentation::parse(
            &schema,
            &["time::month", "product::code", "customer::store"],
        )
        .unwrap();
        let table = MaterialisedFactTable::from_rows(vec![], vec![14_400, 1_440, 15, 24]);
        let _ = FragmentStore::from_table(&schema, &fragmentation, &table);
    }
}
