//! The concurrent multi-query scheduler: inter-query parallelism over one
//! shared worker pool.
//!
//! The paper's multi-user experiments stress exactly the regime the
//! single-query engine cannot reach: many concurrent star queries competing
//! for the same disks and CPUs, where throughput — not single-query speedup
//! — decides the fragmentation and allocation choice.  [`QueryScheduler`]
//! supplies the missing layer:
//!
//! * a stream of [`BoundQuery`]s is planned up front and **admitted** under
//!   an MPL (multi-programming level) limit — at most
//!   [`SchedulerConfig::max_in_flight`] queries are decomposed into
//!   per-fragment tasks at any time, the rest wait in FIFO order,
//! * every task is tagged with its query's in-flight slot and its plan
//!   position, and carries its disk affinity: when a placement is
//!   configured, each admitted query's tasks are dealt to the workers in
//!   [`allocation::PhysicalAllocation::subquery_disks`] order (the
//!   engine's placement seed order), so a worker's chunk maps to a
//!   contiguous disk stripe,
//! * **one** work-stealing pool of [`ExecConfig::pool_size`] workers serves
//!   *all* in-flight queries — tasks from different queries interleave in
//!   the shared deques instead of each query spawning its own pool, so
//!   MPL > 1 never over-subscribes the machine,
//! * with [`ExecConfig::io`] set, **one** simulated disk subsystem
//!   ([`crate::io::SimulatedIo`]) serves the whole stream: each query's
//!   scans are charged at admission, in admission order — deterministic
//!   regardless of thread interleave — so the shared page cache persists
//!   across queries (repeated scans of hot fragments hit it) and tasks are
//!   steal-weighted by their remaining simulated I/O,
//! * each completed query is merged **deterministically** in plan order
//!   through the same fold as the single-query engine (the shared
//!   `merge_partials`), so every query's hits and measure sums are
//!   bit-identical to its isolated serial run, for every MPL, worker count
//!   and scheduling interleave,
//! * when the I/O layer simulates a **shared-nothing multi-node** system
//!   ([`crate::io::IoConfig::nodes`] > 1 with
//!   [`allocation::NodeStrategy::SharedNothing`]), the pool splits into
//!   per-node worker ranges: each admitted task is dealt to a worker on its
//!   fragment's *home node* ([`allocation::NodePlacement::home_node`]), a
//!   dry worker first steals within its own node, and only then migrates
//!   work across the interconnect — the first cross-node pull of a fragment
//!   ships a replica to the thief's node (a wall-clock charge and a
//!   [`WorkerMetrics::fragments_replicated`] count; later migrations of the
//!   same fragment hit the replica).  Migration is a scheduling outcome:
//!   the simulated clocks, traces and results are untouched by it, so
//!   multi-node runs stay bit-identical to single-node runs,
//! * the run reports [`ThroughputMetrics`]: queries/sec, the per-query
//!   latency distribution, worker utilisation, steal counts, the
//!   disk-affinity hit rate and — with the I/O layer on — per-disk
//!   utilisation, queue depth and cache statistics.

use std::collections::{BTreeSet, VecDeque};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::{Duration, Instant};

use allocation::{NodePlacement, NodeStrategy};
use obs::{us_from_ms, EventKind, FieldKey, ObsConfig, Trace, TraceRecorder, Track};
use workload::{BoundQuery, QueryStream};

use crate::engine::{
    merge_partials, placement_seed_order, process_fragment, ExecConfig, FragmentPartial,
    StarJoinEngine,
};
use crate::io::{throttle_for, ScanCtx, SimulatedIo};
use crate::metrics::{ExecMetrics, ThroughputMetrics, WorkerMetrics};
use crate::plan::PredicateBinding;
use crate::queue::StealDeques;
use crate::sync::PoisonLock;

/// Configuration of a multi-query scheduler run.
#[derive(Debug, Clone)]
pub struct SchedulerConfig {
    /// The shared pool: worker count and optional placement (which seeds
    /// each admitted query's tasks in disk-affinity order).
    pub exec: ExecConfig,
    /// Admission-control limit: the maximum number of queries decomposed
    /// into tasks at any time (the multi-programming level).  `0` is
    /// clamped to 1.
    pub max_in_flight: usize,
}

impl SchedulerConfig {
    /// A pool of `workers` threads admitting at most `max_in_flight`
    /// queries.
    #[must_use]
    pub fn new(workers: usize, max_in_flight: usize) -> Self {
        SchedulerConfig {
            exec: ExecConfig {
                workers,
                ..ExecConfig::default()
            },
            max_in_flight,
        }
    }

    /// Derives the MPL from a workload stream description: a single-user
    /// stream admits one query at a time, a multi-user stream as many as it
    /// has concurrent users.
    #[must_use]
    pub fn from_stream(workers: usize, stream: QueryStream) -> Self {
        SchedulerConfig::new(workers, stream.max_in_flight())
    }

    /// Seeds every admitted query's tasks in `placement`'s disk-affinity
    /// order.
    #[must_use]
    pub fn with_placement(mut self, placement: allocation::PhysicalAllocation) -> Self {
        self.exec.placement = Some(placement);
        self
    }

    /// Charges the whole stream against one shared simulated disk
    /// subsystem built from `io` (cache state persists across the stream's
    /// queries).
    #[must_use]
    pub fn with_io(mut self, io: crate::io::IoConfig) -> Self {
        self.exec.io = Some(io);
        self
    }

    /// Records a deterministic trace of the run (see [`ObsConfig`]):
    /// query lifecycle, scan and disk-service events on the simulated
    /// clock plus per-worker task/steal/merge events, returned as
    /// [`StreamOutcome::trace`].
    #[must_use]
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.exec.obs = obs;
        self
    }

    /// The effective MPL (at least 1).
    #[must_use]
    pub fn mpl(&self) -> usize {
        self.max_in_flight.max(1)
    }
}

/// The result of one scheduled query, in submission order.
///
/// `hits` and `measure_sums` are bit-identical to the query's isolated
/// serial execution ([`StarJoinEngine::execute_serial`]).
#[derive(Debug, Clone)]
pub struct ScheduledQuery {
    /// Position of the query in the submitted stream.
    pub query_id: usize,
    /// The query's diagnostic name.
    pub query_name: String,
    /// Number of fact rows satisfying all predicates.
    pub hits: u64,
    /// Sum per measure over all hit rows, in schema measure order.
    pub measure_sums: Vec<f64>,
    /// Number of per-fragment tasks the query's plan decomposed into.
    pub planned_fragments: usize,
    /// Fact rows scanned across the query's tasks.
    pub rows_scanned: u64,
    /// Time from run start until the query was admitted (admission-control
    /// queueing delay).
    pub admission_wait: Duration,
    /// Time from admission until the last task's partial was merged — the
    /// per-query response time of the multi-user workload.
    pub latency: Duration,
}

/// The outcome of one scheduler run: per-query results in submission order
/// plus the shared pool's throughput metrics.
#[derive(Debug, Clone)]
pub struct StreamOutcome {
    /// One result per submitted query, in submission order.
    pub queries: Vec<ScheduledQuery>,
    /// Aggregate throughput metrics of the run.
    pub metrics: ThroughputMetrics,
    /// The recorded trace when [`ObsConfig`] was enabled on the
    /// configuration.
    pub trace: Option<Trace>,
}

/// One claimable unit of work: a fragment of an in-flight query.
struct Task {
    /// In-flight slot of the owning query.
    slot: usize,
    /// Submission index of the owning query (trace attribution).
    query: usize,
    /// Position within the owning plan's fragment list (merge order).
    task: usize,
    /// The store fragment number to process.
    fragment: u64,
    /// Simulated I/O charged to this task at admission (0 with the I/O
    /// layer off).
    sim_ms: f64,
    /// The owning query's bitmap predicates (shared across its tasks).
    bindings: Arc<Vec<PredicateBinding>>,
}

/// A planned query waiting for, or in, admission (immutable during the run).
struct Prepared {
    query_name: String,
    /// Plan fragment numbers, in plan (merge) order.
    fragments: Vec<u64>,
    /// Row count per plan fragment (the I/O layer's scan sizes).
    fragment_rows: Vec<u64>,
    /// Physical bitmap fragments one fragment subquery must read.
    bitmap_fragments: u64,
    /// Task indices in seeding order: the disk-affinity permutation when a
    /// placement is configured, plan order otherwise.
    seed_order: Vec<usize>,
    bindings: Arc<Vec<PredicateBinding>>,
}

/// Mutable bookkeeping of one admitted query.
struct InFlight {
    query_id: usize,
    partials: Vec<FragmentPartial>,
    remaining: usize,
    admitted_at: Instant,
    admission_wait: Duration,
}

/// All state the admission/completion logic mutates, under one lock.
struct Control {
    /// Query ids not yet admitted, in FIFO order.
    pending: VecDeque<usize>,
    /// In-flight queries by slot; `None` slots are free.
    slots: Vec<Option<InFlight>>,
    free_slots: Vec<usize>,
    /// Number of admitted-but-unfinished queries.
    active: usize,
    /// Number of submitted-but-unfinished queries (admitted or pending).
    unfinished: usize,
    /// Results by query id.
    results: Vec<Option<ScheduledQuery>>,
    /// Rotating worker cursor so consecutive small queries start on
    /// different workers instead of all piling onto worker 0.
    seed_cursor: usize,
    /// One rotating cursor per simulated node (empty in single-node runs):
    /// node-homed tasks are dealt round-robin over their home node's worker
    /// range, so a node's workers share its load evenly.
    node_cursors: Vec<usize>,
    /// Admissions so far — the logical admission clock trace events are
    /// stamped with when no simulated disk clock exists.  Advanced under
    /// this lock, in FIFO admission order, so its readings are
    /// deterministic.
    admit_seq: u64,
}

/// Everything the workers share.
struct Shared {
    deques: StealDeques<Task>,
    control: Mutex<Control>,
    /// Signalled when tasks are pushed or the run finishes.
    work: Condvar,
    prepared: Vec<Prepared>,
    mpl: usize,
    measure_count: usize,
    /// The stream-wide simulated disk subsystem; scans are charged at
    /// admission (under the control lock, in admission order — the
    /// deterministic replay order).
    io: Option<SimulatedIo>,
    /// The run's event sink when tracing is enabled.
    obs: Option<TraceRecorder>,
    /// The shared-nothing node topology when the I/O layer simulates more
    /// than one node; `None` runs the classic single-node pool.
    nodes: Option<NodeTopology>,
    started: Instant,
}

/// The pool's node layout under a shared-nothing multi-node I/O subsystem:
/// which workers belong to which simulated node, which node is a
/// fragment's home, and which fragments each node has pulled a replica of.
struct NodeTopology {
    placement: NodePlacement,
    /// Pool size the worker ranges partition.
    workers: usize,
    /// Per-node replicated-fragment sets: a migrated task's first execution
    /// on a foreign node ships the fragment there (a wall-clock charge);
    /// later migrations of the same fragment hit the replica for free.
    replicas: Vec<Mutex<BTreeSet<u64>>>,
}

impl NodeTopology {
    fn new(placement: NodePlacement, workers: usize) -> Self {
        NodeTopology {
            placement,
            workers,
            replicas: (0..placement.nodes()).map(|_| Mutex::default()).collect(),
        }
    }

    fn node_count(&self) -> usize {
        self.placement.nodes() as usize
    }

    /// The node owning `worker`: contiguous ranges, consistent with
    /// [`NodeTopology::worker_range`].
    fn node_of_worker(&self, worker: usize) -> usize {
        worker * self.node_count() / self.workers
    }

    /// The half-open worker range `lo..hi` owned by `node` (empty when the
    /// pool has fewer workers than nodes).
    fn worker_range(&self, node: usize) -> (usize, usize) {
        let nodes = self.node_count();
        (
            (node * self.workers).div_ceil(nodes),
            ((node + 1) * self.workers).div_ceil(nodes),
        )
    }

    fn home_node(&self, fragment: u64) -> usize {
        self.placement.home_node(fragment) as usize
    }
}

impl Shared {
    /// Admits pending queries until the MPL limit is reached, dealing each
    /// admitted query's tasks across the worker deques in seed order.
    /// Zero-task queries complete at admission.  Call with the control lock
    /// held; the caller notifies the condvar.
    fn admit(&self, control: &mut Control) {
        while control.active < self.mpl {
            let Some(query_id) = control.pending.pop_front() else {
                break;
            };
            let prepared = &self.prepared[query_id];
            // detlint: allow(wall-clock, reason = "admission-wait latency observability; results are merged deterministically")
            let admitted_at = Instant::now();
            let admission_wait = admitted_at.duration_since(self.started);
            // The admission timestamp on the deterministic trace clock:
            // simulated elapsed time before this query's charges, or the
            // logical admission counter when the I/O layer is off.  Both
            // depend only on FIFO admission order (queries are charged at
            // admission, in query-id order, under this lock), so they are
            // identical across runs, worker counts and MPLs.
            let admit_us = match &self.io {
                Some(io) => us_from_ms(io.sim_elapsed_ms()),
                None => control.admit_seq,
            };
            control.admit_seq += 1;
            if let Some(rec) = &self.obs {
                rec.record(
                    Track::Query(query_id as u32),
                    EventKind::QueryAdmit,
                    admit_us,
                    0,
                    vec![],
                );
            }
            if prepared.fragments.is_empty() {
                // Defensive: plans currently always hold ≥1 fragment, but an
                // empty one must complete rather than hang the stream.
                if let Some(rec) = &self.obs {
                    rec.record(
                        Track::Query(query_id as u32),
                        EventKind::Query,
                        admit_us,
                        0,
                        vec![(FieldKey::Fragments, 0)],
                    );
                    rec.record(
                        Track::Query(query_id as u32),
                        EventKind::QueryComplete,
                        admit_us,
                        0,
                        vec![(FieldKey::Rows, 0)],
                    );
                }
                control.results[query_id] = Some(finalize(
                    query_id,
                    prepared,
                    &mut [],
                    self.measure_count,
                    admission_wait,
                    Duration::ZERO,
                ));
                control.unfinished -= 1;
                continue;
            }
            let slot = control.free_slots.pop().unwrap_or_else(|| {
                control.slots.push(None);
                control.slots.len() - 1
            });
            control.slots[slot] = Some(InFlight {
                query_id,
                partials: Vec::with_capacity(prepared.fragments.len()),
                remaining: prepared.fragments.len(),
                admitted_at,
                admission_wait,
            });
            control.active += 1;
            // Deal the tasks in balanced contiguous chunks of the seed
            // order (the same `position * workers / tasks` chunking as
            // `FragmentQueue::with_seed_order`, rotated by the cursor):
            // big queries spread over the whole pool with no worker left
            // empty by rounding, and consecutive single-task queries land
            // on distinct workers.
            let workers = self.deques.workers();
            let first = control.seed_cursor;
            control.seed_cursor = (control.seed_cursor + 1) % workers;
            let tasks = prepared.seed_order.len();
            // Charge the admitted query's scans against the shared disk
            // subsystem in *plan order* — admissions happen in query-id
            // order under the control lock, so the whole stream's I/O
            // replay is deterministic.
            let charges = self.io.as_ref().map(|io| {
                prepared
                    .fragments
                    .iter()
                    .zip(&prepared.fragment_rows)
                    .enumerate()
                    .map(|(task, (&fragment, &rows))| {
                        io.charge_scan_traced(
                            fragment,
                            rows,
                            prepared.bitmap_fragments,
                            ScanCtx {
                                query: query_id as u32,
                                task: task as u32,
                            },
                            self.obs.as_ref(),
                        )
                    })
                    .collect::<Vec<_>>()
            });
            if let Some(rec) = &self.obs {
                // The query's simulated completion time is already decided:
                // all of its disk work was just charged, so its span on the
                // deterministic clock closes here, independent of which
                // workers later execute the tasks (logical time when the
                // I/O layer is off: admission and completion coincide).
                let complete_us = charges.as_deref().map_or(admit_us, |charges| {
                    charges
                        .iter()
                        .map(|c| us_from_ms(c.sim_end_ms))
                        .fold(admit_us, u64::max)
                });
                rec.record(
                    Track::Query(query_id as u32),
                    EventKind::Query,
                    admit_us,
                    complete_us - admit_us,
                    vec![(FieldKey::Fragments, prepared.fragments.len() as u64)],
                );
                rec.record(
                    Track::Query(query_id as u32),
                    EventKind::QueryComplete,
                    complete_us,
                    0,
                    vec![],
                );
            }
            let steal_by_io = self.io.as_ref().is_some_and(|io| io.config().steal_by_io);
            for (position, &task) in prepared.seed_order.iter().enumerate() {
                // Shared-nothing multi-node pools deal each task to a worker
                // on its fragment's home node (round-robin within the node's
                // range); otherwise — and when a node owns no workers — the
                // balanced contiguous chunking above applies.
                let home = match &self.nodes {
                    Some(topology) => {
                        let node = topology.home_node(prepared.fragments[task]);
                        let (lo, hi) = topology.worker_range(node);
                        if hi > lo {
                            let cursor = &mut control.node_cursors[node];
                            let worker = lo + *cursor % (hi - lo);
                            *cursor += 1;
                            worker
                        } else {
                            (first + position * workers / tasks) % workers
                        }
                    }
                    None => (first + position * workers / tasks) % workers,
                };
                let charge = charges.as_ref().map(|c| c[task]);
                let cost = match charge {
                    Some(c) if steal_by_io => c.cost_units(),
                    _ => 1,
                };
                self.deques.push(
                    home,
                    Task {
                        slot,
                        query: query_id,
                        task,
                        fragment: prepared.fragments[task],
                        sim_ms: charge.map_or(0.0, |c| c.sim_ms),
                        bindings: Arc::clone(&prepared.bindings),
                    },
                    cost,
                );
            }
        }
    }

    /// Deposits one finished task's partial; on a query's last task, frees
    /// the slot, admits the next pending queries, and merges the result.
    /// Returns the merged query's id when this deposit completed one.
    ///
    /// The deterministic merge (sort + float fold over all of the query's
    /// partials) runs *outside* the control lock so a fat query's
    /// finalisation never stalls the other workers' deposits or the
    /// admission path; only the result store re-takes the lock.
    fn deposit(&self, task_slot: usize, partial: FragmentPartial) -> Option<usize> {
        let mut done = {
            let mut control = self.lock_control();
            let in_flight = control.slots[task_slot]
                .as_mut()
                .expect("deposit into an empty slot");
            in_flight.partials.push(partial);
            in_flight.remaining -= 1;
            if in_flight.remaining > 0 {
                return None;
            }
            let done = control.slots[task_slot].take().expect("slot just used");
            control.free_slots.push(task_slot);
            control.active -= 1;
            self.admit(&mut control);
            // Wake idle workers for the newly dealt tasks.  `unfinished`
            // stays counted until the result below is stored, so no worker
            // can exit before every result exists.
            self.work.notify_all();
            done
        };
        let latency = done.admitted_at.elapsed();
        let result = finalize(
            done.query_id,
            &self.prepared[done.query_id],
            &mut done.partials,
            self.measure_count,
            done.admission_wait,
            latency,
        );
        let mut control = self.lock_control();
        control.results[done.query_id] = Some(result);
        control.unfinished -= 1;
        if control.unfinished == 0 {
            // Nothing left anywhere: wake everyone so they observe the end.
            self.work.notify_all();
        }
        Some(done.query_id)
    }

    fn lock_control(&self) -> MutexGuard<'_, Control> {
        self.control.plock("scheduler control")
    }
}

/// Merges a completed query's partials into its deterministic result.
fn finalize(
    query_id: usize,
    prepared: &Prepared,
    partials: &mut [FragmentPartial],
    measure_count: usize,
    admission_wait: Duration,
    latency: Duration,
) -> ScheduledQuery {
    let rows_scanned = partials.iter().map(|p| p.rows).sum();
    let (hits, measure_sums) = merge_partials(partials, measure_count);
    ScheduledQuery {
        query_id,
        query_name: prepared.query_name.clone(),
        hits,
        measure_sums,
        planned_fragments: prepared.fragments.len(),
        rows_scanned,
        admission_wait,
        latency,
    }
}

/// One worker's loop: claim tasks from any in-flight query until every
/// submitted query has finished.
fn worker_loop(shared: &Shared, engine: &StarJoinEngine, worker: usize) -> WorkerMetrics {
    let source = engine.source();
    let wall_ns_per_sim_ms = shared
        .io
        .as_ref()
        .map_or(0, |io| io.config().wall_ns_per_sim_ms);
    let mut metrics = WorkerMetrics {
        worker,
        ..WorkerMetrics::default()
    };
    // This worker's position on its own simulated timeline (see the engine's
    // `run_worker`): thread-attributed trace events are stamped from it.
    let mut sim_cursor_ms = 0.0f64;
    // This worker's node and its node's worker range under a shared-nothing
    // multi-node topology: steal node-locally before migrating across.
    let my_node = shared.nodes.as_ref().map(|t| t.node_of_worker(worker));
    loop {
        let claimed = shared
            .deques
            .pop_own(worker)
            .map(|task| (task, None))
            .or_else(|| {
                shared
                    .nodes
                    .as_ref()
                    .zip(my_node)
                    .and_then(|(topology, node)| {
                        let (lo, hi) = topology.worker_range(node);
                        shared.deques.steal_within(worker, lo, hi)
                    })
                    .or_else(|| shared.deques.steal(worker))
                    .map(|(task, victim)| (task, Some(victim)))
            });
        let Some((task, stolen_from)) = claimed else {
            let mut control = shared.lock_control();
            if control.unfinished == 0 {
                break;
            }
            // Tasks are only pushed under the control lock, so an
            // empty deque set observed *while holding it* cannot race
            // a push: wait for the next deposit/admission signal.
            if shared.deques.total_len() == 0 {
                control = shared
                    .work
                    .wait(control)
                    .expect("scheduler control lock poisoned");
            }
            drop(control);
            continue;
        };
        // detlint: allow(wall-clock, reason = "per-task busy-time metrics; never part of query results")
        let task_started = Instant::now();
        let stolen = stolen_from.is_some();
        throttle_for(task.sim_ms, wall_ns_per_sim_ms);
        metrics.sim_io_ms += task.sim_ms;
        if let (Some(topology), Some(node)) = (&shared.nodes, my_node) {
            if topology.home_node(task.fragment) != node {
                // Executing off the fragment's home node: inter-node
                // migration.  The first pull ships a replica to this node —
                // a wall-clock charge only; the simulated clocks, traces
                // and results never see migration (it is a scheduling
                // outcome, and charging it would break the deterministic
                // admission-order replay).
                metrics.tasks_migrated += 1;
                let replicated = topology.replicas[node]
                    .plock("node replica set")
                    .insert(task.fragment);
                if replicated {
                    metrics.fragments_replicated += 1;
                    throttle_for(task.sim_ms, wall_ns_per_sim_ms);
                }
            }
        }
        let fragment = source.fetch(task.fragment);
        let (partial, compressed) =
            process_fragment(&fragment, &task.bindings, source.measure_count(), task.task);
        metrics.busy += task_started.elapsed();
        metrics.fragments_processed += 1;
        metrics.fragments_stolen += usize::from(stolen);
        metrics.fragments_compressed += usize::from(compressed);
        metrics.rows_scanned += partial.rows;
        metrics.rows_matched += partial.hits;
        if let Some(rec) = &shared.obs {
            let ts_us = us_from_ms(sim_cursor_ms);
            if let Some(victim) = stolen_from {
                rec.record(
                    Track::Worker(worker as u32),
                    EventKind::Steal,
                    ts_us,
                    0,
                    vec![
                        (FieldKey::Query, task.query as u64),
                        (FieldKey::Task, task.task as u64),
                        (FieldKey::Victim, victim as u64),
                    ],
                );
            }
            rec.record(
                Track::Worker(worker as u32),
                EventKind::TaskRun,
                ts_us,
                us_from_ms(task.sim_ms),
                vec![
                    (FieldKey::Query, task.query as u64),
                    (FieldKey::Task, task.task as u64),
                    (FieldKey::Fragment, task.fragment),
                    (FieldKey::Rows, partial.rows),
                    (FieldKey::Stolen, u64::from(stolen)),
                    (FieldKey::SimMsBits, task.sim_ms.to_bits()),
                ],
            );
        }
        sim_cursor_ms += task.sim_ms;
        let completed = shared.deposit(task.slot, partial);
        if let (Some(rec), Some(query)) = (&shared.obs, completed) {
            rec.record(
                Track::Worker(worker as u32),
                EventKind::Merge,
                us_from_ms(sim_cursor_ms),
                0,
                vec![(FieldKey::Query, query as u64)],
            );
        }
    }
    metrics
}

/// A concurrent multi-query scheduler over a [`StarJoinEngine`]'s store.
#[derive(Debug)]
pub struct QueryScheduler<'e> {
    engine: &'e StarJoinEngine,
    config: SchedulerConfig,
}

impl<'e> QueryScheduler<'e> {
    /// Creates a scheduler over `engine`'s store with `config`.
    #[must_use]
    pub fn new(engine: &'e StarJoinEngine, config: SchedulerConfig) -> Self {
        QueryScheduler { engine, config }
    }

    /// The scheduler's configuration.
    #[must_use]
    pub fn config(&self) -> &SchedulerConfig {
        &self.config
    }

    /// Plans, admits and executes `queries` on the shared pool, returning
    /// per-query results in submission order plus throughput metrics.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    #[must_use]
    pub fn run(&self, queries: &[BoundQuery]) -> StreamOutcome {
        let source = self.engine.source();
        let placement = self.config.exec.placement.as_ref();
        let prepared: Vec<Prepared> = queries
            .iter()
            .map(|bound| {
                let plan = self.engine.plan(bound);
                let seed_order = match placement {
                    Some(placement) => placement_seed_order(&plan, source.catalog(), placement),
                    None => (0..plan.task_count()).collect(),
                };
                Prepared {
                    query_name: plan.query_name().to_string(),
                    seed_order,
                    bindings: Arc::new(plan.bitmap_predicates()),
                    fragment_rows: plan
                        .fragments()
                        .iter()
                        .map(|&f| source.fragment_rows(f))
                        .collect(),
                    bitmap_fragments: plan.bitmap_fragments_per_subquery(source.catalog()),
                    fragments: plan.fragments().to_vec(),
                }
            })
            .collect();
        let total_tasks: usize = prepared.iter().map(|p| p.fragments.len()).sum();
        // One shared pool for the whole stream — sized once, by the same
        // rule as the single-query engine, never per admitted query.
        let workers = self.config.exec.pool_size(total_tasks);
        let query_count = prepared.len();

        // The run clock starts *after* planning (like `ExecMetrics::wall`),
        // so admission waits measure queueing delay and queries/sec measures
        // execution throughput, not upfront plan time.
        // detlint: allow(wall-clock, reason = "stream run clock for qps/latency observability; results never depend on it")
        let started = Instant::now();
        let recorder = self
            .config
            .exec
            .obs
            .enabled
            .then(|| TraceRecorder::new(self.config.exec.obs.capacity));
        if let Some(rec) = &recorder {
            // Submission and planning happen before the run clock starts:
            // both land at logical time 0, in query-id order.
            for (query_id, prepared) in prepared.iter().enumerate() {
                let track = Track::Query(query_id as u32);
                rec.record(track, EventKind::QuerySubmit, 0, 0, vec![]);
                rec.record(
                    track,
                    EventKind::QueryPlan,
                    0,
                    0,
                    vec![(FieldKey::Fragments, prepared.fragments.len() as u64)],
                );
            }
        }
        // The shared-nothing node topology, when the I/O layer simulates
        // more than one node.  Shared-disk multi-node subsystems keep the
        // single-node pool: every node reads every disk at equal cost, so
        // there is no home-node locality to preserve.
        let nodes = self.config.exec.io.and_then(|io_config| {
            (io_config.nodes > 1 && io_config.node_strategy == NodeStrategy::SharedNothing)
                .then(|| NodeTopology::new(io_config.node_placement(), workers))
        });
        let shared = Shared {
            deques: StealDeques::new(workers),
            control: Mutex::new(Control {
                pending: (0..query_count).collect(),
                slots: Vec::new(),
                free_slots: Vec::new(),
                active: 0,
                unfinished: query_count,
                results: (0..query_count).map(|_| None).collect(),
                seed_cursor: 0,
                node_cursors: vec![0; nodes.as_ref().map_or(0, NodeTopology::node_count)],
                admit_seq: 0,
            }),
            work: Condvar::new(),
            prepared,
            mpl: self.config.mpl(),
            measure_count: source.measure_count(),
            io: self
                .config
                .exec
                .io
                .map(|io_config| SimulatedIo::new(io_config, source.schema())),
            obs: recorder,
            nodes,
            started,
        };

        {
            let mut control = shared.lock_control();
            shared.admit(&mut control);
        }

        let mut worker_metrics: Vec<WorkerMetrics> = if workers == 1 {
            vec![worker_loop(&shared, self.engine, 0)]
        } else {
            thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|worker| {
                        let shared = &shared;
                        let engine = self.engine;
                        scope.spawn(move || worker_loop(shared, engine, worker))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("scheduler worker panicked"))
                    .collect()
            })
        };
        let wall = started.elapsed();
        worker_metrics.sort_by_key(|m| m.worker);

        let io_metrics = shared.io.as_ref().map(SimulatedIo::metrics);
        let trace = shared.obs.map(TraceRecorder::into_trace);
        let control = shared.control.into_inner().expect("control lock poisoned");
        let results: Vec<ScheduledQuery> = control
            .results
            .into_iter()
            .map(|r| r.expect("every submitted query completed"))
            .collect();
        let latencies = results.iter().map(|r| r.latency).collect();
        let queries_completed = results.len();
        StreamOutcome {
            metrics: ThroughputMetrics::new(
                ExecMetrics {
                    workers: worker_metrics,
                    wall,
                    planned_fragments: total_tasks,
                    io: io_metrics,
                    file: self.engine.source().file_metrics(),
                },
                queries_completed,
                latencies,
                self.config.mpl(),
            ),
            queries: results,
            trace,
        }
    }
}

impl StarJoinEngine {
    /// Plans, admits and executes a stream of queries concurrently on one
    /// shared worker pool — see [`QueryScheduler`].
    #[must_use]
    pub fn execute_stream(
        &self,
        queries: &[BoundQuery],
        config: &SchedulerConfig,
    ) -> StreamOutcome {
        QueryScheduler::new(self, config.clone()).run(queries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::FragmentStore;
    use allocation::PhysicalAllocation;
    use mdhf::Fragmentation;
    use schema::apb1::apb1_scaled_down;
    use workload::{InterleavedStream, QueryType};

    fn engine() -> StarJoinEngine {
        let schema = apb1_scaled_down();
        let fragmentation =
            Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
        StarJoinEngine::new(FragmentStore::build(&schema, &fragmentation, 2024))
    }

    fn stream(engine: &StarJoinEngine, count: usize) -> Vec<BoundQuery> {
        let mut source = InterleavedStream::new(
            engine.store().schema(),
            &[
                QueryType::OneMonthOneGroup,
                QueryType::OneCode,
                QueryType::OneGroup,
                QueryType::OneStore,
            ],
            99,
        );
        source.take_queries(count)
    }

    fn assert_bits_match_serial(engine: &StarJoinEngine, queries: &[BoundQuery], mpl: usize) {
        let outcome = engine.execute_stream(queries, &SchedulerConfig::new(4, mpl));
        assert_eq!(outcome.queries.len(), queries.len());
        assert_eq!(outcome.metrics.queries_completed, queries.len());
        assert_eq!(outcome.metrics.mpl, mpl.max(1));
        for (query_id, (bound, scheduled)) in queries.iter().zip(&outcome.queries).enumerate() {
            let serial = engine.execute_serial(bound);
            assert_eq!(scheduled.query_id, query_id);
            assert_eq!(scheduled.query_name, serial.query_name);
            assert_eq!(scheduled.hits, serial.hits, "MPL {mpl} query {query_id}");
            let serial_bits: Vec<u64> = serial.measure_sums.iter().map(|s| s.to_bits()).collect();
            let scheduled_bits: Vec<u64> =
                scheduled.measure_sums.iter().map(|s| s.to_bits()).collect();
            assert_eq!(
                scheduled_bits, serial_bits,
                "MPL {mpl} query {query_id} ({}) not bit-identical",
                scheduled.query_name
            );
        }
    }

    #[test]
    fn scheduler_is_bit_identical_to_serial_for_every_mpl() {
        let engine = engine();
        let queries = stream(&engine, 10);
        for mpl in [1usize, 2, 4, 8] {
            assert_bits_match_serial(&engine, &queries, mpl);
        }
    }

    #[test]
    fn rows_and_tasks_account_for_every_plan() {
        let engine = engine();
        let queries = stream(&engine, 8);
        let expected_rows: u64 = queries
            .iter()
            .map(|q| engine.store().planned_rows(&engine.plan(q)))
            .sum();
        let expected_tasks: usize = queries.iter().map(|q| engine.plan(q).task_count()).sum();
        let outcome = engine.execute_stream(&queries, &SchedulerConfig::new(3, 4));
        assert_eq!(outcome.metrics.pool.total_rows_scanned(), expected_rows);
        assert_eq!(outcome.metrics.pool.total_fragments(), expected_tasks);
        assert_eq!(outcome.metrics.pool.planned_fragments, expected_tasks);
        let per_query_rows: u64 = outcome.queries.iter().map(|q| q.rows_scanned).sum();
        assert_eq!(per_query_rows, expected_rows);
        let per_query_tasks: usize = outcome.queries.iter().map(|q| q.planned_fragments).sum();
        assert_eq!(per_query_tasks, expected_tasks);
    }

    #[test]
    fn shared_pool_never_oversubscribes() {
        let engine = engine();
        let queries = stream(&engine, 12);
        // MPL 8 on a 4-worker pool: still exactly 4 workers.
        let outcome = engine.execute_stream(&queries, &SchedulerConfig::new(4, 8));
        assert_eq!(outcome.metrics.pool.worker_count(), 4);
        // A stream with fewer tasks than workers clamps the pool.
        let one = &queries[0..1];
        let single_task: Vec<BoundQuery> = one
            .iter()
            .filter(|q| engine.plan(q).task_count() == 1)
            .cloned()
            .collect();
        if !single_task.is_empty() {
            let outcome = engine.execute_stream(&single_task, &SchedulerConfig::new(16, 4));
            assert_eq!(outcome.metrics.pool.worker_count(), 1);
        }
    }

    #[test]
    fn empty_stream_completes_immediately() {
        let engine = engine();
        let outcome = engine.execute_stream(&[], &SchedulerConfig::new(4, 2));
        assert!(outcome.queries.is_empty());
        assert_eq!(outcome.metrics.queries_completed, 0);
        assert_eq!(outcome.metrics.pool.total_fragments(), 0);
        assert_eq!(outcome.metrics.latency_mean(), Duration::ZERO);
    }

    #[test]
    fn latencies_and_waits_are_recorded_in_submission_order() {
        let engine = engine();
        let queries = stream(&engine, 6);
        let outcome = engine.execute_stream(&queries, &SchedulerConfig::new(2, 2));
        assert_eq!(outcome.metrics.latencies.len(), 6);
        for (query_id, scheduled) in outcome.queries.iter().enumerate() {
            assert_eq!(scheduled.query_id, query_id);
            assert!(scheduled.latency > Duration::ZERO);
            assert_eq!(outcome.metrics.latencies[query_id], scheduled.latency);
        }
        // With MPL 2, the 3rd query cannot be admitted before the run start.
        assert!(outcome.queries[2].admission_wait >= outcome.queries[0].admission_wait);
        let mean = outcome.metrics.latency_mean();
        assert!(mean >= outcome.metrics.latency_percentile(0.0));
        assert!(outcome.metrics.latency_max() >= mean);
    }

    #[test]
    fn placement_seeding_changes_nothing_but_order() {
        let engine = engine();
        let queries = stream(&engine, 6);
        let baseline = engine.execute_stream(&queries, &SchedulerConfig::new(4, 4));
        let placed = engine.execute_stream(
            &queries,
            &SchedulerConfig::new(4, 4).with_placement(PhysicalAllocation::round_robin(10)),
        );
        for (a, b) in baseline.queries.iter().zip(&placed.queries) {
            assert_eq!(a.hits, b.hits);
            let a_bits: Vec<u64> = a.measure_sums.iter().map(|s| s.to_bits()).collect();
            let b_bits: Vec<u64> = b.measure_sums.iter().map(|s| s.to_bits()).collect();
            assert_eq!(a_bits, b_bits);
        }
    }

    #[test]
    fn stream_shares_one_io_subsystem_and_stays_bit_identical() {
        let engine = engine();
        let queries = stream(&engine, 10);
        let io = crate::io::IoConfig::with_disks(6).cache(50_000);
        let outcome = engine.execute_stream(&queries, &SchedulerConfig::new(4, 4).with_io(io));
        // Results still bit-identical to isolated serial runs.
        for (bound, scheduled) in queries.iter().zip(&outcome.queries) {
            let serial = engine.execute_serial(bound);
            assert_eq!(scheduled.hits, serial.hits);
            let a: Vec<u64> = serial.measure_sums.iter().map(|s| s.to_bits()).collect();
            let b: Vec<u64> = scheduled.measure_sums.iter().map(|s| s.to_bits()).collect();
            assert_eq!(a, b);
        }
        let io_metrics = outcome.metrics.pool.io.as_ref().expect("I/O metrics");
        assert_eq!(io_metrics.disk_count(), 6);
        assert!(io_metrics.total_pages_read() > 0);
        // Worker-side accounting matches the subsystem's charges.
        let charged: f64 = io_metrics.per_disk.iter().map(|d| d.busy_ms).sum();
        assert!((outcome.metrics.pool.total_sim_io_ms() - charged).abs() < 1e-6);
        // The stream repeats query types over a big cache: later queries
        // re-scan fragments the cache already holds.
        assert!(io_metrics.cache_hit_rate() > 0.0);

        // The admission-order replay is deterministic: same stream, same
        // configuration → identical simulated metrics, at any MPL/workers.
        let again = engine.execute_stream(&queries, &SchedulerConfig::new(2, 8).with_io(io));
        assert_eq!(again.metrics.pool.io, outcome.metrics.pool.io);
    }

    #[test]
    fn multi_node_results_are_bit_identical_across_node_counts() {
        let engine = engine();
        let queries = stream(&engine, 10);
        let reference = engine.execute_stream(
            &queries,
            &SchedulerConfig::new(4, 4).with_io(crate::io::IoConfig::with_disks(8).cache(20_000)),
        );
        for nodes in [1u64, 2, 4, 8] {
            for strategy in [NodeStrategy::SharedNothing, NodeStrategy::SharedDisk] {
                let io = crate::io::IoConfig {
                    nodes,
                    node_strategy: strategy,
                    ..crate::io::IoConfig::with_disks(8).cache(20_000)
                };
                let outcome =
                    engine.execute_stream(&queries, &SchedulerConfig::new(4, 4).with_io(io));
                for (a, b) in reference.queries.iter().zip(&outcome.queries) {
                    assert_eq!(a.hits, b.hits, "{nodes} nodes, {strategy:?}");
                    let a_bits: Vec<u64> = a.measure_sums.iter().map(|s| s.to_bits()).collect();
                    let b_bits: Vec<u64> = b.measure_sums.iter().map(|s| s.to_bits()).collect();
                    assert_eq!(a_bits, b_bits, "{nodes} nodes, {strategy:?}");
                }
            }
        }
    }

    #[test]
    fn shared_nothing_stream_attributes_nodes_deterministically() {
        let engine = engine();
        let queries = stream(&engine, 10);
        let io = crate::io::IoConfig {
            nodes: 4,
            node_strategy: NodeStrategy::SharedNothing,
            ..crate::io::IoConfig::with_disks(8).cache(50_000)
        };
        let outcome = engine.execute_stream(&queries, &SchedulerConfig::new(4, 4).with_io(io));
        let io_metrics = outcome.metrics.pool.io.as_ref().expect("I/O metrics");
        assert_eq!(io_metrics.node_count(), 4);
        // Staggered bitmap placement crosses node boundaries, so a
        // shared-nothing run must have paid the interconnect.
        assert!(io_metrics.total_net_pages() > 0);
        assert!(io_metrics.total_net_ms() > 0.0);
        assert!(io_metrics.node_imbalance() >= 1.0);
        // I/O is charged at admission in admission order: per-node
        // attribution is identical for any worker count and MPL.
        let again = engine.execute_stream(&queries, &SchedulerConfig::new(2, 8).with_io(io));
        assert_eq!(again.metrics.pool.io, outcome.metrics.pool.io);
        // The shared-disk twin never touches the interconnect.
        let shared_disk = crate::io::IoConfig {
            node_strategy: NodeStrategy::SharedDisk,
            ..io
        };
        let disk_outcome =
            engine.execute_stream(&queries, &SchedulerConfig::new(4, 4).with_io(shared_disk));
        let disk_metrics = disk_outcome.metrics.pool.io.as_ref().expect("I/O metrics");
        assert_eq!(disk_metrics.total_net_pages(), 0);
    }

    #[test]
    fn migration_counters_track_off_home_execution() {
        let engine = engine();
        let queries = stream(&engine, 8);
        // One worker on a two-node subsystem: node 1 owns no workers, so
        // every task homed there executes on node 0 — each counted as a
        // migration, each distinct fragment replicated exactly once.
        let io = crate::io::IoConfig {
            nodes: 2,
            node_strategy: NodeStrategy::SharedNothing,
            ..crate::io::IoConfig::with_disks(4)
        };
        let outcome = engine.execute_stream(&queries, &SchedulerConfig::new(1, 2).with_io(io));
        let pool = &outcome.metrics.pool;
        assert_eq!(pool.worker_count(), 1);
        assert!(pool.total_migrated() > 0, "node-1 tasks must have migrated");
        assert!(pool.total_replicated() > 0);
        assert!(pool.total_replicated() <= pool.total_migrated());
        assert!(outcome.metrics.migration_rate() > 0.0);
        // A single-node run of the same stream migrates nothing.
        let single = engine.execute_stream(
            &queries,
            &SchedulerConfig::new(1, 2).with_io(crate::io::IoConfig::with_disks(4)),
        );
        assert_eq!(single.metrics.pool.total_migrated(), 0);
        assert_eq!(single.metrics.pool.total_replicated(), 0);
    }

    #[test]
    fn config_constructors() {
        let config = SchedulerConfig::new(4, 0);
        assert_eq!(config.mpl(), 1);
        assert_eq!(config.exec.workers, 4);
        let from_stream = SchedulerConfig::from_stream(2, QueryStream::MultiUser { streams: 8 });
        assert_eq!(from_stream.mpl(), 8);
        assert_eq!(
            SchedulerConfig::from_stream(2, QueryStream::SingleUser).mpl(),
            1
        );
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::store::FragmentStore;
    use mdhf::Fragmentation;
    use proptest::prelude::*;
    use schema::apb1::Apb1Config;
    use workload::QueryType;

    /// The same deliberately tiny schema as the engine proptests, so each
    /// case (store build + stream + per-query serial baselines) stays fast
    /// in debug builds.
    fn tiny_schema() -> schema::StarSchema {
        Apb1Config {
            channels: 3,
            months: 6,
            stores: 16,
            product_codes: 24,
            density: 0.2,
            fact_tuple_bytes: 20,
        }
        .build()
    }

    const FRAGMENTATIONS: [&[&str]; 3] = [
        &["time::month"],
        &["time::month", "product::group"],
        &["time::quarter", "product::division"],
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(10))]

        /// For random multi-user streams (random query types and values)
        /// and MPL ∈ {1, 2, 8}, every query's scheduler result is
        /// bit-identical to its isolated serial execution, and the total
        /// rows processed match the sum of the per-query plans.
        #[test]
        fn prop_scheduler_matches_isolated_serial_runs(
            frag_idx in 0usize..FRAGMENTATIONS.len(),
            type_seeds in proptest::collection::vec(0usize..5, 1..8),
            raw_values in proptest::collection::vec(0u64..100_000, 16),
            seed in 1u64..1_000,
            workers in 1usize..5,
        ) {
            let schema = tiny_schema();
            let fragmentation =
                Fragmentation::parse(&schema, FRAGMENTATIONS[frag_idx]).unwrap();
            let store = FragmentStore::build(&schema, &fragmentation, seed);
            let engine = StarJoinEngine::new(store);

            let mut raw = raw_values.iter().cycle();
            let queries: Vec<BoundQuery> = type_seeds
                .iter()
                .map(|&type_idx| {
                    let shape = QueryType::standard_mix()[type_idx].to_star_query(&schema);
                    let values: Vec<u64> = shape
                        .predicates()
                        .iter()
                        .map(|p| raw.next().unwrap() % p.attr.cardinality(&schema))
                        .collect();
                    BoundQuery::new(&schema, shape, values)
                })
                .collect();

            let serial: Vec<_> = queries.iter().map(|q| engine.execute_serial(q)).collect();
            let expected_rows: u64 = queries
                .iter()
                .map(|q| engine.store().planned_rows(&engine.plan(q)))
                .sum();

            for mpl in [1usize, 2, 8] {
                let outcome =
                    engine.execute_stream(&queries, &SchedulerConfig::new(workers, mpl));
                prop_assert_eq!(outcome.queries.len(), queries.len());
                prop_assert_eq!(outcome.metrics.pool.total_rows_scanned(), expected_rows);
                for (scheduled, baseline) in outcome.queries.iter().zip(&serial) {
                    prop_assert_eq!(scheduled.hits, baseline.hits);
                    let scheduled_bits: Vec<u64> =
                        scheduled.measure_sums.iter().map(|s| s.to_bits()).collect();
                    let baseline_bits: Vec<u64> =
                        baseline.measure_sums.iter().map(|s| s.to_bits()).collect();
                    prop_assert_eq!(scheduled_bits, baseline_bits);
                }
            }
        }

        /// For random streams, node counts {2, 8} and both node strategies,
        /// the multi-node scheduler's per-query results are bit-identical
        /// to the single-node run of the same stream — node topology moves
        /// work and I/O attribution, never result bits.
        #[test]
        fn prop_multi_node_results_match_single_node(
            type_seeds in proptest::collection::vec(0usize..5, 1..6),
            raw_values in proptest::collection::vec(0u64..100_000, 16),
            seed in 1u64..1_000,
            shared_nothing in proptest::bool::ANY,
            workers in 1usize..5,
        ) {
            let schema = tiny_schema();
            let fragmentation =
                Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
            let store = FragmentStore::build(&schema, &fragmentation, seed);
            let engine = StarJoinEngine::new(store);

            let mut raw = raw_values.iter().cycle();
            let queries: Vec<BoundQuery> = type_seeds
                .iter()
                .map(|&type_idx| {
                    let shape = QueryType::standard_mix()[type_idx].to_star_query(&schema);
                    let values: Vec<u64> = shape
                        .predicates()
                        .iter()
                        .map(|p| raw.next().unwrap() % p.attr.cardinality(&schema))
                        .collect();
                    BoundQuery::new(&schema, shape, values)
                })
                .collect();

            let strategy = if shared_nothing {
                NodeStrategy::SharedNothing
            } else {
                NodeStrategy::SharedDisk
            };
            let flat = crate::io::IoConfig::with_disks(8).cache(4_096);
            let baseline =
                engine.execute_stream(&queries, &SchedulerConfig::new(workers, 2).with_io(flat));
            for nodes in [2u64, 8] {
                let io = crate::io::IoConfig { nodes, node_strategy: strategy, ..flat };
                let outcome =
                    engine.execute_stream(&queries, &SchedulerConfig::new(workers, 2).with_io(io));
                for (a, b) in baseline.queries.iter().zip(&outcome.queries) {
                    prop_assert_eq!(a.hits, b.hits);
                    let a_bits: Vec<u64> = a.measure_sums.iter().map(|s| s.to_bits()).collect();
                    let b_bits: Vec<u64> = b.measure_sums.iter().map(|s| s.to_bits()).collect();
                    prop_assert_eq!(a_bits, b_bits);
                }
            }
        }

        /// For random streams with tracing enabled, the deterministic trace
        /// section (query lifecycle, scans, disk service on the simulated
        /// clock) is bit-identical across runs, worker counts and MPLs —
        /// same canonical events, same digest — with and without the I/O
        /// layer.
        #[test]
        fn prop_trace_deterministic_section_is_bit_identical(
            type_seeds in proptest::collection::vec(0usize..5, 1..6),
            raw_values in proptest::collection::vec(0u64..100_000, 16),
            seed in 1u64..1_000,
            with_io in proptest::bool::ANY,
        ) {
            let schema = tiny_schema();
            let fragmentation =
                Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
            let store = FragmentStore::build(&schema, &fragmentation, seed);
            let engine = StarJoinEngine::new(store);

            let mut raw = raw_values.iter().cycle();
            let queries: Vec<BoundQuery> = type_seeds
                .iter()
                .map(|&type_idx| {
                    let shape = QueryType::standard_mix()[type_idx].to_star_query(&schema);
                    let values: Vec<u64> = shape
                        .predicates()
                        .iter()
                        .map(|p| raw.next().unwrap() % p.attr.cardinality(&schema))
                        .collect();
                    BoundQuery::new(&schema, shape, values)
                })
                .collect();

            let config = |workers: usize, mpl: usize| {
                let mut config = SchedulerConfig::new(workers, mpl)
                    .with_obs(obs::ObsConfig::enabled());
                if with_io {
                    config = config.with_io(crate::io::IoConfig::with_disks(4).cache(10_000));
                }
                config
            };

            let reference = engine
                .execute_stream(&queries, &config(1, 1))
                .trace
                .expect("tracing enabled");
            prop_assert_eq!(reference.dropped, 0);
            let reference_events = reference.deterministic_events();
            for (workers, mpl) in [(1usize, 1usize), (2, 2), (4, 8), (3, 1)] {
                let trace = engine
                    .execute_stream(&queries, &config(workers, mpl))
                    .trace
                    .expect("tracing enabled");
                prop_assert_eq!(trace.dropped, 0);
                prop_assert_eq!(trace.digest(), reference.digest());
                prop_assert_eq!(&trace.deterministic_events(), &reference_events);
            }
        }
    }
}
