//! The engine's scan source: in-memory fragments or a persistent file.
//!
//! [`ScanSource`] abstracts *where fragments come from* so the executor,
//! the simulated-I/O charger and the multi-query scheduler run the same
//! code over a materialised [`FragmentStore`] and over an on-disk
//! [`FileStore`].  Results are bit-identical between the two backings: the
//! file format round-trips every row and bitmap exactly, and the merge
//! order depends only on the plan — never on which backing served a
//! fragment or what its page cache did.
//!
//! Fetching borrows from the memory backing ([`FragmentRef::Borrowed`])
//! and hands out a decoded [`std::sync::Arc`] from the file backing
//! ([`FragmentRef::Shared`]); workers treat both as a
//! [`ColumnarFragment`] through [`std::ops::Deref`].

use std::ops::Deref;
use std::sync::Arc;

use bitmap::{IndexCatalog, RepresentationPolicy};
use mdhf::Fragmentation;
use schema::StarSchema;

use crate::file::{FileIoMetrics, FileStore, StorageError};
use crate::plan::QueryPlan;
use crate::store::{ColumnarFragment, FragmentStore};

/// Where a [`crate::StarJoinEngine`] reads its fragments from.
#[derive(Debug)]
pub enum ScanSource {
    /// Fragments materialised in memory — the original engine backing.
    Memory(FragmentStore),
    /// Fragments read on demand from a persistent `FGMT` file through an
    /// LRU page pool (see [`crate::file`]).
    File(FileStore),
}

impl ScanSource {
    /// The star schema the fragments were built from.
    #[must_use]
    pub fn schema(&self) -> &StarSchema {
        match self {
            ScanSource::Memory(store) => store.schema(),
            ScanSource::File(store) => store.schema(),
        }
    }

    /// The fragmentation the fragments follow.
    #[must_use]
    pub fn fragmentation(&self) -> &Fragmentation {
        match self {
            ScanSource::Memory(store) => store.fragmentation(),
            ScanSource::File(store) => store.fragmentation(),
        }
    }

    /// The logical bitmap index catalog.
    #[must_use]
    pub fn catalog(&self) -> &IndexCatalog {
        match self {
            ScanSource::Memory(store) => store.catalog(),
            ScanSource::File(store) => store.catalog(),
        }
    }

    /// The representation policy the bitmap indices were built with.
    #[must_use]
    pub fn policy(&self) -> RepresentationPolicy {
        match self {
            ScanSource::Memory(store) => store.policy(),
            ScanSource::File(store) => store.policy(),
        }
    }

    /// Number of fragments (empty ones included).
    #[must_use]
    pub fn fragment_count(&self) -> u64 {
        match self {
            ScanSource::Memory(store) => store.fragment_count(),
            ScanSource::File(store) => store.fragment_count(),
        }
    }

    /// Total fact rows across all fragments.
    #[must_use]
    pub fn total_rows(&self) -> u64 {
        match self {
            ScanSource::Memory(store) => store.total_rows() as u64,
            ScanSource::File(store) => store.total_rows(),
        }
    }

    /// Number of measures per fact row.
    #[must_use]
    pub fn measure_count(&self) -> usize {
        self.schema().fact().measures().len()
    }

    /// Rows held by fragment `fragment_number` — metadata only, never a
    /// fragment fetch (the simulated-I/O charger and the scheduler's
    /// planner call this per planned fragment before any scan runs).
    ///
    /// # Panics
    ///
    /// Panics if `fragment_number` is out of range.
    #[must_use]
    pub fn fragment_rows(&self, fragment_number: u64) -> u64 {
        match self {
            ScanSource::Memory(store) => store.fragment(fragment_number).len() as u64,
            ScanSource::File(store) => store.fragment_rows(fragment_number),
        }
    }

    /// Total fact rows a plan's fragments hold — the rows a full execution
    /// of that plan scans.
    #[must_use]
    pub fn planned_rows(&self, plan: &QueryPlan) -> u64 {
        plan.fragments()
            .iter()
            .map(|&f| self.fragment_rows(f))
            .sum()
    }

    /// Fetches fragment `fragment_number` for scanning.
    ///
    /// # Errors
    ///
    /// Fails only on the file backing, when a page read fails or a segment
    /// checksum no longer verifies (the file changed underneath an open
    /// store).
    pub fn try_fetch(&self, fragment_number: u64) -> Result<FragmentRef<'_>, StorageError> {
        match self {
            ScanSource::Memory(store) => Ok(FragmentRef::Borrowed(store.fragment(fragment_number))),
            ScanSource::File(store) => store
                .read_fragment(fragment_number)
                .map(FragmentRef::Shared),
        }
    }

    /// Fetches fragment `fragment_number`, panicking on file corruption.
    ///
    /// Worker loops use this: [`FileStore::open`] verifies every segment
    /// checksum up front, so a failure here means the file was truncated
    /// or rewritten *while the engine was scanning it* — not a state a
    /// query result can be produced from.
    ///
    /// # Panics
    ///
    /// Panics if the file backing fails mid-scan (see above) or
    /// `fragment_number` is out of range.
    #[must_use]
    pub fn fetch(&self, fragment_number: u64) -> FragmentRef<'_> {
        match self.try_fetch(fragment_number) {
            Ok(fragment) => fragment,
            Err(error) => panic!("fragment {fragment_number} unreadable mid-scan: {error}"),
        }
    }

    /// The memory backing, when this source is one.
    #[must_use]
    pub fn as_memory(&self) -> Option<&FragmentStore> {
        match self {
            ScanSource::Memory(store) => Some(store),
            ScanSource::File(_) => None,
        }
    }

    /// The file backing, when this source is one.
    #[must_use]
    pub fn as_file(&self) -> Option<&FileStore> {
        match self {
            ScanSource::Memory(_) => None,
            ScanSource::File(store) => Some(store),
        }
    }

    /// Cumulative real-I/O statistics of the file backing (`None` for the
    /// memory backing, which performs no I/O at all).
    #[must_use]
    pub fn file_metrics(&self) -> Option<FileIoMetrics> {
        match self {
            ScanSource::Memory(_) => None,
            ScanSource::File(store) => Some(store.metrics()),
        }
    }
}

impl From<FragmentStore> for ScanSource {
    fn from(store: FragmentStore) -> Self {
        ScanSource::Memory(store)
    }
}

impl From<FileStore> for ScanSource {
    fn from(store: FileStore) -> Self {
        ScanSource::File(store)
    }
}

/// A fetched fragment: borrowed from the memory backing, or a shared
/// decoded copy from the file backing's cache.  Both deref to
/// [`ColumnarFragment`].
#[derive(Debug)]
pub enum FragmentRef<'a> {
    /// A direct borrow of an in-memory fragment.
    Borrowed(&'a ColumnarFragment),
    /// A decoded fragment shared with the file store's cache.
    Shared(Arc<ColumnarFragment>),
}

impl Deref for FragmentRef<'_> {
    type Target = ColumnarFragment;

    fn deref(&self) -> &ColumnarFragment {
        match self {
            FragmentRef::Borrowed(fragment) => fragment,
            FragmentRef::Shared(fragment) => fragment,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::file::write_store;
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("fgmt_src_{}_{tag}_{n}.fgmt", std::process::id()))
    }

    struct TempFile(PathBuf);

    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn store() -> FragmentStore {
        let schema = schema::apb1::apb1_scaled_down();
        let fragmentation =
            Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
        FragmentStore::build(&schema, &fragmentation, 2024)
    }

    #[test]
    fn memory_and_file_sources_agree_on_metadata_and_fragments() {
        let store = store();
        let guard = TempFile(temp_path("meta"));
        write_store(&store, &guard.0).unwrap();
        let file = FileStore::open(&guard.0).unwrap();

        let memory_src = ScanSource::from(store);
        let file_src = ScanSource::from(file);
        assert_eq!(memory_src.schema(), file_src.schema());
        assert_eq!(memory_src.fragmentation(), file_src.fragmentation());
        assert_eq!(memory_src.catalog(), file_src.catalog());
        assert_eq!(memory_src.policy(), file_src.policy());
        assert_eq!(memory_src.fragment_count(), file_src.fragment_count());
        assert_eq!(memory_src.total_rows(), file_src.total_rows());
        assert_eq!(memory_src.measure_count(), file_src.measure_count());
        assert!(memory_src.as_memory().is_some() && memory_src.as_file().is_none());
        assert!(file_src.as_file().is_some() && file_src.as_memory().is_none());
        assert!(memory_src.file_metrics().is_none());

        for no in 0..memory_src.fragment_count() {
            assert_eq!(memory_src.fragment_rows(no), file_src.fragment_rows(no));
            let borrowed = memory_src.fetch(no);
            let shared = file_src.fetch(no);
            assert_eq!(*borrowed, *shared);
        }
        assert!(file_src.file_metrics().expect("file metrics").segment_reads > 0);
    }
}
