//! A shared fragment queue with cost-weighted work stealing.
//!
//! The paper's execution model assigns fragment subqueries to processing
//! elements *dynamically* to balance load (fragments differ in size and the
//! PEs in speed).  This queue mirrors that: each worker owns a deque seeded
//! with a contiguous chunk of the plan's fragment list (preserving the
//! allocation order's locality), pops work from its own front, and — once
//! empty — steals from the back of another worker.
//!
//! Every task carries a **cost weight**.  With uniform weights (the
//! default) a steal targets the victim with the most queued tasks, exactly
//! the classic deque-length policy.  When the simulated I/O layer is active
//! the weights are each task's remaining simulated I/O, so under a skewed
//! workload a thief raids the worker that still owns the most *work*, not
//! merely the most *tasks* — the skew-resilience path of the stealing pool.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::sync::PoisonLock;

/// One worker's deque plus the total cost of its queued tasks.
#[derive(Debug)]
struct CostedDeque<T> {
    tasks: VecDeque<(T, u64)>,
    remaining_cost: u64,
}

/// The lock-per-worker deque set underneath every work-stealing queue in
/// this crate: [`FragmentQueue`] (one query, tasks fixed up front) and the
/// multi-query [`crate::scheduler`] (tasks arrive as queries are admitted).
///
/// Each worker owns one deque; owners pop from the front, thieves steal
/// from the back of the victim with the highest remaining cost.  `T` is
/// whatever the caller uses as a task — a bare fragment index for the
/// single-query engine, a query-tagged task for the scheduler.
#[derive(Debug)]
pub(crate) struct StealDeques<T> {
    deques: Vec<Mutex<CostedDeque<T>>>,
}

impl<T> StealDeques<T> {
    /// Creates one empty deque per worker.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "a queue needs at least one worker");
        StealDeques {
            deques: (0..workers)
                .map(|_| {
                    Mutex::new(CostedDeque {
                        tasks: VecDeque::new(),
                        remaining_cost: 0,
                    })
                })
                .collect(),
        }
    }

    /// Number of workers the deque set was created for.
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Appends `task` with steal weight `cost` to the back of `worker`'s
    /// own deque.
    pub fn push(&self, worker: usize, task: T, cost: u64) {
        let mut deque = self.lock(worker);
        deque.remaining_cost = deque.remaining_cost.saturating_add(cost);
        deque.tasks.push_back((task, cost));
    }

    /// Pops the next task from `worker`'s own deque front.
    pub fn pop_own(&self, worker: usize) -> Option<T> {
        assert!(worker < self.deques.len(), "worker index out of range");
        let mut deque = self.lock(worker);
        let (task, cost) = deque.tasks.pop_front()?;
        deque.remaining_cost -= cost;
        Some(task)
    }

    /// Steals a task from the back of the other deque with the highest
    /// remaining cost, returning the task together with the victim's
    /// worker index (for steal-event attribution).
    ///
    /// Loads can change between snapshot and steal, so victims are re-checked
    /// under their lock in descending-cost order until one yields a task.
    pub fn steal(&self, worker: usize) -> Option<(T, usize)> {
        self.steal_within(worker, 0, self.deques.len())
    }

    /// [`StealDeques::steal`] restricted to victims in `lo..hi` — the
    /// node-local steal of the multi-node scheduler, where a worker raids
    /// its own node's deques before migrating work across the interconnect.
    pub fn steal_within(&self, worker: usize, lo: usize, hi: usize) -> Option<(T, usize)> {
        let mut victims: Vec<(u64, usize)> = (lo..hi.min(self.deques.len()))
            .filter(|&v| v != worker)
            .map(|v| (self.lock(v).remaining_cost, v))
            .filter(|&(cost, _)| cost > 0)
            .collect();
        victims.sort_unstable_by(|a, b| b.cmp(a));
        for (_, victim) in victims {
            let mut deque = self.lock(victim);
            if let Some((task, cost)) = deque.tasks.pop_back() {
                deque.remaining_cost -= cost;
                return Some((task, victim));
            }
        }
        None
    }

    /// Total number of unclaimed tasks across all deques.
    pub fn total_len(&self) -> usize {
        (0..self.deques.len())
            .map(|w| self.lock(w).tasks.len())
            .sum()
    }

    fn lock(&self, worker: usize) -> std::sync::MutexGuard<'_, CostedDeque<T>> {
        self.deques[worker].plock("worker deque")
    }
}

/// How a task was obtained from the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Claim {
    /// Taken from the worker's own deque.
    Own(usize),
    /// Stolen from another worker's deque.
    Stolen(usize),
}

impl Claim {
    /// The claimed task index, regardless of provenance.
    #[must_use]
    pub fn task(self) -> usize {
        match self {
            Claim::Own(t) | Claim::Stolen(t) => t,
        }
    }
}

/// A work-stealing queue over task indices `0..tasks`.
#[derive(Debug)]
pub struct FragmentQueue {
    deques: StealDeques<usize>,
}

impl FragmentQueue {
    /// Creates a queue of `tasks` task indices for `workers` workers, seeding
    /// each worker with a contiguous, evenly sized chunk in task order.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn new(tasks: usize, workers: usize) -> Self {
        Self::with_seed_order((0..tasks).collect(), workers)
    }

    /// Creates a queue whose workers are seeded with contiguous chunks of
    /// `order` — e.g. a disk-affinity permutation of the task indices, so
    /// each worker's initial chunk touches a distinct slice of the physical
    /// allocation and work stealing starts from a placement-aligned
    /// partition.  All tasks weigh 1, so steals follow deque length.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or `order` is not a permutation of
    /// `0..order.len()` (a duplicate index would make a fragment's partial
    /// count twice in the merge).
    #[must_use]
    pub fn with_seed_order(order: Vec<usize>, workers: usize) -> Self {
        let costs = vec![1u64; order.len()];
        Self::with_seed_order_and_costs(order, &costs, workers)
    }

    /// [`FragmentQueue::with_seed_order`] with an explicit steal weight per
    /// task (`costs` is indexed by *task id*, not seed position) — e.g. each
    /// task's remaining simulated I/O, making steal-victim selection
    /// skew-aware.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero, `costs` is not as long as `order`, or
    /// `order` is not a permutation of `0..order.len()`.
    #[must_use]
    pub fn with_seed_order_and_costs(order: Vec<usize>, costs: &[u64], workers: usize) -> Self {
        let tasks = order.len();
        assert_eq!(costs.len(), tasks, "one cost per task");
        let mut seen = vec![false; tasks];
        for &task in &order {
            assert!(
                task < tasks && !std::mem::replace(&mut seen[task], true),
                "seed order must be a permutation of 0..{tasks}"
            );
        }
        let deques = StealDeques::new(workers);
        for (position, task) in order.into_iter().enumerate() {
            // Balanced contiguous chunks: worker w owns the positions with
            // position * workers / tasks == w.
            let owner = position * workers / tasks;
            deques.push(owner, task, costs[task]);
        }
        FragmentQueue { deques }
    }

    /// Number of workers the queue was created for.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.deques.workers()
    }

    /// Claims the next task for `worker`: first from its own deque's front,
    /// otherwise stolen from the back of the other deque with the most
    /// remaining cost.  Returns `None` only when every deque is empty.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range or a deque lock is poisoned.
    #[must_use]
    pub fn claim(&self, worker: usize) -> Option<Claim> {
        if let Some(task) = self.deques.pop_own(worker) {
            return Some(Claim::Own(task));
        }
        self.deques
            .steal(worker)
            .map(|(task, _)| Claim::Stolen(task))
    }

    /// Total number of unclaimed tasks across all deques.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.deques.total_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn chunks_are_contiguous_and_balanced() {
        let queue = FragmentQueue::new(10, 3);
        assert_eq!(queue.workers(), 3);
        assert_eq!(queue.remaining(), 10);
        // Worker 0 drains its own chunk front-to-back before stealing.
        let mut own = Vec::new();
        while let Some(Claim::Own(t)) = queue.claim(0) {
            own.push(t);
        }
        assert_eq!(own, vec![0, 1, 2, 3]);
    }

    #[test]
    fn every_task_is_claimed_exactly_once() {
        let queue = FragmentQueue::new(25, 4);
        let mut seen = BTreeSet::new();
        // A single worker drains the whole queue via stealing.
        while let Some(claim) = queue.claim(2) {
            assert!(
                seen.insert(claim.task()),
                "task {} claimed twice",
                claim.task()
            );
        }
        assert_eq!(seen.len(), 25);
        assert_eq!(queue.remaining(), 0);
        assert_eq!(queue.claim(2), None);
    }

    #[test]
    fn steals_come_from_the_most_loaded_victim() {
        let queue = FragmentQueue::new(9, 3);
        // Drain worker 1's own chunk so its first claim afterwards must steal.
        while let Some(Claim::Own(_)) = queue.claim(1) {}
        // Worker 0 and 2 both still hold 3 unit-cost tasks; a steal takes
        // from a back.
        match queue.claim(1) {
            Some(Claim::Stolen(t)) => assert!(t == 2 || t == 8, "stole {t}"),
            other => panic!("expected a steal, got {other:?}"),
        }
    }

    #[test]
    fn steals_follow_remaining_cost_not_task_count() {
        // Worker 0 owns two tasks of cost 1; worker 1 owns one task of cost
        // 100.  A cost-aware thief must raid worker 1 despite its shorter
        // deque.
        let deques: StealDeques<usize> = StealDeques::new(3);
        deques.push(0, 10, 1);
        deques.push(0, 11, 1);
        deques.push(1, 20, 100);
        assert_eq!(deques.steal(2), Some((20, 1)));
        // With the expensive task gone, the thief falls back to the longer
        // deque.
        assert_eq!(deques.steal(2), Some((11, 0)));
        assert_eq!(deques.total_len(), 1);
    }

    #[test]
    fn range_restricted_steal_never_raids_outside_the_range() {
        // Worker 3's node owns workers 2..4; worker 0 (outside the range)
        // holds the most expensive task but must not be raided.
        let deques: StealDeques<usize> = StealDeques::new(4);
        deques.push(0, 10, 100);
        deques.push(2, 20, 1);
        assert_eq!(deques.steal_within(3, 2, 4), Some((20, 2)));
        // The range is now dry even though worker 0 still has work.
        assert_eq!(deques.steal_within(3, 2, 4), None);
        // The unrestricted steal (= full-range) still reaches it.
        assert_eq!(deques.steal(3), Some((10, 0)));
    }

    #[test]
    fn concurrent_drain_claims_every_task_once() {
        let tasks = 500;
        let workers = 4;
        let queue = FragmentQueue::new(tasks, workers);
        let claimed: Vec<Vec<usize>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queue = &queue;
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(claim) = queue.claim(w) {
                            mine.push(claim.task());
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let all: BTreeSet<usize> = claimed.iter().flatten().copied().collect();
        let total: usize = claimed.iter().map(Vec::len).sum();
        assert_eq!(total, tasks, "tasks claimed more than once");
        assert_eq!(all.len(), tasks, "tasks lost");
    }

    #[test]
    fn seed_order_controls_initial_ownership() {
        // A reversed order seeds worker 0 with the *last* task indices.
        let queue = FragmentQueue::with_seed_order(vec![5, 4, 3, 2, 1, 0], 2);
        let own: Vec<usize> = (0..3)
            .map(|_| match queue.claim(0) {
                Some(Claim::Own(t)) => t,
                other => panic!("expected own claim, got {other:?}"),
            })
            .collect();
        assert_eq!(own, vec![5, 4, 3]);
        // Every remaining task is still claimed exactly once across the pool.
        let mut rest = BTreeSet::new();
        while let Some(claim) = queue.claim(1) {
            assert!(rest.insert(claim.task()));
        }
        assert_eq!(rest, BTreeSet::from([0, 1, 2]));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn duplicate_seed_order_rejected() {
        let _ = FragmentQueue::with_seed_order(vec![0, 0, 1], 2);
    }

    #[test]
    #[should_panic(expected = "one cost per task")]
    fn mismatched_costs_rejected() {
        let _ = FragmentQueue::with_seed_order_and_costs(vec![0, 1], &[1], 2);
    }

    #[test]
    fn empty_queue_and_single_worker() {
        let queue = FragmentQueue::new(0, 2);
        assert_eq!(queue.claim(0), None);
        let queue = FragmentQueue::new(3, 1);
        assert_eq!(queue.claim(0), Some(Claim::Own(0)));
        assert_eq!(queue.remaining(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = FragmentQueue::new(5, 0);
    }
}
