//! A shared fragment queue with work stealing.
//!
//! The paper's execution model assigns fragment subqueries to processing
//! elements *dynamically* to balance load (fragments differ in size and the
//! PEs in speed).  This queue mirrors that: each worker owns a deque seeded
//! with a contiguous chunk of the plan's fragment list (preserving the
//! allocation order's locality), pops work from its own front, and — once
//! empty — steals from the back of the most loaded other worker.

use std::collections::VecDeque;
use std::sync::Mutex;

/// How a task was obtained from the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Claim {
    /// Taken from the worker's own deque.
    Own(usize),
    /// Stolen from another worker's deque.
    Stolen(usize),
}

impl Claim {
    /// The claimed task index, regardless of provenance.
    #[must_use]
    pub fn task(self) -> usize {
        match self {
            Claim::Own(t) | Claim::Stolen(t) => t,
        }
    }
}

/// A work-stealing queue over task indices `0..tasks`.
#[derive(Debug)]
pub struct FragmentQueue {
    deques: Vec<Mutex<VecDeque<usize>>>,
}

impl FragmentQueue {
    /// Creates a queue of `tasks` task indices for `workers` workers, seeding
    /// each worker with a contiguous, evenly sized chunk in task order.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    #[must_use]
    pub fn new(tasks: usize, workers: usize) -> Self {
        Self::with_seed_order((0..tasks).collect(), workers)
    }

    /// Creates a queue whose workers are seeded with contiguous chunks of
    /// `order` — e.g. a disk-affinity permutation of the task indices, so
    /// each worker's initial chunk touches a distinct slice of the physical
    /// allocation and work stealing starts from a placement-aligned
    /// partition.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero or `order` is not a permutation of
    /// `0..order.len()` (a duplicate index would make a fragment's partial
    /// count twice in the merge).
    #[must_use]
    pub fn with_seed_order(order: Vec<usize>, workers: usize) -> Self {
        assert!(workers > 0, "a queue needs at least one worker");
        let tasks = order.len();
        let mut seen = vec![false; tasks];
        for &task in &order {
            assert!(
                task < tasks && !std::mem::replace(&mut seen[task], true),
                "seed order must be a permutation of 0..{tasks}"
            );
        }
        let mut deques: Vec<VecDeque<usize>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (position, task) in order.into_iter().enumerate() {
            // Balanced contiguous chunks: worker w owns the positions with
            // position * workers / tasks == w.
            let owner = position * workers / tasks;
            deques[owner].push_back(task);
        }
        FragmentQueue {
            deques: deques.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Number of workers the queue was created for.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.deques.len()
    }

    /// Claims the next task for `worker`: first from its own deque's front,
    /// otherwise stolen from the back of the most loaded other deque.
    /// Returns `None` only when every deque is empty.
    ///
    /// # Panics
    ///
    /// Panics if `worker` is out of range or a deque lock is poisoned.
    #[must_use]
    pub fn claim(&self, worker: usize) -> Option<Claim> {
        assert!(worker < self.deques.len(), "worker index out of range");
        if let Some(task) = self.lock(worker).pop_front() {
            return Some(Claim::Own(task));
        }
        // Snapshot victim loads, then try them in descending-load order.
        // Loads can change between snapshot and steal, so re-check under the
        // victim's lock and fall through to the next candidate when raced.
        let mut victims: Vec<(usize, usize)> = (0..self.deques.len())
            .filter(|&v| v != worker)
            .map(|v| (self.lock(v).len(), v))
            .filter(|&(len, _)| len > 0)
            .collect();
        victims.sort_unstable_by(|a, b| b.cmp(a));
        for (_, victim) in victims {
            if let Some(task) = self.lock(victim).pop_back() {
                return Some(Claim::Stolen(task));
            }
        }
        None
    }

    /// Total number of unclaimed tasks across all deques.
    #[must_use]
    pub fn remaining(&self) -> usize {
        (0..self.deques.len()).map(|w| self.lock(w).len()).sum()
    }

    fn lock(&self, worker: usize) -> std::sync::MutexGuard<'_, VecDeque<usize>> {
        self.deques[worker].lock().expect("queue lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn chunks_are_contiguous_and_balanced() {
        let queue = FragmentQueue::new(10, 3);
        assert_eq!(queue.workers(), 3);
        assert_eq!(queue.remaining(), 10);
        // Worker 0 drains its own chunk front-to-back before stealing.
        let mut own = Vec::new();
        while let Some(Claim::Own(t)) = queue.claim(0) {
            own.push(t);
        }
        assert_eq!(own, vec![0, 1, 2, 3]);
    }

    #[test]
    fn every_task_is_claimed_exactly_once() {
        let queue = FragmentQueue::new(25, 4);
        let mut seen = BTreeSet::new();
        // A single worker drains the whole queue via stealing.
        while let Some(claim) = queue.claim(2) {
            assert!(
                seen.insert(claim.task()),
                "task {} claimed twice",
                claim.task()
            );
        }
        assert_eq!(seen.len(), 25);
        assert_eq!(queue.remaining(), 0);
        assert_eq!(queue.claim(2), None);
    }

    #[test]
    fn steals_come_from_the_most_loaded_victim() {
        let queue = FragmentQueue::new(9, 3);
        // Drain worker 1's own chunk so its first claim afterwards must steal.
        while let Some(Claim::Own(_)) = queue.claim(1) {}
        // Worker 0 and 2 both still hold 3 tasks; a steal takes from a back.
        match queue.claim(1) {
            Some(Claim::Stolen(t)) => assert!(t == 2 || t == 8, "stole {t}"),
            other => panic!("expected a steal, got {other:?}"),
        }
    }

    #[test]
    fn concurrent_drain_claims_every_task_once() {
        let tasks = 500;
        let workers = 4;
        let queue = FragmentQueue::new(tasks, workers);
        let claimed: Vec<Vec<usize>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let queue = &queue;
                    scope.spawn(move || {
                        let mut mine = Vec::new();
                        while let Some(claim) = queue.claim(w) {
                            mine.push(claim.task());
                        }
                        mine
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });
        let all: BTreeSet<usize> = claimed.iter().flatten().copied().collect();
        let total: usize = claimed.iter().map(Vec::len).sum();
        assert_eq!(total, tasks, "tasks claimed more than once");
        assert_eq!(all.len(), tasks, "tasks lost");
    }

    #[test]
    fn seed_order_controls_initial_ownership() {
        // A reversed order seeds worker 0 with the *last* task indices.
        let queue = FragmentQueue::with_seed_order(vec![5, 4, 3, 2, 1, 0], 2);
        let own: Vec<usize> = (0..3)
            .map(|_| match queue.claim(0) {
                Some(Claim::Own(t)) => t,
                other => panic!("expected own claim, got {other:?}"),
            })
            .collect();
        assert_eq!(own, vec![5, 4, 3]);
        // Every remaining task is still claimed exactly once across the pool.
        let mut rest = BTreeSet::new();
        while let Some(claim) = queue.claim(1) {
            assert!(rest.insert(claim.task()));
        }
        assert_eq!(rest, BTreeSet::from([0, 1, 2]));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn duplicate_seed_order_rejected() {
        let _ = FragmentQueue::with_seed_order(vec![0, 0, 1], 2);
    }

    #[test]
    fn empty_queue_and_single_worker() {
        let queue = FragmentQueue::new(0, 2);
        assert_eq!(queue.claim(0), None);
        let queue = FragmentQueue::new(3, 1);
        assert_eq!(queue.claim(0), Some(Claim::Own(0)));
        assert_eq!(queue.remaining(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = FragmentQueue::new(5, 0);
    }
}
