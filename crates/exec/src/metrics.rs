//! Execution metrics: per-worker accounting and wall-clock speedup.

use std::time::Duration;

/// What one worker did during a query execution.
#[derive(Debug, Clone, Default)]
pub struct WorkerMetrics {
    /// The worker's index within the pool.
    pub worker: usize,
    /// Fragments processed in total.
    pub fragments_processed: usize,
    /// Fragments obtained by stealing from another worker's deque.
    pub fragments_stolen: usize,
    /// Fragments whose bitmap selection ran entirely in the compressed
    /// (WAH) domain.
    pub fragments_compressed: usize,
    /// Fact rows inspected (whole-fragment aggregation and bitmap hits both
    /// count every aggregated row).
    pub rows_scanned: u64,
    /// Fact rows that satisfied all predicates.
    pub rows_matched: u64,
    /// Time the worker spent between its first and last claim.
    pub busy: Duration,
}

/// Metrics of one query execution on a worker pool.
#[derive(Debug, Clone)]
pub struct ExecMetrics {
    /// Per-worker accounting, indexed by worker.
    pub workers: Vec<WorkerMetrics>,
    /// Wall-clock time of the whole execution (planning excluded).
    pub wall: Duration,
    /// Number of fragments the plan selected.
    pub planned_fragments: usize,
}

impl ExecMetrics {
    /// Size of the worker pool.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Fragments processed across all workers — must equal
    /// `planned_fragments` after a completed run.
    #[must_use]
    pub fn total_fragments(&self) -> usize {
        self.workers.iter().map(|w| w.fragments_processed).sum()
    }

    /// Fragments that changed owner through stealing.
    #[must_use]
    pub fn total_stolen(&self) -> usize {
        self.workers.iter().map(|w| w.fragments_stolen).sum()
    }

    /// Fragments whose selection stayed in the compressed domain.
    #[must_use]
    pub fn total_compressed(&self) -> usize {
        self.workers.iter().map(|w| w.fragments_compressed).sum()
    }

    /// Fact rows aggregated across all workers.
    #[must_use]
    pub fn total_rows_scanned(&self) -> u64 {
        self.workers.iter().map(|w| w.rows_scanned).sum()
    }

    /// Wall-clock speedup of this run relative to `baseline` (usually the
    /// 1-worker run of the same plan).
    #[must_use]
    pub fn speedup_vs(&self, baseline: &ExecMetrics) -> f64 {
        baseline.wall.as_secs_f64() / self.wall.as_secs_f64().max(f64::EPSILON)
    }

    /// Load imbalance: the busiest worker's busy time over the mean busy
    /// time.  1.0 is perfect balance; large values mean the pool idled.
    #[must_use]
    pub fn load_imbalance(&self) -> f64 {
        let busiest = self
            .workers
            .iter()
            .map(|w| w.busy.as_secs_f64())
            .fold(0.0f64, f64::max);
        let mean = self
            .workers
            .iter()
            .map(|w| w.busy.as_secs_f64())
            .sum::<f64>()
            / self.workers.len().max(1) as f64;
        if mean <= f64::EPSILON {
            1.0
        } else {
            busiest / mean
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(busy_ms: &[u64]) -> ExecMetrics {
        ExecMetrics {
            workers: busy_ms
                .iter()
                .enumerate()
                .map(|(worker, &ms)| WorkerMetrics {
                    worker,
                    fragments_processed: 2,
                    fragments_stolen: usize::from(worker > 0),
                    fragments_compressed: 1,
                    rows_scanned: 100,
                    rows_matched: 10,
                    busy: Duration::from_millis(ms),
                })
                .collect(),
            wall: Duration::from_millis(*busy_ms.iter().max().unwrap_or(&1)),
            planned_fragments: 2 * busy_ms.len(),
        }
    }

    #[test]
    fn totals_sum_over_workers() {
        let m = metrics(&[10, 10, 10, 10]);
        assert_eq!(m.worker_count(), 4);
        assert_eq!(m.total_fragments(), 8);
        assert_eq!(m.total_stolen(), 3);
        assert_eq!(m.total_compressed(), 4);
        assert_eq!(m.total_rows_scanned(), 400);
        assert_eq!(m.planned_fragments, m.total_fragments());
    }

    #[test]
    fn speedup_is_wall_clock_ratio() {
        let serial = metrics(&[100]);
        let parallel = metrics(&[25, 25, 25, 25]);
        assert!((serial.speedup_vs(&serial) - 1.0).abs() < 1e-12);
        assert!((parallel.speedup_vs(&serial) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn load_imbalance_detects_skew() {
        assert!((metrics(&[10, 10, 10, 10]).load_imbalance() - 1.0).abs() < 1e-12);
        let skewed = metrics(&[40, 0, 0, 0]);
        assert!((skewed.load_imbalance() - 4.0).abs() < 1e-12);
        // A degenerate all-idle pool reports perfect balance, not NaN.
        assert!((metrics(&[0]).load_imbalance() - 1.0).abs() < 1e-12);
    }
}
