//! Execution metrics: per-worker accounting, wall-clock speedup,
//! multi-user throughput statistics, and — when the simulated disk layer is
//! active — per-disk utilisation, queue-depth and cache statistics.

use std::sync::OnceLock;
use std::time::Duration;

use crate::io::IoMetrics;

/// What one worker did during a query execution.
#[derive(Debug, Clone, Default)]
pub struct WorkerMetrics {
    /// The worker's index within the pool.
    pub worker: usize,
    /// Fragments processed in total.
    pub fragments_processed: usize,
    /// Fragments obtained by stealing from another worker's deque.
    pub fragments_stolen: usize,
    /// Fragments whose bitmap selection ran entirely in the compressed
    /// (WAH) domain.
    pub fragments_compressed: usize,
    /// Fact rows inspected (whole-fragment aggregation and bitmap hits both
    /// count every aggregated row).
    pub rows_scanned: u64,
    /// Fact rows that satisfied all predicates.
    pub rows_matched: u64,
    /// Simulated I/O time of the tasks this worker executed, in ms (0 when
    /// the I/O layer is off).
    pub sim_io_ms: f64,
    /// Tasks this worker executed although their fragment's home node is a
    /// different simulated node — inter-node work migration under the
    /// shared-nothing multi-node scheduler (always 0 in single-node runs).
    pub tasks_migrated: usize,
    /// Migrated tasks whose fragment was not yet replicated on this
    /// worker's node: the first cross-node pull ships a replica (a
    /// wall-clock charge); later migrations of the same fragment hit it.
    pub fragments_replicated: usize,
    /// Time the worker spent between its first and last claim.
    pub busy: Duration,
}

/// Metrics of one query execution on a worker pool.
#[derive(Debug, Clone)]
pub struct ExecMetrics {
    /// Per-worker accounting, indexed by worker.
    pub workers: Vec<WorkerMetrics>,
    /// Wall-clock time of the whole execution (planning excluded).
    pub wall: Duration,
    /// Number of fragments the plan selected.
    pub planned_fragments: usize,
    /// Simulated disk subsystem snapshot — per-disk utilisation, queue
    /// depth and cache hit/miss statistics — when an
    /// [`crate::io::IoConfig`] was active; `None` otherwise.  For runs
    /// sharing one [`crate::io::SimulatedIo`] across queries the snapshot
    /// is cumulative up to this query's completion.
    pub io: Option<IoMetrics>,
    /// Real file-I/O snapshot — page-pool hits, segment reads, bytes read —
    /// when the engine scans a persistent [`crate::FileStore`]; `None` for
    /// in-memory engines.  Cumulative over the file store's lifetime, like
    /// `io` over a shared subsystem.
    pub file: Option<crate::file::FileIoMetrics>,
}

impl ExecMetrics {
    /// Size of the worker pool.
    #[must_use]
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Fragments processed across all workers — must equal
    /// `planned_fragments` after a completed run.
    #[must_use]
    pub fn total_fragments(&self) -> usize {
        self.workers.iter().map(|w| w.fragments_processed).sum()
    }

    /// Fragments that changed owner through stealing.
    #[must_use]
    pub fn total_stolen(&self) -> usize {
        self.workers.iter().map(|w| w.fragments_stolen).sum()
    }

    /// Fragments whose selection stayed in the compressed domain.
    #[must_use]
    pub fn total_compressed(&self) -> usize {
        self.workers.iter().map(|w| w.fragments_compressed).sum()
    }

    /// Tasks executed off their fragment's home node (shared-nothing
    /// inter-node migration); 0 in single-node runs.
    #[must_use]
    pub fn total_migrated(&self) -> usize {
        self.workers.iter().map(|w| w.tasks_migrated).sum()
    }

    /// First-time cross-node fragment pulls that shipped a replica; 0 in
    /// single-node runs.
    #[must_use]
    pub fn total_replicated(&self) -> usize {
        self.workers.iter().map(|w| w.fragments_replicated).sum()
    }

    /// Fact rows aggregated across all workers.
    #[must_use]
    pub fn total_rows_scanned(&self) -> u64 {
        self.workers.iter().map(|w| w.rows_scanned).sum()
    }

    /// Simulated I/O time charged across all workers, in ms (0 when the
    /// I/O layer is off).
    #[must_use]
    pub fn total_sim_io_ms(&self) -> f64 {
        self.workers.iter().map(|w| w.sim_io_ms).sum()
    }

    /// Measured per-disk load imbalance of the simulated subsystem
    /// ([`IoMetrics::disk_imbalance`]); 1.0 when the I/O layer is off.
    #[must_use]
    pub fn disk_imbalance(&self) -> f64 {
        self.io.as_ref().map_or(1.0, IoMetrics::disk_imbalance)
    }

    /// Hit rate of the simulated shared page cache; 0 when the I/O layer
    /// is off.
    #[must_use]
    pub fn cache_hit_rate(&self) -> f64 {
        self.io.as_ref().map_or(0.0, IoMetrics::cache_hit_rate)
    }

    /// Wall-clock speedup of this run relative to `baseline` (usually the
    /// 1-worker run of the same plan).
    #[must_use]
    pub fn speedup_vs(&self, baseline: &ExecMetrics) -> f64 {
        baseline.wall.as_secs_f64() / self.wall.as_secs_f64().max(f64::EPSILON)
    }

    /// Load imbalance: the busiest worker's busy time over the mean busy
    /// time.  1.0 is perfect balance; large values mean the pool idled.
    #[must_use]
    pub fn load_imbalance(&self) -> f64 {
        let busiest = self
            .workers
            .iter()
            .map(|w| w.busy.as_secs_f64())
            .fold(0.0f64, f64::max);
        let mean = self
            .workers
            .iter()
            .map(|w| w.busy.as_secs_f64())
            .sum::<f64>()
            / self.workers.len().max(1) as f64;
        if mean <= f64::EPSILON {
            1.0
        } else {
            busiest / mean
        }
    }
}

/// Metrics of one multi-user scheduler run: the shared pool's aggregate
/// accounting plus per-query latency statistics — the paper's multi-user
/// throughput quantities (queries/sec, response-time distribution, worker
/// utilisation, steal and disk-affinity rates).
#[derive(Debug, Clone)]
pub struct ThroughputMetrics {
    /// Aggregate pool accounting over the whole run.  `planned_fragments`
    /// is the total task count across all executed queries, and each
    /// worker's `busy` is the sum of its per-task processing times.
    pub pool: ExecMetrics,
    /// Number of queries that ran to completion.
    pub queries_completed: usize,
    /// Per-query latency (admission → completion), in submission order.
    pub latencies: Vec<Duration>,
    /// The admission-control limit (MPL) the run was admitted under.
    pub mpl: usize,
    /// `latencies` sorted ascending, built once on the first percentile
    /// query instead of on every call.
    sorted: OnceLock<Vec<Duration>>,
}

impl ThroughputMetrics {
    /// Assembles the run's metrics from the pool accounting and the
    /// per-query latencies (in submission order).
    #[must_use]
    pub fn new(
        pool: ExecMetrics,
        queries_completed: usize,
        latencies: Vec<Duration>,
        mpl: usize,
    ) -> Self {
        ThroughputMetrics {
            pool,
            queries_completed,
            latencies,
            mpl,
            sorted: OnceLock::new(),
        }
    }

    /// Completed queries per second of wall-clock time — the multi-user
    /// throughput metric of the paper's SIMPAD experiments.
    #[must_use]
    pub fn queries_per_sec(&self) -> f64 {
        self.queries_completed as f64 / self.pool.wall.as_secs_f64().max(f64::EPSILON)
    }

    /// Mean per-query latency.
    #[must_use]
    pub fn latency_mean(&self) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        self.latencies.iter().sum::<Duration>() / self.latencies.len() as u32
    }

    /// The `p`-th latency percentile (nearest rank over the sorted
    /// latencies); `p` is clamped to `[0, 100]`.
    ///
    /// The sorted order is computed once and cached — sweeping many
    /// percentiles (p50/p95/p99/p999 per run) no longer clones and re-sorts
    /// the latency vector per call.
    #[must_use]
    pub fn latency_percentile(&self, p: f64) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let sorted = self.sorted.get_or_init(|| {
            let mut sorted = self.latencies.clone();
            sorted.sort_unstable();
            sorted
        });
        let rank = (p.clamp(0.0, 100.0) / 100.0) * (sorted.len() - 1) as f64;
        sorted[rank.round() as usize]
    }

    /// The median latency.
    #[must_use]
    pub fn latency_p50(&self) -> Duration {
        self.latency_percentile(50.0)
    }

    /// The 95th-percentile latency.
    #[must_use]
    pub fn latency_p95(&self) -> Duration {
        self.latency_percentile(95.0)
    }

    /// The 99th-percentile latency.
    #[must_use]
    pub fn latency_p99(&self) -> Duration {
        self.latency_percentile(99.0)
    }

    /// The 99.9th-percentile tail latency.
    #[must_use]
    pub fn latency_p999(&self) -> Duration {
        self.latency_percentile(99.9)
    }

    /// The slowest query's latency.
    #[must_use]
    pub fn latency_max(&self) -> Duration {
        self.latencies
            .iter()
            .max()
            .copied()
            .unwrap_or(Duration::ZERO)
    }

    /// Fraction of wall × workers the pool spent processing tasks (0–1).
    /// Low utilisation at MPL 1 with single-fragment queries is exactly the
    /// idle capacity multi-user admission recovers.
    #[must_use]
    pub fn worker_utilisation(&self) -> f64 {
        let capacity = self.pool.wall.as_secs_f64() * self.pool.worker_count() as f64;
        if capacity <= f64::EPSILON {
            return 0.0;
        }
        let busy: f64 = self.pool.workers.iter().map(|w| w.busy.as_secs_f64()).sum();
        (busy / capacity).min(1.0)
    }

    /// Fraction of tasks that changed owner through stealing.
    #[must_use]
    pub fn steal_rate(&self) -> f64 {
        let total = self.pool.total_fragments();
        if total == 0 {
            return 0.0;
        }
        self.pool.total_stolen() as f64 / total as f64
    }

    /// Fraction of tasks that crossed a node boundary to execute
    /// (shared-nothing inter-node migration); 0 in single-node runs.
    #[must_use]
    pub fn migration_rate(&self) -> f64 {
        let total = self.pool.total_fragments();
        if total == 0 {
            return 0.0;
        }
        self.pool.total_migrated() as f64 / total as f64
    }

    /// Fraction of tasks executed by the worker they were seeded to — with
    /// a placement-aware seed order, the disk-affinity hit rate (a stolen
    /// task runs off its affine disk stripe).
    #[must_use]
    pub fn affinity_hit_rate(&self) -> f64 {
        let total = self.pool.total_fragments();
        if total == 0 {
            return 1.0;
        }
        (total - self.pool.total_stolen()) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(busy_ms: &[u64]) -> ExecMetrics {
        ExecMetrics {
            workers: busy_ms
                .iter()
                .enumerate()
                .map(|(worker, &ms)| WorkerMetrics {
                    worker,
                    fragments_processed: 2,
                    fragments_stolen: usize::from(worker > 0),
                    fragments_compressed: 1,
                    rows_scanned: 100,
                    rows_matched: 10,
                    sim_io_ms: 1.5,
                    tasks_migrated: usize::from(worker > 1),
                    fragments_replicated: usize::from(worker > 2),
                    busy: Duration::from_millis(ms),
                })
                .collect(),
            wall: Duration::from_millis(*busy_ms.iter().max().unwrap_or(&1)),
            planned_fragments: 2 * busy_ms.len(),
            io: None,
            file: None,
        }
    }

    #[test]
    fn totals_sum_over_workers() {
        let m = metrics(&[10, 10, 10, 10]);
        assert_eq!(m.worker_count(), 4);
        assert_eq!(m.total_fragments(), 8);
        assert_eq!(m.total_stolen(), 3);
        assert_eq!(m.total_compressed(), 4);
        assert_eq!(m.total_migrated(), 2);
        assert_eq!(m.total_replicated(), 1);
        assert_eq!(m.total_rows_scanned(), 400);
        assert_eq!(m.planned_fragments, m.total_fragments());
        assert!((m.total_sim_io_ms() - 6.0).abs() < 1e-12);
        // Without a simulated I/O layer the disk metrics are neutral.
        assert_eq!(m.disk_imbalance(), 1.0);
        assert_eq!(m.cache_hit_rate(), 0.0);
    }

    #[test]
    fn speedup_is_wall_clock_ratio() {
        let serial = metrics(&[100]);
        let parallel = metrics(&[25, 25, 25, 25]);
        assert!((serial.speedup_vs(&serial) - 1.0).abs() < 1e-12);
        assert!((parallel.speedup_vs(&serial) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn load_imbalance_detects_skew() {
        assert!((metrics(&[10, 10, 10, 10]).load_imbalance() - 1.0).abs() < 1e-12);
        let skewed = metrics(&[40, 0, 0, 0]);
        assert!((skewed.load_imbalance() - 4.0).abs() < 1e-12);
        // A degenerate all-idle pool reports perfect balance, not NaN.
        assert!((metrics(&[0]).load_imbalance() - 1.0).abs() < 1e-12);
    }

    fn throughput(busy_ms: &[u64], latencies_ms: &[u64]) -> ThroughputMetrics {
        ThroughputMetrics::new(
            metrics(busy_ms),
            latencies_ms.len(),
            latencies_ms
                .iter()
                .map(|&ms| Duration::from_millis(ms))
                .collect(),
            4,
        )
    }

    #[test]
    fn throughput_is_queries_over_wall() {
        // Wall is max(busy) = 100 ms, 5 queries → 50 queries/sec.
        let t = throughput(&[100, 100], &[10, 20, 30, 40, 50]);
        assert!((t.queries_per_sec() - 50.0).abs() < 1e-9);
        assert_eq!(t.queries_completed, 5);
        assert_eq!(t.mpl, 4);
    }

    #[test]
    fn latency_distribution() {
        let t = throughput(&[100], &[30, 10, 50, 20, 40]);
        assert_eq!(t.latency_mean(), Duration::from_millis(30));
        assert_eq!(t.latency_percentile(0.0), Duration::from_millis(10));
        assert_eq!(t.latency_percentile(50.0), Duration::from_millis(30));
        assert_eq!(t.latency_percentile(100.0), Duration::from_millis(50));
        assert_eq!(t.latency_max(), Duration::from_millis(50));
        // The tail shorthands agree with explicit percentile calls (served
        // from the one cached sort).
        assert_eq!(t.latency_p50(), t.latency_percentile(50.0));
        assert_eq!(t.latency_p95(), Duration::from_millis(50));
        assert_eq!(t.latency_p99(), Duration::from_millis(50));
        assert_eq!(t.latency_p999(), Duration::from_millis(50));
        // An empty run degrades to zeros instead of panicking.
        let empty = throughput(&[100], &[]);
        assert_eq!(empty.latency_mean(), Duration::ZERO);
        assert_eq!(empty.latency_percentile(95.0), Duration::ZERO);
        assert_eq!(empty.latency_max(), Duration::ZERO);
        assert_eq!(empty.queries_per_sec(), 0.0);
    }

    #[test]
    fn utilisation_steals_and_affinity() {
        // Wall 40 ms, 4 workers, busy sums to 40+30+20+10 = 100 of 160.
        let t = throughput(&[40, 30, 20, 10], &[10, 10]);
        assert!((t.worker_utilisation() - 100.0 / 160.0).abs() < 1e-9);
        // metrics() marks one steal per worker past the first: 3 of 8 tasks.
        assert!((t.steal_rate() - 3.0 / 8.0).abs() < 1e-12);
        assert!((t.affinity_hit_rate() - 5.0 / 8.0).abs() < 1e-12);
        assert!((t.steal_rate() + t.affinity_hit_rate() - 1.0).abs() < 1e-12);
        // metrics() marks workers 2 and 3 as having migrated one task each.
        assert!((t.migration_rate() - 2.0 / 8.0).abs() < 1e-12);
    }
}
