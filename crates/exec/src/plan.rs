//! Physical query planning: MDHF fragment pruning plus bitmap predicates.
//!
//! A [`QueryPlan`] is the engine-facing rendering of §4.3's processing
//! algorithm for one bound query instance:
//!
//! 1. **Fragment pruning** — the relevant fragments are exactly
//!    [`BoundQuery::relevant_fragments`] under the store's fragmentation,
//! 2. **Bitmap predicates** — per query predicate, whether bitmap access is
//!    still required (step 2 of §4.3).  A predicate needs *no* bitmap when
//!    its dimension is a fragmentation dimension at the same or a finer
//!    level than the query attribute: every row of a relevant fragment then
//!    satisfies the predicate by construction, so the engine may aggregate
//!    whole fragments without touching an index (the IOC1 fast path).
//!
//! The per-predicate decision is taken straight from
//! [`mdhf::classify()`]'s `bitmap_requirements`, keeping the physical
//! engine and the analytic cost model on one shared rulebook.

use bitmap::IndexCatalog;
use mdhf::{classify, Classification, Fragmentation};
use schema::StarSchema;
use workload::BoundQuery;

/// One bound selection predicate, annotated with whether the engine must
/// evaluate it through a bitmap index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PredicateBinding {
    /// The predicate's dimension (schema dimension index).
    pub dimension: usize,
    /// The hierarchy level of the selection (0 = coarsest).
    pub level: usize,
    /// The bound attribute value.
    pub value: u64,
    /// True if the predicate must be evaluated via the fragment's bitmap
    /// index; false if fragment pruning already guarantees it.
    pub needs_bitmap: bool,
}

/// An executable plan: pruned fragment list plus annotated predicates.
#[derive(Debug, Clone)]
pub struct QueryPlan {
    query_name: String,
    fragments: Vec<u64>,
    predicates: Vec<PredicateBinding>,
    classification: Classification,
}

impl QueryPlan {
    /// Plans `bound` against `fragmentation` for `schema`.
    #[must_use]
    pub fn new(schema: &StarSchema, fragmentation: &Fragmentation, bound: &BoundQuery) -> Self {
        let classification = classify(schema, fragmentation, bound.query());
        let fragments = bound.relevant_fragments(schema, fragmentation);
        let predicates = bound
            .query()
            .predicates()
            .iter()
            .zip(bound.values())
            .map(|(pred, &value)| PredicateBinding {
                dimension: pred.attr.dimension,
                level: pred.attr.level,
                value,
                needs_bitmap: classification
                    .bitmap_requirements
                    .iter()
                    .any(|req| req.attr == pred.attr),
            })
            .collect();
        QueryPlan {
            query_name: bound.query().name().to_string(),
            fragments,
            predicates,
            classification,
        }
    }

    /// The planned query's diagnostic name.
    #[must_use]
    pub fn query_name(&self) -> &str {
        &self.query_name
    }

    /// The pruned, ascending list of fragment numbers to process.
    #[must_use]
    pub fn fragments(&self) -> &[u64] {
        &self.fragments
    }

    /// Number of per-fragment tasks this plan decomposes into — the unit of
    /// work the scheduler admits onto the shared pool.
    #[must_use]
    pub fn task_count(&self) -> usize {
        self.fragments.len()
    }

    /// All bound predicates, in query predicate order.
    #[must_use]
    pub fn predicates(&self) -> &[PredicateBinding] {
        &self.predicates
    }

    /// The predicates that require bitmap evaluation.
    #[must_use]
    pub fn bitmap_predicates(&self) -> Vec<PredicateBinding> {
        self.predicates
            .iter()
            .copied()
            .filter(|p| p.needs_bitmap)
            .collect()
    }

    /// The analytic classification the plan was derived from.
    #[must_use]
    pub fn classification(&self) -> &Classification {
        &self.classification
    }

    /// Number of physical bitmap fragments one fragment subquery of this
    /// plan must read under `catalog` — the `k` of the paper's staggered
    /// allocation ([`allocation::PhysicalAllocation::subquery_disks`]).
    #[must_use]
    pub fn bitmap_fragments_per_subquery(&self, catalog: &IndexCatalog) -> u64 {
        self.predicates
            .iter()
            .filter(|p| p.needs_bitmap)
            .map(|p| catalog.spec(p.dimension).bitmaps_for_selection(p.level))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::apb1::apb1_scaled_down;
    use workload::QueryType;

    fn plan_for(query_type: QueryType, values: Vec<u64>) -> QueryPlan {
        let schema = apb1_scaled_down();
        let fragmentation =
            Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
        let bound = BoundQuery::new(&schema, query_type.to_star_query(&schema), values);
        QueryPlan::new(&schema, &fragmentation, &bound)
    }

    #[test]
    fn q1_plan_prunes_to_one_fragment_and_needs_no_bitmaps() {
        let plan = plan_for(QueryType::OneMonthOneGroup, vec![3, 1]);
        assert_eq!(plan.fragments().len(), 1);
        assert!(plan.bitmap_predicates().is_empty());
        assert_eq!(plan.predicates().len(), 2);
        assert_eq!(plan.query_name(), "1MONTH1GROUP");
        assert_eq!(
            plan.classification().fragments_to_process,
            plan.fragments().len() as u64
        );
    }

    #[test]
    fn unsupported_plan_scans_all_fragments_with_bitmaps() {
        let plan = plan_for(QueryType::OneStore, vec![7]);
        let schema = apb1_scaled_down();
        let fragmentation =
            Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
        assert_eq!(
            plan.fragments().len() as u64,
            fragmentation.fragment_count()
        );
        let bitmap_preds = plan.bitmap_predicates();
        assert_eq!(bitmap_preds.len(), 1);
        assert!(bitmap_preds[0].needs_bitmap);
        assert_eq!(bitmap_preds[0].value, 7);
    }

    #[test]
    fn bitmap_fragments_per_subquery_sums_selection_costs() {
        let schema = apb1_scaled_down();
        let catalog = IndexCatalog::default_for(&schema);
        // Q1 needs no bitmaps at all.
        let q1 = plan_for(QueryType::OneMonthOneGroup, vec![3, 1]);
        assert_eq!(q1.bitmap_fragments_per_subquery(&catalog), 0);
        // 1STORE consults the customer index's selection bitmaps.
        let store_plan = plan_for(QueryType::OneStore, vec![7]);
        let customer = schema.dimension_index("customer").unwrap();
        let store_attr = schema.attr("customer", "store").unwrap();
        assert_eq!(
            store_plan.bitmap_fragments_per_subquery(&catalog),
            catalog
                .spec(customer)
                .bitmaps_for_selection(store_attr.level)
        );
    }

    #[test]
    fn finer_level_predicates_keep_their_bitmaps() {
        // 1CODE under F_MonthGroup: pruned to the code's group column of
        // fragments, but the code itself still needs its bitmap.
        let plan = plan_for(QueryType::OneCode, vec![65]);
        assert_eq!(plan.bitmap_predicates().len(), 1);
        assert_eq!(plan.fragments().len(), 12);
    }
}
