//! Poison-propagating lock acquisition.
//!
//! Every lock in this crate is acquired through [`PoisonLock::plock`], which
//! names the lock in its poison panic instead of the anonymous
//! `.lock().unwrap()` `PoisonError` — when a worker thread dies holding a
//! guard, the next acquirer's panic says *which* shared structure is now
//! suspect.  `detlint`'s `lock-unwrap` rule rejects any bare `.lock()`
//! outside this module, so the discipline is mechanical, not conventional.

use std::sync::{Mutex, MutexGuard};

/// Extension trait: named, poison-propagating acquisition.
pub(crate) trait PoisonLock<T> {
    /// Acquires the lock, panicking with the lock's `what` name if a holder
    /// panicked (poisoned the lock) — the shared state may be inconsistent
    /// and no silent recovery is sound for bit-identical execution.
    fn plock(&self, what: &'static str) -> MutexGuard<'_, T>;
}

impl<T> PoisonLock<T> for Mutex<T> {
    fn plock(&self, what: &'static str) -> MutexGuard<'_, T> {
        self.lock()
            .unwrap_or_else(|_| panic!("{what} lock poisoned: a thread panicked while holding it"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plock_acquires_normally() {
        let m = Mutex::new(41);
        *m.plock("test") += 1;
        assert_eq!(*m.plock("test"), 42);
    }

    #[test]
    fn plock_names_the_lock_on_poison() {
        let m = Mutex::new(0);
        let caught = std::thread::scope(|s| {
            s.spawn(|| {
                let _guard = m.plock("victim");
                panic!("holder dies");
            })
            .join()
        });
        assert!(caught.is_err());
        let panic = std::panic::catch_unwind(|| {
            let _guard = m.plock("victim");
        })
        .expect_err("poisoned lock must panic");
        let msg = panic.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("victim lock poisoned"), "got: {msg}");
    }
}
