//! Persistent on-disk fragment storage: the `FGMT` file format and a
//! file-backed, buffer-managed fragment reader.
//!
//! The paper's APB-1 fact table (1.87 billion rows) cannot live in RAM; the
//! simulated `DiskModel` makespans are only honest if the same fragments can
//! also be read from a real file.  This module serialises a
//! [`FragmentStore`] into a versioned, page-aligned columnar file and reads
//! it back fragment by fragment through the LRU [`PagePool`] of
//! `storage::buffer`, so cache hit/miss accounting stays comparable between
//! simulated and measured runs.
//!
//! # File layout (version 1, 4096-byte pages)
//!
//! ```text
//! page 0        header: "FGMT" magic, version, page size, dimension /
//!               measure / fragment counts, total rows, metadata length
//!               and FNV-1a checksum
//! pages 1..     metadata blob: star schema (fact table, dimensions,
//!               hierarchies), fragmentation attributes, index-catalog
//!               kinds, representation policy
//! then          per fragment, page-aligned segments in fixed order:
//!                 key column per dimension   (u64 little-endian)
//!                 measure column per measure (f64 bits little-endian)
//!                 bitmap index per dimension (BMRP-encoded bitmaps)
//! then          page directory: per fragment its row count and per
//!               segment (offset, length, FNV-1a checksum)
//! last 40 B     trailer: "FGMTEND\0" magic, version, page size,
//!               directory offset / length / checksum
//! ```
//!
//! Every structural assumption is checked at [`FileStore::open`] — magic,
//! version, checksums, directory bounds — so corruption surfaces as a typed
//! [`StorageError`] instead of a panic deep inside a query.

use std::collections::BTreeMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use bitmap::{
    BitmapIndexKind, BitmapIndexSpec, BitmapRepr, IndexCatalog, MaterialisedIndex, ReprDecodeError,
    RepresentationPolicy, StoredBitmaps,
};
use mdhf::Fragmentation;
use schema::{AttrRef, Dimension, FactTable, Hierarchy, HierarchyLevel, Measure, StarSchema};
use storage::buffer::{BufferPoolStats, PageKey, PagePool};

use crate::store::{ColumnarFragment, FragmentStore};
use crate::sync::PoisonLock;

/// Page size of the on-disk format in bytes.
pub const PAGE_SIZE: u64 = 4096;

/// Current format version.
pub const FORMAT_VERSION: u32 = 1;

/// Header magic, first bytes of the file.
const HEADER_MAGIC: [u8; 4] = *b"FGMT";

/// Trailer magic, start of the fixed-size trailer at the end of the file.
const TRAILER_MAGIC: [u8; 8] = *b"FGMTEND\0";

/// Fixed trailer size in bytes: magic, version, page size, directory
/// offset / length / checksum.
const TRAILER_LEN: u64 = 8 + 4 + 4 + 8 + 8 + 8;

/// Errors of the persistent storage engine and the session API above it.
///
/// The variants mirror what can actually go wrong: the operating system
/// ([`StorageError::Io`]), the bitmap codec ([`StorageError::Decode`]), the
/// file itself ([`StorageError::Corrupt`]) and the caller
/// ([`StorageError::Config`]).
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O error.
    Io(std::io::Error),
    /// A BMRP bitmap blob failed to decode.
    Decode(ReprDecodeError),
    /// The file violates the format: bad magic, unsupported version, failed
    /// checksum, truncated or inconsistent structure.
    Corrupt(String),
    /// The caller asked for something unsatisfiable (over-fine
    /// fragmentation, invalid session configuration, …).
    Config(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "I/O error: {e}"),
            StorageError::Decode(e) => write!(f, "bitmap decode error: {e}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt fragment file: {msg}"),
            StorageError::Config(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::Decode(e) => Some(e),
            StorageError::Corrupt(_) | StorageError::Config(_) => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl From<ReprDecodeError> for StorageError {
    fn from(e: ReprDecodeError) -> Self {
        StorageError::Decode(e)
    }
}

/// FNV-1a over a byte slice — the same hand-rolled checksum family the
/// deterministic trace digest uses; no external hashing dependency.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Number of pages a byte length occupies.
fn pages_of(len: u64) -> u64 {
    len.div_ceil(PAGE_SIZE)
}

// ---------------------------------------------------------------------------
// Little-endian byte codec helpers.
// ---------------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Cursor over a borrowed byte slice; every read is bounds-checked and a
/// short buffer surfaces as [`StorageError::Corrupt`].
struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    what: &'static str,
}

impl<'a> ByteReader<'a> {
    fn new(bytes: &'a [u8], what: &'static str) -> Self {
        ByteReader {
            bytes,
            pos: 0,
            what,
        }
    }

    fn truncated(&self) -> StorageError {
        StorageError::Corrupt(format!("{} truncated", self.what))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StorageError> {
        let end = self.pos.checked_add(n).ok_or_else(|| self.truncated())?;
        if end > self.bytes.len() {
            return Err(self.truncated());
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, StorageError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, StorageError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, StorageError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<String, StorageError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::Corrupt(format!("{} holds invalid UTF-8", self.what)))
    }

    fn done(&self) -> Result<(), StorageError> {
        if self.pos == self.bytes.len() {
            Ok(())
        } else {
            Err(StorageError::Corrupt(format!(
                "{} has {} trailing bytes",
                self.what,
                self.bytes.len() - self.pos
            )))
        }
    }
}

// ---------------------------------------------------------------------------
// Metadata blob: schema, fragmentation, catalog kinds, policy.
// ---------------------------------------------------------------------------

fn encode_policy(out: &mut Vec<u8>, policy: RepresentationPolicy) {
    match policy {
        RepresentationPolicy::Plain => out.push(0),
        RepresentationPolicy::Wah => out.push(1),
        RepresentationPolicy::Roaring => out.push(2),
        RepresentationPolicy::Adaptive { max_density } => {
            out.push(3);
            put_f64(out, max_density);
        }
    }
}

fn decode_policy(r: &mut ByteReader<'_>) -> Result<RepresentationPolicy, StorageError> {
    match r.u8()? {
        0 => Ok(RepresentationPolicy::Plain),
        1 => Ok(RepresentationPolicy::Wah),
        2 => Ok(RepresentationPolicy::Roaring),
        3 => Ok(RepresentationPolicy::Adaptive {
            max_density: r.f64()?,
        }),
        tag => Err(StorageError::Corrupt(format!(
            "unknown representation-policy tag {tag}"
        ))),
    }
}

fn encode_metadata(store: &FragmentStore) -> Vec<u8> {
    let schema = store.schema();
    let mut out = Vec::new();
    // Fact table.
    let fact = schema.fact();
    put_str(&mut out, fact.name());
    put_u32(&mut out, fact.measures().len() as u32);
    for measure in fact.measures() {
        put_str(&mut out, measure.name());
        put_u64(&mut out, measure.size_bytes());
    }
    put_u64(&mut out, fact.tuple_size_bytes());
    put_f64(&mut out, fact.density());
    // Dimensions with their hierarchies.
    put_u32(&mut out, schema.dimensions().len() as u32);
    for dim in schema.dimensions() {
        put_str(&mut out, dim.name());
        put_u64(&mut out, dim.table_size_bytes() / dim.cardinality().max(1));
        let hierarchy = dim.hierarchy();
        put_u32(&mut out, hierarchy.depth() as u32);
        for level in hierarchy.levels() {
            put_str(&mut out, level.name());
            put_u64(&mut out, level.fanout());
        }
    }
    // Fragmentation attributes.
    let attrs = store.fragmentation().attrs();
    put_u32(&mut out, attrs.len() as u32);
    for attr in attrs {
        put_u32(&mut out, attr.dimension as u32);
        put_u32(&mut out, attr.level as u32);
    }
    // Index-catalog kind per dimension.
    for spec in store.catalog().specs() {
        out.push(match spec.kind() {
            BitmapIndexKind::Simple => 0,
            BitmapIndexKind::Encoded(_) => 1,
        });
    }
    // Representation policy.
    encode_policy(&mut out, store.policy());
    out
}

/// Everything [`FileStore`] knows about the stored warehouse without
/// touching a single fragment segment.
struct StoreMeta {
    schema: StarSchema,
    fragmentation: Fragmentation,
    catalog: IndexCatalog,
    policy: RepresentationPolicy,
}

fn decode_metadata(bytes: &[u8], dimension_count: usize) -> Result<StoreMeta, StorageError> {
    let mut r = ByteReader::new(bytes, "metadata blob");
    // Fact table.
    let fact_name = r.str()?;
    let measure_count = r.u32()? as usize;
    let mut measures = Vec::with_capacity(measure_count);
    for _ in 0..measure_count {
        let name = r.str()?;
        let size = r.u64()?;
        measures.push(Measure::new(name, size));
    }
    let tuple_size = r.u64()?;
    let density = r.f64()?;
    if tuple_size == 0 || !(density > 0.0 && density <= 1.0) {
        return Err(StorageError::Corrupt(format!(
            "fact table metadata out of range (tuple size {tuple_size}, density {density})"
        )));
    }
    let fact = FactTable::new(fact_name, measures, tuple_size, density);
    // Dimensions.
    let dims = r.u32()? as usize;
    if dims != dimension_count {
        return Err(StorageError::Corrupt(format!(
            "header declares {dimension_count} dimensions, metadata {dims}"
        )));
    }
    let mut dimensions = Vec::with_capacity(dims);
    for _ in 0..dims {
        let name = r.str()?;
        let row_size = r.u64()?;
        let depth = r.u32()? as usize;
        let mut levels = Vec::with_capacity(depth);
        for _ in 0..depth {
            let level_name = r.str()?;
            let fanout = r.u64()?;
            if fanout == 0 {
                return Err(StorageError::Corrupt(format!(
                    "hierarchy level {level_name:?} has zero fanout"
                )));
            }
            levels.push(HierarchyLevel::new(level_name, fanout));
        }
        if levels.is_empty() || row_size == 0 {
            return Err(StorageError::Corrupt(format!(
                "dimension {name:?} metadata out of range"
            )));
        }
        dimensions.push(Dimension::with_row_size(
            name,
            Hierarchy::new(levels),
            row_size,
        ));
    }
    let schema = StarSchema::new(fact, dimensions)
        .map_err(|e| StorageError::Corrupt(format!("stored schema rejected: {e:?}")))?;
    // Fragmentation.
    let attr_count = r.u32()? as usize;
    let mut attrs = Vec::with_capacity(attr_count);
    for _ in 0..attr_count {
        let dimension = r.u32()? as usize;
        let level = r.u32()? as usize;
        if dimension >= schema.dimension_count()
            || level >= schema.dimensions()[dimension].hierarchy().depth()
        {
            return Err(StorageError::Corrupt(format!(
                "fragmentation attribute ({dimension}, {level}) outside the stored schema"
            )));
        }
        attrs.push(AttrRef::new(dimension, level));
    }
    let fragmentation = Fragmentation::new(&schema, attrs)
        .map_err(|e| StorageError::Corrupt(format!("stored fragmentation rejected: {e:?}")))?;
    // Catalog kinds.
    let mut specs = Vec::with_capacity(dims);
    for dimension in 0..dims {
        specs.push(match r.u8()? {
            0 => BitmapIndexSpec::simple(&schema, dimension),
            1 => BitmapIndexSpec::encoded(&schema, dimension),
            tag => {
                return Err(StorageError::Corrupt(format!(
                    "unknown index-kind tag {tag} for dimension {dimension}"
                )))
            }
        });
    }
    let catalog = IndexCatalog::from_specs(specs);
    let policy = decode_policy(&mut r)?;
    r.done()?;
    Ok(StoreMeta {
        schema,
        fragmentation,
        catalog,
        policy,
    })
}

// ---------------------------------------------------------------------------
// Fragment segments.
// ---------------------------------------------------------------------------

fn encode_key_column(column: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(column.len() * 8);
    for &key in column {
        put_u64(&mut out, key);
    }
    out
}

fn encode_measure_column(column: &[f64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(column.len() * 8);
    for &value in column {
        put_f64(&mut out, value);
    }
    out
}

fn encode_index_segment(index: &MaterialisedIndex) -> Vec<u8> {
    let mut out = Vec::new();
    match index.stored_bitmaps() {
        StoredBitmaps::Encoded(slices) => {
            out.push(1);
            put_u32(&mut out, slices.len() as u32);
            for slice in slices {
                let bytes = slice.to_bytes();
                put_u32(&mut out, bytes.len() as u32);
                out.extend_from_slice(&bytes);
            }
        }
        StoredBitmaps::Simple(map) => {
            out.push(0);
            put_u32(&mut out, map.len() as u32);
            for (&(level, value), bitmap) in map {
                put_u32(&mut out, level as u32);
                put_u64(&mut out, value);
                let bytes = bitmap.to_bytes();
                put_u32(&mut out, bytes.len() as u32);
                out.extend_from_slice(&bytes);
            }
        }
    }
    out
}

fn decode_index_segment(
    bytes: &[u8],
    meta: &StoreMeta,
    dimension: usize,
    rows: u64,
) -> Result<MaterialisedIndex, StorageError> {
    let mut r = ByteReader::new(bytes, "bitmap index segment");
    let tag = r.u8()?;
    let count = r.u32()? as usize;
    let decode_bitmap = |r: &mut ByteReader<'_>| -> Result<BitmapRepr, StorageError> {
        let len = r.u32()? as usize;
        let repr = BitmapRepr::from_bytes(r.take(len)?)?;
        if repr.len() as u64 != rows {
            return Err(StorageError::Corrupt(format!(
                "bitmap of dimension {dimension} covers {} rows, fragment holds {rows}",
                repr.len()
            )));
        }
        Ok(repr)
    };
    let index = match tag {
        1 => {
            let mut slices = Vec::with_capacity(count);
            for _ in 0..count {
                slices.push(decode_bitmap(&mut r)?);
            }
            r.done()?;
            MaterialisedIndex::from_stored_encoded(
                &meta.schema,
                &meta.catalog,
                dimension,
                meta.policy,
                slices,
            )
        }
        0 => {
            let mut map = BTreeMap::new();
            for _ in 0..count {
                let level = r.u32()? as usize;
                let value = r.u64()?;
                let bitmap = decode_bitmap(&mut r)?;
                if map.insert((level, value), bitmap).is_some() {
                    return Err(StorageError::Corrupt(format!(
                        "duplicate bitmap key (level {level}, value {value})"
                    )));
                }
            }
            r.done()?;
            MaterialisedIndex::from_stored_simple(
                &meta.schema,
                &meta.catalog,
                dimension,
                meta.policy,
                map,
            )
        }
        other => {
            return Err(StorageError::Corrupt(format!(
                "unknown index segment tag {other}"
            )))
        }
    };
    index.map_err(StorageError::Corrupt)
}

fn decode_key_column(bytes: &[u8], rows: u64) -> Result<Vec<u64>, StorageError> {
    if bytes.len() as u64 != rows * 8 {
        return Err(StorageError::Corrupt(format!(
            "key column holds {} bytes for {rows} rows",
            bytes.len()
        )));
    }
    let mut r = ByteReader::new(bytes, "key column segment");
    let mut column = Vec::with_capacity(rows as usize);
    for _ in 0..rows {
        column.push(r.u64()?);
    }
    Ok(column)
}

fn decode_measure_column(bytes: &[u8], rows: u64) -> Result<Vec<f64>, StorageError> {
    if bytes.len() as u64 != rows * 8 {
        return Err(StorageError::Corrupt(format!(
            "measure column holds {} bytes for {rows} rows",
            bytes.len()
        )));
    }
    let mut r = ByteReader::new(bytes, "measure column segment");
    let mut column = Vec::with_capacity(rows as usize);
    for _ in 0..rows {
        column.push(r.f64()?);
    }
    Ok(column)
}

// ---------------------------------------------------------------------------
// Directory.
// ---------------------------------------------------------------------------

/// Location and checksum of one page-aligned segment.
#[derive(Debug, Clone, Copy)]
struct SegmentEntry {
    /// Absolute byte offset of the segment start (page-aligned).
    offset: u64,
    /// Payload length in bytes.
    len: u64,
    /// FNV-1a checksum of the payload.
    checksum: u64,
}

/// Directory entry of one fragment.
#[derive(Debug, Clone)]
struct FragmentEntry {
    rows: u64,
    /// Key columns, then measure columns, then bitmap indices.
    segments: Vec<SegmentEntry>,
    /// Number of pages the fragment's segments occupy (pool pages are keyed
    /// `(fragment, page-within-fragment)`).
    page_count: u64,
}

impl FragmentEntry {
    /// Page span of a contiguous segment run starting at the run's first
    /// segment offset.
    fn page_span(segments: &[SegmentEntry]) -> u64 {
        let Some(first) = segments.first() else {
            return 0;
        };
        let first_page = first.offset / PAGE_SIZE;
        let end_page = segments
            .last()
            .map_or(first_page, |s| pages_of(s.offset + s.len));
        end_page.saturating_sub(first_page)
    }
}

fn encode_directory(entries: &[FragmentEntry]) -> Vec<u8> {
    let mut out = Vec::new();
    put_u64(&mut out, entries.len() as u64);
    for entry in entries {
        put_u64(&mut out, entry.rows);
        put_u32(&mut out, entry.segments.len() as u32);
        for seg in &entry.segments {
            put_u64(&mut out, seg.offset);
            put_u64(&mut out, seg.len);
            put_u64(&mut out, seg.checksum);
        }
    }
    out
}

fn decode_directory(
    bytes: &[u8],
    fragment_count: u64,
    segments_per_fragment: usize,
    data_end: u64,
) -> Result<Vec<FragmentEntry>, StorageError> {
    let mut r = ByteReader::new(bytes, "page directory");
    let count = r.u64()?;
    if count != fragment_count {
        return Err(StorageError::Corrupt(format!(
            "header declares {fragment_count} fragments, directory {count}"
        )));
    }
    let mut entries = Vec::with_capacity(count as usize);
    for fragment in 0..count {
        let rows = r.u64()?;
        let seg_count = r.u32()? as usize;
        if seg_count != segments_per_fragment {
            return Err(StorageError::Corrupt(format!(
                "fragment {fragment} lists {seg_count} segments, schema needs {segments_per_fragment}"
            )));
        }
        let mut segments = Vec::with_capacity(seg_count);
        for _ in 0..seg_count {
            let offset = r.u64()?;
            let len = r.u64()?;
            let checksum = r.u64()?;
            if offset % PAGE_SIZE != 0 {
                return Err(StorageError::Corrupt(format!(
                    "fragment {fragment} segment offset {offset} is not page-aligned"
                )));
            }
            let end = offset
                .checked_add(len)
                .ok_or_else(|| StorageError::Corrupt("segment range overflows".into()))?;
            if end > data_end {
                return Err(StorageError::Corrupt(format!(
                    "fragment {fragment} segment [{offset}, {end}) reaches past the data area"
                )));
            }
            segments.push(SegmentEntry {
                offset,
                len,
                checksum,
            });
        }
        let page_count = FragmentEntry::page_span(&segments);
        entries.push(FragmentEntry {
            rows,
            segments,
            page_count,
        });
    }
    r.done()?;
    Ok(entries)
}

// ---------------------------------------------------------------------------
// Writer.
// ---------------------------------------------------------------------------

/// Serialises `store` into the `FGMT` v1 format at `path`, overwriting any
/// existing file.
///
/// # Errors
///
/// Returns [`StorageError::Io`] when the file cannot be created or written.
pub fn write_store(store: &FragmentStore, path: impl AsRef<Path>) -> Result<(), StorageError> {
    let path = path.as_ref();
    let mut file = std::io::BufWriter::new(File::create(path)?);
    let metadata = encode_metadata(store);
    let meta_checksum = fnv1a(&metadata);
    let dimension_count = store.schema().dimension_count();
    let measure_count = store.measure_count();

    // Header page.
    let mut header = Vec::with_capacity(PAGE_SIZE as usize);
    header.extend_from_slice(&HEADER_MAGIC);
    put_u32(&mut header, FORMAT_VERSION);
    put_u32(&mut header, PAGE_SIZE as u32);
    put_u32(&mut header, dimension_count as u32);
    put_u32(&mut header, measure_count as u32);
    put_u64(&mut header, store.fragment_count());
    put_u64(&mut header, store.total_rows() as u64);
    put_u64(&mut header, metadata.len() as u64);
    put_u64(&mut header, meta_checksum);
    header.resize(PAGE_SIZE as usize, 0);
    file.write_all(&header)?;

    // Metadata pages.
    let mut offset = PAGE_SIZE;
    file.write_all(&metadata)?;
    offset += metadata.len() as u64;
    offset = write_page_padding(&mut file, offset)?;

    // Fragment segments.
    let mut entries = Vec::with_capacity(store.fragment_count() as usize);
    for fragment in store.fragments() {
        let mut segments = Vec::with_capacity(dimension_count + measure_count + dimension_count);
        let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(segments.capacity());
        for d in 0..dimension_count {
            payloads.push(encode_key_column(fragment.key_column(d)));
        }
        for m in 0..measure_count {
            payloads.push(encode_measure_column(fragment.measure_column(m)));
        }
        for d in 0..dimension_count {
            payloads.push(encode_index_segment(fragment.bitmap_index(d)));
        }
        for payload in payloads {
            segments.push(SegmentEntry {
                offset,
                len: payload.len() as u64,
                checksum: fnv1a(&payload),
            });
            file.write_all(&payload)?;
            offset += payload.len() as u64;
            offset = write_page_padding(&mut file, offset)?;
        }
        let page_count = FragmentEntry::page_span(&segments);
        entries.push(FragmentEntry {
            rows: fragment.len() as u64,
            segments,
            page_count,
        });
    }

    // Directory + trailer.
    let directory = encode_directory(&entries);
    let dir_offset = offset;
    file.write_all(&directory)?;
    let mut trailer = Vec::with_capacity(TRAILER_LEN as usize);
    trailer.extend_from_slice(&TRAILER_MAGIC);
    put_u32(&mut trailer, FORMAT_VERSION);
    put_u32(&mut trailer, PAGE_SIZE as u32);
    put_u64(&mut trailer, dir_offset);
    put_u64(&mut trailer, directory.len() as u64);
    put_u64(&mut trailer, fnv1a(&directory));
    file.write_all(&trailer)?;
    file.flush()?;
    Ok(())
}

/// Pads the writer with zeroes up to the next page boundary; returns the new
/// offset.
fn write_page_padding<W: Write>(file: &mut W, offset: u64) -> Result<u64, StorageError> {
    let aligned = pages_of(offset) * PAGE_SIZE;
    if aligned > offset {
        let pad = vec![0u8; (aligned - offset) as usize];
        file.write_all(&pad)?;
    }
    Ok(aligned)
}

// ---------------------------------------------------------------------------
// File-backed store.
// ---------------------------------------------------------------------------

/// Tuning knobs of [`FileStore::open_with`].
#[derive(Debug, Clone, Copy)]
pub struct FileStoreOptions {
    /// Capacity of the LRU page pool in [`PAGE_SIZE`] pages.
    pub cache_pages: usize,
    /// Verify every segment checksum eagerly at open (full file sweep).
    /// With verification off, corruption still surfaces as a typed error at
    /// first read of the affected fragment.
    pub verify: bool,
}

impl Default for FileStoreOptions {
    fn default() -> Self {
        FileStoreOptions {
            cache_pages: 65_536,
            verify: true,
        }
    }
}

/// Cumulative I/O statistics of a [`FileStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FileIoMetrics {
    /// LRU page-pool accounting, directly comparable with the simulated
    /// subsystem's cache metrics.
    pub pool: BufferPoolStats,
    /// Segments actually read from the file (cache misses at segment
    /// granularity).
    pub segment_reads: u64,
    /// Bytes actually read from the file.
    pub bytes_read: u64,
    /// Fragment fetches served entirely from the decoded-fragment cache
    /// (every page resident, no file access at all).
    pub decoded_cache_hits: u64,
}

/// Mutable half of the file store: the file handle, the page pool and the
/// decoded-fragment cache, all under one mutex (a leaf lock — no other lock
/// is ever taken while it is held).
struct FileBacking {
    file: File,
    pool: PagePool,
    /// Fragments whose pages are all resident, kept decoded.  Invalidated
    /// the moment any of their pages is evicted.
    decoded: BTreeMap<u64, Arc<ColumnarFragment>>,
    /// Resident page count per fragment.
    resident: BTreeMap<u64, u64>,
    segment_reads: u64,
    bytes_read: u64,
    decoded_cache_hits: u64,
}

/// A read-only fragment store backed by an `FGMT` file.
///
/// Fragment reads go through the LRU [`PagePool`]: every page of the
/// requested fragment is charged to the pool (hits and misses exactly as the
/// simulated I/O subsystem counts them), missing segments are read from the
/// file with their checksums re-verified, and fully resident fragments are
/// served from a decoded cache without touching the file.
///
/// The store is cheap to share behind [`std::sync::Arc`]; all mutability is
/// behind an internal mutex.
pub struct FileStore {
    path: PathBuf,
    meta: StoreMeta,
    total_rows: u64,
    directory: Vec<FragmentEntry>,
    backing: Mutex<FileBacking>,
}

impl std::fmt::Debug for FileStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FileStore")
            .field("path", &self.path)
            .field("fragments", &self.directory.len())
            .field("total_rows", &self.total_rows)
            .finish_non_exhaustive()
    }
}

impl FileStore {
    /// Opens an `FGMT` file with default options (64 Ki-page cache, eager
    /// verification).
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] when the file cannot be read and
    /// [`StorageError::Corrupt`] when any structural check fails: magic,
    /// version, header/trailer agreement, metadata and directory checksums,
    /// segment bounds, and (with verification on) every segment checksum.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        Self::open_with(path, FileStoreOptions::default())
    }

    /// [`FileStore::open`] with explicit [`FileStoreOptions`].
    ///
    /// # Errors
    ///
    /// See [`FileStore::open`]; additionally returns
    /// [`StorageError::Config`] when `cache_pages` is zero.
    pub fn open_with(
        path: impl AsRef<Path>,
        options: FileStoreOptions,
    ) -> Result<Self, StorageError> {
        if options.cache_pages == 0 {
            return Err(StorageError::Config(
                "file store needs a positive page-cache capacity".into(),
            ));
        }
        let path = path.as_ref().to_path_buf();
        let mut file = File::open(&path)?;
        let file_len = file.metadata()?.len();
        if file_len < PAGE_SIZE + TRAILER_LEN {
            return Err(StorageError::Corrupt(format!(
                "file holds {file_len} bytes, smaller than one page plus the trailer"
            )));
        }

        // Trailer.
        let mut trailer = vec![0u8; TRAILER_LEN as usize];
        file.seek(SeekFrom::End(-(TRAILER_LEN as i64)))?;
        file.read_exact(&mut trailer)?;
        if trailer[..8] != TRAILER_MAGIC {
            return Err(StorageError::Corrupt(
                "trailer magic mismatch (file truncated or not an FGMT file)".into(),
            ));
        }
        let mut tr = ByteReader::new(&trailer[8..], "trailer");
        let trailer_version = tr.u32()?;
        let trailer_page = tr.u32()?;
        let dir_offset = tr.u64()?;
        let dir_len = tr.u64()?;
        let dir_checksum = tr.u64()?;

        // Header page.
        let mut header = vec![0u8; PAGE_SIZE as usize];
        file.seek(SeekFrom::Start(0))?;
        file.read_exact(&mut header)?;
        if header[..4] != HEADER_MAGIC {
            return Err(StorageError::Corrupt(
                "header magic mismatch (not an FGMT file)".into(),
            ));
        }
        let mut hr = ByteReader::new(&header[4..], "header");
        let version = hr.u32()?;
        if version != FORMAT_VERSION {
            return Err(StorageError::Corrupt(format!(
                "unsupported format version {version} (this build reads version {FORMAT_VERSION})"
            )));
        }
        let page_size = hr.u32()?;
        if page_size as u64 != PAGE_SIZE {
            return Err(StorageError::Corrupt(format!(
                "unsupported page size {page_size} (this build reads {PAGE_SIZE}-byte pages)"
            )));
        }
        if trailer_version != version || u64::from(trailer_page) != PAGE_SIZE {
            return Err(StorageError::Corrupt(
                "header and trailer disagree on version or page size".into(),
            ));
        }
        let dimension_count = hr.u32()? as usize;
        let measure_count = hr.u32()? as usize;
        let fragment_count = hr.u64()?;
        let total_rows = hr.u64()?;
        let meta_len = hr.u64()?;
        let meta_checksum = hr.u64()?;

        // Metadata blob.
        let data_end = file_len - TRAILER_LEN;
        if PAGE_SIZE
            .checked_add(meta_len)
            .is_none_or(|end| end > data_end)
        {
            return Err(StorageError::Corrupt(
                "metadata blob reaches past the data area".into(),
            ));
        }
        let mut metadata = vec![0u8; meta_len as usize];
        file.read_exact(&mut metadata)?;
        if fnv1a(&metadata) != meta_checksum {
            return Err(StorageError::Corrupt("metadata checksum mismatch".into()));
        }
        let meta = decode_metadata(&metadata, dimension_count)?;
        if meta.schema.fact().measures().len() != measure_count {
            return Err(StorageError::Corrupt(format!(
                "header declares {measure_count} measures, metadata {}",
                meta.schema.fact().measures().len()
            )));
        }
        if meta.fragmentation.fragment_count() != fragment_count {
            return Err(StorageError::Corrupt(format!(
                "header declares {fragment_count} fragments, fragmentation yields {}",
                meta.fragmentation.fragment_count()
            )));
        }

        // Directory.
        if dir_offset
            .checked_add(dir_len)
            .is_none_or(|end| end > data_end)
        {
            return Err(StorageError::Corrupt(
                "page directory reaches past the data area".into(),
            ));
        }
        let mut directory_bytes = vec![0u8; dir_len as usize];
        file.seek(SeekFrom::Start(dir_offset))?;
        file.read_exact(&mut directory_bytes)?;
        if fnv1a(&directory_bytes) != dir_checksum {
            return Err(StorageError::Corrupt(
                "page directory checksum mismatch".into(),
            ));
        }
        let segments_per_fragment = dimension_count + measure_count + dimension_count;
        let directory = decode_directory(
            &directory_bytes,
            fragment_count,
            segments_per_fragment,
            dir_offset,
        )?;
        let dir_rows: u64 = directory.iter().map(|e| e.rows).sum();
        if dir_rows != total_rows {
            return Err(StorageError::Corrupt(format!(
                "header declares {total_rows} rows, directory sums to {dir_rows}"
            )));
        }

        if options.verify {
            let mut buf = Vec::new();
            for (fragment, entry) in directory.iter().enumerate() {
                for (index, seg) in entry.segments.iter().enumerate() {
                    buf.resize(seg.len as usize, 0);
                    file.seek(SeekFrom::Start(seg.offset))?;
                    file.read_exact(&mut buf)?;
                    if fnv1a(&buf) != seg.checksum {
                        return Err(StorageError::Corrupt(format!(
                            "checksum mismatch in fragment {fragment}, segment {index}"
                        )));
                    }
                }
            }
        }

        Ok(FileStore {
            path,
            meta,
            total_rows,
            directory,
            backing: Mutex::new(FileBacking {
                file,
                pool: PagePool::new(options.cache_pages),
                decoded: BTreeMap::new(),
                resident: BTreeMap::new(),
                segment_reads: 0,
                bytes_read: 0,
                decoded_cache_hits: 0,
            }),
        })
    }

    /// The path the store was opened from.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The stored star schema.
    #[must_use]
    pub fn schema(&self) -> &StarSchema {
        &self.meta.schema
    }

    /// The stored fragmentation.
    #[must_use]
    pub fn fragmentation(&self) -> &Fragmentation {
        &self.meta.fragmentation
    }

    /// The stored index catalog.
    #[must_use]
    pub fn catalog(&self) -> &IndexCatalog {
        &self.meta.catalog
    }

    /// The representation policy the stored indices were built with.
    #[must_use]
    pub fn policy(&self) -> RepresentationPolicy {
        self.meta.policy
    }

    /// Number of fragments in the file.
    #[must_use]
    pub fn fragment_count(&self) -> u64 {
        self.directory.len() as u64
    }

    /// Total fact rows across all fragments.
    #[must_use]
    pub fn total_rows(&self) -> u64 {
        self.total_rows
    }

    /// Rows of one fragment, straight from the page directory (no I/O).
    ///
    /// # Panics
    ///
    /// Panics if `fragment_number` is out of range.
    #[must_use]
    pub fn fragment_rows(&self, fragment_number: u64) -> u64 {
        self.directory[fragment_number as usize].rows
    }

    /// Cumulative I/O statistics: page-pool accounting, segments and bytes
    /// actually read, decoded-cache hits.
    #[must_use]
    pub fn metrics(&self) -> FileIoMetrics {
        let backing = self.backing.plock("file backing");
        FileIoMetrics {
            pool: backing.pool.stats(),
            segment_reads: backing.segment_reads,
            bytes_read: backing.bytes_read,
            decoded_cache_hits: backing.decoded_cache_hits,
        }
    }

    /// Reads one fragment, charging its pages to the LRU pool and serving
    /// from the decoded cache when every page is already resident.
    ///
    /// # Errors
    ///
    /// Returns [`StorageError::Io`] on read failures,
    /// [`StorageError::Decode`] / [`StorageError::Corrupt`] when the stored
    /// bytes fail to decode or fail their checksum, and
    /// [`StorageError::Config`] when `fragment_number` is out of range.
    pub fn read_fragment(
        &self,
        fragment_number: u64,
    ) -> Result<Arc<ColumnarFragment>, StorageError> {
        let entry = self
            .directory
            .get(fragment_number as usize)
            .ok_or_else(|| {
                StorageError::Config(format!(
                    "fragment {fragment_number} out of range (store holds {})",
                    self.directory.len()
                ))
            })?;
        let mut backing = self.backing.plock("file backing");
        let backing = &mut *backing;

        // Charge every page of the fragment to the pool, invalidating the
        // decoded cache of whichever fragment loses a page.
        let mut misses = 0u64;
        for page in 0..entry.page_count {
            let outcome = backing
                .pool
                .request_reporting(PageKey::new(fragment_number, page));
            if !outcome.hit {
                misses += 1;
                *backing.resident.entry(fragment_number).or_insert(0) += 1;
            }
            if let Some(victim) = outcome.evicted {
                if let Some(count) = backing.resident.get_mut(&victim.object) {
                    *count -= 1;
                    if *count == 0 {
                        backing.resident.remove(&victim.object);
                    }
                }
                backing.decoded.remove(&victim.object);
            }
        }
        if misses == 0 {
            if let Some(decoded) = backing.decoded.get(&fragment_number) {
                backing.decoded_cache_hits += 1;
                return Ok(Arc::clone(decoded));
            }
        }

        // At least one page (or the decoded form) is missing: read the
        // fragment's segments from the file.
        let dimension_count = self.meta.schema.dimension_count();
        let measure_count = self.meta.schema.fact().measures().len();
        let mut buf = Vec::new();
        let mut keys = Vec::with_capacity(dimension_count);
        let mut measures = Vec::with_capacity(measure_count);
        let mut indices = Vec::with_capacity(dimension_count);
        for (index, seg) in entry.segments.iter().enumerate() {
            buf.resize(seg.len as usize, 0);
            backing.file.seek(SeekFrom::Start(seg.offset))?;
            backing.file.read_exact(&mut buf)?;
            backing.segment_reads += 1;
            backing.bytes_read += seg.len;
            if fnv1a(&buf) != seg.checksum {
                return Err(StorageError::Corrupt(format!(
                    "checksum mismatch in fragment {fragment_number}, segment {index}"
                )));
            }
            if index < dimension_count {
                keys.push(decode_key_column(&buf, entry.rows)?);
            } else if index < dimension_count + measure_count {
                measures.push(decode_measure_column(&buf, entry.rows)?);
            } else {
                let dimension = index - dimension_count - measure_count;
                indices.push(decode_index_segment(
                    &buf, &self.meta, dimension, entry.rows,
                )?);
            }
        }
        let fragment = Arc::new(ColumnarFragment::from_parts(
            fragment_number,
            keys,
            measures,
            indices,
        ));
        if backing.resident.get(&fragment_number) == Some(&entry.page_count) {
            backing
                .decoded
                .insert(fragment_number, Arc::clone(&fragment));
        }
        Ok(fragment)
    }

    /// Reads the whole file back into an in-memory [`FragmentStore`] —
    /// the inverse of [`write_store`], used by round-trip tests and by
    /// callers that want file persistence but in-memory execution.
    ///
    /// # Errors
    ///
    /// Propagates any [`StorageError`] from reading the fragments.
    pub fn materialise(&self) -> Result<FragmentStore, StorageError> {
        let mut fragments = Vec::with_capacity(self.directory.len());
        for number in 0..self.fragment_count() {
            fragments.push((*self.read_fragment(number)?).clone());
        }
        Ok(FragmentStore::from_parts(
            self.meta.schema.clone(),
            self.meta.fragmentation.clone(),
            self.meta.catalog.clone(),
            self.meta.policy,
            fragments,
            self.total_rows as usize,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::apb1::apb1_scaled_down;

    fn small_store() -> FragmentStore {
        let schema = apb1_scaled_down();
        let fragmentation = Fragmentation::parse(&schema, &["time::quarter"]).unwrap();
        FragmentStore::build(&schema, &fragmentation, 99)
    }

    fn temp_path(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("fgmt_test_{}_{tag}_{n}.fgmt", std::process::id()))
    }

    struct TempFile(PathBuf);
    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn roundtrip_is_bit_identical() {
        let store = small_store();
        let file = TempFile(temp_path("roundtrip"));
        write_store(&store, &file.0).unwrap();
        let opened = FileStore::open(&file.0).unwrap();
        assert_eq!(opened.fragment_count(), store.fragment_count());
        assert_eq!(opened.total_rows(), store.total_rows() as u64);
        assert_eq!(opened.schema(), store.schema());
        assert_eq!(opened.fragmentation(), store.fragmentation());
        assert_eq!(opened.catalog(), store.catalog());
        assert_eq!(opened.policy(), store.policy());
        let materialised = opened.materialise().unwrap();
        assert_eq!(materialised, store);
    }

    #[test]
    fn fragment_reads_charge_the_page_pool() {
        let store = small_store();
        let file = TempFile(temp_path("pool"));
        write_store(&store, &file.0).unwrap();
        let opened = FileStore::open(&file.0).unwrap();

        let cold = opened.metrics();
        assert_eq!(cold.pool.hits + cold.pool.misses, 0, "open charges nothing");

        let first = opened.read_fragment(0).unwrap();
        let after_cold = opened.metrics();
        assert!(after_cold.pool.misses > 0);
        assert_eq!(after_cold.pool.hits, 0);
        assert!(after_cold.segment_reads > 0);

        let second = opened.read_fragment(0).unwrap();
        let after_warm = opened.metrics();
        assert_eq!(after_warm.pool.misses, after_cold.pool.misses);
        assert!(after_warm.pool.hits > 0);
        assert_eq!(after_warm.decoded_cache_hits, 1);
        assert_eq!(
            after_warm.segment_reads, after_cold.segment_reads,
            "warm fetch reads nothing from the file"
        );
        assert_eq!(*first, *second);
        assert_eq!(*first, *store.fragment(0));
    }

    #[test]
    fn tiny_pool_evicts_and_rereads() {
        let store = small_store();
        let file = TempFile(temp_path("evict"));
        write_store(&store, &file.0).unwrap();
        // A pool smaller than one fragment can never keep it resident.
        let opened = FileStore::open_with(
            &file.0,
            FileStoreOptions {
                cache_pages: 1,
                verify: false,
            },
        )
        .unwrap();
        let a = opened.read_fragment(0).unwrap();
        let first_reads = opened.metrics().segment_reads;
        let b = opened.read_fragment(0).unwrap();
        let metrics = opened.metrics();
        assert!(
            metrics.segment_reads > first_reads,
            "no decoded-cache serve"
        );
        assert_eq!(metrics.decoded_cache_hits, 0);
        assert!(metrics.pool.evictions > 0);
        assert_eq!(*a, *b);
    }

    #[test]
    fn open_rejects_missing_and_tiny_files() {
        let missing = temp_path("missing");
        assert!(matches!(
            FileStore::open(&missing),
            Err(StorageError::Io(_))
        ));
        let file = TempFile(temp_path("tiny"));
        std::fs::write(&file.0, b"FGMT").unwrap();
        assert!(matches!(
            FileStore::open(&file.0),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn open_rejects_truncation() {
        let store = small_store();
        let file = TempFile(temp_path("truncated"));
        write_store(&store, &file.0).unwrap();
        let bytes = std::fs::read(&file.0).unwrap();
        std::fs::write(&file.0, &bytes[..bytes.len() - PAGE_SIZE as usize]).unwrap();
        assert!(matches!(
            FileStore::open(&file.0),
            Err(StorageError::Corrupt(_))
        ));
    }

    #[test]
    fn open_rejects_wrong_version() {
        let store = small_store();
        let file = TempFile(temp_path("version"));
        write_store(&store, &file.0).unwrap();
        let mut bytes = std::fs::read(&file.0).unwrap();
        // Bump the header version field (bytes 4..8).
        bytes[4] = 99;
        std::fs::write(&file.0, &bytes).unwrap();
        match FileStore::open(&file.0) {
            Err(StorageError::Corrupt(msg)) => assert!(msg.contains("version"), "{msg}"),
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn open_rejects_flipped_data_byte() {
        let store = small_store();
        let file = TempFile(temp_path("bitflip"));
        write_store(&store, &file.0).unwrap();
        let mut bytes = std::fs::read(&file.0).unwrap();
        // Flip one byte in the middle of the fragment data area.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&file.0, &bytes).unwrap();
        // Eager verification reports the checksum mismatch at open …
        assert!(matches!(
            FileStore::open(&file.0),
            Err(StorageError::Corrupt(_) | StorageError::Decode(_))
        ));
        // … and with verification off the same corruption surfaces as a
        // typed error at read time, never a panic.
        let lazy = FileStore::open_with(
            &file.0,
            FileStoreOptions {
                verify: false,
                ..FileStoreOptions::default()
            },
        );
        if let Ok(lazy) = lazy {
            let mut saw_error = false;
            for number in 0..lazy.fragment_count() {
                if lazy.read_fragment(number).is_err() {
                    saw_error = true;
                }
            }
            assert!(saw_error, "corruption must surface on some fragment");
        }
    }

    #[test]
    fn zero_cache_capacity_is_a_config_error() {
        let store = small_store();
        let file = TempFile(temp_path("zerocache"));
        write_store(&store, &file.0).unwrap();
        assert!(matches!(
            FileStore::open_with(
                &file.0,
                FileStoreOptions {
                    cache_pages: 0,
                    verify: true
                }
            ),
            Err(StorageError::Config(_))
        ));
    }

    #[test]
    fn error_display_and_source_are_wired() {
        let io = StorageError::from(std::io::Error::other("boom"));
        assert!(io.to_string().contains("boom"));
        assert!(std::error::Error::source(&io).is_some());
        let corrupt = StorageError::Corrupt("bad".into());
        assert!(corrupt.to_string().contains("corrupt"));
        assert!(std::error::Error::source(&corrupt).is_none());
        let decode = StorageError::from(ReprDecodeError::BadMagic);
        assert!(decode.to_string().contains("decode"));
    }
}
