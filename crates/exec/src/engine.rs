//! The parallel star-join executor.
//!
//! [`StarJoinEngine`] executes a planned query over a [`FragmentStore`] on a
//! pool of `workers` OS threads sharing a work-stealing [`FragmentQueue`] of
//! pruned fragments — the physical counterpart of the paper's dynamic
//! assignment of fragment subqueries to processing elements.  Each worker
//! evaluates its fragments' bitmap predicates — staying in the *compressed
//! domain* ([`bitmap::WahBitmap::and_many`]) when every selection bitmap is
//! WAH-compressed, falling back to an allocation-free plain intersection
//! ([`bitmap::Bitmap::and_assign_many`]) otherwise — aggregates partial
//! sums, and the engine merges the per-fragment partials *in plan order*,
//! so the floating-point result is **bit-identical for every worker count
//! and every representation policy**.
//!
//! When an [`ExecConfig::placement`] is set, each worker's initial queue
//! chunk follows the physical allocation's disk-affinity order
//! ([`PhysicalAllocation::subquery_disks`]) instead of naive fragment
//! order, so the pool starts on placement-aligned partitions.
//!
//! When an [`ExecConfig::io`] is set, every fragment scan is charged
//! against the simulated disk subsystem ([`crate::io::SimulatedIo`]) —
//! deterministically, in plan order — and each task's simulated I/O time
//! becomes its steal weight in the queue (and, with a throttle, a real
//! wall-clock delay).  The charges never touch row evaluation, so results
//! stay bit-identical with the I/O layer on or off.

use std::num::NonZeroUsize;
use std::thread;
use std::time::Instant;

use allocation::PhysicalAllocation;
use bitmap::BitmapRepr;
use obs::{us_from_ms, EventKind, FieldKey, ObsConfig, Trace, TraceRecorder, Track};
use workload::BoundQuery;

use crate::io::{throttle_for, IoConfig, SimulatedIo, TaskIo};
use crate::metrics::{ExecMetrics, WorkerMetrics};
use crate::plan::{PredicateBinding, QueryPlan};
use crate::queue::{Claim, FragmentQueue};
use crate::source::ScanSource;
use crate::store::{ColumnarFragment, FragmentStore};

/// Worker-pool configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecConfig {
    /// Number of worker threads; `0` resolves to the machine's available
    /// parallelism.
    pub workers: usize,
    /// Optional physical allocation: when set, worker queues are seeded in
    /// disk-affinity order rather than naive fragment order.  Never affects
    /// results, only the initial work partition.
    pub placement: Option<PhysicalAllocation>,
    /// Optional simulated disk subsystem: when set, fragment scans charge
    /// simulated I/O, tasks are steal-weighted by it, and
    /// [`ExecMetrics::io`] reports per-disk and cache statistics.  Never
    /// affects results, only cost accounting (and wall time when a
    /// throttle is configured).
    pub io: Option<IoConfig>,
    /// Deterministic tracing: when enabled, the run records typed events
    /// (query lifecycle, scans, disk service, per-worker task runs) into a
    /// bounded ring and returns them as [`QueryResult::trace`].  Never
    /// affects results or metrics; disabled is zero-cost.
    pub obs: ObsConfig,
}

impl ExecConfig {
    /// A pool of exactly `workers` threads, with no placement awareness.
    #[deprecated(
        since = "0.2.0",
        note = "use the `warehouse::Session` builder (`Warehouse::session().workers(n)`), or a \
                struct literal: `ExecConfig { workers, ..ExecConfig::default() }`"
    )]
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        ExecConfig {
            workers,
            ..ExecConfig::default()
        }
    }

    /// The serial (1-worker) configuration — the speedup baseline.
    #[must_use]
    pub fn serial() -> Self {
        ExecConfig {
            workers: 1,
            ..ExecConfig::default()
        }
    }

    /// Seeds worker queues in `placement`'s disk-affinity order.
    #[deprecated(
        since = "0.2.0",
        note = "use `warehouse::Warehouse::session().placement(...)` or set the `placement` field"
    )]
    #[must_use]
    pub fn with_placement(mut self, placement: PhysicalAllocation) -> Self {
        self.placement = Some(placement);
        self
    }

    /// Charges fragment scans against a simulated disk subsystem built
    /// from `io` (one fresh subsystem per executed plan; use
    /// [`StarJoinEngine::execute_plan_with_io`] to share cache state
    /// across queries).
    #[deprecated(
        since = "0.2.0",
        note = "use `warehouse::Warehouse::session().io(...)` or set the `io` field"
    )]
    #[must_use]
    pub fn with_io(mut self, io: IoConfig) -> Self {
        self.io = Some(io);
        self
    }

    /// Records a deterministic trace of the run (see [`ObsConfig`]).
    #[deprecated(
        since = "0.2.0",
        note = "use `warehouse::Warehouse::session().obs(...)` or set the `obs` field"
    )]
    #[must_use]
    pub fn with_obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// The configured pool size: `workers`, or the machine's available
    /// parallelism when `workers` is `0`.  Always at least 1.
    #[must_use]
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            thread::available_parallelism().map_or(1, NonZeroUsize::get)
        }
        .max(1)
    }

    /// The pool size actually spawned for `tasks` runnable tasks: the
    /// resolved worker count, clamped to the task count and to at least 1.
    ///
    /// Both execution paths size their pool through this one function: the
    /// single-query engine passes its plan's fragment count (a pruned Q1
    /// query must not pay for idle threads), the multi-query
    /// [`crate::scheduler`] passes the *whole stream's* task count and then
    /// shares that one pool across all in-flight queries — admitting more
    /// queries (MPL > 1) interleaves tasks instead of spawning more threads,
    /// so the machine is never over-subscribed.
    #[must_use]
    pub fn pool_size(&self, tasks: usize) -> usize {
        self.resolved_workers().min(tasks).max(1)
    }
}

impl Default for ExecConfig {
    /// Defaults to the machine's available parallelism, placement-unaware.
    fn default() -> Self {
        ExecConfig {
            workers: 0,
            placement: None,
            io: None,
            obs: ObsConfig::default(),
        }
    }
}

/// The result of one query execution.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The executed query's diagnostic name.
    pub query_name: String,
    /// Number of fact rows satisfying all predicates.
    pub hits: u64,
    /// Sum per measure over all hit rows, in schema measure order.
    /// Bit-identical across worker counts (deterministic merge order).
    pub measure_sums: Vec<f64>,
    /// Execution metrics (per-worker accounting, wall clock).
    pub metrics: ExecMetrics,
    /// The recorded trace when [`ExecConfig::obs`] was enabled.
    pub trace: Option<Trace>,
}

/// Partial aggregate of one fragment, tagged with its plan position so the
/// merge can fold in deterministic order.
pub(crate) struct FragmentPartial {
    pub(crate) task: usize,
    pub(crate) rows: u64,
    pub(crate) hits: u64,
    pub(crate) sums: Vec<f64>,
}

/// Folds per-fragment partials into `(hits, measure_sums)` in ascending
/// plan-position order.
///
/// This is **the** deterministic merge: both the single-query engine and the
/// multi-query scheduler route their partials through it, so float addition
/// order — and therefore the result bits — depends only on the plan, never
/// on worker count, MPL or scheduling interleave.
pub(crate) fn merge_partials(
    partials: &mut [FragmentPartial],
    measure_count: usize,
) -> (u64, Vec<f64>) {
    partials.sort_unstable_by_key(|p| p.task);
    let mut measure_sums = vec![0.0f64; measure_count];
    let mut hits = 0u64;
    for partial in partials.iter() {
        hits += partial.hits;
        for (acc, value) in measure_sums.iter_mut().zip(&partial.sums) {
            *acc += value;
        }
    }
    (hits, measure_sums)
}

/// A parallel star-join execution engine over a [`ScanSource`] — an
/// in-memory [`FragmentStore`] or a persistent [`crate::FileStore`].
#[derive(Debug)]
pub struct StarJoinEngine {
    source: ScanSource,
}

impl StarJoinEngine {
    /// Creates an engine over an in-memory `store`.
    #[must_use]
    pub fn new(store: FragmentStore) -> Self {
        StarJoinEngine {
            source: ScanSource::Memory(store),
        }
    }

    /// Creates an engine over any scan source — in-memory or file-backed.
    /// Results are bit-identical across backings.
    #[must_use]
    pub fn from_source(source: impl Into<ScanSource>) -> Self {
        StarJoinEngine {
            source: source.into(),
        }
    }

    /// The engine's scan source.
    #[must_use]
    pub fn source(&self) -> &ScanSource {
        &self.source
    }

    /// The underlying in-memory fragment store.
    ///
    /// # Panics
    ///
    /// Panics for a file-backed engine — use [`Self::source`] there.
    #[must_use]
    pub fn store(&self) -> &FragmentStore {
        self.source
            .as_memory()
            .expect("engine is file-backed; use StarJoinEngine::source()")
    }

    /// Plans `bound` against the source's schema and fragmentation.
    #[must_use]
    pub fn plan(&self, bound: &BoundQuery) -> QueryPlan {
        QueryPlan::new(self.source.schema(), self.source.fragmentation(), bound)
    }

    /// Plans and executes `bound` on `config`'s worker pool.
    #[must_use]
    pub fn execute(&self, bound: &BoundQuery, config: &ExecConfig) -> QueryResult {
        let plan = self.plan(bound);
        self.execute_plan(&plan, config)
    }

    /// Plans and executes `bound` serially — the speedup baseline.
    #[must_use]
    pub fn execute_serial(&self, bound: &BoundQuery) -> QueryResult {
        self.execute(bound, &ExecConfig::serial())
    }

    /// Executes an existing plan on `config`'s worker pool.
    ///
    /// The pool is clamped to the number of planned fragments — a pruned
    /// Q1 query on one fragment must not pay for spawning idle threads.
    /// The 1-worker pool runs inline on the calling thread (no spawn
    /// overhead in the baseline); larger pools use scoped OS threads over a
    /// shared work-stealing queue.  With [`ExecConfig::io`] set, the plan
    /// is charged against a fresh simulated disk subsystem first.
    #[must_use]
    pub fn execute_plan(&self, plan: &QueryPlan, config: &ExecConfig) -> QueryResult {
        match &config.io {
            Some(io_config) => {
                let io = SimulatedIo::new(*io_config, self.source.schema());
                self.execute_plan_with_io(plan, config, &io)
            }
            None => self.run_pool(plan, config, None, make_recorder(config)),
        }
    }

    /// Executes a plan charging its fragment scans against an *existing*
    /// simulated disk subsystem, so cache and arm state persist across
    /// queries (the repeated-scan / warm-cache experiments).  The returned
    /// [`ExecMetrics::io`] snapshot is cumulative over `io`'s lifetime.
    #[must_use]
    pub fn execute_plan_with_io(
        &self,
        plan: &QueryPlan,
        config: &ExecConfig,
        io: &SimulatedIo,
    ) -> QueryResult {
        let recorder = make_recorder(config);
        let charges = io.charge_plan_traced(plan, &self.source, 0, recorder.as_ref());
        self.run_pool(plan, config, Some((io, charges)), recorder)
    }

    /// The shared pool loop behind both execution entry points.
    fn run_pool(
        &self,
        plan: &QueryPlan,
        config: &ExecConfig,
        io: Option<(&SimulatedIo, Vec<TaskIo>)>,
        recorder: Option<TraceRecorder>,
    ) -> QueryResult {
        let workers = config.pool_size(plan.fragments().len());
        let bitmap_predicates = plan.bitmap_predicates();
        let (io_sim, charges) = match io {
            Some((sim, charges)) => (Some(sim), Some(charges)),
            None => (None, None),
        };
        // detlint: allow(wall-clock, reason = "measured wall speedup is observability; query results never depend on it")
        let start = Instant::now();
        let seed_order = match &config.placement {
            Some(placement) => placement_seed_order(plan, self.source.catalog(), placement),
            None => (0..plan.fragments().len()).collect(),
        };
        let queue = match (&charges, io_sim.map(|s| s.config().steal_by_io)) {
            (Some(charges), Some(true)) => {
                let costs: Vec<u64> = charges.iter().map(TaskIo::cost_units).collect();
                FragmentQueue::with_seed_order_and_costs(seed_order, &costs, workers)
            }
            _ => FragmentQueue::with_seed_order(seed_order, workers),
        };
        let task_io = TaskIoTable {
            charges: charges.as_deref(),
            wall_ns_per_sim_ms: io_sim.map_or(0, |s| s.config().wall_ns_per_sim_ms),
        };
        if let Some(rec) = recorder.as_ref() {
            rec.record(Track::Query(0), EventKind::QuerySubmit, 0, 0, vec![]);
            rec.record(
                Track::Query(0),
                EventKind::QueryPlan,
                0,
                0,
                vec![(FieldKey::Fragments, plan.fragments().len() as u64)],
            );
            rec.record(Track::Query(0), EventKind::QueryAdmit, 0, 0, vec![]);
        }
        let rec = recorder.as_ref();
        let outputs: Vec<(Vec<FragmentPartial>, WorkerMetrics)> = if workers == 1 {
            vec![run_worker(
                &self.source,
                plan,
                &bitmap_predicates,
                &queue,
                &task_io,
                0,
                rec,
            )]
        } else {
            thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|worker| {
                        let source = &self.source;
                        let queue = &queue;
                        let preds = &bitmap_predicates;
                        let task_io = &task_io;
                        scope.spawn(move || {
                            run_worker(source, plan, preds, queue, task_io, worker, rec)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("worker panicked"))
                    .collect()
            })
        };
        let wall = start.elapsed();

        // Deterministic merge: fold the per-fragment partials in plan order,
        // so float addition order — and therefore the result bits — does not
        // depend on worker count or scheduling.
        let mut partials = Vec::with_capacity(plan.fragments().len());
        let mut worker_metrics = Vec::with_capacity(workers);
        for (mut fragment_partials, metrics) in outputs {
            partials.append(&mut fragment_partials);
            worker_metrics.push(metrics);
        }
        worker_metrics.sort_by_key(|m| m.worker);
        let (hits, measure_sums) = merge_partials(&mut partials, self.source.measure_count());
        if let Some(rec) = recorder.as_ref() {
            // The query's simulated span: charge 0 (admission) to the last
            // charge's completion on the disk clock (0 with the I/O layer
            // off — lifecycle events then degenerate to logical time 0).
            let end_ms = charges.as_deref().map_or(0.0, |charges| {
                charges.iter().map(|c| c.sim_end_ms).fold(0.0, f64::max)
            });
            let end_us = us_from_ms(end_ms);
            rec.record(
                Track::Query(0),
                EventKind::Query,
                0,
                end_us,
                vec![(FieldKey::Fragments, plan.fragments().len() as u64)],
            );
            rec.record(
                Track::Query(0),
                EventKind::QueryComplete,
                end_us,
                0,
                vec![(FieldKey::Rows, hits)],
            );
        }
        QueryResult {
            query_name: plan.query_name().to_string(),
            hits,
            measure_sums,
            metrics: ExecMetrics {
                workers: worker_metrics,
                wall,
                planned_fragments: plan.fragments().len(),
                io: io_sim.map(SimulatedIo::metrics),
                file: self.source.file_metrics(),
            },
            trace: recorder.map(TraceRecorder::into_trace),
        }
    }
}

/// The run's event sink when tracing is enabled (`None` is zero-cost).
fn make_recorder(config: &ExecConfig) -> Option<TraceRecorder> {
    config
        .obs
        .enabled
        .then(|| TraceRecorder::new(config.obs.capacity))
}

/// The per-task simulated I/O charges a pool run executes under: `None`
/// charges when the I/O layer is off.
struct TaskIoTable<'a> {
    charges: Option<&'a [TaskIo]>,
    wall_ns_per_sim_ms: u64,
}

impl TaskIoTable<'_> {
    /// "Performs" task `task`'s simulated I/O: spins for the configured
    /// wall fraction and returns the simulated ms for worker accounting.
    fn perform(&self, task: usize) -> f64 {
        match self.charges {
            Some(charges) => {
                let sim_ms = charges[task].sim_ms;
                throttle_for(sim_ms, self.wall_ns_per_sim_ms);
                sim_ms
            }
            None => 0.0,
        }
    }
}

/// The disk-affinity task permutation: tasks sorted (stably) by the disk
/// set their fragment subquery touches under `placement`, so contiguous
/// queue chunks map to contiguous slices of the physical allocation.
pub(crate) fn placement_seed_order(
    plan: &QueryPlan,
    catalog: &bitmap::IndexCatalog,
    placement: &PhysicalAllocation,
) -> Vec<usize> {
    let bitmap_count = plan.bitmap_fragments_per_subquery(catalog);
    let mut tasks: Vec<usize> = (0..plan.fragments().len()).collect();
    tasks
        .sort_by_cached_key(|&task| placement.subquery_disks(plan.fragments()[task], bitmap_count));
    tasks
}

/// One worker's loop: claim fragments until the queue is dry.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    source: &ScanSource,
    plan: &QueryPlan,
    bitmap_predicates: &[PredicateBinding],
    queue: &FragmentQueue,
    task_io: &TaskIoTable<'_>,
    worker: usize,
    recorder: Option<&TraceRecorder>,
) -> (Vec<FragmentPartial>, WorkerMetrics) {
    // detlint: allow(wall-clock, reason = "per-worker busy-time metrics; never part of query results")
    let started = Instant::now();
    let mut partials = Vec::new();
    let mut metrics = WorkerMetrics {
        worker,
        ..WorkerMetrics::default()
    };
    // This worker's position on its own simulated timeline: the sum of
    // simulated I/O it has executed so far.  Task-run events are
    // thread-attributed (which worker ran a task is a scheduling outcome),
    // but each worker's timeline is internally exact.
    let mut sim_cursor_ms = 0.0f64;
    while let Some(claim) = queue.claim(worker) {
        let task = claim.task();
        let stolen = matches!(claim, Claim::Stolen(_));
        if stolen {
            metrics.fragments_stolen += 1;
        }
        let sim_ms = task_io.perform(task);
        metrics.sim_io_ms += sim_ms;
        let fragment = source.fetch(plan.fragments()[task]);
        let (partial, compressed) =
            process_fragment(&fragment, bitmap_predicates, source.measure_count(), task);
        metrics.fragments_processed += 1;
        metrics.fragments_compressed += usize::from(compressed);
        metrics.rows_scanned += partial.rows;
        metrics.rows_matched += partial.hits;
        if let Some(rec) = recorder {
            let ts_us = us_from_ms(sim_cursor_ms);
            if stolen {
                rec.record(
                    Track::Worker(worker as u32),
                    EventKind::Steal,
                    ts_us,
                    0,
                    vec![(FieldKey::Query, 0), (FieldKey::Task, task as u64)],
                );
            }
            rec.record(
                Track::Worker(worker as u32),
                EventKind::TaskRun,
                ts_us,
                us_from_ms(sim_ms),
                vec![
                    (FieldKey::Query, 0),
                    (FieldKey::Task, task as u64),
                    (FieldKey::Fragment, plan.fragments()[task]),
                    (FieldKey::Rows, partial.rows),
                    (FieldKey::Stolen, u64::from(stolen)),
                    (FieldKey::SimMsBits, sim_ms.to_bits()),
                ],
            );
        }
        sim_cursor_ms += sim_ms;
        partials.push(partial);
    }
    metrics.busy = started.elapsed();
    (partials, metrics)
}

/// Evaluates one fragment: bitmap-AND selection (or the IOC1 whole-fragment
/// fast path) followed by partial aggregation of every measure.  Returns
/// the partial plus whether the selection ran fully in the compressed
/// domain.
pub(crate) fn process_fragment(
    fragment: &ColumnarFragment,
    bitmap_predicates: &[PredicateBinding],
    measure_count: usize,
    task: usize,
) -> (FragmentPartial, bool) {
    let rows = fragment.len() as u64;
    let mut sums = vec![0.0f64; measure_count];
    let mut hits = 0u64;
    let mut compressed_domain = false;
    if fragment.is_empty() {
        return (
            FragmentPartial {
                task,
                rows,
                hits,
                sums,
            },
            compressed_domain,
        );
    }
    // One aggregation loop for both selection branches, so the
    // bit-identical-across-representations invariant cannot diverge.
    let mut aggregate = |matching: &mut dyn Iterator<Item = usize>| {
        for row in matching {
            hits += 1;
            for (measure, sum) in sums.iter_mut().enumerate() {
                *sum += fragment.measure_column(measure)[row];
            }
        }
    };
    if bitmap_predicates.is_empty() {
        // IOC1 fast path (§4.5): fragment pruning already guarantees every
        // row of this fragment matches — aggregate whole measure columns
        // without touching an index.
        hits = rows;
        for (measure, sum) in sums.iter_mut().enumerate() {
            *sum = fragment.measure_column(measure).iter().sum();
        }
    } else {
        let selections: Vec<BitmapRepr> = bitmap_predicates
            .iter()
            .map(|p| {
                fragment
                    .bitmap_index(p.dimension)
                    .select_repr(p.level, p.value)
            })
            .collect();
        // Homogeneous compressed selections (all-WAH or all-Roaring)
        // intersect and iterate entirely in their compressed domain;
        // otherwise the operands fold into the first selection's plain form
        // in place — both inside `BitmapRepr::and_many_owned`.  The result
        // is compressed exactly when the compressed domain was used, so the
        // metric reads it off the result rather than the operands (mixed
        // WAH x Roaring operands are all compressed yet fold via plain).
        let selection = BitmapRepr::and_many_owned(selections);
        compressed_domain = selection.is_compressed();
        aggregate(&mut selection.iter_ones());
    }
    (
        FragmentPartial {
            task,
            rows,
            hits,
            sums,
        },
        compressed_domain,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdhf::Fragmentation;
    use schema::apb1::apb1_scaled_down;
    use schema::StarSchema;
    use workload::QueryType;

    fn engine() -> (StarSchema, StarJoinEngine) {
        let schema = apb1_scaled_down();
        let fragmentation =
            Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
        let store = FragmentStore::build(&schema, &fragmentation, 2024);
        (schema, StarJoinEngine::new(store))
    }

    /// Brute-force ground truth over the same generated table.
    fn brute_force(schema: &StarSchema, bound: &BoundQuery) -> (u64, Vec<f64>) {
        let table = bitmap::MaterialisedFactTable::generate(schema, 2024);
        let mut predicates: Vec<Option<std::ops::Range<u64>>> =
            vec![None; schema.dimension_count()];
        for (pred, &value) in bound.query().predicates().iter().zip(bound.values()) {
            let hierarchy = schema.dimensions()[pred.attr.dimension].hierarchy();
            predicates[pred.attr.dimension] = Some(hierarchy.leaf_range_of(pred.attr.level, value));
        }
        let matching = table.scan(&predicates);
        let mut sums = vec![0.0f64; schema.fact().measures().len()];
        for &row in &matching {
            for (measure, sum) in sums.iter_mut().enumerate() {
                *sum += table.rows()[row].measures[measure];
            }
        }
        (matching.len() as u64, sums)
    }

    #[test]
    fn serial_results_match_brute_force_for_all_query_types() {
        let (schema, engine) = engine();
        for (query_type, values) in [
            (QueryType::OneStore, vec![7]),
            (QueryType::OneMonth, vec![5]),
            (QueryType::OneCode, vec![65]),
            (QueryType::OneMonthOneGroup, vec![3, 1]),
            (QueryType::OneCodeOneQuarter, vec![100, 2]),
            (QueryType::OneGroup, vec![9]),
            (QueryType::OneQuarter, vec![1]),
            (QueryType::OneGroupOneStore, vec![4, 11]),
        ] {
            let bound = BoundQuery::new(&schema, query_type.to_star_query(&schema), values);
            let result = engine.execute_serial(&bound);
            let (expected_hits, expected_sums) = brute_force(&schema, &bound);
            assert_eq!(result.hits, expected_hits, "{}", result.query_name);
            for (got, want) in result.measure_sums.iter().zip(&expected_sums) {
                assert!(
                    (got - want).abs() < 1e-6,
                    "{}: measure sum {got} != {want}",
                    result.query_name
                );
            }
        }
    }

    #[test]
    fn parallel_results_are_bit_identical_to_serial() {
        let (schema, engine) = engine();
        for (query_type, values) in [
            (QueryType::OneStore, vec![13]),
            (QueryType::OneMonth, vec![2]),
            (QueryType::OneCodeOneQuarter, vec![31, 3]),
        ] {
            let bound = BoundQuery::new(&schema, query_type.to_star_query(&schema), values);
            let serial = engine.execute_serial(&bound);
            for workers in [2usize, 3, 4, 8] {
                let parallel = engine.execute(
                    &bound,
                    &ExecConfig {
                        workers,
                        ..ExecConfig::default()
                    },
                );
                assert_eq!(parallel.hits, serial.hits);
                let serial_bits: Vec<u64> =
                    serial.measure_sums.iter().map(|s| s.to_bits()).collect();
                let parallel_bits: Vec<u64> =
                    parallel.measure_sums.iter().map(|s| s.to_bits()).collect();
                assert_eq!(
                    parallel_bits, serial_bits,
                    "{} with {workers} workers",
                    serial.query_name
                );
            }
        }
    }

    #[test]
    fn metrics_account_for_every_planned_fragment() {
        let (schema, engine) = engine();
        let bound = BoundQuery::new(&schema, QueryType::OneStore.to_star_query(&schema), vec![0]);
        let result = engine.execute(
            &bound,
            &ExecConfig {
                workers: 4,
                ..ExecConfig::default()
            },
        );
        assert_eq!(result.metrics.worker_count(), 4);
        assert_eq!(
            result.metrics.total_fragments(),
            result.metrics.planned_fragments
        );
        assert_eq!(
            result.metrics.planned_fragments as u64,
            engine.store().fragmentation().fragment_count()
        );
        assert_eq!(
            result.metrics.total_rows_scanned(),
            engine.store().total_rows() as u64
        );
        assert!(result.metrics.wall.as_nanos() > 0);
        assert!(result.metrics.load_imbalance() >= 1.0);
    }

    #[test]
    fn ioc1_fast_path_needs_no_bitmaps_and_counts_whole_fragments() {
        let (schema, engine) = engine();
        let bound = BoundQuery::new(
            &schema,
            QueryType::OneMonthOneGroup.to_star_query(&schema),
            vec![3, 1],
        );
        let plan = engine.plan(&bound);
        assert!(plan.bitmap_predicates().is_empty());
        let result = engine.execute_plan(&plan, &ExecConfig::serial());
        let fragment = engine.store().fragment(plan.fragments()[0]);
        assert_eq!(result.hits, fragment.len() as u64);
    }

    #[test]
    fn config_resolution() {
        assert_eq!(ExecConfig::serial().resolved_workers(), 1);
        assert_eq!(
            ExecConfig {
                workers: 6,
                ..ExecConfig::default()
            }
            .resolved_workers(),
            6
        );
        assert!(ExecConfig::default().resolved_workers() >= 1);
        // The shared pool-sizing rule: clamped to the task count, never 0.
        assert_eq!(
            ExecConfig {
                workers: 8,
                ..ExecConfig::default()
            }
            .pool_size(3),
            3
        );
        assert_eq!(
            ExecConfig {
                workers: 2,
                ..ExecConfig::default()
            }
            .pool_size(100),
            2
        );
        assert_eq!(
            ExecConfig {
                workers: 5,
                ..ExecConfig::default()
            }
            .pool_size(0),
            1
        );
        assert!(ExecConfig::default().pool_size(64) >= 1);
        assert_eq!(ExecConfig::default().placement, None);
        let placed = ExecConfig {
            workers: 2,
            placement: Some(PhysicalAllocation::round_robin(8)),
            ..ExecConfig::default()
        };
        assert_eq!(placed.placement, Some(PhysicalAllocation::round_robin(8)));
    }

    /// The deprecated chained constructors stay equivalent to the struct
    /// literals they were replaced by, for the one release they survive.
    #[test]
    #[allow(deprecated)]
    fn deprecated_config_shims_match_struct_literals() {
        let io = crate::io::IoConfig::with_disks(4).cache(64);
        let placement = PhysicalAllocation::round_robin(8);
        let chained = ExecConfig::with_workers(3)
            .with_placement(placement)
            .with_io(io)
            .with_obs(ObsConfig::enabled());
        let literal = ExecConfig {
            workers: 3,
            placement: Some(placement),
            io: Some(io),
            obs: ObsConfig::enabled(),
        };
        assert_eq!(chained, literal);
        assert_eq!(ExecConfig::with_workers(1), ExecConfig::serial());
    }

    #[test]
    fn placement_seeding_changes_order_not_results() {
        let (schema, engine) = engine();
        let bound = BoundQuery::new(&schema, QueryType::OneStore.to_star_query(&schema), vec![7]);
        let plan = engine.plan(&bound);
        let placement = PhysicalAllocation::round_robin(10);
        let order = placement_seed_order(&plan, engine.store().catalog(), &placement);
        // The order is a permutation of all tasks, grouped by leading disk.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..plan.fragments().len()).collect::<Vec<_>>());
        assert_ne!(order, sorted, "disk-affinity order should reorder tasks");
        let k = plan.bitmap_fragments_per_subquery(engine.store().catalog());
        let first_disks: Vec<Vec<u64>> = order
            .iter()
            .map(|&t| placement.subquery_disks(plan.fragments()[t], k))
            .collect();
        assert!(first_disks.windows(2).all(|w| w[0] <= w[1]));

        // Seeding never changes the result bits.
        let baseline = engine.execute(
            &bound,
            &ExecConfig {
                workers: 4,
                ..ExecConfig::default()
            },
        );
        let placed = engine.execute(
            &bound,
            &ExecConfig {
                workers: 4,
                placement: Some(placement),
                ..ExecConfig::default()
            },
        );
        assert_eq!(placed.hits, baseline.hits);
        let baseline_bits: Vec<u64> = baseline.measure_sums.iter().map(|s| s.to_bits()).collect();
        let placed_bits: Vec<u64> = placed.measure_sums.iter().map(|s| s.to_bits()).collect();
        assert_eq!(placed_bits, baseline_bits);
    }

    #[test]
    fn forced_wah_store_runs_selections_in_the_compressed_domain() {
        let schema = apb1_scaled_down();
        let fragmentation =
            Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
        let store = FragmentStore::build_with_policy(
            &schema,
            &fragmentation,
            2024,
            bitmap::RepresentationPolicy::Wah,
        );
        let engine = StarJoinEngine::new(store);
        // 1STORE hits the simple customer index: all selections compressed.
        let bound = BoundQuery::new(&schema, QueryType::OneStore.to_star_query(&schema), vec![7]);
        let result = engine.execute_serial(&bound);
        assert_eq!(
            result.metrics.total_compressed(),
            result.metrics.total_fragments()
        );

        // The adaptive default store returns identical bits either way.
        let adaptive = StarJoinEngine::new(FragmentStore::build(&schema, &fragmentation, 2024));
        let adaptive_result = adaptive.execute_serial(&bound);
        assert_eq!(adaptive_result.hits, result.hits);
        let a: Vec<u64> = adaptive_result
            .measure_sums
            .iter()
            .map(|s| s.to_bits())
            .collect();
        let b: Vec<u64> = result.measure_sums.iter().map(|s| s.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn forced_roaring_store_runs_selections_in_the_compressed_domain() {
        let schema = apb1_scaled_down();
        let fragmentation =
            Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
        let store = FragmentStore::build_with_policy(
            &schema,
            &fragmentation,
            2024,
            bitmap::RepresentationPolicy::Roaring,
        );
        let engine = StarJoinEngine::new(store);
        // 1STORE hits the simple customer index: all selections compressed,
        // and the homogeneous roaring operands stay in the roaring domain.
        let bound = BoundQuery::new(&schema, QueryType::OneStore.to_star_query(&schema), vec![7]);
        let result = engine.execute_serial(&bound);
        assert_eq!(
            result.metrics.total_compressed(),
            result.metrics.total_fragments()
        );

        // Same bits as the forced-WAH store and the plain store.
        for policy in [
            bitmap::RepresentationPolicy::Plain,
            bitmap::RepresentationPolicy::Wah,
        ] {
            let other = StarJoinEngine::new(FragmentStore::build_with_policy(
                &schema,
                &fragmentation,
                2024,
                policy,
            ));
            let other_result = other.execute_serial(&bound);
            assert_eq!(other_result.hits, result.hits);
            let a: Vec<u64> = other_result
                .measure_sums
                .iter()
                .map(|s| s.to_bits())
                .collect();
            let b: Vec<u64> = result.measure_sums.iter().map(|s| s.to_bits()).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn io_layer_changes_metrics_but_never_results() {
        let (schema, engine) = engine();
        let bound = BoundQuery::new(&schema, QueryType::OneStore.to_star_query(&schema), vec![7]);
        let baseline = engine.execute(
            &bound,
            &ExecConfig {
                workers: 4,
                ..ExecConfig::default()
            },
        );
        assert!(baseline.metrics.io.is_none());

        let io = crate::io::IoConfig::with_disks(10).cache(256);
        let with_io = engine.execute(
            &bound,
            &ExecConfig {
                workers: 4,
                io: Some(io),
                ..ExecConfig::default()
            },
        );
        assert_eq!(with_io.hits, baseline.hits);
        let a: Vec<u64> = baseline.measure_sums.iter().map(|s| s.to_bits()).collect();
        let b: Vec<u64> = with_io.measure_sums.iter().map(|s| s.to_bits()).collect();
        assert_eq!(a, b);

        let io_metrics = with_io.metrics.io.as_ref().expect("I/O metrics populated");
        assert_eq!(io_metrics.disk_count(), 10);
        assert!(io_metrics.total_pages_read() > 0);
        assert!(io_metrics.elapsed_ms > 0.0);
        assert!(with_io.metrics.disk_imbalance() >= 1.0);
        // Every worker's simulated I/O sums to the charged total; 1STORE
        // needs bitmaps, so bitmap pages were charged too.
        let charged: f64 = io_metrics.per_disk.iter().map(|d| d.busy_ms).sum();
        assert!((with_io.metrics.total_sim_io_ms() - charged).abs() < 1e-6);
        let scans: u64 = io_metrics.per_disk.iter().map(|d| d.scans).sum();
        assert!(scans as usize > with_io.metrics.planned_fragments);
    }

    #[test]
    fn io_charging_is_deterministic_for_identical_configs() {
        let (schema, engine) = engine();
        let bound = BoundQuery::new(&schema, QueryType::OneCode.to_star_query(&schema), vec![65]);
        let config = ExecConfig {
            workers: 3,
            io: Some(crate::io::IoConfig::with_disks(7).cache(128)),
            ..ExecConfig::default()
        };
        let a = engine.execute(&bound, &config);
        let b = engine.execute(&bound, &config);
        assert_eq!(a.metrics.io, b.metrics.io);
    }

    #[test]
    fn shared_io_subsystem_keeps_cache_state_across_queries() {
        let (schema, engine) = engine();
        let bound = BoundQuery::new(&schema, QueryType::OneMonth.to_star_query(&schema), vec![3]);
        let plan = engine.plan(&bound);
        let config = ExecConfig {
            workers: 2,
            ..ExecConfig::default()
        };
        let io = crate::io::SimulatedIo::new(
            crate::io::IoConfig::with_disks(4).cache(100_000),
            engine.store().schema(),
        );
        let cold = engine.execute_plan_with_io(&plan, &config, &io);
        let warm = engine.execute_plan_with_io(&plan, &config, &io);
        assert_eq!(warm.hits, cold.hits);
        let cold_io = cold.metrics.io.unwrap();
        let warm_io = warm.metrics.io.unwrap();
        // The second pass found every page in the shared cache: cumulative
        // pages read did not grow and the hit rate jumped.
        assert_eq!(warm_io.total_pages_read(), cold_io.total_pages_read());
        assert!(warm_io.cache_hit_rate() > cold_io.cache_hit_rate());
    }

    #[test]
    fn empty_plan_yields_zero_result() {
        let (schema, engine) = engine();
        // A store fragmented on month only, queried for a month with no rows?
        // Instead: a valid query whose fragment happens to be empty still
        // returns zeros rather than panicking; emulate by executing over a
        // fragmentation-pruned single empty fragment if one exists.
        if let Some(empty) = engine.store().fragments().iter().find(|f| f.is_empty()) {
            let coords = engine
                .store()
                .fragmentation()
                .coordinates(empty.fragment_number());
            let bound = BoundQuery::new(
                &schema,
                QueryType::OneMonthOneGroup.to_star_query(&schema),
                vec![coords.0[0], coords.0[1]],
            );
            let result = engine.execute_serial(&bound);
            assert_eq!(result.hits, 0);
            assert!(result.measure_sums.iter().all(|&s| s == 0.0));
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use mdhf::Fragmentation;
    use proptest::prelude::*;
    use schema::apb1::Apb1Config;
    use workload::QueryType;

    /// A deliberately tiny schema so each proptest case (store build + four
    /// executions) stays fast in debug builds.
    fn tiny_schema() -> schema::StarSchema {
        Apb1Config {
            channels: 3,
            months: 6,
            stores: 16,
            product_codes: 24,
            density: 0.2,
            fact_tuple_bytes: 20,
        }
        .build()
    }

    const FRAGMENTATIONS: [&[&str]; 5] = [
        &["time::month"],
        &["time::month", "product::group"],
        &["product::group"],
        &["time::quarter", "product::division"],
        &["time::month", "product::code", "channel::channel"],
    ];

    const POLICIES: [bitmap::RepresentationPolicy; 4] = [
        bitmap::RepresentationPolicy::Plain,
        bitmap::RepresentationPolicy::Wah,
        bitmap::RepresentationPolicy::Roaring,
        bitmap::RepresentationPolicy::Adaptive {
            max_density: bitmap::RepresentationPolicy::DEFAULT_MAX_DENSITY,
        },
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// For random fragmentations, query types, bound values and all of
        /// the {Plain, Wah, Roaring, Adaptive} representation policies, the
        /// parallel
        /// engine returns exactly (bit-identically) the serial result for k
        /// workers in {1, 2, 8}.
        #[test]
        fn prop_parallel_equals_serial(
            frag_idx in 0usize..FRAGMENTATIONS.len(),
            type_idx in 0usize..5,
            raw_values in proptest::collection::vec(0u64..100_000, 2),
            seed in 1u64..1_000,
            policy_idx in 0usize..POLICIES.len(),
        ) {
            let schema = tiny_schema();
            let fragmentation =
                Fragmentation::parse(&schema, FRAGMENTATIONS[frag_idx]).unwrap();
            let store = FragmentStore::build_with_policy(
                &schema,
                &fragmentation,
                seed,
                POLICIES[policy_idx],
            );
            let engine = StarJoinEngine::new(store);

            let query_type = QueryType::standard_mix()[type_idx].clone();
            let shape = query_type.to_star_query(&schema);
            let values: Vec<u64> = shape
                .predicates()
                .iter()
                .zip(raw_values.iter().chain(std::iter::repeat(&0)))
                .map(|(p, &raw)| raw % p.attr.cardinality(&schema))
                .collect();
            let bound = BoundQuery::new(&schema, shape, values);

            let serial = engine.execute(&bound, &ExecConfig { workers: 1, ..ExecConfig::default() });
            for workers in [2usize, 8] {
                let parallel = engine.execute(&bound, &ExecConfig { workers, ..ExecConfig::default() });
                prop_assert_eq!(parallel.hits, serial.hits);
                let serial_bits: Vec<u64> =
                    serial.measure_sums.iter().map(|s| s.to_bits()).collect();
                let parallel_bits: Vec<u64> =
                    parallel.measure_sums.iter().map(|s| s.to_bits()).collect();
                prop_assert_eq!(parallel_bits, serial_bits);
                prop_assert_eq!(
                    parallel.metrics.total_fragments(),
                    serial.metrics.total_fragments()
                );
            }
        }

        /// With the simulated I/O layer enabled, serial and parallel
        /// results stay bit-identical on *selectivity-skewed* stores for
        /// every skew factor θ ∈ {0, 0.5, 1} and disk count ∈ {1, 4, 8} —
        /// the I/O charges and skew-aware steal weights must never leak
        /// into row evaluation.
        #[test]
        fn prop_io_layer_preserves_bits_under_skew(
            theta_idx in 0usize..3,
            disks_idx in 0usize..3,
            type_idx in 0usize..5,
            raw_values in proptest::collection::vec(0u64..100_000, 2),
            seed in 1u64..1_000,
            cache_pages in 0usize..512,
        ) {
            let theta = [0.0f64, 0.5, 1.0][theta_idx];
            let disks = [1u64, 4, 8][disks_idx];
            let schema = tiny_schema();
            let fragmentation =
                Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
            let store =
                FragmentStore::build_skewed(&schema, &fragmentation, seed, theta, 4_000);
            let engine = StarJoinEngine::new(store);

            let query_type = QueryType::standard_mix()[type_idx].clone();
            let shape = query_type.to_star_query(&schema);
            let values: Vec<u64> = shape
                .predicates()
                .iter()
                .zip(raw_values.iter().chain(std::iter::repeat(&0)))
                .map(|(p, &raw)| raw % p.attr.cardinality(&schema))
                .collect();
            let bound = BoundQuery::new(&schema, shape, values);

            let io = crate::io::IoConfig::with_disks(disks).cache(cache_pages);
            let serial = engine.execute(&bound, &ExecConfig { workers: 1, io: Some(io), ..ExecConfig::default() });
            for workers in [2usize, 8] {
                let parallel =
                    engine.execute(&bound, &ExecConfig { workers, io: Some(io), ..ExecConfig::default() });
                prop_assert_eq!(parallel.hits, serial.hits);
                let serial_bits: Vec<u64> =
                    serial.measure_sums.iter().map(|s| s.to_bits()).collect();
                let parallel_bits: Vec<u64> =
                    parallel.measure_sums.iter().map(|s| s.to_bits()).collect();
                prop_assert_eq!(parallel_bits, serial_bits);
                // The deterministic replay also makes the I/O metrics
                // identical across worker counts.
                prop_assert_eq!(
                    parallel.metrics.io.as_ref(),
                    serial.metrics.io.as_ref()
                );
            }
        }
    }
}
