//! The parallel star-join executor.
//!
//! [`StarJoinEngine`] executes a planned query over a [`FragmentStore`] on a
//! pool of `workers` OS threads sharing a work-stealing [`FragmentQueue`] of
//! pruned fragments — the physical counterpart of the paper's dynamic
//! assignment of fragment subqueries to processing elements.  Each worker
//! evaluates its fragments' bitmap predicates — staying in the *compressed
//! domain* ([`bitmap::WahBitmap::and_many`]) when every selection bitmap is
//! WAH-compressed, falling back to an allocation-free plain intersection
//! ([`Bitmap::and_assign_many`]) otherwise — aggregates partial sums, and
//! the engine merges the per-fragment partials *in plan order*, so the
//! floating-point result is **bit-identical for every worker count and
//! every representation policy**.
//!
//! When an [`ExecConfig::placement`] is set, each worker's initial queue
//! chunk follows the physical allocation's disk-affinity order
//! ([`PhysicalAllocation::subquery_disks`]) instead of naive fragment
//! order, so the pool starts on placement-aligned partitions.

use std::num::NonZeroUsize;
use std::thread;
use std::time::Instant;

use allocation::PhysicalAllocation;
use bitmap::BitmapRepr;
use workload::BoundQuery;

use crate::metrics::{ExecMetrics, WorkerMetrics};
use crate::plan::{PredicateBinding, QueryPlan};
use crate::queue::{Claim, FragmentQueue};
use crate::store::{ColumnarFragment, FragmentStore};

/// Worker-pool configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Number of worker threads; `0` resolves to the machine's available
    /// parallelism.
    pub workers: usize,
    /// Optional physical allocation: when set, worker queues are seeded in
    /// disk-affinity order rather than naive fragment order.  Never affects
    /// results, only the initial work partition.
    pub placement: Option<PhysicalAllocation>,
}

impl ExecConfig {
    /// A pool of exactly `workers` threads, with no placement awareness.
    #[must_use]
    pub fn with_workers(workers: usize) -> Self {
        ExecConfig {
            workers,
            placement: None,
        }
    }

    /// The serial (1-worker) configuration — the speedup baseline.
    #[must_use]
    pub fn serial() -> Self {
        ExecConfig::with_workers(1)
    }

    /// Seeds worker queues in `placement`'s disk-affinity order.
    #[must_use]
    pub fn with_placement(mut self, placement: PhysicalAllocation) -> Self {
        self.placement = Some(placement);
        self
    }

    /// The configured pool size: `workers`, or the machine's available
    /// parallelism when `workers` is `0`.  Always at least 1.
    #[must_use]
    pub fn resolved_workers(&self) -> usize {
        if self.workers > 0 {
            self.workers
        } else {
            thread::available_parallelism().map_or(1, NonZeroUsize::get)
        }
        .max(1)
    }

    /// The pool size actually spawned for `tasks` runnable tasks: the
    /// resolved worker count, clamped to the task count and to at least 1.
    ///
    /// Both execution paths size their pool through this one function: the
    /// single-query engine passes its plan's fragment count (a pruned Q1
    /// query must not pay for idle threads), the multi-query
    /// [`crate::scheduler`] passes the *whole stream's* task count and then
    /// shares that one pool across all in-flight queries — admitting more
    /// queries (MPL > 1) interleaves tasks instead of spawning more threads,
    /// so the machine is never over-subscribed.
    #[must_use]
    pub fn pool_size(&self, tasks: usize) -> usize {
        self.resolved_workers().min(tasks).max(1)
    }
}

impl Default for ExecConfig {
    /// Defaults to the machine's available parallelism, placement-unaware.
    fn default() -> Self {
        ExecConfig::with_workers(0)
    }
}

/// The result of one query execution.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The executed query's diagnostic name.
    pub query_name: String,
    /// Number of fact rows satisfying all predicates.
    pub hits: u64,
    /// Sum per measure over all hit rows, in schema measure order.
    /// Bit-identical across worker counts (deterministic merge order).
    pub measure_sums: Vec<f64>,
    /// Execution metrics (per-worker accounting, wall clock).
    pub metrics: ExecMetrics,
}

/// Partial aggregate of one fragment, tagged with its plan position so the
/// merge can fold in deterministic order.
pub(crate) struct FragmentPartial {
    pub(crate) task: usize,
    pub(crate) rows: u64,
    pub(crate) hits: u64,
    pub(crate) sums: Vec<f64>,
}

/// Folds per-fragment partials into `(hits, measure_sums)` in ascending
/// plan-position order.
///
/// This is **the** deterministic merge: both the single-query engine and the
/// multi-query scheduler route their partials through it, so float addition
/// order — and therefore the result bits — depends only on the plan, never
/// on worker count, MPL or scheduling interleave.
pub(crate) fn merge_partials(
    partials: &mut [FragmentPartial],
    measure_count: usize,
) -> (u64, Vec<f64>) {
    partials.sort_unstable_by_key(|p| p.task);
    let mut measure_sums = vec![0.0f64; measure_count];
    let mut hits = 0u64;
    for partial in partials.iter() {
        hits += partial.hits;
        for (acc, value) in measure_sums.iter_mut().zip(&partial.sums) {
            *acc += value;
        }
    }
    (hits, measure_sums)
}

/// A parallel star-join execution engine over a materialised
/// [`FragmentStore`].
#[derive(Debug)]
pub struct StarJoinEngine {
    store: FragmentStore,
}

impl StarJoinEngine {
    /// Creates an engine over `store`.
    #[must_use]
    pub fn new(store: FragmentStore) -> Self {
        StarJoinEngine { store }
    }

    /// The underlying fragment store.
    #[must_use]
    pub fn store(&self) -> &FragmentStore {
        &self.store
    }

    /// Plans `bound` against the store's schema and fragmentation.
    #[must_use]
    pub fn plan(&self, bound: &BoundQuery) -> QueryPlan {
        QueryPlan::new(self.store.schema(), self.store.fragmentation(), bound)
    }

    /// Plans and executes `bound` on `config`'s worker pool.
    #[must_use]
    pub fn execute(&self, bound: &BoundQuery, config: &ExecConfig) -> QueryResult {
        let plan = self.plan(bound);
        self.execute_plan(&plan, config)
    }

    /// Plans and executes `bound` serially — the speedup baseline.
    #[must_use]
    pub fn execute_serial(&self, bound: &BoundQuery) -> QueryResult {
        self.execute(bound, &ExecConfig::serial())
    }

    /// Executes an existing plan on `config`'s worker pool.
    ///
    /// The pool is clamped to the number of planned fragments — a pruned
    /// Q1 query on one fragment must not pay for spawning idle threads.
    /// The 1-worker pool runs inline on the calling thread (no spawn
    /// overhead in the baseline); larger pools use scoped OS threads over a
    /// shared work-stealing queue.
    #[must_use]
    pub fn execute_plan(&self, plan: &QueryPlan, config: &ExecConfig) -> QueryResult {
        let workers = config.pool_size(plan.fragments().len());
        let bitmap_predicates = plan.bitmap_predicates();
        let start = Instant::now();
        let queue = match &config.placement {
            Some(placement) => FragmentQueue::with_seed_order(
                placement_seed_order(plan, &self.store, placement),
                workers,
            ),
            None => FragmentQueue::new(plan.fragments().len(), workers),
        };
        let outputs: Vec<(Vec<FragmentPartial>, WorkerMetrics)> = if workers == 1 {
            vec![run_worker(&self.store, plan, &bitmap_predicates, &queue, 0)]
        } else {
            thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|worker| {
                        let store = &self.store;
                        let queue = &queue;
                        let preds = &bitmap_predicates;
                        scope.spawn(move || run_worker(store, plan, preds, queue, worker))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|handle| handle.join().expect("worker panicked"))
                    .collect()
            })
        };
        let wall = start.elapsed();

        // Deterministic merge: fold the per-fragment partials in plan order,
        // so float addition order — and therefore the result bits — does not
        // depend on worker count or scheduling.
        let mut partials = Vec::with_capacity(plan.fragments().len());
        let mut worker_metrics = Vec::with_capacity(workers);
        for (mut fragment_partials, metrics) in outputs {
            partials.append(&mut fragment_partials);
            worker_metrics.push(metrics);
        }
        worker_metrics.sort_by_key(|m| m.worker);
        let (hits, measure_sums) = merge_partials(&mut partials, self.store.measure_count());
        QueryResult {
            query_name: plan.query_name().to_string(),
            hits,
            measure_sums,
            metrics: ExecMetrics {
                workers: worker_metrics,
                wall,
                planned_fragments: plan.fragments().len(),
            },
        }
    }
}

/// The disk-affinity task permutation: tasks sorted (stably) by the disk
/// set their fragment subquery touches under `placement`, so contiguous
/// queue chunks map to contiguous slices of the physical allocation.
pub(crate) fn placement_seed_order(
    plan: &QueryPlan,
    store: &FragmentStore,
    placement: &PhysicalAllocation,
) -> Vec<usize> {
    let bitmap_count = plan.bitmap_fragments_per_subquery(store.catalog());
    let mut tasks: Vec<usize> = (0..plan.fragments().len()).collect();
    tasks
        .sort_by_cached_key(|&task| placement.subquery_disks(plan.fragments()[task], bitmap_count));
    tasks
}

/// One worker's loop: claim fragments until the queue is dry.
fn run_worker(
    store: &FragmentStore,
    plan: &QueryPlan,
    bitmap_predicates: &[PredicateBinding],
    queue: &FragmentQueue,
    worker: usize,
) -> (Vec<FragmentPartial>, WorkerMetrics) {
    let started = Instant::now();
    let mut partials = Vec::new();
    let mut metrics = WorkerMetrics {
        worker,
        ..WorkerMetrics::default()
    };
    while let Some(claim) = queue.claim(worker) {
        let task = claim.task();
        if matches!(claim, Claim::Stolen(_)) {
            metrics.fragments_stolen += 1;
        }
        let fragment = store.fragment(plan.fragments()[task]);
        let (partial, compressed) =
            process_fragment(fragment, bitmap_predicates, store.measure_count(), task);
        metrics.fragments_processed += 1;
        metrics.fragments_compressed += usize::from(compressed);
        metrics.rows_scanned += partial.rows;
        metrics.rows_matched += partial.hits;
        partials.push(partial);
    }
    metrics.busy = started.elapsed();
    (partials, metrics)
}

/// Evaluates one fragment: bitmap-AND selection (or the IOC1 whole-fragment
/// fast path) followed by partial aggregation of every measure.  Returns
/// the partial plus whether the selection ran fully in the compressed
/// domain.
pub(crate) fn process_fragment(
    fragment: &ColumnarFragment,
    bitmap_predicates: &[PredicateBinding],
    measure_count: usize,
    task: usize,
) -> (FragmentPartial, bool) {
    let rows = fragment.len() as u64;
    let mut sums = vec![0.0f64; measure_count];
    let mut hits = 0u64;
    let mut compressed_domain = false;
    if fragment.is_empty() {
        return (
            FragmentPartial {
                task,
                rows,
                hits,
                sums,
            },
            compressed_domain,
        );
    }
    // One aggregation loop for both selection branches, so the
    // bit-identical-across-representations invariant cannot diverge.
    let mut aggregate = |matching: &mut dyn Iterator<Item = usize>| {
        for row in matching {
            hits += 1;
            for (measure, sum) in sums.iter_mut().enumerate() {
                *sum += fragment.measure_column(measure)[row];
            }
        }
    };
    if bitmap_predicates.is_empty() {
        // IOC1 fast path (§4.5): fragment pruning already guarantees every
        // row of this fragment matches — aggregate whole measure columns
        // without touching an index.
        hits = rows;
        for (measure, sum) in sums.iter_mut().enumerate() {
            *sum = fragment.measure_column(measure).iter().sum();
        }
    } else {
        let selections: Vec<BitmapRepr> = bitmap_predicates
            .iter()
            .map(|p| {
                fragment
                    .bitmap_index(p.dimension)
                    .select_repr(p.level, p.value)
            })
            .collect();
        // All-compressed selections intersect and iterate entirely over the
        // WAH runs; otherwise the operands fold into the first selection's
        // plain form in place — both inside `BitmapRepr::and_many_owned`.
        compressed_domain = selections.iter().all(BitmapRepr::is_compressed);
        let selection = BitmapRepr::and_many_owned(selections);
        aggregate(&mut selection.iter_ones());
    }
    (
        FragmentPartial {
            task,
            rows,
            hits,
            sums,
        },
        compressed_domain,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdhf::Fragmentation;
    use schema::apb1::apb1_scaled_down;
    use schema::StarSchema;
    use workload::QueryType;

    fn engine() -> (StarSchema, StarJoinEngine) {
        let schema = apb1_scaled_down();
        let fragmentation =
            Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
        let store = FragmentStore::build(&schema, &fragmentation, 2024);
        (schema, StarJoinEngine::new(store))
    }

    /// Brute-force ground truth over the same generated table.
    fn brute_force(schema: &StarSchema, bound: &BoundQuery) -> (u64, Vec<f64>) {
        let table = bitmap::MaterialisedFactTable::generate(schema, 2024);
        let mut predicates: Vec<Option<std::ops::Range<u64>>> =
            vec![None; schema.dimension_count()];
        for (pred, &value) in bound.query().predicates().iter().zip(bound.values()) {
            let hierarchy = schema.dimensions()[pred.attr.dimension].hierarchy();
            predicates[pred.attr.dimension] = Some(hierarchy.leaf_range_of(pred.attr.level, value));
        }
        let matching = table.scan(&predicates);
        let mut sums = vec![0.0f64; schema.fact().measures().len()];
        for &row in &matching {
            for (measure, sum) in sums.iter_mut().enumerate() {
                *sum += table.rows()[row].measures[measure];
            }
        }
        (matching.len() as u64, sums)
    }

    #[test]
    fn serial_results_match_brute_force_for_all_query_types() {
        let (schema, engine) = engine();
        for (query_type, values) in [
            (QueryType::OneStore, vec![7]),
            (QueryType::OneMonth, vec![5]),
            (QueryType::OneCode, vec![65]),
            (QueryType::OneMonthOneGroup, vec![3, 1]),
            (QueryType::OneCodeOneQuarter, vec![100, 2]),
            (QueryType::OneGroup, vec![9]),
            (QueryType::OneQuarter, vec![1]),
            (QueryType::OneGroupOneStore, vec![4, 11]),
        ] {
            let bound = BoundQuery::new(&schema, query_type.to_star_query(&schema), values);
            let result = engine.execute_serial(&bound);
            let (expected_hits, expected_sums) = brute_force(&schema, &bound);
            assert_eq!(result.hits, expected_hits, "{}", result.query_name);
            for (got, want) in result.measure_sums.iter().zip(&expected_sums) {
                assert!(
                    (got - want).abs() < 1e-6,
                    "{}: measure sum {got} != {want}",
                    result.query_name
                );
            }
        }
    }

    #[test]
    fn parallel_results_are_bit_identical_to_serial() {
        let (schema, engine) = engine();
        for (query_type, values) in [
            (QueryType::OneStore, vec![13]),
            (QueryType::OneMonth, vec![2]),
            (QueryType::OneCodeOneQuarter, vec![31, 3]),
        ] {
            let bound = BoundQuery::new(&schema, query_type.to_star_query(&schema), values);
            let serial = engine.execute_serial(&bound);
            for workers in [2usize, 3, 4, 8] {
                let parallel = engine.execute(&bound, &ExecConfig::with_workers(workers));
                assert_eq!(parallel.hits, serial.hits);
                let serial_bits: Vec<u64> =
                    serial.measure_sums.iter().map(|s| s.to_bits()).collect();
                let parallel_bits: Vec<u64> =
                    parallel.measure_sums.iter().map(|s| s.to_bits()).collect();
                assert_eq!(
                    parallel_bits, serial_bits,
                    "{} with {workers} workers",
                    serial.query_name
                );
            }
        }
    }

    #[test]
    fn metrics_account_for_every_planned_fragment() {
        let (schema, engine) = engine();
        let bound = BoundQuery::new(&schema, QueryType::OneStore.to_star_query(&schema), vec![0]);
        let result = engine.execute(&bound, &ExecConfig::with_workers(4));
        assert_eq!(result.metrics.worker_count(), 4);
        assert_eq!(
            result.metrics.total_fragments(),
            result.metrics.planned_fragments
        );
        assert_eq!(
            result.metrics.planned_fragments as u64,
            engine.store().fragmentation().fragment_count()
        );
        assert_eq!(
            result.metrics.total_rows_scanned(),
            engine.store().total_rows() as u64
        );
        assert!(result.metrics.wall.as_nanos() > 0);
        assert!(result.metrics.load_imbalance() >= 1.0);
    }

    #[test]
    fn ioc1_fast_path_needs_no_bitmaps_and_counts_whole_fragments() {
        let (schema, engine) = engine();
        let bound = BoundQuery::new(
            &schema,
            QueryType::OneMonthOneGroup.to_star_query(&schema),
            vec![3, 1],
        );
        let plan = engine.plan(&bound);
        assert!(plan.bitmap_predicates().is_empty());
        let result = engine.execute_plan(&plan, &ExecConfig::serial());
        let fragment = engine.store().fragment(plan.fragments()[0]);
        assert_eq!(result.hits, fragment.len() as u64);
    }

    #[test]
    fn config_resolution() {
        assert_eq!(ExecConfig::serial().resolved_workers(), 1);
        assert_eq!(ExecConfig::with_workers(6).resolved_workers(), 6);
        assert!(ExecConfig::default().resolved_workers() >= 1);
        // The shared pool-sizing rule: clamped to the task count, never 0.
        assert_eq!(ExecConfig::with_workers(8).pool_size(3), 3);
        assert_eq!(ExecConfig::with_workers(2).pool_size(100), 2);
        assert_eq!(ExecConfig::with_workers(5).pool_size(0), 1);
        assert!(ExecConfig::default().pool_size(64) >= 1);
        assert_eq!(ExecConfig::default().placement, None);
        let placed = ExecConfig::with_workers(2).with_placement(PhysicalAllocation::round_robin(8));
        assert_eq!(placed.placement, Some(PhysicalAllocation::round_robin(8)));
    }

    #[test]
    fn placement_seeding_changes_order_not_results() {
        let (schema, engine) = engine();
        let bound = BoundQuery::new(&schema, QueryType::OneStore.to_star_query(&schema), vec![7]);
        let plan = engine.plan(&bound);
        let placement = PhysicalAllocation::round_robin(10);
        let order = placement_seed_order(&plan, engine.store(), &placement);
        // The order is a permutation of all tasks, grouped by leading disk.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..plan.fragments().len()).collect::<Vec<_>>());
        assert_ne!(order, sorted, "disk-affinity order should reorder tasks");
        let k = plan.bitmap_fragments_per_subquery(engine.store().catalog());
        let first_disks: Vec<Vec<u64>> = order
            .iter()
            .map(|&t| placement.subquery_disks(plan.fragments()[t], k))
            .collect();
        assert!(first_disks.windows(2).all(|w| w[0] <= w[1]));

        // Seeding never changes the result bits.
        let baseline = engine.execute(&bound, &ExecConfig::with_workers(4));
        let placed = engine.execute(
            &bound,
            &ExecConfig::with_workers(4).with_placement(placement),
        );
        assert_eq!(placed.hits, baseline.hits);
        let baseline_bits: Vec<u64> = baseline.measure_sums.iter().map(|s| s.to_bits()).collect();
        let placed_bits: Vec<u64> = placed.measure_sums.iter().map(|s| s.to_bits()).collect();
        assert_eq!(placed_bits, baseline_bits);
    }

    #[test]
    fn forced_wah_store_runs_selections_in_the_compressed_domain() {
        let schema = apb1_scaled_down();
        let fragmentation =
            Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
        let store = FragmentStore::build_with_policy(
            &schema,
            &fragmentation,
            2024,
            bitmap::RepresentationPolicy::Wah,
        );
        let engine = StarJoinEngine::new(store);
        // 1STORE hits the simple customer index: all selections compressed.
        let bound = BoundQuery::new(&schema, QueryType::OneStore.to_star_query(&schema), vec![7]);
        let result = engine.execute_serial(&bound);
        assert_eq!(
            result.metrics.total_compressed(),
            result.metrics.total_fragments()
        );

        // The adaptive default store returns identical bits either way.
        let adaptive = StarJoinEngine::new(FragmentStore::build(&schema, &fragmentation, 2024));
        let adaptive_result = adaptive.execute_serial(&bound);
        assert_eq!(adaptive_result.hits, result.hits);
        let a: Vec<u64> = adaptive_result
            .measure_sums
            .iter()
            .map(|s| s.to_bits())
            .collect();
        let b: Vec<u64> = result.measure_sums.iter().map(|s| s.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_plan_yields_zero_result() {
        let (schema, engine) = engine();
        // A store fragmented on month only, queried for a month with no rows?
        // Instead: a valid query whose fragment happens to be empty still
        // returns zeros rather than panicking; emulate by executing over a
        // fragmentation-pruned single empty fragment if one exists.
        if let Some(empty) = engine.store().fragments().iter().find(|f| f.is_empty()) {
            let coords = engine
                .store()
                .fragmentation()
                .coordinates(empty.fragment_number());
            let bound = BoundQuery::new(
                &schema,
                QueryType::OneMonthOneGroup.to_star_query(&schema),
                vec![coords.0[0], coords.0[1]],
            );
            let result = engine.execute_serial(&bound);
            assert_eq!(result.hits, 0);
            assert!(result.measure_sums.iter().all(|&s| s == 0.0));
        }
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use mdhf::Fragmentation;
    use proptest::prelude::*;
    use schema::apb1::Apb1Config;
    use workload::QueryType;

    /// A deliberately tiny schema so each proptest case (store build + four
    /// executions) stays fast in debug builds.
    fn tiny_schema() -> schema::StarSchema {
        Apb1Config {
            channels: 3,
            months: 6,
            stores: 16,
            product_codes: 24,
            density: 0.2,
            fact_tuple_bytes: 20,
        }
        .build()
    }

    const FRAGMENTATIONS: [&[&str]; 5] = [
        &["time::month"],
        &["time::month", "product::group"],
        &["product::group"],
        &["time::quarter", "product::division"],
        &["time::month", "product::code", "channel::channel"],
    ];

    const POLICIES: [bitmap::RepresentationPolicy; 3] = [
        bitmap::RepresentationPolicy::Plain,
        bitmap::RepresentationPolicy::Wah,
        bitmap::RepresentationPolicy::Adaptive {
            max_density: bitmap::RepresentationPolicy::DEFAULT_MAX_DENSITY,
        },
    ];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// For random fragmentations, query types, bound values and all of
        /// the {Plain, Wah, Adaptive} representation policies, the parallel
        /// engine returns exactly (bit-identically) the serial result for k
        /// workers in {1, 2, 8}.
        #[test]
        fn prop_parallel_equals_serial(
            frag_idx in 0usize..FRAGMENTATIONS.len(),
            type_idx in 0usize..5,
            raw_values in proptest::collection::vec(0u64..100_000, 2),
            seed in 1u64..1_000,
            policy_idx in 0usize..POLICIES.len(),
        ) {
            let schema = tiny_schema();
            let fragmentation =
                Fragmentation::parse(&schema, FRAGMENTATIONS[frag_idx]).unwrap();
            let store = FragmentStore::build_with_policy(
                &schema,
                &fragmentation,
                seed,
                POLICIES[policy_idx],
            );
            let engine = StarJoinEngine::new(store);

            let query_type = QueryType::standard_mix()[type_idx].clone();
            let shape = query_type.to_star_query(&schema);
            let values: Vec<u64> = shape
                .predicates()
                .iter()
                .zip(raw_values.iter().chain(std::iter::repeat(&0)))
                .map(|(p, &raw)| raw % p.attr.cardinality(&schema))
                .collect();
            let bound = BoundQuery::new(&schema, shape, values);

            let serial = engine.execute(&bound, &ExecConfig::with_workers(1));
            for workers in [2usize, 8] {
                let parallel = engine.execute(&bound, &ExecConfig::with_workers(workers));
                prop_assert_eq!(parallel.hits, serial.hits);
                let serial_bits: Vec<u64> =
                    serial.measure_sums.iter().map(|s| s.to_bits()).collect();
                let parallel_bits: Vec<u64> =
                    parallel.measure_sums.iter().map(|s| s.to_bits()).collect();
                prop_assert_eq!(parallel_bits, serial_bits);
                prop_assert_eq!(
                    parallel.metrics.total_fragments(),
                    serial.metrics.total_fragments()
                );
            }
        }
    }
}
