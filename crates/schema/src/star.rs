//! The star schema: fact table plus dimensions.

use serde::{Deserialize, Serialize};

use crate::attr::AttrRef;
use crate::dimension::Dimension;

/// A measure (aggregatable attribute) of the fact table, e.g. `UnitsSold`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Measure {
    name: String,
    size_bytes: u64,
}

impl Measure {
    /// Creates a measure with the given storage size in bytes.
    #[must_use]
    pub fn new(name: impl Into<String>, size_bytes: u64) -> Self {
        assert!(size_bytes > 0, "measure size must be positive");
        Measure {
            name: name.into(),
            size_bytes,
        }
    }

    /// The measure's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The measure's storage size in bytes.
    #[must_use]
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }
}

/// The fact table of a star schema.
///
/// Its cardinality is not stored explicitly; following APB-1 it is derived
/// from a *density factor* applied to the cross product of the dimension
/// cardinalities (paper §3.1).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FactTable {
    name: String,
    measures: Vec<Measure>,
    tuple_size_bytes: u64,
    density: f64,
}

impl FactTable {
    /// Creates a fact table description.
    ///
    /// `tuple_size_bytes` is the total row size including foreign keys (the
    /// paper uses 20 B); `density` is the fraction of possible dimension-value
    /// combinations that actually occur (APB-1: 0.25).
    ///
    /// # Panics
    ///
    /// Panics if the tuple size is zero or the density is not in `(0, 1]`.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        measures: Vec<Measure>,
        tuple_size_bytes: u64,
        density: f64,
    ) -> Self {
        assert!(tuple_size_bytes > 0, "fact tuple size must be positive");
        assert!(
            density > 0.0 && density <= 1.0,
            "density factor must be in (0, 1], got {density}"
        );
        FactTable {
            name: name.into(),
            measures,
            tuple_size_bytes,
            density,
        }
    }

    /// The fact table's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The measures stored per fact row.
    #[must_use]
    pub fn measures(&self) -> &[Measure] {
        &self.measures
    }

    /// Size of one fact row in bytes.
    #[must_use]
    pub fn tuple_size_bytes(&self) -> u64 {
        self.tuple_size_bytes
    }

    /// The density factor.
    #[must_use]
    pub fn density(&self) -> f64 {
        self.density
    }
}

/// Errors raised while assembling a [`StarSchema`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// Two dimensions share the same (case-insensitive) name.
    DuplicateDimension(String),
    /// The schema has no dimensions.
    NoDimensions,
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::DuplicateDimension(d) => write!(f, "duplicate dimension name {d:?}"),
            SchemaError::NoDimensions => write!(f, "a star schema needs at least one dimension"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// A complete star schema: one fact table and its dimensions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StarSchema {
    fact: FactTable,
    dimensions: Vec<Dimension>,
}

impl StarSchema {
    /// Assembles a schema, validating dimension-name uniqueness.
    pub fn new(fact: FactTable, dimensions: Vec<Dimension>) -> Result<Self, SchemaError> {
        if dimensions.is_empty() {
            return Err(SchemaError::NoDimensions);
        }
        for (i, d) in dimensions.iter().enumerate() {
            if dimensions[..i]
                .iter()
                .any(|e| e.name().eq_ignore_ascii_case(d.name()))
            {
                return Err(SchemaError::DuplicateDimension(d.name().to_string()));
            }
        }
        Ok(StarSchema { fact, dimensions })
    }

    /// The fact table description.
    #[must_use]
    pub fn fact(&self) -> &FactTable {
        &self.fact
    }

    /// The dimensions, in declaration order.
    #[must_use]
    pub fn dimensions(&self) -> &[Dimension] {
        &self.dimensions
    }

    /// Number of dimensions.
    #[must_use]
    pub fn dimension_count(&self) -> usize {
        self.dimensions.len()
    }

    /// Looks up a dimension index by (case-insensitive) name.
    #[must_use]
    pub fn dimension_index(&self, name: &str) -> Option<usize> {
        self.dimensions
            .iter()
            .position(|d| d.name().eq_ignore_ascii_case(name))
    }

    /// Resolves `dimension`/`level` names to an [`AttrRef`].
    #[must_use]
    pub fn attr(&self, dimension: &str, level: &str) -> Option<AttrRef> {
        let dim_idx = self.dimension_index(dimension)?;
        let level_idx = self.dimensions[dim_idx].level_index(level)?;
        Some(AttrRef::new(dim_idx, level_idx))
    }

    /// The maximal number of possible fact-row key combinations: the product
    /// of the leaf cardinalities of all dimensions.
    #[must_use]
    pub fn max_fact_combinations(&self) -> u64 {
        self.dimensions
            .iter()
            .map(Dimension::cardinality)
            .try_fold(1u64, u64::checked_mul)
            .expect("dimension cardinality product overflows u64")
    }

    /// The number of fact rows: density × product of dimension cardinalities.
    #[must_use]
    pub fn fact_row_count(&self) -> u64 {
        let max = self.max_fact_combinations() as f64;
        (max * self.fact.density()).round() as u64
    }

    /// Total fact-table size in bytes.
    #[must_use]
    pub fn fact_table_bytes(&self) -> u64 {
        self.fact_row_count()
            .checked_mul(self.fact.tuple_size_bytes())
            .expect("fact table size overflows u64")
    }

    /// Combined size of all (denormalised) dimension tables in bytes.
    #[must_use]
    pub fn dimension_tables_bytes(&self) -> u64 {
        self.dimensions
            .iter()
            .map(Dimension::table_size_bytes)
            .sum()
    }

    /// Iterates over all `(dimension index, level index)` attribute
    /// references of the schema, dimension by dimension, coarsest level first.
    pub fn all_attrs(&self) -> impl Iterator<Item = AttrRef> + '_ {
        self.dimensions
            .iter()
            .enumerate()
            .flat_map(|(d, dim)| (0..dim.hierarchy().depth()).map(move |l| AttrRef::new(d, l)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::Hierarchy;

    fn tiny_schema() -> StarSchema {
        let product = Dimension::new(
            "product",
            Hierarchy::from_fanouts(&[("group", 4), ("code", 5)]),
        );
        let time = Dimension::new("time", Hierarchy::from_fanouts(&[("month", 6)]));
        let fact = FactTable::new(
            "sales",
            vec![Measure::new("unitssold", 4), Measure::new("dollarsales", 8)],
            20,
            0.5,
        );
        StarSchema::new(fact, vec![product, time]).unwrap()
    }

    #[test]
    fn fact_cardinality_follows_density() {
        let s = tiny_schema();
        assert_eq!(s.max_fact_combinations(), 20 * 6);
        assert_eq!(s.fact_row_count(), 60);
        assert_eq!(s.fact_table_bytes(), 1_200);
        assert_eq!(s.dimension_count(), 2);
    }

    #[test]
    fn attr_resolution() {
        let s = tiny_schema();
        let code = s.attr("product", "code").unwrap();
        assert_eq!(code.cardinality(&s), 20);
        assert!(s.attr("product", "family").is_none());
        assert!(s.attr("store", "code").is_none());
        assert_eq!(s.dimension_index("TIME"), Some(1));
    }

    #[test]
    fn all_attrs_enumerates_every_level() {
        let s = tiny_schema();
        let attrs: Vec<_> = s.all_attrs().collect();
        assert_eq!(attrs.len(), 3);
        assert_eq!(attrs[0], AttrRef::new(0, 0));
        assert_eq!(attrs[1], AttrRef::new(0, 1));
        assert_eq!(attrs[2], AttrRef::new(1, 0));
    }

    #[test]
    fn duplicate_dimension_rejected() {
        let fact = FactTable::new("f", vec![], 20, 1.0);
        let d1 = Dimension::new("time", Hierarchy::from_fanouts(&[("month", 3)]));
        let d2 = Dimension::new("Time", Hierarchy::from_fanouts(&[("month", 3)]));
        assert_eq!(
            StarSchema::new(fact.clone(), vec![d1, d2]).unwrap_err(),
            SchemaError::DuplicateDimension("Time".to_string())
        );
        assert_eq!(
            StarSchema::new(fact, vec![]).unwrap_err(),
            SchemaError::NoDimensions
        );
    }

    #[test]
    #[should_panic(expected = "density factor")]
    fn invalid_density_rejected() {
        let _ = FactTable::new("f", vec![], 20, 0.0);
    }

    #[test]
    fn measure_accessors() {
        let m = Measure::new("cost", 8);
        assert_eq!(m.name(), "cost");
        assert_eq!(m.size_bytes(), 8);
    }
}
