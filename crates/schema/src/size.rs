//! Page-level size calculations shared by the cost model and the simulator.
//!
//! The paper works with 4 KB pages, 20-byte fact tuples (≈ 200 tuples per
//! page) and bitmaps of one bit per fact row (≈ 223 MB per bitmap for the
//! full APB-1 configuration).  [`PageSizing`] packages those derived figures
//! for any [`StarSchema`].

use serde::{Deserialize, Serialize};

use crate::star::StarSchema;

/// Default page size used throughout the paper: 4 KB.
pub const DEFAULT_PAGE_SIZE: u64 = 4 * 1024;

/// Derived page/tuple/bitmap sizing for a star schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageSizing {
    page_size_bytes: u64,
    fact_tuple_bytes: u64,
    fact_rows: u64,
}

impl PageSizing {
    /// Creates sizing information with the default 4 KB page size.
    #[must_use]
    pub fn new(schema: &StarSchema) -> Self {
        Self::with_page_size(schema, DEFAULT_PAGE_SIZE)
    }

    /// Creates sizing information with an explicit page size.
    ///
    /// # Panics
    ///
    /// Panics if the page size is smaller than one fact tuple.
    #[must_use]
    pub fn with_page_size(schema: &StarSchema, page_size_bytes: u64) -> Self {
        let fact_tuple_bytes = schema.fact().tuple_size_bytes();
        assert!(
            page_size_bytes >= fact_tuple_bytes,
            "page size must hold at least one fact tuple"
        );
        PageSizing {
            page_size_bytes,
            fact_tuple_bytes,
            fact_rows: schema.fact_row_count(),
        }
    }

    /// The page size in bytes.
    #[must_use]
    pub fn page_size_bytes(&self) -> u64 {
        self.page_size_bytes
    }

    /// The fact tuple size in bytes.
    #[must_use]
    pub fn fact_tuple_bytes(&self) -> u64 {
        self.fact_tuple_bytes
    }

    /// Total number of fact rows.
    #[must_use]
    pub fn fact_rows(&self) -> u64 {
        self.fact_rows
    }

    /// Fact tuples that fit into one page (floor).
    #[must_use]
    pub fn fact_tuples_per_page(&self) -> u64 {
        self.page_size_bytes / self.fact_tuple_bytes
    }

    /// Total number of fact-table pages.
    #[must_use]
    pub fn fact_pages(&self) -> u64 {
        self.fact_rows.div_ceil(self.fact_tuples_per_page())
    }

    /// Number of fact rows in one fragment of an `n`-fragment fragmentation,
    /// assuming uniform distribution (the paper's assumption).
    #[must_use]
    pub fn fact_rows_per_fragment(&self, fragments: u64) -> f64 {
        assert!(fragments > 0);
        self.fact_rows as f64 / fragments as f64
    }

    /// Number of pages in one fact fragment (fractional; callers round up
    /// when they need whole pages).
    #[must_use]
    pub fn fact_pages_per_fragment(&self, fragments: u64) -> f64 {
        self.fact_rows_per_fragment(fragments) * self.fact_tuple_bytes as f64
            / self.page_size_bytes as f64
    }

    /// Size of one complete (unfragmented) bitmap in bytes: one bit per row.
    #[must_use]
    pub fn bitmap_bytes(&self) -> u64 {
        self.fact_rows.div_ceil(8)
    }

    /// Size of one complete bitmap in pages.
    #[must_use]
    pub fn bitmap_pages(&self) -> u64 {
        self.bitmap_bytes().div_ceil(self.page_size_bytes)
    }

    /// Size of one bitmap *fragment* in pages (fractional) for an
    /// `n`-fragment fragmentation — the quantity of the paper's
    /// minimum-bitmap-fragment-size threshold and of Table 6.
    #[must_use]
    pub fn bitmap_fragment_pages(&self, fragments: u64) -> f64 {
        assert!(fragments > 0);
        self.fact_rows as f64 / fragments as f64 / 8.0 / self.page_size_bytes as f64
    }

    /// The ratio between fact-fragment and bitmap-fragment sizes: a fact
    /// fragment is `8 × SizeFactTuple` times larger (paper, footnote 2).
    #[must_use]
    pub fn fact_to_bitmap_ratio(&self) -> u64 {
        8 * self.fact_tuple_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apb1::apb1_schema;

    #[test]
    fn paper_figures_for_full_apb1() {
        let s = apb1_schema();
        let sizing = PageSizing::new(&s);
        assert_eq!(sizing.page_size_bytes(), 4_096);
        assert_eq!(sizing.fact_tuple_bytes(), 20);
        assert_eq!(sizing.fact_rows(), 1_866_240_000);
        // "about 200 tuples per fact table page"
        assert_eq!(sizing.fact_tuples_per_page(), 204);
        // "each bitmap occupies 223 MB"
        let mb = sizing.bitmap_bytes() as f64 / (1024.0 * 1024.0);
        assert!((mb - 222.5).abs() < 1.0, "bitmap size {mb} MiB");
        // fact fragment is 8 × 20 = 160 times larger than a bitmap fragment
        assert_eq!(sizing.fact_to_bitmap_ratio(), 160);
    }

    #[test]
    fn table_6_bitmap_fragment_sizes() {
        // Table 6: bitmap fragment sizes for the three two-dimensional
        // fragmentations of experiment 3.
        let s = apb1_schema();
        let sizing = PageSizing::new(&s);
        let month_group = sizing.bitmap_fragment_pages(11_520);
        let month_class = sizing.bitmap_fragment_pages(23_040);
        let month_code = sizing.bitmap_fragment_pages(345_600);
        assert!((month_group - 4.94).abs() < 0.05, "{month_group}");
        assert!((month_class - 2.47).abs() < 0.05, "{month_class}");
        assert!((month_code - 0.165).abs() < 0.01, "{month_code}");
    }

    #[test]
    fn per_fragment_sizes_scale_inversely() {
        let s = apb1_schema();
        let sizing = PageSizing::new(&s);
        let one = sizing.fact_pages_per_fragment(1);
        let thousand = sizing.fact_pages_per_fragment(1_000);
        assert!((one / thousand - 1_000.0).abs() < 1e-6);
        assert_eq!(sizing.fact_rows_per_fragment(1), 1_866_240_000.0);
    }

    #[test]
    fn fact_pages_rounding() {
        let s = apb1_schema();
        let sizing = PageSizing::new(&s);
        let expected = 1_866_240_000u64.div_ceil(204);
        assert_eq!(sizing.fact_pages(), expected);
        assert_eq!(sizing.bitmap_pages(), sizing.bitmap_bytes().div_ceil(4_096));
    }

    #[test]
    fn custom_page_size() {
        let s = apb1_schema();
        let sizing = PageSizing::with_page_size(&s, 8_192);
        assert_eq!(sizing.fact_tuples_per_page(), 409);
    }

    #[test]
    #[should_panic(expected = "at least one fact tuple")]
    fn page_smaller_than_tuple_rejected() {
        let s = apb1_schema();
        let _ = PageSizing::with_page_size(&s, 8);
    }
}
