//! Dimension hierarchies.
//!
//! A hierarchy is an ordered list of levels from the *coarsest* (index 0,
//! "highest" in the paper's terminology, e.g. `Division` or `Year`) to the
//! *finest* (last index, "lowest", e.g. `Code` or `Month`).  Each level stores
//! its fan-out: the number of child elements per parent element.  The total
//! cardinality of a level is the product of the fan-outs from the top of the
//! hierarchy down to that level — exactly the structure of Table 1 in the
//! paper.

use serde::{Deserialize, Serialize};

/// One level of a dimension hierarchy.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyLevel {
    name: String,
    /// Number of elements of this level per element of the parent level.
    /// For the top level this is the total number of elements.
    fanout: u64,
}

impl HierarchyLevel {
    /// Creates a level with the given name and fan-out.
    ///
    /// # Panics
    ///
    /// Panics if `fanout` is zero — every parent must have at least one child.
    #[must_use]
    pub fn new(name: impl Into<String>, fanout: u64) -> Self {
        assert!(fanout > 0, "hierarchy level fan-out must be positive");
        HierarchyLevel {
            name: name.into(),
            fanout,
        }
    }

    /// The level's name (e.g. `"group"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Elements of this level per parent element.
    #[must_use]
    pub fn fanout(&self) -> u64 {
        self.fanout
    }
}

/// A dimension hierarchy, ordered from coarsest (index 0) to finest.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hierarchy {
    levels: Vec<HierarchyLevel>,
}

impl Hierarchy {
    /// Builds a hierarchy from levels ordered coarsest-first.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty.
    #[must_use]
    pub fn new(levels: Vec<HierarchyLevel>) -> Self {
        assert!(!levels.is_empty(), "a hierarchy needs at least one level");
        Hierarchy { levels }
    }

    /// Convenience constructor from `(name, fanout)` pairs, coarsest-first.
    #[must_use]
    pub fn from_fanouts(levels: &[(&str, u64)]) -> Self {
        Hierarchy::new(
            levels
                .iter()
                .map(|(n, f)| HierarchyLevel::new(*n, *f))
                .collect(),
        )
    }

    /// Number of levels.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// The levels, coarsest-first.
    #[must_use]
    pub fn levels(&self) -> &[HierarchyLevel] {
        &self.levels
    }

    /// The level at `index` (0 = coarsest).
    #[must_use]
    pub fn level(&self, index: usize) -> Option<&HierarchyLevel> {
        self.levels.get(index)
    }

    /// Index of the level with the given (case-insensitive) name.
    #[must_use]
    pub fn level_index(&self, name: &str) -> Option<usize> {
        self.levels
            .iter()
            .position(|l| l.name.eq_ignore_ascii_case(name))
    }

    /// Index of the finest (lowest) level.
    #[must_use]
    pub fn finest_level(&self) -> usize {
        self.levels.len() - 1
    }

    /// Total number of elements at level `index`: the product of fan-outs of
    /// all levels from the top down to and including `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn cardinality(&self, index: usize) -> u64 {
        assert!(index < self.levels.len(), "level index out of range");
        self.levels[..=index]
            .iter()
            .map(HierarchyLevel::fanout)
            .product()
    }

    /// Cardinality of the finest level (e.g. 14 400 product codes).
    #[must_use]
    pub fn leaf_cardinality(&self) -> u64 {
        self.cardinality(self.finest_level())
    }

    /// Number of elements of level `fine` contained in one element of level
    /// `coarse` (the product of fan-outs strictly between them).
    ///
    /// Returns 1 when `fine == coarse`.
    ///
    /// # Panics
    ///
    /// Panics if `coarse` is not at or above `fine`, or either is out of range.
    #[must_use]
    pub fn elements_per_ancestor(&self, fine: usize, coarse: usize) -> u64 {
        assert!(fine < self.levels.len() && coarse < self.levels.len());
        assert!(
            coarse <= fine,
            "coarse level ({coarse}) must be at or above fine level ({fine})"
        );
        self.levels[coarse + 1..=fine]
            .iter()
            .map(HierarchyLevel::fanout)
            .product()
    }

    /// Maps a leaf element identifier to its ancestor identifier at `level`.
    ///
    /// Leaf elements are numbered `0..leaf_cardinality()`, grouped by their
    /// ancestors in hierarchy order; ancestors are numbered analogously.
    #[must_use]
    pub fn ancestor_of_leaf(&self, leaf: u64, level: usize) -> u64 {
        assert!(leaf < self.leaf_cardinality(), "leaf id out of range");
        let per = self.elements_per_ancestor(self.finest_level(), level);
        leaf / per
    }

    /// The (inclusive) range of leaf identifiers covered by element `value`
    /// at `level`.
    #[must_use]
    pub fn leaf_range_of(&self, level: usize, value: u64) -> std::ops::Range<u64> {
        assert!(value < self.cardinality(level), "value out of range");
        let per = self.elements_per_ancestor(self.finest_level(), level);
        (value * per)..((value + 1) * per)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PRODUCT hierarchy of Table 1 in the paper.
    fn product_hierarchy() -> Hierarchy {
        Hierarchy::from_fanouts(&[
            ("division", 8),
            ("line", 3),
            ("family", 5),
            ("group", 4),
            ("class", 2),
            ("code", 15),
        ])
    }

    #[test]
    fn cardinalities_match_table_1() {
        let h = product_hierarchy();
        assert_eq!(h.depth(), 6);
        assert_eq!(h.cardinality(0), 8); // divisions
        assert_eq!(h.cardinality(1), 24); // lines
        assert_eq!(h.cardinality(2), 120); // families
        assert_eq!(h.cardinality(3), 480); // groups
        assert_eq!(h.cardinality(4), 960); // classes
        assert_eq!(h.cardinality(5), 14_400); // codes
        assert_eq!(h.leaf_cardinality(), 14_400);
    }

    #[test]
    fn level_lookup_by_name_is_case_insensitive() {
        let h = product_hierarchy();
        assert_eq!(h.level_index("group"), Some(3));
        assert_eq!(h.level_index("GROUP"), Some(3));
        assert_eq!(h.level_index("bogus"), None);
        assert_eq!(h.level(3).unwrap().name(), "group");
        assert_eq!(h.level(99), None);
    }

    #[test]
    fn elements_per_ancestor() {
        let h = product_hierarchy();
        // 30 codes per group (15 codes/class * 2 classes/group).
        assert_eq!(h.elements_per_ancestor(5, 3), 30);
        // 1800 codes per division.
        assert_eq!(h.elements_per_ancestor(5, 0), 1_800);
        // Same level => 1.
        assert_eq!(h.elements_per_ancestor(3, 3), 1);
    }

    #[test]
    fn ancestor_of_leaf_and_ranges_are_consistent() {
        let h = product_hierarchy();
        // Code 0..29 belong to group 0, code 30..59 to group 1, etc.
        assert_eq!(h.ancestor_of_leaf(0, 3), 0);
        assert_eq!(h.ancestor_of_leaf(29, 3), 0);
        assert_eq!(h.ancestor_of_leaf(30, 3), 1);
        assert_eq!(h.ancestor_of_leaf(14_399, 3), 479);
        assert_eq!(h.leaf_range_of(3, 1), 30..60);
        assert_eq!(h.leaf_range_of(0, 7), 12_600..14_400);
    }

    #[test]
    fn single_level_hierarchy() {
        let h = Hierarchy::from_fanouts(&[("channel", 15)]);
        assert_eq!(h.depth(), 1);
        assert_eq!(h.leaf_cardinality(), 15);
        assert_eq!(h.elements_per_ancestor(0, 0), 1);
        assert_eq!(h.ancestor_of_leaf(14, 0), 14);
    }

    #[test]
    #[should_panic(expected = "at least one level")]
    fn empty_hierarchy_rejected() {
        let _ = Hierarchy::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "fan-out must be positive")]
    fn zero_fanout_rejected() {
        let _ = HierarchyLevel::new("x", 0);
    }

    #[test]
    #[should_panic(expected = "must be at or above")]
    fn inverted_ancestor_query_rejected() {
        let h = product_hierarchy();
        let _ = h.elements_per_ancestor(0, 5);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_hierarchy() -> impl Strategy<Value = Hierarchy> {
        proptest::collection::vec(1u64..20, 1..6).prop_map(|fanouts| {
            Hierarchy::new(
                fanouts
                    .iter()
                    .enumerate()
                    .map(|(i, &f)| HierarchyLevel::new(format!("l{i}"), f))
                    .collect(),
            )
        })
    }

    proptest! {
        /// Every leaf maps to exactly one ancestor, and that ancestor's leaf
        /// range contains the leaf.
        #[test]
        fn prop_ancestor_range_roundtrip(h in arb_hierarchy(), leaf_seed in 0u64..10_000) {
            let leaf = leaf_seed % h.leaf_cardinality();
            for level in 0..h.depth() {
                let anc = h.ancestor_of_leaf(leaf, level);
                let range = h.leaf_range_of(level, anc);
                prop_assert!(range.contains(&leaf));
            }
        }

        /// Cardinalities are monotonically non-decreasing towards finer levels
        /// and consistent with elements_per_ancestor.
        #[test]
        fn prop_cardinality_consistency(h in arb_hierarchy()) {
            for level in 0..h.depth() {
                prop_assert_eq!(
                    h.cardinality(level) * h.elements_per_ancestor(h.finest_level(), level),
                    h.leaf_cardinality()
                );
                if level > 0 {
                    prop_assert!(h.cardinality(level) >= h.cardinality(level - 1));
                }
            }
        }
    }
}
