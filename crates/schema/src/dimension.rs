//! Dimension tables.

use serde::{Deserialize, Serialize};

use crate::hierarchy::Hierarchy;

/// A (denormalised) dimension table of a star schema.
///
/// The paper treats dimension tables as metadata only: they are tiny compared
/// to the fact table ("our four dimension tables only occupy 1 MB"), so the
/// interesting content is the hierarchy and its cardinalities plus a rough
/// per-row size used for completeness in storage accounting.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dimension {
    name: String,
    hierarchy: Hierarchy,
    row_size_bytes: u64,
}

impl Dimension {
    /// Default denormalised dimension-row size used when none is specified.
    pub const DEFAULT_ROW_SIZE: u64 = 64;

    /// Creates a dimension with the default row size.
    #[must_use]
    pub fn new(name: impl Into<String>, hierarchy: Hierarchy) -> Self {
        Self::with_row_size(name, hierarchy, Self::DEFAULT_ROW_SIZE)
    }

    /// Creates a dimension with an explicit denormalised row size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `row_size_bytes` is zero.
    #[must_use]
    pub fn with_row_size(
        name: impl Into<String>,
        hierarchy: Hierarchy,
        row_size_bytes: u64,
    ) -> Self {
        assert!(row_size_bytes > 0, "dimension row size must be positive");
        Dimension {
            name: name.into(),
            hierarchy,
            row_size_bytes,
        }
    }

    /// The dimension's name (e.g. `"product"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dimension hierarchy, coarsest level first.
    #[must_use]
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Cardinality of the finest hierarchy level — the number of rows in the
    /// dimension table and the domain of the fact table's foreign key.
    #[must_use]
    pub fn cardinality(&self) -> u64 {
        self.hierarchy.leaf_cardinality()
    }

    /// Cardinality of the hierarchy level at `level_index`.
    #[must_use]
    pub fn level_cardinality(&self, level_index: usize) -> u64 {
        self.hierarchy.cardinality(level_index)
    }

    /// Approximate size of the denormalised dimension table in bytes.
    #[must_use]
    pub fn table_size_bytes(&self) -> u64 {
        self.cardinality() * self.row_size_bytes
    }

    /// Looks up a hierarchy level index by name.
    #[must_use]
    pub fn level_index(&self, level_name: &str) -> Option<usize> {
        self.hierarchy.level_index(level_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::Hierarchy;

    fn time_dim() -> Dimension {
        Dimension::new(
            "time",
            Hierarchy::from_fanouts(&[("year", 2), ("quarter", 4), ("month", 3)]),
        )
    }

    #[test]
    fn basic_accessors() {
        let d = time_dim();
        assert_eq!(d.name(), "time");
        assert_eq!(d.cardinality(), 24);
        assert_eq!(d.level_cardinality(0), 2);
        assert_eq!(d.level_cardinality(1), 8);
        assert_eq!(d.level_cardinality(2), 24);
        assert_eq!(d.level_index("quarter"), Some(1));
        assert_eq!(d.level_index("week"), None);
    }

    #[test]
    fn table_size_uses_row_size() {
        let d = time_dim();
        assert_eq!(d.table_size_bytes(), 24 * Dimension::DEFAULT_ROW_SIZE);
        let d2 = Dimension::with_row_size(
            "time",
            Hierarchy::from_fanouts(&[("year", 2), ("quarter", 4), ("month", 3)]),
            100,
        );
        assert_eq!(d2.table_size_bytes(), 2_400);
    }

    #[test]
    #[should_panic(expected = "row size must be positive")]
    fn zero_row_size_rejected() {
        let _ = Dimension::with_row_size("x", Hierarchy::from_fanouts(&[("only", 3)]), 0);
    }
}
