//! The APB-1 star schema used in the paper's evaluation (Figure 1).
//!
//! APB-1 (OLAP Council Analytical Processing Benchmark, Release II) models a
//! sales-analysis environment with one fact table (`SALES`) and four dimension
//! tables.  The paper fixes a configuration of **15 distribution channels** and
//! a fact-table **density factor of 25 %**, which yields the cardinalities of
//! Figure 1:
//!
//! | Dimension | Hierarchy (coarse → fine) | Leaf cardinality |
//! |---|---|---|
//! | PRODUCT  | Division (8) → Line (×3) → Family (×5) → Group (×4) → Class (×2) → Code (×15) | 14 400 codes |
//! | CUSTOMER | Retailer (144) → Store (×10) | 1 440 stores |
//! | TIME     | Year (2) → Quarter (×4) → Month (×3) | 24 months |
//! | CHANNEL  | Channel (15) | 15 channels |
//!
//! giving `0.25 × 14 400 × 1 440 × 24 × 15 = 1 866 240 000` fact rows, each
//! 20 bytes wide (three measures plus four foreign keys).

use crate::dimension::Dimension;
use crate::hierarchy::Hierarchy;
use crate::star::{FactTable, Measure, StarSchema};

/// Configuration knobs of the APB-1 schema generator.
///
/// The defaults reproduce the paper's configuration exactly; the generator is
/// deliberately parameterised ("a flexible parameterization for the dimension
/// hierarchies and cardinalities as well as the fact table density", §5) so
/// that scaled-down schemas can be materialised in examples and tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Apb1Config {
    /// Number of distribution channels (paper: 15).
    pub channels: u64,
    /// Number of months in the time frame (paper / APB-1: 24).
    pub months: u64,
    /// Number of customer stores (paper: 1 440).
    pub stores: u64,
    /// Number of product codes (paper: 14 400).
    pub product_codes: u64,
    /// Density factor applied to the dimension cross product (paper: 0.25).
    pub density: f64,
    /// Fact tuple size in bytes (paper: 20 B).
    pub fact_tuple_bytes: u64,
}

impl Default for Apb1Config {
    fn default() -> Self {
        Apb1Config {
            channels: 15,
            months: 24,
            stores: 1_440,
            product_codes: 14_400,
            density: 0.25,
            fact_tuple_bytes: 20,
        }
    }
}

impl Apb1Config {
    /// A drastically scaled-down configuration whose fact table can be
    /// materialised in memory — used by examples and integration tests that
    /// exercise the real bitmap-index code paths.
    #[must_use]
    pub fn scaled_down() -> Self {
        Apb1Config {
            channels: 3,
            months: 12,
            stores: 40,
            product_codes: 120,
            density: 0.05,
            fact_tuple_bytes: 20,
        }
    }

    /// Builds the star schema for this configuration.
    ///
    /// The intra-dimension hierarchy *ratios* follow APB-1 / Table 1 of the
    /// paper (8 divisions, 3 lines per division, 5 families per line, 4 groups
    /// per family, 2 classes per group, codes per class as needed; 10 stores
    /// per retailer; 3 months per quarter, 4 quarters per year).  Scaled
    /// configurations keep the ratios wherever the requested leaf cardinality
    /// allows and otherwise collapse the upper levels proportionally.
    ///
    /// # Panics
    ///
    /// Panics if any cardinality is zero or the requested leaf cardinalities
    /// are not divisible by the fixed hierarchy ratios.
    #[must_use]
    pub fn build(&self) -> StarSchema {
        assert!(self.channels > 0 && self.months > 0 && self.stores > 0);
        assert!(self.product_codes > 0);

        // PRODUCT: division → line → family → group → class → code.
        // Fixed upper ratios 8 × 3 × 5 × 4 × 2 = 960 classes; codes per class
        // = product_codes / 960 for the full-size schema.  For scaled-down
        // schemas we shrink the number of divisions first.
        let product = build_product_hierarchy(self.product_codes);

        // CUSTOMER: retailer → store with 10 stores per retailer.
        let stores_per_retailer = if self.stores.is_multiple_of(10) {
            10
        } else {
            self.stores
        };
        let retailers = self.stores / stores_per_retailer;
        let customer = Dimension::new(
            "customer",
            Hierarchy::from_fanouts(&[("retailer", retailers), ("store", stores_per_retailer)]),
        );

        // TIME: year → quarter → month with 3 months/quarter, 4 quarters/year.
        assert!(
            self.months.is_multiple_of(3),
            "months must be divisible by 3 (quarters of 3 months)"
        );
        let quarters = self.months / 3;
        let (years, quarters_per_year) = if quarters.is_multiple_of(4) {
            (quarters / 4, 4)
        } else {
            (1, quarters)
        };
        let time = Dimension::new(
            "time",
            Hierarchy::from_fanouts(&[
                ("year", years),
                ("quarter", quarters_per_year),
                ("month", 3),
            ]),
        );

        // CHANNEL: a single-level hierarchy.
        let channel = Dimension::new(
            "channel",
            Hierarchy::from_fanouts(&[("channel", self.channels)]),
        );

        let fact = FactTable::new(
            "sales",
            vec![
                Measure::new("unitssold", 4),
                Measure::new("dollarsales", 8),
                Measure::new("cost", 8),
            ],
            self.fact_tuple_bytes,
            self.density,
        );

        StarSchema::new(fact, vec![product, customer, channel, time])
            .expect("APB-1 dimension names are unique")
    }
}

/// Builds the PRODUCT hierarchy for a given number of leaf codes, keeping the
/// APB-1 ratios (3 lines/division, 5 families/line, 4 groups/family,
/// 2 classes/group) and adapting the number of divisions and codes/class.
fn build_product_hierarchy(codes: u64) -> Dimension {
    // Full-size path: 8 divisions and codes divisible by 960 (= 8·3·5·4·2
    // classes), giving `codes / 960` codes per class — 15 for APB-1.
    if codes.is_multiple_of(960) {
        let codes_per_class = codes / 960;
        return Dimension::new(
            "product",
            Hierarchy::from_fanouts(&[
                ("division", 8),
                ("line", 3),
                ("family", 5),
                ("group", 4),
                ("class", 2),
                ("code", codes_per_class),
            ]),
        );
    }
    // Scaled-down path: keep a 6-level hierarchy with small fixed ratios
    // (lines ×2, families ×2, groups ×2, classes ×... ) so long as it divides.
    let inner = 2 * 2 * 2; // line × family × group fan-outs
    assert!(
        codes.is_multiple_of(inner),
        "scaled product code count {codes} must be divisible by {inner}"
    );
    let remaining = codes / inner;
    // Split the remaining factor into divisions × classes×codes as evenly as
    // divisibility allows; prefer at least 2 divisions when possible.
    let divisions = if remaining.is_multiple_of(3) {
        3
    } else if remaining.is_multiple_of(2) {
        2
    } else {
        1
    };
    let leaf = remaining / divisions;
    Dimension::new(
        "product",
        Hierarchy::from_fanouts(&[
            ("division", divisions),
            ("line", 2),
            ("family", 2),
            ("group", 2),
            ("class", 1),
            ("code", leaf),
        ]),
    )
}

/// Builds the paper's full-size APB-1 schema (15 channels, density 25 %).
#[must_use]
pub fn apb1_schema() -> StarSchema {
    Apb1Config::default().build()
}

/// Builds the scaled-down APB-1 schema used for materialised examples/tests.
#[must_use]
pub fn apb1_scaled_down() -> StarSchema {
    Apb1Config::scaled_down().build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_schema_matches_figure_1() {
        let s = apb1_schema();
        assert_eq!(s.dimension_count(), 4);
        assert_eq!(s.fact_row_count(), 1_866_240_000);
        assert_eq!(s.fact().tuple_size_bytes(), 20);

        let product = &s.dimensions()[s.dimension_index("product").unwrap()];
        assert_eq!(product.cardinality(), 14_400);
        assert_eq!(product.level_cardinality(0), 8); // divisions
        assert_eq!(product.level_cardinality(1), 24); // lines
        assert_eq!(product.level_cardinality(2), 120); // families
        assert_eq!(product.level_cardinality(3), 480); // groups
        assert_eq!(product.level_cardinality(4), 960); // classes
        assert_eq!(product.level_cardinality(5), 14_400); // codes

        let customer = &s.dimensions()[s.dimension_index("customer").unwrap()];
        assert_eq!(customer.cardinality(), 1_440);
        assert_eq!(customer.level_cardinality(0), 144); // retailers

        let time = &s.dimensions()[s.dimension_index("time").unwrap()];
        assert_eq!(time.cardinality(), 24);
        assert_eq!(time.level_cardinality(0), 2); // years
        assert_eq!(time.level_cardinality(1), 8); // quarters

        let channel = &s.dimensions()[s.dimension_index("channel").unwrap()];
        assert_eq!(channel.cardinality(), 15);
    }

    #[test]
    fn fact_table_size_is_about_37_gb() {
        let s = apb1_schema();
        let gb = s.fact_table_bytes() as f64 / 1e9;
        // 1.866e9 rows × 20 B ≈ 37.3 GB
        assert!((gb - 37.3).abs() < 0.2, "fact table size {gb} GB");
    }

    #[test]
    fn dimension_tables_are_tiny_compared_to_fact() {
        let s = apb1_schema();
        // Paper: "our four dimension tables only occupy 1 MB".  With our
        // default 64-byte denormalised rows they stay ~1 MB.
        let mb = s.dimension_tables_bytes() as f64 / 1e6;
        assert!(mb < 2.0, "dimension tables {mb} MB");
        assert!(s.dimension_tables_bytes() * 1_000 < s.fact_table_bytes());
    }

    #[test]
    fn scaled_down_schema_is_materialisable() {
        let s = apb1_scaled_down();
        assert!(s.fact_row_count() > 0);
        assert!(s.fact_row_count() < 2_000_000);
        assert_eq!(s.dimension_count(), 4);
        // Same dimension names as the full schema, so queries are portable.
        for name in ["product", "customer", "channel", "time"] {
            assert!(s.dimension_index(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn custom_channel_count_scales_schema() {
        let cfg = Apb1Config {
            channels: 10,
            ..Apb1Config::default()
        };
        let s = cfg.build();
        let channel = &s.dimensions()[s.dimension_index("channel").unwrap()];
        assert_eq!(channel.cardinality(), 10);
        assert_eq!(
            s.fact_row_count(),
            (0.25f64 * (14_400u64 * 1_440 * 24 * 10) as f64).round() as u64
        );
    }

    #[test]
    fn attr_lookup_shorthand() {
        let s = apb1_schema();
        for (dim, level, card) in [
            ("product", "code", 14_400),
            ("product", "group", 480),
            ("customer", "store", 1_440),
            ("customer", "retailer", 144),
            ("time", "month", 24),
            ("time", "quarter", 8),
            ("time", "year", 2),
            ("channel", "channel", 15),
        ] {
            let a = s.attr(dim, level).unwrap();
            assert_eq!(a.cardinality(&s), card, "{dim}::{level}");
        }
    }
}
