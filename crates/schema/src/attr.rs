//! Attribute references in `dimension::level` notation.
//!
//! The paper denotes fragmentation attributes as
//! `F = { Dimension::Hierarchy-level, ... }`, e.g.
//! `F_MonthGroup = {time::month, product::group}`.  [`LevelRef`] is the
//! textual form, [`AttrRef`] the resolved `(dimension index, level index)`
//! pair used everywhere else in the workspace.

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::star::StarSchema;

/// A resolved reference to a hierarchy level of a dimension in a particular
/// [`StarSchema`]: `(dimension index, level index)` with level 0 being the
/// coarsest ("highest") level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttrRef {
    /// Index of the dimension within the schema.
    pub dimension: usize,
    /// Index of the hierarchy level within the dimension (0 = coarsest).
    pub level: usize,
}

impl AttrRef {
    /// Creates an attribute reference.
    #[must_use]
    pub fn new(dimension: usize, level: usize) -> Self {
        AttrRef { dimension, level }
    }

    /// True if `self` refers to a level at or above (coarser than or equal to)
    /// `other` in the same dimension.  Panics if the dimensions differ, since
    /// levels of different dimensions are not comparable.
    #[must_use]
    pub fn is_coarser_or_equal(&self, other: &AttrRef) -> bool {
        assert_eq!(
            self.dimension, other.dimension,
            "cannot compare hierarchy levels across dimensions"
        );
        self.level <= other.level
    }

    /// True if `self` refers to a strictly finer (lower) level than `other`
    /// in the same dimension.
    #[must_use]
    pub fn is_finer_than(&self, other: &AttrRef) -> bool {
        assert_eq!(
            self.dimension, other.dimension,
            "cannot compare hierarchy levels across dimensions"
        );
        self.level > other.level
    }

    /// Renders the reference using the schema's names, e.g. `product::group`.
    #[must_use]
    pub fn display(&self, schema: &StarSchema) -> String {
        let dim = &schema.dimensions()[self.dimension];
        let level = dim
            .hierarchy()
            .level(self.level)
            .expect("level index valid for schema");
        format!("{}::{}", dim.name(), level.name())
    }

    /// Cardinality of the referenced attribute in the given schema.
    #[must_use]
    pub fn cardinality(&self, schema: &StarSchema) -> u64 {
        schema.dimensions()[self.dimension].level_cardinality(self.level)
    }
}

/// A textual, unresolved attribute reference (`"product::group"`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LevelRef {
    /// Dimension name, lower-cased.
    pub dimension: String,
    /// Level name, lower-cased.
    pub level: String,
}

impl LevelRef {
    /// Creates a textual reference (names are normalised to lower case).
    #[must_use]
    pub fn new(dimension: impl Into<String>, level: impl Into<String>) -> Self {
        LevelRef {
            dimension: dimension.into().to_ascii_lowercase(),
            level: level.into().to_ascii_lowercase(),
        }
    }

    /// Resolves this reference against a schema.
    pub fn resolve(&self, schema: &StarSchema) -> Result<AttrRef, ParseAttrError> {
        let dim_idx = schema
            .dimension_index(&self.dimension)
            .ok_or_else(|| ParseAttrError::UnknownDimension(self.dimension.clone()))?;
        let level_idx = schema.dimensions()[dim_idx]
            .level_index(&self.level)
            .ok_or_else(|| ParseAttrError::UnknownLevel {
                dimension: self.dimension.clone(),
                level: self.level.clone(),
            })?;
        Ok(AttrRef::new(dim_idx, level_idx))
    }
}

impl fmt::Display for LevelRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::{}", self.dimension, self.level)
    }
}

/// Errors that can occur when parsing or resolving attribute references.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseAttrError {
    /// The string did not have the form `dimension::level`.
    Malformed(String),
    /// No dimension with this name exists in the schema.
    UnknownDimension(String),
    /// The dimension exists but has no level with this name.
    UnknownLevel {
        /// Dimension that was found.
        dimension: String,
        /// Level that was not found.
        level: String,
    },
}

impl fmt::Display for ParseAttrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseAttrError::Malformed(s) => {
                write!(
                    f,
                    "malformed attribute reference {s:?} (expected dimension::level)"
                )
            }
            ParseAttrError::UnknownDimension(d) => write!(f, "unknown dimension {d:?}"),
            ParseAttrError::UnknownLevel { dimension, level } => {
                write!(f, "dimension {dimension:?} has no level {level:?}")
            }
        }
    }
}

impl std::error::Error for ParseAttrError {}

impl FromStr for LevelRef {
    type Err = ParseAttrError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (dim, level) = s
            .split_once("::")
            .ok_or_else(|| ParseAttrError::Malformed(s.to_string()))?;
        let dim = dim.trim();
        let level = level.trim();
        if dim.is_empty() || level.is_empty() {
            return Err(ParseAttrError::Malformed(s.to_string()));
        }
        Ok(LevelRef::new(dim, level))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apb1;

    #[test]
    fn parse_level_ref() {
        let r: LevelRef = "product::group".parse().unwrap();
        assert_eq!(r.dimension, "product");
        assert_eq!(r.level, "group");
        assert_eq!(r.to_string(), "product::group");
        let r: LevelRef = " Time :: Month ".parse().unwrap();
        assert_eq!(r, LevelRef::new("time", "month"));
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            "productgroup".parse::<LevelRef>(),
            Err(ParseAttrError::Malformed(_))
        ));
        assert!(matches!(
            "::group".parse::<LevelRef>(),
            Err(ParseAttrError::Malformed(_))
        ));
        assert!(matches!(
            "product::".parse::<LevelRef>(),
            Err(ParseAttrError::Malformed(_))
        ));
    }

    #[test]
    fn resolve_against_apb1() {
        let schema = apb1::apb1_schema();
        let r: LevelRef = "product::group".parse().unwrap();
        let a = r.resolve(&schema).unwrap();
        assert_eq!(a.cardinality(&schema), 480);
        assert_eq!(a.display(&schema), "product::group");

        let err = LevelRef::new("vendor", "code")
            .resolve(&schema)
            .unwrap_err();
        assert!(matches!(err, ParseAttrError::UnknownDimension(_)));
        let err = LevelRef::new("product", "week")
            .resolve(&schema)
            .unwrap_err();
        assert!(matches!(err, ParseAttrError::UnknownLevel { .. }));
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn level_comparisons() {
        let schema = apb1::apb1_schema();
        let group = schema.attr("product", "group").unwrap();
        let code = schema.attr("product", "code").unwrap();
        let division = schema.attr("product", "division").unwrap();
        assert!(group.is_coarser_or_equal(&code));
        assert!(group.is_coarser_or_equal(&group));
        assert!(!code.is_coarser_or_equal(&group));
        assert!(code.is_finer_than(&group));
        assert!(!division.is_finer_than(&group));
    }

    #[test]
    #[should_panic(expected = "across dimensions")]
    fn cross_dimension_comparison_panics() {
        let schema = apb1::apb1_schema();
        let group = schema.attr("product", "group").unwrap();
        let month = schema.attr("time", "month").unwrap();
        let _ = group.is_coarser_or_equal(&month);
    }
}
