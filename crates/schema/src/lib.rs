//! `schema` — star-schema metadata for relational data warehouses.
//!
//! The paper's allocation methods operate on the *metadata* of a star schema:
//! dimension hierarchies, attribute cardinalities, the density of the fact
//! table, tuple and page sizes.  This crate models exactly that:
//!
//! * [`Hierarchy`] / [`HierarchyLevel`] — a dimension hierarchy ordered from
//!   the coarsest level (e.g. `Year`) down to the finest (e.g. `Month`), with
//!   per-level fan-outs,
//! * [`Dimension`] — a named dimension table with its hierarchy,
//! * [`StarSchema`] / [`FactTable`] — the complete schema with measures,
//!   tuple size and density factor,
//! * [`AttrRef`] / [`LevelRef`] — references to `dimension::level` attributes
//!   in the notation used throughout the paper (e.g. `product::group`),
//! * [`apb1`] — a ready-made builder for the APB-1 benchmark schema the
//!   paper's evaluation is based on (15 channels, density 25 %,
//!   1 866 240 000 fact rows),
//! * [`size`] — page/tuple/bitmap sizing helpers shared by the cost model and
//!   the simulator.
//!
//! # Quick start
//!
//! ```
//! // The paper's APB-1 configuration: 1.87 billion fact rows over four
//! // dimensions.
//! let schema = schema::apb1::apb1_schema();
//! assert_eq!(schema.fact_row_count(), 1_866_240_000);
//! assert_eq!(schema.dimension_count(), 4);
//!
//! // `dimension::level` attribute references, as written in the paper.
//! let group = schema.attr("product", "group").unwrap();
//! assert_eq!(group.cardinality(&schema), 480);
//! ```

#![forbid(unsafe_code)]

pub mod apb1;
pub mod attr;
pub mod dimension;
pub mod hierarchy;
pub mod size;
pub mod star;

pub use attr::{AttrRef, LevelRef, ParseAttrError};
pub use dimension::Dimension;
pub use hierarchy::{Hierarchy, HierarchyLevel};
pub use size::{PageSizing, DEFAULT_PAGE_SIZE};
pub use star::{FactTable, Measure, SchemaError, StarSchema};
