//! The warehouse session API: one typed entry point over both storage
//! backings.
//!
//! [`Warehouse`] owns a star-join engine over either an in-memory
//! [`FragmentStore`] or a persistent `FGMT` file ([`Warehouse::open`]);
//! [`Warehouse::session`] returns a [`SessionBuilder`] that gathers every
//! execution knob — worker count, physical placement, simulated I/O,
//! deterministic tracing, admission policy — and [`SessionBuilder::build`]
//! freezes them into a [`Session`] whose [`Session::execute`] and
//! [`Session::stream`] run queries with bit-identical results across
//! backings, worker counts and admission policies.
//!
//! ```
//! use warehouse::prelude::*;
//!
//! let schema = schema::apb1::apb1_scaled_down();
//! let fragmentation =
//!     Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
//! let warehouse = Warehouse::in_memory(FragmentStore::build(&schema, &fragmentation, 2024));
//! let session = warehouse.session().workers(2).build();
//!
//! let query = QueryType::OneMonthOneGroup.to_star_query(&schema);
//! let bound = BoundQuery::new(&schema, query, vec![3, 1]);
//! let parallel = session.execute(&bound);
//! let serial = warehouse.session().workers(1).build().execute(&bound);
//! assert_eq!(parallel.hits, serial.hits);
//! assert_eq!(parallel.measure_sums, serial.measure_sums); // bit-identical
//! ```

use std::fmt;
use std::path::{Path, PathBuf};

use allocation::{NodePlacement, PhysicalAllocation};
use bitmap::ReprDecodeError;
use exec::{
    write_store, ExecConfig, FileStore, FileStoreOptions, FragmentStore, IoConfig, QueryPlan,
    QueryResult, ScanSource, SchedulerConfig, StarJoinEngine, StorageError, StreamOutcome,
};
use obs::ObsConfig;
use workload::BoundQuery;

/// Everything that can go wrong opening, reading or configuring a
/// warehouse.
///
/// Structural damage surfaces as a typed [`Error::Corrupt`] before any
/// query runs:
///
/// ```
/// use warehouse::{Error, Warehouse};
///
/// let path = std::env::temp_dir().join(format!("doc_corrupt_{}.fgmt", std::process::id()));
/// std::fs::write(&path, b"not an FGMT fragment file").unwrap();
/// match Warehouse::open(&path) {
///     Err(Error::Corrupt(what)) => assert!(!what.is_empty()),
///     other => panic!("expected a corruption error, got {other:?}"),
/// }
/// # std::fs::remove_file(&path).unwrap();
/// ```
#[derive(Debug)]
pub enum Error {
    /// The underlying file operation failed.
    Io(std::io::Error),
    /// A stored bitmap's `BMRP` encoding did not decode.
    Decode(ReprDecodeError),
    /// The file's structure is invalid: bad magic, unsupported version,
    /// checksum mismatch, truncation, or an out-of-bounds directory.
    Corrupt(String),
    /// The request itself is invalid (e.g. a zero-page cache).
    Config(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "I/O error: {e}"),
            Error::Decode(e) => write!(f, "bitmap decode error: {e}"),
            Error::Corrupt(what) => write!(f, "corrupt fragment file: {what}"),
            Error::Config(what) => write!(f, "invalid configuration: {what}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            Error::Decode(e) => Some(e),
            Error::Corrupt(_) | Error::Config(_) => None,
        }
    }
}

impl From<StorageError> for Error {
    fn from(error: StorageError) -> Self {
        match error {
            StorageError::Io(e) => Error::Io(e),
            StorageError::Decode(e) => Error::Decode(e),
            StorageError::Corrupt(what) => Error::Corrupt(what),
            StorageError::Config(what) => Error::Config(what),
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(error: std::io::Error) -> Self {
        Error::Io(error)
    }
}

/// How a [`Session`]'s multi-query stream admits work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionPolicy {
    /// One query in flight at a time (single-user regime): the stream
    /// degenerates to back-to-back executions on the shared pool.
    Exclusive,
    /// Up to `max_in_flight` queries decomposed into tasks concurrently —
    /// the paper's multi-user MPL knob.
    Concurrent {
        /// The multi-programming level; `0` is clamped to 1.
        max_in_flight: usize,
    },
}

impl AdmissionPolicy {
    /// The effective multi-programming level (at least 1).
    #[must_use]
    pub fn mpl(&self) -> usize {
        match self {
            AdmissionPolicy::Exclusive => 1,
            AdmissionPolicy::Concurrent { max_in_flight } => (*max_in_flight).max(1),
        }
    }
}

/// A queryable warehouse: a star-join engine over an in-memory or
/// persistent fragment store.
#[derive(Debug)]
pub struct Warehouse {
    engine: StarJoinEngine,
}

impl Warehouse {
    /// Opens a persistent warehouse from an `FGMT` fragment file written by
    /// [`Warehouse::save`] (or [`exec::write_store`]).  The whole file
    /// structure — magic, version, checksums, page directory — is verified
    /// before any query runs.
    ///
    /// ```
    /// use warehouse::prelude::*;
    ///
    /// let schema = schema::apb1::apb1_scaled_down();
    /// let fragmentation = Fragmentation::parse(&schema, &["time::month"]).unwrap();
    /// let path = std::env::temp_dir().join(format!("doc_open_{}.fgmt", std::process::id()));
    /// Warehouse::in_memory(FragmentStore::build(&schema, &fragmentation, 7))
    ///     .save(&path)
    ///     .unwrap();
    ///
    /// let warehouse = Warehouse::open(&path).unwrap();
    /// let query = QueryType::OneMonth.to_star_query(&schema);
    /// let bound = BoundQuery::new(&schema, query, vec![2]);
    /// let session = warehouse.session().workers(2).build();
    /// let result = session.execute(&bound);
    /// let serial = warehouse.session().build().execute(&bound);
    /// assert_eq!(result.hits, serial.hits);
    /// assert_eq!(result.measure_sums, serial.measure_sums); // bit-identical
    /// # std::fs::remove_file(&path).unwrap();
    /// ```
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if the file cannot be read, [`Error::Corrupt`] if its
    /// structure or checksums do not verify, [`Error::Decode`] if a stored
    /// bitmap does not decode.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, Error> {
        Ok(Warehouse {
            engine: StarJoinEngine::from_source(FileStore::open(path)?),
        })
    }

    /// [`Warehouse::open`] with explicit buffer-manager options (page-cache
    /// capacity, open-time verification).
    ///
    /// # Errors
    ///
    /// As [`Warehouse::open`], plus [`Error::Config`] for invalid options.
    pub fn open_with(path: impl AsRef<Path>, options: FileStoreOptions) -> Result<Self, Error> {
        Ok(Warehouse {
            engine: StarJoinEngine::from_source(FileStore::open_with(path, options)?),
        })
    }

    /// A warehouse over an in-memory fragment store.
    #[must_use]
    pub fn in_memory(store: FragmentStore) -> Self {
        Warehouse {
            engine: StarJoinEngine::new(store),
        }
    }

    /// Serialises the warehouse's fragments to an `FGMT` file at `path`.
    /// A file-backed warehouse is materialised (fully read back) first, so
    /// this also works as a verified copy.
    ///
    /// # Errors
    ///
    /// [`Error::Io`] if writing fails; for a file-backed warehouse also any
    /// error of the read-back.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), Error> {
        match self.engine.source() {
            ScanSource::Memory(store) => write_store(store, path)?,
            ScanSource::File(file) => write_store(&file.materialise()?, path)?,
        }
        Ok(())
    }

    /// The engine's scan source (backing storage plus metadata).
    #[must_use]
    pub fn source(&self) -> &ScanSource {
        self.engine.source()
    }

    /// The file path behind this warehouse, when file-backed.
    #[must_use]
    pub fn path(&self) -> Option<PathBuf> {
        self.source().as_file().map(|f| f.path().to_path_buf())
    }

    /// The underlying engine, for call sites predating the session API.
    #[must_use]
    pub fn engine(&self) -> &StarJoinEngine {
        &self.engine
    }

    /// Plans `bound` against the warehouse's schema and fragmentation.
    #[must_use]
    pub fn plan(&self, bound: &BoundQuery) -> QueryPlan {
        self.engine.plan(bound)
    }

    /// Starts configuring a session: serial, no placement, no simulated
    /// I/O, no tracing, exclusive admission.
    #[must_use]
    pub fn session(&self) -> SessionBuilder<'_> {
        SessionBuilder {
            warehouse: self,
            workers: 1,
            placement: None,
            io: None,
            obs: ObsConfig::default(),
            policy: AdmissionPolicy::Exclusive,
        }
    }
}

/// Collects a [`Session`]'s execution knobs; made by [`Warehouse::session`].
#[derive(Debug)]
pub struct SessionBuilder<'a> {
    warehouse: &'a Warehouse,
    workers: usize,
    placement: Option<PhysicalAllocation>,
    io: Option<IoConfig>,
    obs: ObsConfig,
    policy: AdmissionPolicy,
}

impl<'a> SessionBuilder<'a> {
    /// Worker-pool size; `0` resolves to the machine's available
    /// parallelism.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Seeds worker queues in `placement`'s disk-affinity order.
    #[must_use]
    pub fn placement(mut self, placement: PhysicalAllocation) -> Self {
        self.placement = Some(placement);
        self
    }

    /// Charges fragment scans against a simulated disk subsystem.
    #[must_use]
    pub fn io(mut self, io: IoConfig) -> Self {
        self.io = Some(io);
        self
    }

    /// Spreads the session over `placement`'s simulated nodes: fragment
    /// scans are charged against the placement's node-owned disks (each
    /// node with its own page cache; shared-nothing cross-node reads pay
    /// the simulated interconnect), the stream scheduler deals tasks to
    /// their home node's workers, and worker queues are seeded in the
    /// placement's disk-affinity order.  Results stay bit-identical to the
    /// single-node session for every node count and strategy.
    ///
    /// Replaces the allocation and node fields of any previously set
    /// [`SessionBuilder::io`] configuration, keeping its other knobs.
    #[must_use]
    pub fn nodes(mut self, placement: NodePlacement) -> Self {
        self.placement = Some(*placement.allocation());
        self.io = Some(match self.io {
            Some(io) => IoConfig {
                allocation: *placement.allocation(),
                nodes: placement.nodes(),
                node_strategy: placement.strategy(),
                ..io
            },
            None => IoConfig::with_nodes(placement),
        });
        self
    }

    /// Records a deterministic trace of every run.
    #[must_use]
    pub fn obs(mut self, obs: ObsConfig) -> Self {
        self.obs = obs;
        self
    }

    /// Sets the multi-query admission policy used by [`Session::stream`].
    #[must_use]
    pub fn policy(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Freezes the configuration into an executable [`Session`].
    #[must_use]
    pub fn build(self) -> Session<'a> {
        Session {
            warehouse: self.warehouse,
            config: ExecConfig {
                workers: self.workers,
                placement: self.placement,
                io: self.io,
                obs: self.obs,
            },
            policy: self.policy,
        }
    }
}

/// An executable session: a frozen configuration over a [`Warehouse`].
#[derive(Debug)]
pub struct Session<'a> {
    warehouse: &'a Warehouse,
    config: ExecConfig,
    policy: AdmissionPolicy,
}

impl Session<'_> {
    /// The session's frozen engine configuration.
    #[must_use]
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// The session's admission policy.
    #[must_use]
    pub fn policy(&self) -> AdmissionPolicy {
        self.policy
    }

    /// Plans and executes one query.  Results are bit-identical for every
    /// worker count, placement, I/O configuration and storage backing.
    #[must_use]
    pub fn execute(&self, bound: &BoundQuery) -> QueryResult {
        self.warehouse.engine.execute(bound, &self.config)
    }

    /// Executes an existing plan (re-planning is the expensive part of
    /// repeated-query experiments).
    #[must_use]
    pub fn execute_plan(&self, plan: &QueryPlan) -> QueryResult {
        self.warehouse.engine.execute_plan(plan, &self.config)
    }

    /// Plans, admits and executes a stream of queries concurrently on one
    /// shared worker pool under the session's [`AdmissionPolicy`].
    #[must_use]
    pub fn stream(&self, queries: &[BoundQuery]) -> StreamOutcome {
        let scheduler = SchedulerConfig {
            exec: self.config,
            max_in_flight: self.policy.mpl(),
        };
        self.warehouse.engine.execute_stream(queries, &scheduler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mdhf::Fragmentation;
    use std::sync::atomic::{AtomicU64, Ordering};
    use workload::QueryType;

    fn temp_path(tag: &str) -> PathBuf {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("fgmt_wh_{}_{tag}_{n}.fgmt", std::process::id()))
    }

    struct TempFile(PathBuf);

    impl Drop for TempFile {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn store() -> (schema::StarSchema, FragmentStore) {
        let schema = schema::apb1::apb1_scaled_down();
        let fragmentation =
            Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
        let store = FragmentStore::build(&schema, &fragmentation, 2024);
        (schema, store)
    }

    #[test]
    fn file_backed_session_matches_in_memory_bits() {
        let (schema, store) = store();
        let guard = TempFile(temp_path("roundtrip"));
        let memory = Warehouse::in_memory(store);
        memory.save(&guard.0).unwrap();
        let disk = Warehouse::open(&guard.0).unwrap();
        assert_eq!(disk.path().as_deref(), Some(guard.0.as_path()));
        assert_eq!(memory.path(), None);

        for (query_type, values) in [
            (QueryType::OneStore, vec![7u64]),
            (QueryType::OneMonthOneGroup, vec![3, 1]),
            (QueryType::OneCode, vec![65]),
        ] {
            let bound = BoundQuery::new(&schema, query_type.to_star_query(&schema), values);
            let mem_result = memory.session().workers(2).build().execute(&bound);
            let disk_result = disk.session().workers(2).build().execute(&bound);
            assert_eq!(disk_result.hits, mem_result.hits);
            let mem_bits: Vec<u64> = mem_result
                .measure_sums
                .iter()
                .map(|s| s.to_bits())
                .collect();
            let disk_bits: Vec<u64> = disk_result
                .measure_sums
                .iter()
                .map(|s| s.to_bits())
                .collect();
            assert_eq!(disk_bits, mem_bits, "{}", mem_result.query_name);
            assert!(mem_result.metrics.file.is_none());
            let file = disk_result.metrics.file.expect("file metrics populated");
            assert!(file.pool.misses > 0 || file.decoded_cache_hits > 0);
        }
    }

    #[test]
    fn streams_run_under_the_admission_policy() {
        let (schema, store) = store();
        let warehouse = Warehouse::in_memory(store);
        let queries: Vec<BoundQuery> = [
            (QueryType::OneStore, vec![7u64]),
            (QueryType::OneGroup, vec![4]),
            (QueryType::OneMonthOneGroup, vec![3, 1]),
        ]
        .into_iter()
        .map(|(t, v)| BoundQuery::new(&schema, t.to_star_query(&schema), v))
        .collect();
        let session = warehouse
            .session()
            .workers(2)
            .policy(AdmissionPolicy::Concurrent { max_in_flight: 2 })
            .build();
        assert_eq!(session.policy().mpl(), 2);
        let outcome = session.stream(&queries);
        assert_eq!(outcome.queries.len(), queries.len());
        assert_eq!(outcome.metrics.mpl, 2);
        for (bound, scheduled) in queries.iter().zip(&outcome.queries) {
            let serial = warehouse.session().build().execute(bound);
            assert_eq!(scheduled.hits, serial.hits);
            assert_eq!(scheduled.measure_sums, serial.measure_sums);
        }
    }

    #[test]
    fn multi_node_sessions_stay_bit_identical_and_attribute_nodes() {
        let (schema, store) = store();
        let warehouse = Warehouse::in_memory(store);
        let bound = BoundQuery::new(
            &schema,
            QueryType::OneStore.to_star_query(&schema),
            vec![7u64],
        );
        let serial = warehouse.session().build().execute(&bound);
        for nodes in [2u64, 4] {
            let placement = NodePlacement::new(nodes, 2, allocation::NodeStrategy::SharedNothing);
            let session = warehouse.session().workers(4).nodes(placement).build();
            assert_eq!(session.config().io.map(|io| io.nodes), Some(nodes));
            let result = session.execute(&bound);
            assert_eq!(result.hits, serial.hits);
            assert_eq!(result.measure_sums, serial.measure_sums);
            let io = result.metrics.io.expect("node I/O metrics");
            assert_eq!(io.node_count(), nodes as usize);
            assert!(io.total_net_pages() > 0, "{nodes}-node run crossed nodes");
        }
        // The nodes knob keeps a previously set I/O configuration's other
        // fields (cache size) while replacing its allocation and topology.
        let placement = NodePlacement::new(2, 3, allocation::NodeStrategy::SharedDisk);
        let session = warehouse
            .session()
            .io(IoConfig::with_disks(4).cache(9_999))
            .nodes(placement)
            .build();
        let io = session.config().io.expect("io configured");
        assert_eq!(io.cache_pages, 9_999);
        assert_eq!(io.nodes, 2);
        assert_eq!(io.disks(), 6);
    }

    #[test]
    fn open_surfaces_typed_errors() {
        let missing = Warehouse::open("/nonexistent/definitely/absent.fgmt");
        assert!(matches!(missing, Err(Error::Io(_))));
        let (_, store) = store();
        let guard = TempFile(temp_path("badopts"));
        let memory = Warehouse::in_memory(store);
        memory.save(&guard.0).unwrap();
        let zero_cache = Warehouse::open_with(
            &guard.0,
            FileStoreOptions {
                cache_pages: 0,
                ..FileStoreOptions::default()
            },
        );
        match zero_cache {
            Err(Error::Config(what)) => assert!(what.contains("cache")),
            other => panic!("expected Config error, got {other:?}"),
        }
        let display = Error::Corrupt("truncated".into()).to_string();
        assert!(display.contains("corrupt") && display.contains("truncated"));
    }
}
