//! `warehouse` — facade crate for the MDHF parallel data-warehouse
//! reproduction.
//!
//! This crate re-exports the public API of the whole workspace so that
//! examples, integration tests and downstream users need a single dependency:
//!
//! * [`schema`] — star-schema metadata and the APB-1 benchmark schema,
//! * [`bitmap`] — plain and hierarchically encoded bitmap join indices,
//! * [`mdhf`] — the multi-dimensional hierarchical fragmentation itself:
//!   query classification, thresholds, the analytic I/O cost model and the
//!   fragmentation advisor,
//! * [`allocation`] — round-robin / staggered physical disk allocation and
//!   declustering analysis,
//! * [`storage`] — disk service-time model and LRU buffer manager,
//! * [`workload`] — APB-1-style query types and generators,
//! * [`exec`] — the multi-threaded parallel star-join execution engine over
//!   materialised MDHF fragments (measured wall-clock speedup),
//! * [`obs`] — deterministic tracing and metrics exposition over the
//!   engine's simulated clock (Chrome `trace_event` + Prometheus text),
//! * [`simpad`] — the Shared Disk discrete-event simulator,
//! * [`simkit`] — the underlying simulation engine.
//!
//! # Quick start
//!
//! ```
//! use warehouse::prelude::*;
//!
//! // The paper's APB-1 configuration: 1.87 billion fact rows.
//! let schema = schema::apb1::apb1_schema();
//!
//! // The fragmentation used throughout the evaluation.
//! let fragmentation =
//!     Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
//! assert_eq!(fragmentation.fragment_count(), 11_520);
//!
//! // Classify a star query under it.
//! let query = StarQuery::exact_match(&schema, "1MONTH1GROUP",
//!                                    &["time::month", "product::group"]);
//! let classification = mdhf::classify(&schema, &fragmentation, &query);
//! assert_eq!(classification.fragments_to_process, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod session;

pub use allocation;
pub use bitmap;
pub use exec;
pub use mdhf;
pub use obs;
pub use schema;
pub use simkit;
pub use simpad;
pub use storage;
pub use workload;

pub use session::{AdmissionPolicy, Error, Session, SessionBuilder, Warehouse};

/// Convenient glob-import of the most frequently used types.
pub mod prelude {
    pub use crate::session::{
        AdmissionPolicy, Error as WarehouseError, Session, SessionBuilder, Warehouse,
    };
    pub use allocation::{
        node_load_shares, BitmapPlacement, NodePlacement, NodeStrategy, PhysicalAllocation,
    };
    pub use bitmap::{
        Bitmap, BitmapRepr, HierarchicalEncoding, IndexCatalog, ReprStats, RepresentationPolicy,
        RoaringBitmap, WahBitmap,
    };
    pub use exec::{
        DiskIoStats, ExecConfig, ExecMetrics, FileIoMetrics, FileStore, FileStoreOptions,
        FragmentStore, IoConfig, IoMetrics, NodeIoStats, ObsConfig, QueryPlan, QueryResult,
        QueryScheduler, ScanSource, ScheduledQuery, SchedulerConfig, SimulatedIo, StarJoinEngine,
        StreamOutcome, ThroughputMetrics,
    };
    pub use mdhf::{
        classify, Advisor, AdvisorConfig, CostModel, Fragmentation, IoClass, QueryClass, StarQuery,
    };
    pub use schema::{self, StarSchema};
    pub use simpad::{run_experiment, ExperimentSetup, SimConfig};
    pub use workload::{
        BoundQuery, InterleavedStream, QueryGenerator, QueryStream, QueryType, ZipfSampler,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn facade_exposes_a_working_pipeline() {
        let schema = schema::apb1::apb1_schema();
        let fragmentation =
            Fragmentation::parse(&schema, &["time::month", "product::group"]).unwrap();
        let catalog = IndexCatalog::default_for(&schema);
        let model = CostModel::new(schema.clone(), catalog);
        let query = QueryType::OneStore.to_star_query(&schema);
        let (classification, cost) = model.evaluate(&fragmentation, &query);
        assert_eq!(classification.io_class, IoClass::Ioc2NoSupp);
        assert!(cost.total_pages() > 1e6);
    }
}
