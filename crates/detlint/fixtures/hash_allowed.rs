//! Fixture: a justified hash container — interned strings never feed
//! results, so iteration order cannot leak.

pub struct Interner {
    // detlint: allow(hash-container, reason = "lookup only; never iterated, so order cannot reach results")
    map: std::collections::HashMap<String, u32>,
}

impl Interner {
    pub fn get(&self, s: &str) -> Option<u32> {
        self.map.get(s).copied()
    }
}
