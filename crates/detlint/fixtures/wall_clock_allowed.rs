//! Fixture: a justified wall-clock read — latency observability that never
//! feeds query results.
use std::time::Instant;

pub fn measure<F: FnOnce()>(f: F) -> f64 {
    // detlint: allow(wall-clock, reason = "wall latency is observability; results never depend on it")
    let started = Instant::now();
    f();
    started.elapsed().as_secs_f64()
}
