//! Fixture: deterministic trace timestamping the `obs` way — events are
//! stamped from a simulated/logical clock (no wall reads at all), and the
//! one wall read left is an export-time annotation that never enters the
//! deterministic event section, justified in place.
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

pub struct Event {
    pub ts_us: u64,
}

/// The deterministic path: a logical tick counter stands in for time, so
/// recorded events are bit-identical across runs — no allow needed.
pub fn record_on_logical_clock(clock: &AtomicU64) -> Event {
    Event {
        ts_us: clock.fetch_add(1, Ordering::Relaxed),
    }
}

/// The observability path: wall time only decorates the exported artifact
/// (how long the export took), never the events being exported.
pub fn export_duration_ms<F: FnOnce()>(export: F) -> f64 {
    // detlint: allow(wall-clock, reason = "export-time annotation on the artifact; trace timestamps stay on the simulated clock")
    let started = Instant::now();
    export();
    started.elapsed().as_secs_f64() * 1e3
}
