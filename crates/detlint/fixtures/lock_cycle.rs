//! Fixture: a classic two-lock order inversion — `f` takes a then b, `g`
//! takes b then a; interleaved threads deadlock.
use std::sync::Mutex;

pub struct Inverted {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Inverted {
    pub fn f(&self) -> u32 {
        let ga = self.a.plock("a");
        let gb = self.b.plock("b");
        *ga + *gb
    }

    pub fn g(&self) -> u32 {
        let gb = self.b.plock("b");
        let ga = self.a.plock("a");
        *ga + *gb
    }
}
