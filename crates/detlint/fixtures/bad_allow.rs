//! Fixture: malformed allow directives — an unknown rule and a missing
//! reason.  Both must surface as violations, not silently succeed.

pub fn noop() {
    // detlint: allow(no-such-rule, reason = "this rule does not exist")
    let a = 1;
    // detlint: allow(wall-clock)
    let b = 2;
    assert_eq!(a + b, 3);
}
