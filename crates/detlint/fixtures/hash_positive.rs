//! Fixture: iteration-order-dependent containers in result-producing code.
use std::collections::{HashMap, HashSet};

pub fn tally(xs: &[u32]) -> Vec<(u32, usize)> {
    let mut counts: HashMap<u32, usize> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_default() += 1;
    }
    let seen: HashSet<u32> = xs.iter().copied().collect();
    assert!(seen.len() <= xs.len());
    counts.into_iter().collect()
}
