//! Fixture: an `unsafe` block with no SAFETY justification.

pub fn transmute_bits(x: f64) -> u64 {
    unsafe { std::mem::transmute(x) }
}
