//! Fixture: a known inventory of panic paths — 2 unwraps, 1 expect, 3
//! indexing sites (the string literal below must not count).

pub fn first_two(xs: &[u64], m: Option<u64>) -> u64 {
    let a = xs.first().unwrap();
    let b = m.unwrap();
    let c = m.expect("checked by caller");
    let d = xs[0] + xs[1];
    let table = [1u64, 2, 3];
    let e = table[2];
    let s = "not [an] index";
    assert!(!s.is_empty());
    a + b + c + d + e
}
