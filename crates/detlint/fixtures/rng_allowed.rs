//! Fixture: a justified ambient-hash use — a scratch set that is drained
//! into a sorted Vec before anything downstream can observe its order.

pub fn dedup_sorted(xs: &[u64]) -> Vec<u64> {
    // detlint: allow(ambient-rng, reason = "scratch DefaultHasher probe; output is re-sorted before use")
    let h = std::collections::hash_map::DefaultHasher::new();
    let _ = h;
    let mut out = xs.to_vec();
    out.sort_unstable();
    out.dedup();
    out
}
