//! Fixture: two locks always taken in the same order, with a scoped guard
//! and an explicit drop — an acyclic graph.
use std::sync::Mutex;

pub struct Ordered {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Ordered {
    pub fn f(&self) -> u32 {
        let ga = self.a.plock("a");
        let gb = self.b.plock("b");
        *ga + *gb
    }

    pub fn g(&self) -> u32 {
        let first = {
            let ga = self.a.plock("a");
            *ga
        };
        let gb = self.b.plock("b");
        drop(gb);
        let ga = self.a.plock("a");
        first + *ga
    }
}
