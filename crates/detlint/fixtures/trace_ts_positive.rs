//! Fixture: trace events timestamped from the wall clock — the exact
//! mistake the `obs` crate designs away by stamping from the simulated
//! clock / logical admission counter.  Every wall read here must be
//! flagged: a wall-stamped trace is never bit-identical across runs.
use std::time::{Instant, SystemTime, UNIX_EPOCH};

pub struct Event {
    pub ts_us: u64,
}

pub fn record_with_wall_timestamp() -> Event {
    let wall = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .unwrap_or_default();
    Event {
        ts_us: wall.as_micros() as u64,
    }
}

pub fn record_with_monotonic_timestamp(epoch: Instant) -> Event {
    Event {
        ts_us: Instant::now().duration_since(epoch).as_micros() as u64,
    }
}
