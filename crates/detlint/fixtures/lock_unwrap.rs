//! Fixture: poison-swallowing and wrapper-bypassing acquisitions.
use std::sync::Mutex;

pub struct Bare {
    inner: Mutex<u32>,
}

impl Bare {
    pub fn swallows_poison(&self) -> u32 {
        *self.inner.lock().unwrap()
    }

    pub fn bypasses_wrapper(&self) -> u32 {
        *self.inner.lock().expect("poisoned")
    }
}
