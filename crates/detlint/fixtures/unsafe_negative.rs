//! Fixture: an `unsafe` block with a SAFETY comment directly above it.

pub fn transmute_bits(x: f64) -> u64 {
    // SAFETY: f64 and u64 have identical size and alignment; any bit
    // pattern is a valid u64.
    unsafe { std::mem::transmute(x) }
}
