//! Fixture: wall-time and environment reads in result-producing code.
use std::time::{Instant, SystemTime};

pub fn stamp() -> (Instant, SystemTime, Option<String>) {
    let started = Instant::now();
    let wall = SystemTime::now();
    let seed = std::env::var("SEED").ok();
    (started, wall, seed)
}
