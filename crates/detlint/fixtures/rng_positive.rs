//! Fixture: ambient (entropy-seeded or hash-ambient) randomness.
use std::collections::hash_map::DefaultHasher;
use std::collections::hash_map::RandomState;

pub fn ambient() -> u64 {
    let mut rng = rand::thread_rng();
    let stream = Xoshiro256PlusPlus::from_entropy();
    let hasher = DefaultHasher::new();
    let state = RandomState::new();
    let noise = getrandom::getrandom();
    0
}
