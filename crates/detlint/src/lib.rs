//! `detlint` — workspace-wide determinism & concurrency static analysis.
//!
//! Every number this repository reports — parallel star-join results,
//! skew-imbalance gates, multi-user throughput — rests on one invariant:
//! execution is **bit-identical** across runs, worker counts, MPLs and I/O
//! configurations.  The proptests enforce that dynamically; `detlint`
//! enforces the *sources* of nondeterminism statically:
//!
//! | rule | what it forbids |
//! |------|-----------------|
//! | `hash-container` | `HashMap`/`HashSet` in result/metrics-producing crates |
//! | `wall-clock` | `Instant::now`/`SystemTime`/`env::*` outside the wall throttle and bench binaries |
//! | `ambient-rng` | entropy-seeded or hash-ambient randomness (only seeded xoshiro streams) |
//! | `lock-unwrap` | `.lock().unwrap()`, and bare `.lock()` in `exec` outside the `sync.rs` wrapper |
//! | `lock-discipline` | cycles in the may-hold-while-acquiring lock graph |
//! | `panic-budget` | `unwrap`/`expect`/indexing beyond the checked-in per-crate budget |
//! | `unsafe-safety` | `unsafe` without a `// SAFETY:` comment |
//!
//! Any site can be justified in place:
//!
//! ```text
//! // detlint: allow(wall-clock, reason = "latency observability; not part of results")
//! ```
//!
//! Run `cargo run -p detlint -- check` for diagnostics (exit 1 on any
//! un-allowlisted violation), `-- budget` to regenerate the panic budget,
//! `-- graph` to dump the lock graph.

#![forbid(unsafe_code)]

pub mod locks;
pub mod panics;
pub mod report;
pub mod rules;
pub mod source;

use std::io;
use std::path::{Path, PathBuf};

use report::{Allowed, Diagnostic, Report};
use source::SourceFile;

/// The scanned crates as `(crate name, source dir relative to the root)`.
/// `detlint` itself and the vendored offline deps are deliberately absent.
pub const CRATES: &[(&str, &str)] = &[
    ("allocation", "crates/allocation/src"),
    ("bench", "crates/bench/src"),
    ("bitmap", "crates/bitmap/src"),
    ("core", "crates/core/src"),
    ("exec", "crates/exec/src"),
    ("obs", "crates/obs/src"),
    ("schema", "crates/schema/src"),
    ("simkit", "crates/simkit/src"),
    ("simpad", "crates/simpad/src"),
    ("storage", "crates/storage/src"),
    ("warehouse", "crates/warehouse/src"),
    ("workload", "crates/workload/src"),
];

/// Crates whose lock usage feeds the lock-discipline graph.
pub const LOCK_CRATES: &[&str] = &["exec", "storage"];

/// Default budget file name (at the workspace root).
pub const BUDGET_FILE: &str = "detlint-budget.txt";

/// Reads every scanned source file under `root`, sorted for determinism.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for &(krate, dir) in CRATES {
        let base = root.join(dir);
        let mut paths = Vec::new();
        collect_rs_files(&base, &mut paths)?;
        paths.sort();
        for path in paths {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            files.push(SourceFile::read(&path, &rel, krate)?);
        }
    }
    Ok(files)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Splits raw diagnostics into violations and allowlisted findings using the
/// file's `detlint: allow(...)` directives.
pub fn apply_allowlist(
    file: &SourceFile,
    diags: Vec<Diagnostic>,
) -> (Vec<Diagnostic>, Vec<Allowed>) {
    let mut violations = Vec::new();
    let mut allowed = Vec::new();
    for diag in diags {
        match file
            .allows
            .iter()
            .find(|a| a.rule == diag.rule && a.target_line == diag.line)
        {
            Some(a) => allowed.push(Allowed {
                diagnostic: diag,
                reason: a.reason.clone(),
            }),
            None => violations.push(diag),
        }
    }
    (violations, allowed)
}

/// Runs the full analysis over the workspace at `root` against the budget
/// file at `budget_path`.
pub fn check_workspace(root: &Path, budget_path: &Path) -> io::Result<Report> {
    let files = load_workspace(root)?;
    let mut report = Report::default();

    // Token rules, per file, allowlist applied per file.
    for file in &files {
        let mut diags = rules::hash_container(file);
        if file.krate != "bench" {
            diags.extend(rules::wall_clock(file));
        }
        diags.extend(rules::ambient_rng(file));
        diags.extend(rules::unsafe_safety(file));
        diags.extend(rules::lock_unwrap(file, file.krate == "exec"));
        let (violations, allowed) = apply_allowlist(file, diags);
        report.violations.extend(violations);
        report.allowed.extend(allowed);
        for (line, problem) in &file.bad_allows {
            report.violations.push(Diagnostic {
                rule: "bad-allow",
                file: file.rel_path.clone(),
                line: *line,
                message: problem.clone(),
            });
        }
    }

    // Lock-discipline over the concurrent crates.
    let lock_files: Vec<&SourceFile> = files
        .iter()
        .filter(|f| LOCK_CRATES.contains(&f.krate.as_str()))
        .collect();
    let analysis = locks::analyze(&lock_files, true);
    for diag in analysis.violations {
        match files
            .iter()
            .find(|f| f.rel_path == diag.file)
            .map(|f| apply_allowlist(f, vec![diag.clone()]))
        {
            Some((violations, allowed)) => {
                report.violations.extend(violations);
                report.allowed.extend(allowed);
            }
            None => report.violations.push(diag),
        }
    }
    report.lock_edges = analysis.edges;
    report.lock_cycles = analysis.cycles;

    // Panic budget.
    report.panic_counts = panics::count_workspace(&files);
    let budget_rel = budget_path
        .strip_prefix(root)
        .unwrap_or(budget_path)
        .to_string_lossy()
        .replace('\\', "/");
    match std::fs::read_to_string(budget_path) {
        Ok(text) => {
            let (budget, problems) = panics::parse_budget(&text, &budget_rel);
            report.violations.extend(problems);
            let (violations, notices) = panics::compare(&report.panic_counts, &budget, &budget_rel);
            report.violations.extend(violations);
            report.notices.extend(notices);
        }
        Err(_) => report.violations.push(Diagnostic {
            rule: "panic-budget",
            file: budget_rel,
            line: 0,
            message: "missing panic budget file; create it with `cargo run -p detlint -- budget`"
                .to_string(),
        }),
    }

    Ok(report)
}

/// Locates the workspace root: the compile-time manifest dir's grandparent
/// (`crates/detlint` → repo root).
#[must_use]
pub fn default_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf)
}
