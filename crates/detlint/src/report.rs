//! Diagnostics and the machine-readable report.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::locks::LockEdge;
use crate::panics::PanicCounts;

/// One finding, anchored to a file and 1-based line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Rule identifier (see [`crate::source::RULES`], plus `bad-allow`).
    pub rule: &'static str,
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number (0 for whole-file / whole-crate findings).
    pub line: usize,
    /// Human explanation.
    pub message: String,
}

impl Diagnostic {
    /// `file:line: [rule] message` (line elided when 0).
    #[must_use]
    pub fn human(&self) -> String {
        if self.line == 0 {
            format!("{}: [{}] {}", self.file, self.rule, self.message)
        } else {
            format!(
                "{}:{}: [{}] {}",
                self.file, self.line, self.rule, self.message
            )
        }
    }
}

/// A suppressed finding: the diagnostic plus the allowlist justification.
#[derive(Debug, Clone)]
pub struct Allowed {
    /// The finding that would have fired.
    pub diagnostic: Diagnostic,
    /// The `reason = "..."` recorded at the site.
    pub reason: String,
}

/// Everything one `detlint check` run produced.
#[derive(Debug, Default)]
pub struct Report {
    /// Hard failures (non-empty ⇒ exit 1).
    pub violations: Vec<Diagnostic>,
    /// Findings suppressed by a `detlint: allow(...)` directive.
    pub allowed: Vec<Allowed>,
    /// May-hold-while-acquiring lock graph (deduplicated).
    pub lock_edges: Vec<LockEdge>,
    /// Lock-order cycles found in the graph (also reported as violations).
    pub lock_cycles: Vec<Vec<String>>,
    /// Per-crate panic-path inventory.
    pub panic_counts: BTreeMap<String, PanicCounts>,
    /// Non-fatal notes (e.g. a panic budget that can be ratcheted down).
    pub notices: Vec<String>,
}

impl Report {
    /// True when the run found no violations.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the human-readable summary.
    #[must_use]
    pub fn human(&self) -> String {
        let mut out = String::new();
        for v in &self.violations {
            let _ = writeln!(out, "error: {}", v.human());
        }
        for a in &self.allowed {
            let _ = writeln!(
                out,
                "allowed: {} (reason: {})",
                a.diagnostic.human(),
                a.reason
            );
        }
        for n in &self.notices {
            let _ = writeln!(out, "note: {n}");
        }
        let _ = writeln!(
            out,
            "detlint: {} violation(s), {} allowlisted, {} lock edge(s), {} cycle(s)",
            self.violations.len(),
            self.allowed.len(),
            self.lock_edges.len(),
            self.lock_cycles.len(),
        );
        out
    }

    /// Renders the machine-readable JSON report (stable key order).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"violations\": [");
        for (i, v) in self.violations.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
                json_str(v.rule),
                json_str(&v.file),
                v.line,
                json_str(&v.message)
            );
        }
        out.push_str("\n  ],\n  \"allowed\": [");
        for (i, a) in self.allowed.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"reason\": {}}}",
                json_str(a.diagnostic.rule),
                json_str(&a.diagnostic.file),
                a.diagnostic.line,
                json_str(&a.reason)
            );
        }
        out.push_str("\n  ],\n  \"lock_graph\": {\n    \"edges\": [");
        for (i, e) in self.lock_edges.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n      {{\"from\": {}, \"to\": {}, \"site\": {}}}",
                json_str(&e.from),
                json_str(&e.to),
                json_str(&format!("{}:{}", e.file, e.line))
            );
        }
        out.push_str("\n    ],\n    \"cycles\": [");
        for (i, c) in self.lock_cycles.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let nodes: Vec<String> = c.iter().map(|n| json_str(n)).collect();
            let _ = write!(out, "{sep}\n      [{}]", nodes.join(", "));
        }
        out.push_str("\n    ]\n  },\n  \"panic_paths\": {");
        for (i, (krate, counts)) in self.panic_counts.iter().enumerate() {
            let sep = if i == 0 { "" } else { "," };
            let _ = write!(
                out,
                "{sep}\n    {}: {{\"unwrap\": {}, \"expect\": {}, \"index\": {}}}",
                json_str(krate),
                counts.unwrap,
                counts.expect,
                counts.index
            );
        }
        let _ = write!(
            out,
            "\n  }},\n  \"summary\": {{\"violations\": {}, \"allowed\": {}, \"clean\": {}}}\n}}\n",
            self.violations.len(),
            self.allowed.len(),
            self.is_clean()
        );
        out
    }
}

/// Escapes a string as a JSON literal.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    #[test]
    fn empty_report_is_clean_and_valid_json() {
        let r = Report::default();
        assert!(r.is_clean());
        let j = r.to_json();
        assert!(j.contains("\"violations\": ["));
        assert!(j.contains("\"clean\": true"));
    }
}
