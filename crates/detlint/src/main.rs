//! CLI: `cargo run -p detlint -- <check|budget|graph> [--root DIR]
//! [--json FILE] [--budget FILE]`.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command = args.first().map_or("check", String::as_str);
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let root = flag("--root").map_or_else(detlint::default_root, PathBuf::from);
    let budget_path =
        flag("--budget").map_or_else(|| root.join(detlint::BUDGET_FILE), PathBuf::from);

    match command {
        "check" => {
            let report = match detlint::check_workspace(&root, &budget_path) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("detlint: failed to scan {}: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            // `--json FILE` writes the machine-readable report; a bare
            // `--json` prints it to stdout instead of the human text.
            match flag("--json").filter(|v| !v.starts_with("--")) {
                Some(json_path) => {
                    if let Err(e) = std::fs::write(&json_path, report.to_json()) {
                        eprintln!("detlint: failed to write {json_path}: {e}");
                        return ExitCode::from(2);
                    }
                    print!("{}", report.human());
                }
                None if args.iter().any(|a| a == "--json") => {
                    println!("{}", report.to_json());
                }
                None => print!("{}", report.human()),
            }
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        "budget" => {
            let files = match detlint::load_workspace(&root) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("detlint: failed to scan {}: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            let counts = detlint::panics::count_workspace(&files);
            let rendered = detlint::panics::render_budget(&counts);
            if let Err(e) = std::fs::write(&budget_path, &rendered) {
                eprintln!("detlint: failed to write {}: {e}", budget_path.display());
                return ExitCode::from(2);
            }
            print!("{rendered}");
            println!("detlint: wrote {}", budget_path.display());
            ExitCode::SUCCESS
        }
        "graph" => {
            let files = match detlint::load_workspace(&root) {
                Ok(f) => f,
                Err(e) => {
                    eprintln!("detlint: failed to scan {}: {e}", root.display());
                    return ExitCode::from(2);
                }
            };
            let lock_files: Vec<&detlint::source::SourceFile> = files
                .iter()
                .filter(|f| detlint::LOCK_CRATES.contains(&f.krate.as_str()))
                .collect();
            let analysis = detlint::locks::analyze(&lock_files, false);
            println!("locks: {:?}", analysis.locks);
            for e in &analysis.edges {
                println!(
                    "{} -> {}   (held while acquiring at {}:{})",
                    e.from, e.to, e.file, e.line
                );
            }
            for c in &analysis.cycles {
                println!("CYCLE: {}", c.join(" -> "));
            }
            if analysis.cycles.is_empty() {
                println!("lock graph is acyclic");
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        other => {
            eprintln!("detlint: unknown command `{other}` (expected check|budget|graph)");
            ExitCode::from(2)
        }
    }
}
