//! Lock-discipline analysis: build the may-hold-while-acquiring graph and
//! fail on cycles.
//!
//! The analysis is AST-lite, tuned for this workspace's lock idioms:
//!
//! 1. **Lock identities** are declared `Mutex<…>` / `RwLock<…>` fields
//!    (`control: Mutex<Control>`, `deques: Vec<Mutex<CostedDeque<T>>>`), so
//!    every element of a lock array shares one identity — conservative for
//!    per-worker deque locks.
//! 2. **Acquisition sites** are `.plock(`, `.lock()`, `.read()`, `.write()`
//!    calls whose receiver chain ends in a known lock name.
//! 3. **Guards** bound with a plain `let g = <receiver chain>.plock(…)` are
//!    held until `drop(g)`, the end of the enclosing brace scope, or the end
//!    of the function; acquisitions used as temporaries are released at the
//!    end of their statement and treated as never held.
//! 4. **Calls** are resolved *typed-lite*: `impl` blocks associate each
//!    method with its owner type, and `name: Type` annotations (fields and
//!    parameters) associate receiver identifiers with candidate types.
//!    `self.f(…)` resolves by name; `recv.f(…)` resolves only when some
//!    candidate type of `recv` actually owns an `f` — so `Vec::push` never
//!    aliases a lock-acquiring `push` elsewhere in the crate.  Resolved
//!    callees are summarised to the set of locks they transitively acquire;
//!    calling one while holding `A` adds edges `A → acquired`.  Functions
//!    returning a guard (`-> MutexGuard<…>`) are wrappers: binding their
//!    result holds their locks.  Acquisition-shaped sites (`.plock(…)`,
//!    argument-less `.lock()`/`.read()`/`.write()`) are never treated as
//!    calls — they are already acquisition events.
//!
//! A cycle in the resulting digraph is an interleaving that can deadlock —
//! exactly the scheduler-control-lock vs `PagePool` vs `StealDeques`
//! inversions the multi-user engine must never grow.

use std::collections::{BTreeMap, BTreeSet};

use crate::report::Diagnostic;
use crate::source::SourceFile;

/// One `from → to` edge: `to` was acquired while `from` was held.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// The held lock.
    pub from: String,
    /// The lock acquired while holding `from`.
    pub to: String,
    /// File of the acquiring site.
    pub file: String,
    /// 1-based line of the acquiring site.
    pub line: usize,
}

/// Output of the analysis over one set of files.
#[derive(Debug, Default)]
pub struct LockAnalysis {
    /// Every declared lock identity.
    pub locks: BTreeSet<String>,
    /// Deduplicated may-hold-while-acquiring edges.
    pub edges: Vec<LockEdge>,
    /// Strongly-connected lock groups (potential deadlocks).
    pub cycles: Vec<Vec<String>>,
    /// Cycle diagnostics plus `RwLock` acquisitions outside the wrapper.
    pub violations: Vec<Diagnostic>,
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// A file flattened to `(char, 0-based line)` for cross-line matching.
struct Flat<'a> {
    chars: Vec<(char, usize)>,
    file: &'a SourceFile,
}

impl<'a> Flat<'a> {
    fn new(file: &'a SourceFile) -> Self {
        let mut chars = Vec::new();
        for (li, line) in file.code.iter().enumerate() {
            for ch in line.chars() {
                chars.push((ch, li));
            }
            chars.push(('\n', li));
        }
        Flat { chars, file }
    }

    fn text_eq(&self, at: usize, needle: &str) -> bool {
        needle
            .chars()
            .enumerate()
            .all(|(o, nc)| self.chars.get(at + o).map(|&(c, _)| c) == Some(nc))
    }

    fn line_of(&self, at: usize) -> usize {
        self.chars
            .get(at.min(self.chars.len().saturating_sub(1)))
            .map_or(0, |&(_, l)| l)
    }

    /// Reads the identifier ending at `end` (exclusive), returning it and
    /// its start index.
    fn ident_ending_at(&self, end: usize) -> Option<(String, usize)> {
        let mut start = end;
        while start > 0 && is_ident(self.chars[start - 1].0) {
            start -= 1;
        }
        if start == end {
            return None;
        }
        let name: String = self.chars[start..end].iter().map(|&(c, _)| c).collect();
        Some((name, start))
    }
}

/// One extracted function.
struct Func {
    name: String,
    /// The `impl` type the function belongs to, when any.
    owner: Option<String>,
    /// True when the return type names a guard (`MutexGuard`, `RwLock…Guard`).
    returns_guard: bool,
    /// Body span in the flat stream (inside the braces), if any.
    body: Option<(usize, usize)>,
    file_idx: usize,
}

/// An event inside a function body, ordered by position.
enum Event {
    /// Acquisition of a known lock; `binder` is the `let` name when the
    /// guard is bound, `op` distinguishes `.read()`/`.write()` for the
    /// wrapper-enforcement check.
    Acquire {
        lock: String,
        binder: Option<String>,
        op: &'static str,
        depth: i32,
        pos: usize,
    },
    /// Call resolved to one or more qualified workspace functions
    /// (`Owner::name`, or `::name` for free functions).
    Call {
        callees: Vec<String>,
        binder: Option<String>,
        depth: i32,
        pos: usize,
    },
    /// `drop(name)`.
    Drop { name: String, pos: usize },
    /// A `}` returning the body to `depth`: guards bound deeper die here.
    ScopeEnd { depth: i32, pos: usize },
}

impl Event {
    fn pos(&self) -> usize {
        match self {
            Event::Acquire { pos, .. }
            | Event::Call { pos, .. }
            | Event::Drop { pos, .. }
            | Event::ScopeEnd { pos, .. } => *pos,
        }
    }
}

/// Name-resolution context shared by every body scan.
struct Resolver {
    /// Every defined function, as a qualified `Owner::name` / `::name` key —
    /// summaries are per *method of a type*, never merged across types that
    /// happen to share a method name.
    defined: BTreeSet<String>,
    /// Receiver identifier → candidate types, from `name: Type` annotations.
    field_types: BTreeMap<String, BTreeSet<String>>,
}

/// The qualified summary key of one function.
fn qualify(owner: Option<&str>, name: &str) -> String {
    format!("{}::{name}", owner.unwrap_or_default())
}

impl Resolver {
    /// Resolves a call site to the qualified workspace functions it may
    /// reach (empty when it is std/foreign code).
    fn resolve(
        &self,
        name: &str,
        receiver: Option<&str>,
        path_type: Option<&str>,
        current_owner: Option<&str>,
    ) -> Vec<String> {
        let one = |q: String| -> Vec<String> {
            if self.defined.contains(&q) {
                vec![q]
            } else {
                Vec::new()
            }
        };
        match (receiver, path_type) {
            // `self.f(…)` / `Self::f(…)`: the enclosing impl's own method.
            (Some("self"), _) | (_, Some("Self")) => one(qualify(current_owner, name)),
            // `recv.f(…)`: every candidate type of `recv` that owns an `f`.
            (Some(recv), _) => self
                .field_types
                .get(recv)
                .into_iter()
                .flatten()
                .map(|ty| qualify(Some(ty), name))
                .filter(|q| self.defined.contains(q))
                .collect(),
            // `Type::f(…)`: the named type must own `f`.
            (None, Some(ty)) => one(qualify(Some(ty), name)),
            // Bare `f(…)`: only true free functions.
            (None, None) => one(qualify(None, name)),
        }
    }
}

/// Runs the analysis over `files` (typically one crate's sources, or a
/// fixture).  `enforce_wrapper` rejects `.read()`/`.write()` on known locks
/// outside `sync.rs`, mirroring the `.lock()` rule in [`crate::rules`].
#[must_use]
pub fn analyze(files: &[&SourceFile], enforce_wrapper: bool) -> LockAnalysis {
    let flats: Vec<Flat<'_>> = files.iter().map(|f| Flat::new(f)).collect();
    let locks = collect_locks(&flats);
    let funcs = collect_funcs(&flats);
    let resolver = build_resolver(&flats, &funcs);

    // Per-function direct acquisitions and calls, merged by function name.
    let mut direct: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut calls: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    let mut wrappers: BTreeSet<String> = BTreeSet::new();
    let mut events_per_fn: Vec<(usize, Vec<Event>)> = Vec::new();

    let mut analysis = LockAnalysis {
        locks: locks.clone(),
        ..LockAnalysis::default()
    };

    for (fi, func) in funcs.iter().enumerate() {
        let qname = qualify(func.owner.as_deref(), &func.name);
        if func.returns_guard {
            wrappers.insert(qname.clone());
        }
        let Some((b0, b1)) = func.body else { continue };
        let flat = &flats[func.file_idx];
        let events = extract_events(flat, b0, b1, &locks, &resolver, func.owner.as_deref());
        let d = direct.entry(qname.clone()).or_default();
        let c = calls.entry(qname.clone()).or_default();
        for ev in &events {
            match ev {
                Event::Acquire { lock, op, pos, .. } => {
                    d.insert(lock.clone());
                    if enforce_wrapper
                        && (*op == ".read()" || *op == ".write()")
                        && !flat.file.rel_path.ends_with("sync.rs")
                    {
                        analysis.violations.push(Diagnostic {
                            rule: "lock-unwrap",
                            file: flat.file.rel_path.clone(),
                            line: flat.line_of(*pos) + 1,
                            message: format!(
                                "bare {op} on lock `{lock}`; acquire through a \
                                 poison-propagating wrapper in sync.rs"
                            ),
                        });
                    }
                }
                Event::Call { callees, .. } => {
                    c.extend(callees.iter().cloned());
                }
                Event::Drop { .. } | Event::ScopeEnd { .. } => {}
            }
        }
        events_per_fn.push((fi, events));
    }

    // Fixpoint: what does each function transitively acquire?
    let mut summary: BTreeMap<String, BTreeSet<String>> = direct.clone();
    loop {
        let mut changed = false;
        let snapshot = summary.clone();
        for (name, callees) in &calls {
            let mut acc = snapshot.get(name).cloned().unwrap_or_default();
            for callee in callees {
                if let Some(s) = snapshot.get(callee) {
                    for l in s {
                        changed |= acc.insert(l.clone());
                    }
                }
            }
            summary.insert(name.clone(), acc);
        }
        if !changed {
            break;
        }
    }

    if std::env::var("DETLINT_DEBUG").is_ok() {
        for (name, s) in &summary {
            if s.contains("deques") {
                eprintln!("SUMMARY {name}: {s:?} calls={:?}", calls.get(name));
            }
        }
    }
    // Edge generation: replay each function's events with a held-set.
    let mut seen_edges: BTreeSet<(String, String)> = BTreeSet::new();
    for (fi, events) in &events_per_fn {
        let func = &funcs[*fi];
        let flat = &flats[func.file_idx];
        let mut held: Vec<(String, Option<String>, i32)> = Vec::new();
        for ev in events {
            match ev {
                Event::Acquire {
                    lock,
                    binder,
                    depth,
                    pos,
                    ..
                } => {
                    for (h, _, _) in &held {
                        push_edge(&mut analysis.edges, &mut seen_edges, h, lock, flat, *pos);
                    }
                    if binder.is_some() {
                        held.push((lock.clone(), binder.clone(), *depth));
                    }
                }
                Event::Call {
                    callees,
                    binder,
                    depth,
                    pos,
                } => {
                    for callee in callees {
                        let Some(inner) = summary.get(callee) else {
                            continue;
                        };
                        for l in inner {
                            for (h, _, _) in &held {
                                push_edge(&mut analysis.edges, &mut seen_edges, h, l, flat, *pos);
                            }
                        }
                        if wrappers.contains(callee) && binder.is_some() {
                            for l in inner {
                                held.push((l.clone(), binder.clone(), *depth));
                            }
                        }
                    }
                }
                Event::Drop { name, .. } => {
                    held.retain(|(_, b, _)| b.as_deref() != Some(name.as_str()));
                }
                Event::ScopeEnd { depth, .. } => {
                    held.retain(|(_, _, d)| d <= depth);
                }
            }
        }
    }

    // Cycle detection: strongly connected components of the edge digraph
    // (a self-loop is a one-node cycle).
    analysis.cycles = find_cycles(&analysis.edges);
    for cycle in &analysis.cycles {
        let anchor = analysis
            .edges
            .iter()
            .find(|e| cycle.contains(&e.from) && cycle.contains(&e.to));
        let (file, line) = anchor.map_or_else(
            || (String::from("<unknown>"), 0),
            |e| (e.file.clone(), e.line),
        );
        analysis.violations.push(Diagnostic {
            rule: "lock-discipline",
            file,
            line,
            message: format!(
                "lock-order cycle: {} — two threads interleaving these \
                 acquisitions can deadlock; impose a single order",
                cycle.join(" -> ")
            ),
        });
    }
    analysis
}

fn push_edge(
    edges: &mut Vec<LockEdge>,
    seen: &mut BTreeSet<(String, String)>,
    from: &str,
    to: &str,
    flat: &Flat<'_>,
    pos: usize,
) {
    if seen.insert((from.to_string(), to.to_string())) {
        edges.push(LockEdge {
            from: from.to_string(),
            to: to.to_string(),
            file: flat.file.rel_path.clone(),
            line: flat.line_of(pos) + 1,
        });
    }
}

/// Collects lock identities from field/binding declarations.
fn collect_locks(flats: &[Flat<'_>]) -> BTreeSet<String> {
    let mut locks = BTreeSet::new();
    for flat in flats {
        for (li, line) in flat.file.code.iter().enumerate() {
            if !flat.file.is_lintable(li) {
                continue;
            }
            for token in ["Mutex<", "RwLock<", "Mutex::new(", "RwLock::new("] {
                let mut from = 0;
                while let Some(off) = line[from..].find(token) {
                    let at = from + off;
                    let boundary_ok =
                        at == 0 || !line[..at].chars().next_back().is_some_and(is_ident);
                    if boundary_ok {
                        if let Some(name) = declared_name(&line[..at]) {
                            locks.insert(name);
                        }
                    }
                    from = at + token.len();
                }
            }
        }
    }
    locks
}

/// Given the text left of a `Mutex<`/`Mutex::new(` occurrence, finds the
/// declared field (`name: … Mutex<…>`) or binding (`let name = Mutex::new`).
fn declared_name(prefix: &str) -> Option<String> {
    // Field form: identifier before the last `:` (tolerating wrapper types
    // like `Vec<` in between).
    if let Some(colon) = prefix.rfind(':') {
        let between = &prefix[colon + 1..];
        if between
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || " \t<>,&_:".contains(c))
            && !prefix[..colon].ends_with(':')
        {
            let name: String = prefix[..colon]
                .chars()
                .rev()
                .take_while(|&c| is_ident(c))
                .collect::<String>()
                .chars()
                .rev()
                .collect();
            if !name.is_empty() {
                return Some(name);
            }
        }
    }
    // Binding form: `let [mut] name =`.
    let trimmed = prefix.trim_end();
    let eq = trimmed.strip_suffix('=')?.trim_end();
    let name: String = eq
        .chars()
        .rev()
        .take_while(|&c| is_ident(c))
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    if name.is_empty() || name == "mut" {
        None
    } else {
        Some(name)
    }
}

/// Extracts every `impl` block's type name and body span for one file.
fn collect_impls(flat: &Flat<'_>) -> Vec<(usize, usize, String)> {
    let chars = &flat.chars;
    let n = chars.len();
    let mut impls = Vec::new();
    let mut i = 0;
    while i + 4 < n {
        let boundary = i == 0 || !is_ident(chars[i - 1].0);
        let after_ok = chars.get(i + 4).is_none_or(|&(c, _)| !is_ident(c));
        if !(boundary && flat.text_eq(i, "impl") && after_ok) {
            i += 1;
            continue;
        }
        // Header runs to the first `{` outside any paren/bracket group.
        let mut j = i + 4;
        let mut paren = 0i32;
        while j < n {
            match chars[j].0 {
                '(' | '[' => paren += 1,
                ')' | ']' => paren -= 1,
                '{' if paren == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= n {
            break;
        }
        let header: String = chars[i + 4..j].iter().map(|&(c, _)| c).collect();
        // `impl Trait for Type` names `Type`; plain `impl Type` names `Type`.
        let target = match header.rfind(" for ") {
            Some(at) => &header[at + 5..],
            None => {
                // Skip a leading generic parameter list.
                let t = header.trim_start();
                if let Some(rest) = t.strip_prefix('<') {
                    let mut depth = 1i32;
                    let mut cut = rest.len();
                    for (k, c) in rest.char_indices() {
                        match c {
                            '<' => depth += 1,
                            '>' => {
                                depth -= 1;
                                if depth == 0 {
                                    cut = k + 1;
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    &rest[cut.min(rest.len())..]
                } else {
                    t
                }
            }
        };
        let ty: String = target
            .trim_start_matches(|c: char| !is_ident(c))
            .chars()
            .take_while(|&c| is_ident(c))
            .collect();
        // Body span via brace matching.
        let open = j;
        let mut depth = 0i32;
        while j < n {
            match chars[j].0 {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if !ty.is_empty() {
            impls.push((open, j.min(n), ty));
        }
        i = open + 1;
    }
    impls
}

/// Builds the call-resolution context: qualified function names from `impl`
/// blocks, and receiver-type candidates from annotations.
fn build_resolver(flats: &[Flat<'_>], funcs: &[Func]) -> Resolver {
    let defined: BTreeSet<String> = funcs
        .iter()
        .map(|f| qualify(f.owner.as_deref(), &f.name))
        .collect();

    // `name: … Type …` annotations (struct fields, fn parameters): map the
    // identifier to every capitalised type ident right of the colon.
    let mut field_types: BTreeMap<String, BTreeSet<String>> = BTreeMap::new();
    for flat in flats {
        for line in &flat.file.code {
            let bytes: Vec<char> = line.chars().collect();
            for (at, &c) in bytes.iter().enumerate() {
                if c != ':' {
                    continue;
                }
                // Skip `::` paths and loop labels.
                if bytes.get(at + 1) == Some(&':') || (at > 0 && bytes[at - 1] == ':') {
                    continue;
                }
                let mut s = at;
                while s > 0 && is_ident(bytes[s - 1]) {
                    s -= 1;
                }
                if s == at || (s > 0 && bytes[s - 1] == '\'') {
                    continue;
                }
                let name: String = bytes[s..at].iter().collect();
                // Right side until a declaration terminator.
                let rhs: String = bytes[at + 1..]
                    .iter()
                    .take_while(|&&c| !",){;=".contains(c))
                    .collect();
                let mut k = 0;
                let rchars: Vec<char> = rhs.chars().collect();
                while k < rchars.len() {
                    if rchars[k].is_ascii_uppercase() && (k == 0 || !is_ident(rchars[k - 1])) {
                        let ty: String = rchars[k..].iter().take_while(|&&c| is_ident(c)).collect();
                        k += ty.len();
                        field_types.entry(name.clone()).or_default().insert(ty);
                    } else {
                        k += 1;
                    }
                }
            }
        }
    }
    Resolver {
        defined,
        field_types,
    }
}

/// Extracts every function (name, owner impl, guard-returning flag, body
/// span).
fn collect_funcs(flats: &[Flat<'_>]) -> Vec<Func> {
    let mut funcs = Vec::new();
    for (file_idx, flat) in flats.iter().enumerate() {
        let impls = collect_impls(flat);
        let chars = &flat.chars;
        let n = chars.len();
        let mut i = 0;
        while i + 1 < n {
            let boundary = i == 0 || !is_ident(chars[i - 1].0);
            if !(boundary
                && chars[i].0 == 'f'
                && chars[i + 1].0 == 'n'
                && chars.get(i + 2).is_some_and(|&(c, _)| c.is_whitespace()))
            {
                i += 1;
                continue;
            }
            // Name.
            let mut j = i + 2;
            while j < n && chars[j].0.is_whitespace() {
                j += 1;
            }
            let name_start = j;
            while j < n && is_ident(chars[j].0) {
                j += 1;
            }
            if j == name_start {
                i += 2;
                continue;
            }
            let name: String = chars[name_start..j].iter().map(|&(c, _)| c).collect();
            let owner = impls
                .iter()
                .find(|&&(b0, b1, _)| name_start > b0 && name_start < b1)
                .map(|(_, _, ty)| ty.clone());
            // Optional generics.
            while j < n && chars[j].0.is_whitespace() {
                j += 1;
            }
            if j < n && chars[j].0 == '<' {
                let mut depth = 0i32;
                while j < n {
                    match chars[j].0 {
                        '<' => depth += 1,
                        '>' => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            // Parameter list.
            while j < n && chars[j].0 != '(' {
                j += 1;
            }
            let mut depth = 0i32;
            while j < n {
                match chars[j].0 {
                    '(' => depth += 1,
                    ')' => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            // Signature tail up to `{` (body) or `;` (declaration).
            let tail_start = j;
            let mut paren = 0i32;
            while j < n {
                match chars[j].0 {
                    '(' | '[' => paren += 1,
                    ')' | ']' => paren -= 1,
                    '{' | ';' if paren == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            let tail: String = chars[tail_start..j.min(n)]
                .iter()
                .map(|&(c, _)| c)
                .collect();
            let returns_guard = tail.contains("Guard");
            let body = if j < n && chars[j].0 == '{' {
                let open = j;
                let mut bd = 0i32;
                while j < n {
                    match chars[j].0 {
                        '{' => bd += 1,
                        '}' => {
                            bd -= 1;
                            if bd == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                Some((open + 1, j.min(n)))
            } else {
                None
            };
            funcs.push(Func {
                name,
                owner,
                returns_guard,
                body,
                file_idx,
            });
            // Continue scanning *inside* the body too (nested fns, and the
            // outer loop position must advance past the header only).
            i = tail_start;
        }
    }
    funcs
}

const KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "fn", "let", "move", "in", "else", "unsafe",
];

/// Extracts ordered acquisition / call / drop / scope events from a body
/// span.
fn extract_events(
    flat: &Flat<'_>,
    b0: usize,
    b1: usize,
    locks: &BTreeSet<String>,
    resolver: &Resolver,
    owner: Option<&str>,
) -> Vec<Event> {
    let chars = &flat.chars;
    let mut events = Vec::new();
    // Brace depth at each body position, plus a ScopeEnd per `}`.
    let mut depth_at = vec![0i32; b1.saturating_sub(b0)];
    let mut cur = 0i32;
    for (off, slot) in depth_at.iter_mut().enumerate() {
        match chars[b0 + off].0 {
            '{' => {
                *slot = cur;
                cur += 1;
            }
            '}' => {
                cur -= 1;
                *slot = cur;
                events.push(Event::ScopeEnd {
                    depth: cur,
                    pos: b0 + off,
                });
            }
            _ => *slot = cur,
        }
    }
    let depth_of = |pos: usize| depth_at.get(pos - b0).copied().unwrap_or(0);
    // Acquisition ops on known-lock receivers.
    for op in [".plock(", ".lock()", ".read()", ".write()"] {
        let mut i = b0;
        while i + op.len() <= b1 {
            if !flat.text_eq(i, op) {
                i += 1;
                continue;
            }
            if let Some((recv, recv_start)) = receiver_ident(flat, i) {
                if locks.contains(&recv) {
                    let binder = binding_name(flat, b0, recv_start);
                    events.push(Event::Acquire {
                        lock: recv,
                        binder,
                        op,
                        depth: depth_of(i),
                        pos: i,
                    });
                }
            }
            i += op.len();
        }
    }
    // Calls and drops.
    let mut i = b0;
    while i < b1 {
        if !is_ident(chars[i].0) || (i > 0 && is_ident(chars[i - 1].0)) {
            i += 1;
            continue;
        }
        let start = i;
        while i < b1 && is_ident(chars[i].0) {
            i += 1;
        }
        let name: String = chars[start..i].iter().map(|&(c, _)| c).collect();
        // A call site: identifier directly followed by `(` (no macro `!`).
        if chars.get(i).map(|&(c, _)| c) != Some('(') {
            continue;
        }
        if name == "drop" {
            if let Some((arg, _)) = first_arg_ident(flat, i) {
                events.push(Event::Drop {
                    name: arg,
                    pos: start,
                });
            }
            continue;
        }
        if KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        // Acquisition-shaped sites are acquisition events, never calls.
        let prev = (start > 0).then(|| chars[start - 1].0);
        if prev == Some('.') {
            let empty_args = chars.get(i + 1).map(|&(c, _)| c) == Some(')');
            if name == "plock" || (empty_args && matches!(name.as_str(), "lock" | "read" | "write"))
            {
                continue;
            }
        }
        let (receiver, path_type) = match prev {
            Some('.') => (receiver_ident(flat, start - 1).map(|(r, _)| r), None),
            Some(':') if start >= 2 && chars[start - 2].0 == ':' => {
                (None, flat.ident_ending_at(start - 2).map(|(t, _)| t))
            }
            _ => (None, None),
        };
        let callees = resolver.resolve(&name, receiver.as_deref(), path_type.as_deref(), owner);
        if callees.is_empty() {
            continue;
        }
        let binder = binding_name(flat, b0, start);
        events.push(Event::Call {
            callees,
            binder,
            depth: depth_of(start),
            pos: start,
        });
    }
    events.sort_by_key(Event::pos);
    events
}

/// Walks the receiver chain left of the `.` at `dot`: skips one optional
/// `[…]` index group, then reads the field identifier.
fn receiver_ident(flat: &Flat<'_>, dot: usize) -> Option<(String, usize)> {
    let chars = &flat.chars;
    let mut k = dot;
    while k > 0 && chars[k - 1].0.is_whitespace() {
        k -= 1;
    }
    if k > 0 && chars[k - 1].0 == ']' {
        let mut depth = 0i32;
        while k > 0 {
            k -= 1;
            match chars[k].0 {
                ']' => depth += 1,
                '[' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
        }
    }
    flat.ident_ending_at(k)
}

/// Reads the identifier of `drop(x)`'s argument.
fn first_arg_ident(flat: &Flat<'_>, open: usize) -> Option<(String, usize)> {
    let chars = &flat.chars;
    let mut i = open + 1;
    while i < chars.len() && (chars[i].0.is_whitespace() || chars[i].0 == '&') {
        i += 1;
    }
    let start = i;
    while i < chars.len() && is_ident(chars[i].0) {
        i += 1;
    }
    if i > start && chars.get(i).map(|&(c, _)| c) == Some(')') {
        let name: String = chars[start..i].iter().map(|&(c, _)| c).collect();
        Some((name, start))
    } else {
        None
    }
}

/// If the event starting at `ev_start` is the direct right-hand side of a
/// plain `let [mut] name = <receiver chain>…` in the same statement, returns
/// `name`.  Anything non-trivial between `=` and the event (closures, calls,
/// tuple patterns) disqualifies the binding — the guard is then treated as a
/// temporary, which can only under-approximate the held set.
fn binding_name(flat: &Flat<'_>, body_start: usize, ev_start: usize) -> Option<String> {
    let chars = &flat.chars;
    let mut q = ev_start;
    while q > body_start {
        let c = chars[q - 1].0;
        if c == ';' || c == '{' || c == '}' {
            break;
        }
        q -= 1;
    }
    let stmt: String = chars[q..ev_start].iter().map(|&(c, _)| c).collect();
    let let_pos = stmt.find("let ")?;
    let after_let = stmt[let_pos + 4..].trim_start();
    let after_let = after_let
        .strip_prefix("mut ")
        .unwrap_or(after_let)
        .trim_start();
    let name: String = after_let.chars().take_while(|&c| is_ident(c)).collect();
    if name.is_empty() {
        return None;
    }
    let eq_rel = after_let.find('=')?;
    // Purity check: only a receiver chain may sit between `=` and the event.
    let between = &after_let[eq_rel + 1..];
    if between
        .chars()
        .all(|c| is_ident(c) || c.is_whitespace() || ".&*[]".contains(c))
    {
        Some(name)
    } else {
        None
    }
}

/// Strongly connected components with ≥2 nodes, plus self-loop nodes.
fn find_cycles(edges: &[LockEdge]) -> Vec<Vec<String>> {
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let mut nodes: BTreeSet<&str> = BTreeSet::new();
    for e in edges {
        adj.entry(&e.from).or_default().insert(&e.to);
        nodes.insert(&e.from);
        nodes.insert(&e.to);
    }
    let reachable = |from: &str, to: &str| -> bool {
        let mut stack = vec![from];
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        while let Some(n) = stack.pop() {
            for &next in adj.get(n).into_iter().flatten() {
                if next == to {
                    return true;
                }
                if seen.insert(next) {
                    stack.push(next);
                }
            }
        }
        false
    };
    let mut cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for &n in &nodes {
        if reachable(n, n) {
            // Canonical cycle: every node on some loop through `n`.
            let members: Vec<String> = nodes
                .iter()
                .filter(|&&m| (m == n) || (reachable(n, m) && reachable(m, n)))
                .map(|&m| m.to_string())
                .collect();
            cycles.insert(members);
        }
    }
    cycles.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::from_text(src, "t.rs", "t")
    }

    #[test]
    fn declared_names() {
        assert_eq!(declared_name("    control: "), Some("control".into()));
        assert_eq!(declared_name("    deques: Vec<"), Some("deques".into()));
        assert_eq!(declared_name("let m = "), Some("m".into()));
        assert_eq!(declared_name("use std::sync::"), None);
    }

    #[test]
    fn cycle_detected_between_two_locks() {
        let src = "
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn f(&self) { let ga = self.a.plock(\"a\"); let gb = self.b.plock(\"b\"); }
    fn g(&self) { let gb = self.b.plock(\"b\"); let ga = self.a.plock(\"a\"); }
}
";
        let f = file(src);
        let analysis = analyze(&[&f], false);
        assert_eq!(analysis.locks.len(), 2);
        assert_eq!(analysis.cycles.len(), 1);
        assert_eq!(analysis.cycles[0], vec!["a".to_string(), "b".to_string()]);
        assert!(!analysis.violations.is_empty());
    }

    #[test]
    fn consistent_order_is_clean() {
        let src = "
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn f(&self) { let ga = self.a.plock(\"a\"); let gb = self.b.plock(\"b\"); }
    fn g(&self) { let ga = self.a.plock(\"a\"); let gb = self.b.plock(\"b\"); }
}
";
        let analysis = analyze(&[&file(src)], false);
        assert_eq!(analysis.edges.len(), 1);
        assert!(analysis.cycles.is_empty());
        assert!(analysis.violations.is_empty());
    }

    #[test]
    fn drop_releases_the_guard() {
        let src = "
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn f(&self) { let ga = self.a.plock(\"a\"); drop(ga); let gb = self.b.plock(\"b\"); }
    fn g(&self) { let gb = self.b.plock(\"b\"); let ga = self.a.plock(\"a\"); }
}
";
        let analysis = analyze(&[&file(src)], false);
        // Only b -> a remains; no cycle.
        assert_eq!(analysis.edges.len(), 1);
        assert_eq!(analysis.edges[0].from, "b");
        assert!(analysis.cycles.is_empty());
    }

    #[test]
    fn scope_end_releases_the_guard() {
        // The deposit pattern: a guard bound inside a `{ … }` expression
        // block dies at the block's end, so re-locking afterwards is not a
        // self-deadlock.
        let src = "
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn f(&self) {
        let x = { let ga = self.a.plock(\"a\"); 1 };
        let gb = self.b.plock(\"b\");
        let ga2 = self.a.plock(\"a\");
    }
}
";
        let analysis = analyze(&[&file(src)], false);
        // Only b -> a (second block); `ga` died before `gb` was taken.
        assert_eq!(analysis.edges.len(), 1);
        assert_eq!(
            (
                analysis.edges[0].from.as_str(),
                analysis.edges[0].to.as_str()
            ),
            ("b", "a")
        );
        assert!(analysis.cycles.is_empty());
    }

    #[test]
    fn transitive_acquisition_through_calls() {
        let src = "
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn helper(&self) { let gb = self.b.plock(\"b\"); }
    fn f(&self) { let ga = self.a.plock(\"a\"); self.helper(); }
}
";
        let analysis = analyze(&[&file(src)], false);
        assert!(analysis.edges.iter().any(|e| e.from == "a" && e.to == "b"));
    }

    #[test]
    fn temporaries_in_closures_do_not_hold() {
        // The snapshot pattern from StealDeques::steal: a temporary guard
        // inside an iterator closure must not count as held.
        let src = "
struct S { deques: Vec<Mutex<u32>> }
impl S {
    fn steal(&self) {
        let victims: Vec<u32> = (0..3).map(|v| *self.deques[v].plock(\"d\")).collect();
        let g = self.deques[0].plock(\"d\");
    }
}
";
        let analysis = analyze(&[&file(src)], false);
        assert!(analysis.edges.is_empty());
        assert!(analysis.cycles.is_empty());
    }

    #[test]
    fn wrapper_functions_hold_when_bound() {
        let src = "
struct S { a: Mutex<u32>, b: Mutex<u32> }
impl S {
    fn lock_a(&self) -> MutexGuard<'_, u32> { self.a.plock(\"a\") }
    fn f(&self) { let ga = self.lock_a(); let gb = self.b.plock(\"b\"); }
    fn g(&self) { let gb = self.b.plock(\"b\"); let ga = self.lock_a(); }
}
";
        let analysis = analyze(&[&file(src)], false);
        assert!(analysis.edges.iter().any(|e| e.from == "a" && e.to == "b"));
        assert!(analysis.edges.iter().any(|e| e.from == "b" && e.to == "a"));
        assert_eq!(analysis.cycles.len(), 1);
    }

    #[test]
    fn std_method_names_do_not_alias_workspace_methods() {
        // `items.push(…)` must not resolve to `W::push` just because the
        // names match; `self.w.push()` must, because `w`'s declared type
        // owns a `push`.
        let src = "
struct W { b: Mutex<u32> }
impl W {
    fn push(&self) { let gb = self.b.plock(\"b\"); }
}
struct S { a: Mutex<u32>, w: W, items: Vec<u32> }
impl S {
    fn f(&mut self) { let ga = self.a.plock(\"a\"); self.items.push(1); }
    fn g(&self) { let ga = self.a.plock(\"a\"); self.w.push(); }
}
";
        let analysis = analyze(&[&file(src)], false);
        assert_eq!(analysis.edges.len(), 1);
        assert_eq!(
            (
                analysis.edges[0].from.as_str(),
                analysis.edges[0].to.as_str()
            ),
            ("a", "b")
        );
        assert!(analysis.cycles.is_empty());
    }

    #[test]
    fn plock_sites_are_not_calls_into_lock_helpers() {
        // The PoisonLock pattern: `plock`'s body uses std's argument-less
        // `.lock()`, and a deque helper is named `lock`.  Neither may make
        // `self.a.plock(…)` look like a deque acquisition.
        let src = "
struct D { deques: Vec<Mutex<u32>> }
impl D {
    fn lock(&self, w: usize) -> MutexGuard<'_, u32> { self.deques[w].plock(\"d\") }
}
impl<T> PoisonLock<T> for Mutex<T> {
    fn plock(&self, what: &'static str) -> MutexGuard<'_, T> {
        self.lock().unwrap_or_else(|_| panic!(\"{what}\"))
    }
}
struct S { a: Mutex<u32> }
impl S {
    fn f(&self) { let ga = self.a.plock(\"a\"); let gb = self.a.plock(\"a\"); }
}
";
        let analysis = analyze(&[&file(src)], false);
        // The only legitimate edge is a -> a from f's double-acquire; no
        // `deques` edges may appear.
        assert!(analysis.edges.iter().all(|e| e.from == "a" && e.to == "a"));
    }
}
