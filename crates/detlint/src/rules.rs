//! The determinism token rules and the lock-unwrap pattern rule.
//!
//! Each rule scans a file's *code view* (comments and literals blanked, test
//! regions skipped) and returns raw diagnostics; the caller applies the
//! allowlist afterwards so suppressed findings are still visible in the
//! report.

use crate::report::Diagnostic;
use crate::source::{token_lines, SourceFile};

/// `hash-container`: `HashMap`/`HashSet` iterate in hash order, which varies
/// with insertion history — a silent nondeterminism hazard in any crate that
/// produces results or metrics.  `BTreeMap`/`BTreeSet` (or an explicit sort
/// before iterating) keeps every output path canonically ordered.
pub fn hash_container(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for token in ["HashMap", "HashSet"] {
        for line in token_lines(file, token) {
            out.push(Diagnostic {
                rule: "hash-container",
                file: file.rel_path.clone(),
                line,
                message: format!(
                    "{token} has unordered iteration; use BTreeMap/BTreeSet or sort before \
                     iterating (allow with `// detlint: allow(hash-container, reason = ...)`)"
                ),
            });
        }
    }
    out
}

/// `wall-clock`: reads of real time or the process environment make a value
/// depend on when/where the run happens.  Only the wall throttle and the
/// bench binaries may touch them; everything else must derive timing from
/// the simulated clock.
pub fn wall_clock(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for token in [
        "Instant::now",
        "SystemTime",
        "env::var",
        "env::vars",
        "env::args",
    ] {
        for line in token_lines(file, token) {
            out.push(Diagnostic {
                rule: "wall-clock",
                file: file.rel_path.clone(),
                line,
                message: format!(
                    "`{token}` makes results depend on wall time or the environment; use the \
                     simulated clock, or allow with a reason if this only feeds observability"
                ),
            });
        }
    }
    out
}

/// `ambient-rng`: only explicitly seeded generators (the in-tree
/// xoshiro256++ `RngStream`) are allowed; entropy-seeded or hash-ambient
/// randomness breaks bit-identical replay.
pub fn ambient_rng(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for token in [
        "thread_rng",
        "from_entropy",
        "rand::",
        "RandomState",
        "DefaultHasher",
        "getrandom",
    ] {
        for line in token_lines(file, token) {
            out.push(Diagnostic {
                rule: "ambient-rng",
                file: file.rel_path.clone(),
                line,
                message: format!(
                    "`{token}` draws ambient randomness; use a seeded simkit::RngStream \
                     (xoshiro256++) so every run replays bit-identically"
                ),
            });
        }
    }
    out
}

/// `unsafe-safety`: every `unsafe` occurrence must carry a `// SAFETY:`
/// comment on the same line or within the three lines above it.
pub fn unsafe_safety(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for line in token_lines(file, "unsafe") {
        let li = line - 1;
        let documented = (li.saturating_sub(3)..=li)
            .any(|i| file.raw.get(i).is_some_and(|l| l.contains("SAFETY:")));
        if !documented {
            out.push(Diagnostic {
                rule: "unsafe-safety",
                file: file.rel_path.clone(),
                line,
                message: "`unsafe` without a `// SAFETY:` comment on or directly above the site"
                    .to_string(),
            });
        }
    }
    out
}

/// `lock-unwrap`: `.lock().unwrap()` silently conflates poisoning with every
/// other panic.  In the `exec` crate (where `enforce_plock` is set) *any*
/// bare `.lock()` outside the designated `sync.rs` wrapper is rejected —
/// acquisition must go through `PoisonLock::plock`, which names the lock in
/// its poison message.
pub fn lock_unwrap(file: &SourceFile, enforce_plock: bool) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let in_wrapper = file.rel_path.ends_with("sync.rs");
    for (li, line) in file.code.iter().enumerate() {
        if !file.is_lintable(li) {
            continue;
        }
        if let Some(pos) = line.find(".lock()") {
            let after = &line[pos + ".lock()".len()..];
            if after.starts_with(".unwrap()") {
                out.push(Diagnostic {
                    rule: "lock-unwrap",
                    file: file.rel_path.clone(),
                    line: li + 1,
                    message: ".lock().unwrap() loses the poison context; use a \
                              poison-propagating wrapper (PoisonLock::plock)"
                        .to_string(),
                });
                continue;
            }
            if enforce_plock && !in_wrapper {
                out.push(Diagnostic {
                    rule: "lock-unwrap",
                    file: file.rel_path.clone(),
                    line: li + 1,
                    message: "bare .lock() in exec; acquire through PoisonLock::plock so a \
                              poisoned lock names itself when it panics"
                        .to_string(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::from_text(src, "t.rs", "t")
    }

    #[test]
    fn hash_rule_fires_once_per_line() {
        let f = file("use std::collections::HashMap;\nlet m: HashMap<u8, HashMap<u8, u8>> = HashMap::new();\n");
        assert_eq!(hash_container(&f).len(), 2);
    }

    #[test]
    fn wall_clock_ignores_comments_and_tests() {
        let f = file("// Instant::now in a comment\n#[cfg(test)]\nmod t {\n  fn x() { let t = Instant::now(); }\n}\n");
        assert!(wall_clock(&f).is_empty());
    }

    #[test]
    fn unsafe_needs_safety_comment() {
        let bad = file("fn f() { unsafe { work() } }\n");
        assert_eq!(unsafe_safety(&bad).len(), 1);
        let good = file("// SAFETY: the buffer outlives the call.\nfn f() { unsafe { work() } }\n");
        assert!(unsafe_safety(&good).is_empty());
    }

    #[test]
    fn lock_unwrap_patterns() {
        let f = file("let g = m.lock().unwrap();\n");
        assert_eq!(lock_unwrap(&f, false).len(), 1);
        let g = file("let g = m.lock().expect(\"poisoned\");\n");
        assert!(lock_unwrap(&g, false).is_empty());
        assert_eq!(lock_unwrap(&g, true).len(), 1);
    }
}
