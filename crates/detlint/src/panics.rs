//! Panic-path audit: inventory `unwrap` / `expect` / slice-indexing sites in
//! library code and diff them against a checked-in budget.
//!
//! New panic paths are cheap to add and expensive to discover in production;
//! the budget file (`detlint-budget.txt` at the workspace root) turns every
//! addition into an explicit review decision.  `cargo run -p detlint --
//! budget` regenerates the file; CI fails when a crate exceeds its budget
//! and prints a notice when a budget can be ratcheted down.

use std::collections::BTreeMap;
use std::fmt;

use crate::report::Diagnostic;
use crate::source::SourceFile;

/// Panic-path site counts for one crate's library code.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PanicCounts {
    /// `.unwrap()` call sites.
    pub unwrap: usize,
    /// `.expect(` call sites.
    pub expect: usize,
    /// Slice/array/map indexing expressions (`x[i]`).
    pub index: usize,
}

impl PanicCounts {
    fn add(&mut self, other: PanicCounts) {
        self.unwrap += other.unwrap;
        self.expect += other.expect;
        self.index += other.index;
    }
}

impl fmt::Display for PanicCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unwrap={} expect={} index={}",
            self.unwrap, self.expect, self.index
        )
    }
}

/// Counts panic paths in one file's non-test code.
#[must_use]
pub fn count_file(file: &SourceFile) -> PanicCounts {
    let mut counts = PanicCounts::default();
    for (li, line) in file.code.iter().enumerate() {
        if !file.is_lintable(li) {
            continue;
        }
        counts.unwrap += line.matches(".unwrap()").count();
        counts.expect += line.matches(".expect(").count();
        counts.index += index_sites(line);
    }
    counts
}

/// Counts indexing expressions on a code line: a `[` directly preceded by an
/// identifier character, `)`, or `]` — which excludes attributes (`#[`),
/// macros (`vec![`), slice types (`&[u8]`) and array literals (`= [1, 2]`).
fn index_sites(line: &str) -> usize {
    let chars: Vec<char> = line.chars().collect();
    chars
        .iter()
        .enumerate()
        .filter(|&(i, &c)| {
            c == '['
                && i > 0
                && (chars[i - 1].is_ascii_alphanumeric()
                    || chars[i - 1] == '_'
                    || chars[i - 1] == ')'
                    || chars[i - 1] == ']')
        })
        .count()
}

/// Aggregates counts per crate, excluding binary targets (`src/bin/`).
#[must_use]
pub fn count_workspace(files: &[SourceFile]) -> BTreeMap<String, PanicCounts> {
    let mut per_crate: BTreeMap<String, PanicCounts> = BTreeMap::new();
    for file in files {
        if file.rel_path.contains("/bin/") {
            continue;
        }
        per_crate
            .entry(file.krate.clone())
            .or_default()
            .add(count_file(file));
    }
    per_crate
}

/// Renders the budget file.
#[must_use]
pub fn render_budget(counts: &BTreeMap<String, PanicCounts>) -> String {
    let mut out = String::from(
        "# detlint panic-path budget — library (non-test, non-bin) code only.\n\
         # One line per crate: `<crate> unwrap=N expect=N index=N`.\n\
         # Exceeding a budget fails `detlint check`; regenerate deliberately with\n\
         #   cargo run -p detlint -- budget\n",
    );
    for (krate, c) in counts {
        out.push_str(&format!("{krate} {c}\n"));
    }
    out
}

/// Parses a budget file; malformed lines are reported as violations.
#[must_use]
pub fn parse_budget(
    text: &str,
    budget_path: &str,
) -> (BTreeMap<String, PanicCounts>, Vec<Diagnostic>) {
    let mut budget = BTreeMap::new();
    let mut problems = Vec::new();
    for (li, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let Some(krate) = parts.next() else { continue };
        let mut counts = PanicCounts::default();
        let mut ok = true;
        for kv in parts {
            match kv
                .split_once('=')
                .and_then(|(k, v)| Some((k, v.parse::<usize>().ok()?)))
            {
                Some(("unwrap", v)) => counts.unwrap = v,
                Some(("expect", v)) => counts.expect = v,
                Some(("index", v)) => counts.index = v,
                _ => ok = false,
            }
        }
        if ok {
            budget.insert(krate.to_string(), counts);
        } else {
            problems.push(Diagnostic {
                rule: "panic-budget",
                file: budget_path.to_string(),
                line: li + 1,
                message: format!("malformed budget line: `{line}`"),
            });
        }
    }
    (budget, problems)
}

/// Compares measured counts against the budget.  Over budget (or a crate
/// missing from the budget) is a violation; under budget is a notice.
pub fn compare(
    current: &BTreeMap<String, PanicCounts>,
    budget: &BTreeMap<String, PanicCounts>,
    budget_path: &str,
) -> (Vec<Diagnostic>, Vec<String>) {
    let mut violations = Vec::new();
    let mut notices = Vec::new();
    for (krate, cur) in current {
        let Some(allowed) = budget.get(krate) else {
            violations.push(Diagnostic {
                rule: "panic-budget",
                file: budget_path.to_string(),
                line: 0,
                message: format!(
                    "crate `{krate}` has no panic budget (measured {cur}); \
                     run `cargo run -p detlint -- budget` and review the diff"
                ),
            });
            continue;
        };
        for (what, c, b) in [
            ("unwrap", cur.unwrap, allowed.unwrap),
            ("expect", cur.expect, allowed.expect),
            ("index", cur.index, allowed.index),
        ] {
            if c > b {
                violations.push(Diagnostic {
                    rule: "panic-budget",
                    file: budget_path.to_string(),
                    line: 0,
                    message: format!(
                        "crate `{krate}` exceeds its `{what}` budget: {c} > {b}; new panic \
                         paths need a deliberate budget bump (cargo run -p detlint -- budget)"
                    ),
                });
            } else if c < b {
                notices.push(format!(
                    "crate `{krate}` is under its `{what}` budget ({c} < {b}); \
                     consider ratcheting down with `cargo run -p detlint -- budget`"
                ));
            }
        }
    }
    (violations, notices)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_heuristic() {
        assert_eq!(index_sites("let x = arr[i] + map[&k];"), 2);
        assert_eq!(index_sites("#[derive(Debug)]"), 0);
        assert_eq!(index_sites("let v = vec![1, 2];"), 0);
        assert_eq!(index_sites("fn f(x: &[u8]) -> [u8; 4] {"), 0);
        assert_eq!(index_sites("rows()[idx]"), 1);
    }

    #[test]
    fn counts_skip_tests_and_comments() {
        let src = "fn f() { a.unwrap(); b.expect(\"x\"); }\n\
                   // c.unwrap()\n\
                   #[cfg(test)]\nmod t { fn g() { d.unwrap(); } }\n";
        let f = SourceFile::from_text(src, "t.rs", "t");
        let c = count_file(&f);
        assert_eq!((c.unwrap, c.expect, c.index), (1, 1, 0));
    }

    #[test]
    fn budget_round_trip_and_compare() {
        let mut counts = BTreeMap::new();
        counts.insert(
            "exec".to_string(),
            PanicCounts {
                unwrap: 2,
                expect: 3,
                index: 10,
            },
        );
        let text = render_budget(&counts);
        let (parsed, problems) = parse_budget(&text, "b.txt");
        assert!(problems.is_empty());
        assert_eq!(parsed, counts);
        // Equal: clean.
        let (v, n) = compare(&counts, &parsed, "b.txt");
        assert!(v.is_empty() && n.is_empty());
        // Over: violation.
        let mut over = counts.clone();
        over.get_mut("exec").unwrap().unwrap = 5;
        let (v, _) = compare(&over, &parsed, "b.txt");
        assert_eq!(v.len(), 1);
        // Under: notice only.
        let mut under = counts.clone();
        under.get_mut("exec").unwrap().index = 1;
        let (v, n) = compare(&under, &parsed, "b.txt");
        assert!(v.is_empty());
        assert_eq!(n.len(), 1);
        // Unknown crate: violation.
        let mut extra = counts.clone();
        extra.insert("newcrate".to_string(), PanicCounts::default());
        let (v, _) = compare(&extra, &parsed, "b.txt");
        assert_eq!(v.len(), 1);
    }
}
