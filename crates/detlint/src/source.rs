//! Source-file model: a lightweight Rust lexer.
//!
//! `detlint` is deliberately dependency-free (the workspace vendors its few
//! deps offline), so instead of a full parser it builds a *code view* of each
//! file: the raw text with every comment and string/character-literal body
//! blanked out.  Token searches over the code view cannot be fooled by
//! `"HashMap"` appearing in a string or a doc comment.  On top of that the
//! model locates `#[cfg(test)]` items (rules skip test code) and parses the
//! per-site allowlist directives:
//!
//! ```text
//! // detlint: allow(<rule>, reason = "why this site is sound")
//! ```
//!
//! A directive suppresses matching diagnostics on its own line (trailing
//! form) or, when it stands alone, on the next line that carries code.

use std::fs;
use std::io;
use std::path::Path;

/// Rule identifiers a `detlint: allow(...)` directive may name.
pub const RULES: &[&str] = &[
    "hash-container",
    "wall-clock",
    "ambient-rng",
    "lock-unwrap",
    "lock-discipline",
    "panic-budget",
    "unsafe-safety",
];

/// One parsed `// detlint: allow(rule, reason = "...")` directive.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule the directive suppresses.
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// 1-based line whose diagnostics are suppressed.
    pub target_line: usize,
    /// 1-based line the directive itself appears on.
    pub directive_line: usize,
}

/// A scanned source file: raw lines, the blanked code view, test-region and
/// allowlist metadata.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, used verbatim in diagnostics.
    pub rel_path: String,
    /// Name of the crate the file belongs to (scoping is per crate).
    pub krate: String,
    /// Raw lines exactly as read.
    pub raw: Vec<String>,
    /// Lines with comments and literal bodies replaced by spaces.
    pub code: Vec<String>,
    /// `in_test[i]` is true when line `i` sits inside a `#[cfg(test)]` item.
    pub in_test: Vec<bool>,
    /// Well-formed allow directives.
    pub allows: Vec<Allow>,
    /// Malformed directives as `(1-based line, problem)` — always an error;
    /// a suppression without a reason (or for an unknown rule) is itself a
    /// lint violation.
    pub bad_allows: Vec<(usize, String)>,
}

impl SourceFile {
    /// Reads and scans `path`, recording it under `rel_path` / `krate`.
    pub fn read(path: &Path, rel_path: &str, krate: &str) -> io::Result<SourceFile> {
        let text = fs::read_to_string(path)?;
        Ok(SourceFile::from_text(&text, rel_path, krate))
    }

    /// Scans in-memory source text (used by the fixture tests).
    #[must_use]
    pub fn from_text(text: &str, rel_path: &str, krate: &str) -> SourceFile {
        let code_text = blank_non_code(text);
        let raw: Vec<String> = text.lines().map(str::to_string).collect();
        let code: Vec<String> = code_text.lines().map(str::to_string).collect();
        let in_test = mark_test_regions(&code);
        let (allows, bad_allows) = parse_allows(&raw, &code);
        SourceFile {
            rel_path: rel_path.to_string(),
            krate: krate.to_string(),
            raw,
            code,
            in_test,
            allows,
            bad_allows,
        }
    }

    /// True when line `line0` (0-based) carries non-test code.
    #[must_use]
    pub fn is_lintable(&self, line0: usize) -> bool {
        !self.in_test.get(line0).copied().unwrap_or(true)
    }
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Replaces comments and string/char-literal bodies with spaces, preserving
/// line structure.  Handles nested block comments, raw strings (`r"…"`,
/// `r#"…"#`, byte variants) and distinguishes lifetimes from char literals.
fn blank_non_code(text: &str) -> String {
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let n = chars.len();
    let mut i = 0;
    let blank = |c: char| if c == '\n' { '\n' } else { ' ' };
    while i < n {
        let c = chars[i];
        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            while i < n && chars[i] != '\n' {
                out.push(' ');
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < n {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(blank(chars[i]));
                    i += 1;
                }
            }
            continue;
        }
        // Raw string: r"…" or r#…#"…"#…# (possibly after a pushed `b`).
        if c == 'r' && (i == 0 || !is_ident(chars[i - 1])) {
            let mut j = i + 1;
            let mut hashes = 0;
            while chars.get(j) == Some(&'#') {
                hashes += 1;
                j += 1;
            }
            if chars.get(j) == Some(&'"') {
                // Blank from `r` through the closing quote+hashes.
                let close: String = std::iter::once('"')
                    .chain("#".repeat(hashes).chars())
                    .collect();
                let mut k = j + 1;
                while k < n {
                    if chars[k] == '"'
                        && chars[k..].iter().take(close.len()).collect::<String>() == close
                    {
                        k += close.len();
                        break;
                    }
                    k += 1;
                }
                for &ch in &chars[i..k.min(n)] {
                    out.push(blank(ch));
                }
                i = k.min(n);
                continue;
            }
        }
        // Plain string (covers b"…" since the `b` is ordinary code).
        if c == '"' {
            out.push(' ');
            i += 1;
            while i < n {
                if chars[i] == '\\' && i + 1 < n {
                    out.push(' ');
                    out.push(blank(chars[i + 1]));
                    i += 2;
                    continue;
                }
                let done = chars[i] == '"';
                out.push(blank(chars[i]));
                i += 1;
                if done {
                    break;
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == '\'' {
            let next = chars.get(i + 1);
            let lifetime = matches!(next, Some(&nc) if is_ident(nc) && nc != '\\')
                && chars.get(i + 2) != Some(&'\'');
            if lifetime {
                out.push('\'');
                i += 1;
                continue;
            }
            // Consume the literal: 'x', '\n', '\u{1F600}', '\''.
            out.push(' ');
            i += 1;
            let mut steps = 0;
            while i < n && steps < 12 {
                if chars[i] == '\\' && i + 1 < n {
                    out.push(' ');
                    out.push(blank(chars[i + 1]));
                    i += 2;
                    steps += 2;
                    continue;
                }
                let done = chars[i] == '\'';
                out.push(blank(chars[i]));
                i += 1;
                steps += 1;
                if done {
                    break;
                }
            }
            continue;
        }
        out.push(c);
        i += 1;
    }
    out
}

/// Marks every line covered by a `#[cfg(test)]` item (the attribute's own
/// line through the item's closing brace, or just the attribute line for a
/// semicolon item).
fn mark_test_regions(code: &[String]) -> Vec<bool> {
    // Flatten to (char, line) for cross-line attribute and brace matching.
    let mut flat: Vec<(char, usize)> = Vec::new();
    for (li, line) in code.iter().enumerate() {
        for ch in line.chars() {
            flat.push((ch, li));
        }
        flat.push(('\n', li));
    }
    let needle: Vec<char> = "#[cfg(test)]".chars().collect();
    let matches_at = |at: usize| {
        flat.len() - at >= needle.len()
            && needle
                .iter()
                .enumerate()
                .all(|(o, &nc)| flat[at + o].0 == nc)
    };
    let mut in_test = vec![false; code.len()];
    let mut i = 0;
    while i < flat.len() {
        if !matches_at(i) {
            i += 1;
            continue;
        }
        let start_line = flat[i].1;
        // Walk to the first `{` or `;` after the attribute.
        let mut j = i + needle.len();
        while j < flat.len() && flat[j].0 != '{' && flat[j].0 != ';' {
            j += 1;
        }
        if j < flat.len() && flat[j].0 == '{' {
            let mut depth = 0usize;
            let mut k = j;
            while k < flat.len() {
                match flat[k].0 {
                    '{' => depth += 1,
                    '}' => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            let end_line = flat[k.min(flat.len() - 1)].1;
            for flag in in_test.iter_mut().take(end_line + 1).skip(start_line) {
                *flag = true;
            }
            i = k + 1;
        } else {
            in_test[start_line] = true;
            i = j + 1;
        }
    }
    in_test
}

/// Parses `detlint: allow(rule, reason = "...")` directives out of the raw
/// lines (they live in comments, which the code view blanks).
fn parse_allows(raw: &[String], code: &[String]) -> (Vec<Allow>, Vec<(usize, String)>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for (li, line) in raw.iter().enumerate() {
        let Some(pos) = line.find("detlint: allow(") else {
            continue;
        };
        let lineno = li + 1;
        let after = &line[pos + "detlint: allow(".len()..];
        let rule: String = after
            .chars()
            .take_while(|&c| c != ',' && c != ')')
            .collect::<String>()
            .trim()
            .to_string();
        if !RULES.contains(&rule.as_str()) {
            bad.push((lineno, format!("unknown rule `{rule}` in allow directive")));
            continue;
        }
        let reason = after
            .find("reason")
            .and_then(|r| {
                let tail = &after[r + "reason".len()..];
                let eq = tail.trim_start().strip_prefix('=')?;
                let open = eq.find('"')?;
                let body = &eq[open + 1..];
                let close = body.find('"')?;
                Some(body[..close].trim().to_string())
            })
            .unwrap_or_default();
        if reason.is_empty() {
            bad.push((
                lineno,
                format!("allow({rule}) without a non-empty reason = \"...\""),
            ));
            continue;
        }
        // Trailing directive suppresses its own line; a standalone one
        // suppresses the next line carrying code.
        let own_code = code.get(li).is_some_and(|c| !c.trim().is_empty());
        let target_line = if own_code {
            lineno
        } else {
            let mut t = li + 1;
            while t < code.len() && code[t].trim().is_empty() {
                t += 1;
            }
            t + 1
        };
        allows.push(Allow {
            rule,
            reason,
            target_line,
            directive_line: lineno,
        });
    }
    (allows, bad)
}

/// Finds 1-based lines of `token` in the code view, requiring identifier
/// boundaries on both sides, skipping test regions.
pub fn token_lines(file: &SourceFile, token: &str) -> Vec<usize> {
    let mut hits = Vec::new();
    let first = token.chars().next().unwrap_or(' ');
    let last = token.chars().next_back().unwrap_or(' ');
    for (li, line) in file.code.iter().enumerate() {
        if !file.is_lintable(li) {
            continue;
        }
        let mut from = 0;
        while let Some(off) = line[from..].find(token) {
            let at = from + off;
            let before_ok = !is_ident(first)
                || at == 0
                || !line[..at].chars().next_back().is_some_and(is_ident);
            let after_ok = !is_ident(last)
                || line[at + token.len()..]
                    .chars()
                    .next()
                    .is_none_or(|c| !is_ident(c));
            if before_ok && after_ok {
                hits.push(li + 1);
                // One diagnostic per line is enough.
                break;
            }
            from = at + token.len();
        }
    }
    hits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blanks_comments_and_strings() {
        let src = "let a = \"HashMap\"; // HashMap here\nlet b = 1; /* HashMap */ let c = 2;\n";
        let out = blank_non_code(src);
        assert!(!out.contains("HashMap"));
        assert!(out.contains("let a ="));
        assert!(out.contains("let c = 2;"));
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let src = "fn f<'a>(x: &'a str) { let r = r#\"Instant::now\"#; let c = 'x'; }";
        let out = blank_non_code(src);
        assert!(!out.contains("Instant::now"));
        assert!(out.contains("fn f<'a>"));
    }

    #[test]
    fn cfg_test_region_is_marked() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn live2() {}\n";
        let file = SourceFile::from_text(src, "x.rs", "x");
        assert_eq!(file.in_test, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn allow_directive_targets_next_code_line() {
        let src =
            "// detlint: allow(wall-clock, reason = \"metrics only\")\nlet t = Instant::now();\n";
        let file = SourceFile::from_text(src, "x.rs", "x");
        assert_eq!(file.allows.len(), 1);
        assert_eq!(file.allows[0].target_line, 2);
        assert_eq!(file.allows[0].reason, "metrics only");
        assert!(file.bad_allows.is_empty());
    }

    #[test]
    fn allow_without_reason_is_bad() {
        let src = "// detlint: allow(wall-clock)\nlet t = 1;\n";
        let file = SourceFile::from_text(src, "x.rs", "x");
        assert!(file.allows.is_empty());
        assert_eq!(file.bad_allows.len(), 1);
    }

    #[test]
    fn token_boundaries_respected() {
        let src = "use MyHashMapLike;\nlet m: HashMap<u8, u8> = HashMap::new();\n";
        let file = SourceFile::from_text(src, "x.rs", "x");
        assert_eq!(token_lines(&file, "HashMap"), vec![2]);
    }
}
