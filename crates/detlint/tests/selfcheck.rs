//! The workspace self-check: `detlint check` must pass on this repository
//! with the committed budget — the same gate CI's `analysis` job runs.

#[test]
fn workspace_passes_detlint_with_committed_budget() {
    let root = detlint::default_root();
    let budget = root.join(detlint::BUDGET_FILE);
    let report = detlint::check_workspace(&root, &budget).expect("workspace scan");
    assert!(
        report.is_clean(),
        "detlint violations on the workspace:\n{}",
        report.human()
    );
    assert!(
        report.lock_cycles.is_empty(),
        "lock-order cycles: {:?}",
        report.lock_cycles
    );
}

#[test]
fn workspace_lock_graph_has_the_expected_edges() {
    let root = detlint::default_root();
    let files = detlint::load_workspace(&root).expect("workspace scan");
    let lock_files: Vec<_> = files
        .iter()
        .filter(|f| detlint::LOCK_CRATES.contains(&f.krate.as_str()))
        .collect();
    let analysis = detlint::locks::analyze(&lock_files, true);
    // The scheduler admits under its control lock while dealing tasks to
    // the worker deques and charging simulated I/O — and nothing acquires
    // in the opposite order.
    let edges: Vec<(String, String)> = analysis
        .edges
        .iter()
        .map(|e| (e.from.clone(), e.to.clone()))
        .collect();
    assert!(
        edges.contains(&("control".into(), "deques".into())),
        "missing control -> deques: {edges:?}"
    );
    assert!(
        edges.contains(&("control".into(), "state".into())),
        "missing control -> state: {edges:?}"
    );
    assert!(analysis.cycles.is_empty(), "{:?}", analysis.cycles);
    assert!(analysis.violations.is_empty(), "{:?}", analysis.violations);
}

#[test]
fn committed_budget_matches_current_counts_or_is_looser() {
    // `compare` already enforces "no crate over budget"; this pins the
    // budget file itself to stay parseable and cover every crate.
    let root = detlint::default_root();
    let files = detlint::load_workspace(&root).expect("workspace scan");
    let counts = detlint::panics::count_workspace(&files);
    let text = std::fs::read_to_string(root.join(detlint::BUDGET_FILE))
        .expect("budget file committed at the workspace root");
    let (budget, problems) = detlint::panics::parse_budget(&text, detlint::BUDGET_FILE);
    assert!(problems.is_empty(), "{problems:?}");
    for (krate, c) in &counts {
        let b = budget
            .get(krate)
            .unwrap_or_else(|| panic!("crate {krate} missing from budget"));
        assert!(
            c.unwrap <= b.unwrap && c.expect <= b.expect && c.index <= b.index,
            "{krate} over budget: have {c}, budget {b}"
        );
    }
}
