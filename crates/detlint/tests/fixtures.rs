//! Rule-by-rule fixture tests: one positive (violating) and one
//! allowlisted/clean negative per rule family, exercising the same code
//! paths `detlint check` runs on the real workspace.

use std::path::PathBuf;

use detlint::source::SourceFile;
use detlint::{apply_allowlist, locks, panics, rules};

fn fixture(name: &str) -> SourceFile {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    SourceFile::read(&path, &format!("fixtures/{name}"), "fixture")
        .unwrap_or_else(|e| panic!("fixture {name}: {e}"))
}

#[test]
fn hash_containers_are_flagged() {
    let f = fixture("hash_positive.rs");
    let (violations, allowed) = apply_allowlist(&f, rules::hash_container(&f));
    // Import line (HashMap + HashSet), the HashMap local, the HashSet local.
    assert_eq!(violations.len(), 4, "{violations:?}");
    assert!(allowed.is_empty());
    assert!(violations.iter().all(|d| d.rule == "hash-container"));
}

#[test]
fn justified_hash_container_is_allowlisted() {
    let f = fixture("hash_allowed.rs");
    assert!(f.bad_allows.is_empty(), "{:?}", f.bad_allows);
    let (violations, allowed) = apply_allowlist(&f, rules::hash_container(&f));
    assert!(violations.is_empty(), "{violations:?}");
    assert_eq!(allowed.len(), 1);
    assert!(allowed[0].reason.contains("never iterated"));
}

#[test]
fn wall_clock_reads_are_flagged() {
    let f = fixture("wall_clock_positive.rs");
    let (violations, allowed) = apply_allowlist(&f, rules::wall_clock(&f));
    // SystemTime on the import, signature and call lines; Instant::now and
    // env::var once each.
    assert_eq!(violations.len(), 5, "{violations:?}");
    assert!(allowed.is_empty());
}

#[test]
fn justified_wall_clock_read_is_allowlisted() {
    let f = fixture("wall_clock_allowed.rs");
    let (violations, allowed) = apply_allowlist(&f, rules::wall_clock(&f));
    assert!(violations.is_empty(), "{violations:?}");
    assert_eq!(allowed.len(), 1);
}

#[test]
fn ambient_randomness_is_flagged() {
    let f = fixture("rng_positive.rs");
    let (violations, allowed) = apply_allowlist(&f, rules::ambient_rng(&f));
    assert!(violations.len() >= 6, "{violations:?}");
    assert!(allowed.is_empty());
    for token in ["thread_rng", "from_entropy", "DefaultHasher", "RandomState"] {
        assert!(
            violations.iter().any(|d| d.message.contains(token)),
            "no diagnostic mentions {token}: {violations:?}"
        );
    }
}

#[test]
fn justified_scratch_hasher_is_allowlisted() {
    let f = fixture("rng_allowed.rs");
    let (violations, allowed) = apply_allowlist(&f, rules::ambient_rng(&f));
    assert!(violations.is_empty(), "{violations:?}");
    assert_eq!(allowed.len(), 1);
}

#[test]
fn lock_order_inversion_is_a_cycle() {
    let f = fixture("lock_cycle.rs");
    let analysis = locks::analyze(&[&f], false);
    assert_eq!(
        analysis.cycles,
        vec![vec!["a".to_string(), "b".to_string()]]
    );
    assert!(analysis
        .violations
        .iter()
        .any(|d| d.rule == "lock-discipline" && d.message.contains("deadlock")));
}

#[test]
fn consistent_lock_order_with_scopes_and_drops_is_acyclic() {
    let f = fixture("lock_clean.rs");
    let analysis = locks::analyze(&[&f], false);
    assert!(analysis.cycles.is_empty(), "{:?}", analysis.edges);
    // Only f's a -> b survives: g's guards die at scope end / drop.
    assert_eq!(analysis.edges.len(), 1);
    assert_eq!(analysis.edges[0].from, "a");
    assert_eq!(analysis.edges[0].to, "b");
}

#[test]
fn lock_unwrap_and_wrapper_bypass_are_flagged() {
    let f = fixture("lock_unwrap.rs");
    // Outside exec only the poison-swallowing form is an error…
    let relaxed = rules::lock_unwrap(&f, false);
    assert_eq!(relaxed.len(), 1, "{relaxed:?}");
    assert!(relaxed[0].message.contains("poison"));
    // …inside exec any bare .lock() outside sync.rs is too.
    let strict = rules::lock_unwrap(&f, true);
    assert_eq!(strict.len(), 2, "{strict:?}");
}

#[test]
fn sync_rs_is_exempt_from_the_plock_rule() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join("lock_unwrap.rs");
    let text = std::fs::read_to_string(path).expect("fixture readable");
    let f = SourceFile::from_text(&text, "crates/exec/src/sync.rs", "exec");
    // The wrapper file may use bare .lock(); swallowing poison is still out.
    let strict = rules::lock_unwrap(&f, true);
    assert_eq!(strict.len(), 1, "{strict:?}");
    assert!(strict[0].message.contains("poison"));
}

#[test]
fn undocumented_unsafe_is_flagged() {
    let f = fixture("unsafe_positive.rs");
    let diags = rules::unsafe_safety(&f);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].rule, "unsafe-safety");
}

#[test]
fn safety_comment_satisfies_the_unsafe_rule() {
    let f = fixture("unsafe_negative.rs");
    assert!(rules::unsafe_safety(&f).is_empty());
}

#[test]
fn panic_paths_are_counted_exactly() {
    let f = fixture("panic_paths.rs");
    let counts = panics::count_file(&f);
    assert_eq!(counts.unwrap, 2);
    assert_eq!(counts.expect, 1);
    // xs[0], xs[1], table[2]; the array literal and the string are excluded.
    assert_eq!(counts.index, 3);
}

#[test]
fn malformed_allow_directives_are_reported() {
    let f = fixture("bad_allow.rs");
    assert_eq!(f.bad_allows.len(), 2, "{:?}", f.bad_allows);
    assert!(f.bad_allows.iter().any(|(_, m)| m.contains("no-such-rule")));
    assert!(f
        .bad_allows
        .iter()
        .any(|(_, m)| m.contains("reason") || m.contains("missing")));
    // And no allow actually registered.
    assert!(f.allows.is_empty());
}

#[test]
fn wall_stamped_trace_events_are_flagged() {
    // The obs-crate rule in miniature: trace timestamps must come from the
    // simulated/logical clock, so wall-clock stamping is a violation on
    // the import, the SystemTime read and the Instant read.
    let f = fixture("trace_ts_positive.rs");
    let (violations, allowed) = apply_allowlist(&f, rules::wall_clock(&f));
    assert_eq!(violations.len(), 3, "{violations:?}");
    assert!(allowed.is_empty());
    assert!(violations.iter().all(|d| d.rule == "wall-clock"));
}

#[test]
fn logical_clock_trace_stamping_passes_with_one_justified_read() {
    // The deterministic design: logical-clock stamping produces no
    // diagnostics at all, and the single export-time wall read carries its
    // justification in place.
    let f = fixture("trace_ts_allowed.rs");
    assert!(f.bad_allows.is_empty(), "{:?}", f.bad_allows);
    let (violations, allowed) = apply_allowlist(&f, rules::wall_clock(&f));
    assert!(violations.is_empty(), "{violations:?}");
    assert_eq!(allowed.len(), 1);
    assert!(allowed[0].reason.contains("simulated clock"));
}
