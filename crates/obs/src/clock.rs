//! Trace time: simulated-millisecond conversion and the logical fallback
//! counter.
//!
//! Traces never read wall clocks (the detlint `wall-clock` rule bans them
//! for a reason: wall time is nondeterministic).  Deterministic events are
//! stamped from the simulated disk-clock time (`exec::DiskClock`) of the
//! charge that produced them, converted to integer microseconds here; when
//! the I/O layer is off there is no simulated clock, and deterministic
//! call sites fall back to a [`LogicalClock`] — a plain monotonic counter
//! advanced only on the deterministic path (e.g. once per admission, under
//! the scheduler's control lock), so its readings depend on admission
//! order alone.

use std::sync::atomic::{AtomicU64, Ordering};

/// Converts simulated milliseconds to the integer microseconds trace
/// events are stamped with (round-to-nearest; negative inputs clamp to 0).
///
/// Rounding f64 → u64 is itself deterministic, so bit-identical simulated
/// times yield identical timestamps.
#[must_use]
pub fn us_from_ms(ms: f64) -> u64 {
    if ms <= 0.0 {
        return 0;
    }
    let us = (ms * 1_000.0).round();
    if us >= u64::MAX as f64 {
        u64::MAX
    } else {
        us as u64
    }
}

/// A monotonic event counter — the timestamp source when no simulated disk
/// clock exists.
///
/// Determinism caveat: readings are deterministic only when every `tick`
/// happens on a deterministic code path (e.g. under one lock, in admission
/// order).  Ticking from racing worker threads yields valid but
/// run-dependent numbering — which is why worker-attributed events use
/// per-worker local cursors instead.
#[derive(Debug, Default)]
pub struct LogicalClock {
    next: AtomicU64,
}

impl LogicalClock {
    /// A counter starting at 0.
    #[must_use]
    pub fn new() -> Self {
        LogicalClock::default()
    }

    /// Returns the current value and advances the counter.
    pub fn tick(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// The number of ticks taken so far.
    #[must_use]
    pub fn elapsed(&self) -> u64 {
        self.next.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_to_us_rounds_and_clamps() {
        assert_eq!(us_from_ms(0.0), 0);
        assert_eq!(us_from_ms(-3.5), 0);
        assert_eq!(us_from_ms(1.0), 1_000);
        assert_eq!(us_from_ms(0.0004), 0);
        assert_eq!(us_from_ms(0.0006), 1);
        assert_eq!(us_from_ms(f64::MAX), u64::MAX);
    }

    #[test]
    fn logical_clock_counts_ticks() {
        let clock = LogicalClock::new();
        assert_eq!(clock.elapsed(), 0);
        assert_eq!(clock.tick(), 0);
        assert_eq!(clock.tick(), 1);
        assert_eq!(clock.elapsed(), 2);
    }
}
