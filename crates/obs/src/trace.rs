//! The structured trace core: typed events, the bounded recording ring and
//! the recorded [`Trace`] with its deterministic-section helpers.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard};

/// The timeline an event belongs to — one track per query, worker and disk
/// in the exported views.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Track {
    /// A submitted query's lifecycle timeline, by submission index.
    Query(u32),
    /// One pool worker's execution timeline.
    Worker(u32),
    /// One simulated disk's service timeline.
    Disk(u32),
    /// One simulated node's interconnect timeline (cross-node page
    /// transfers under a shared-nothing placement).
    Node(u32),
}

/// What happened.  Kinds split into the **deterministic section** (derived
/// purely from submission order and the simulated charge path, identical
/// across runs, worker counts and MPLs) and the **thread-attributed
/// section** (exact within one run, but stamped by whichever worker ran the
/// task).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum EventKind {
    /// Query entered the stream (instant, query track).
    QuerySubmit,
    /// Query was planned into fragment tasks (instant, query track).
    QueryPlan,
    /// Query passed admission control (instant, query track).
    QueryAdmit,
    /// Admission → completion span of a query on the simulated clock
    /// (query track).
    Query,
    /// One fragment scan's simulated disk activity (span, query track).
    Scan,
    /// Query's last scan finished on the simulated clock (instant, query
    /// track).
    QueryComplete,
    /// One cache object's service on a disk (span, disk track).
    DiskService,
    /// One scan's cross-node page transfer over the interconnect (span,
    /// node track).
    NetTransfer,
    /// A worker executed one task (span, worker track).
    TaskRun,
    /// A worker stole a task from a victim's deque (instant, worker track).
    Steal,
    /// A worker merged a completed query's partials (instant, worker
    /// track).
    Merge,
}

impl EventKind {
    /// The event name used by both exporters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::QuerySubmit => "query_submit",
            EventKind::QueryPlan => "query_plan",
            EventKind::QueryAdmit => "query_admit",
            EventKind::Query => "query",
            EventKind::Scan => "scan",
            EventKind::QueryComplete => "query_complete",
            EventKind::DiskService => "disk_service",
            EventKind::NetTransfer => "net_transfer",
            EventKind::TaskRun => "task_run",
            EventKind::Steal => "steal",
            EventKind::Merge => "merge",
        }
    }

    /// Whether events of this kind belong to the deterministic section:
    /// bit-identical across runs, worker counts and MPLs (given no ring
    /// drops).
    #[must_use]
    pub fn is_deterministic(self) -> bool {
        !matches!(
            self,
            EventKind::TaskRun | EventKind::Steal | EventKind::Merge
        )
    }
}

/// Typed field keys — events carry `(key, u64)` pairs instead of
/// stringly-typed attributes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FieldKey {
    /// Owning query's submission index.
    Query,
    /// Task position within the owning plan.
    Task,
    /// Store fragment number.
    Fragment,
    /// Planned fragment tasks of a query.
    Fragments,
    /// Fact rows scanned.
    Rows,
    /// Pages transferred from disk.
    Pages,
    /// Page requests satisfied by the shared cache.
    CacheHits,
    /// Page requests served from the platter.
    CacheMisses,
    /// Disk number under the configured allocation.
    Disk,
    /// 1 when the task was stolen, 0 when run by its seeded owner.
    Stolen,
    /// Worker the task was stolen from.
    Victim,
    /// Node number under the configured node placement.
    Node,
    /// Exact simulated milliseconds as `f64::to_bits` — lets consumers
    /// reproduce floating-point accounting bit for bit.
    SimMsBits,
}

impl FieldKey {
    /// The field name used by both exporters.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FieldKey::Query => "query",
            FieldKey::Task => "task",
            FieldKey::Fragment => "fragment",
            FieldKey::Fragments => "fragments",
            FieldKey::Rows => "rows",
            FieldKey::Pages => "pages",
            FieldKey::CacheHits => "cache_hits",
            FieldKey::CacheMisses => "cache_misses",
            FieldKey::Disk => "disk",
            FieldKey::Stolen => "stolen",
            FieldKey::Victim => "victim",
            FieldKey::Node => "node",
            FieldKey::SimMsBits => "sim_ms_bits",
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Arrival number in the ring (recording order).  Zeroed in
    /// [`Trace::deterministic_events`], whose order is canonical instead.
    pub seq: u64,
    /// The timeline the event belongs to.
    pub track: Track,
    /// What happened.
    pub kind: EventKind,
    /// Start timestamp in simulated (or logical) microseconds.
    pub ts_us: u64,
    /// Span duration in simulated microseconds (0 for instants).
    pub dur_us: u64,
    /// Typed attributes.
    pub fields: Vec<(FieldKey, u64)>,
}

impl TraceEvent {
    /// The value of `key`, if the event carries it.
    #[must_use]
    pub fn field(&self, key: FieldKey) -> Option<u64> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
    }

    /// The canonical total order of the deterministic section: track, then
    /// time, then kind, duration and fields — independent of arrival
    /// interleave.
    fn canonical_key(&self) -> (Track, u64, EventKind, u64, Vec<(FieldKey, u64)>) {
        (
            self.track,
            self.ts_us,
            self.kind,
            self.dur_us,
            self.fields.clone(),
        )
    }
}

/// The ring's interior: a bounded event buffer plus drop accounting.
#[derive(Debug)]
struct Ring {
    events: Vec<TraceEvent>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    dropped_by_kind: BTreeMap<&'static str, u64>,
}

/// A bounded, shareable event sink.
///
/// Recording takes one short mutex-protected append; when the ring is full
/// the incoming (newest) event is dropped and counted — explicitly, per
/// kind — rather than silently overwriting history.  A trace with
/// `dropped > 0` is still valid for within-run reconciliation of whatever
/// was kept, but its deterministic section is no longer comparable across
/// runs (the [`Trace::digest`] folds the drop count in so such comparisons
/// fail loudly).
#[derive(Debug)]
pub struct TraceRecorder {
    ring: Mutex<Ring>,
}

impl TraceRecorder {
    /// A recorder holding at most `capacity` events (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRecorder {
            ring: Mutex::new(Ring {
                events: Vec::new(),
                capacity,
                next_seq: 0,
                dropped: 0,
                dropped_by_kind: BTreeMap::new(),
            }),
        }
    }

    /// Appends one event; returns `false` (and counts the drop) when the
    /// ring is full.
    ///
    /// # Panics
    ///
    /// Panics if the ring lock is poisoned (a recording thread panicked).
    pub fn record(
        &self,
        track: Track,
        kind: EventKind,
        ts_us: u64,
        dur_us: u64,
        fields: Vec<(FieldKey, u64)>,
    ) -> bool {
        let mut ring = self.lock_ring();
        if ring.events.len() >= ring.capacity {
            ring.dropped += 1;
            *ring.dropped_by_kind.entry(kind.name()).or_insert(0) += 1;
            return false;
        }
        let seq = ring.next_seq;
        ring.next_seq += 1;
        ring.events.push(TraceEvent {
            seq,
            track,
            kind,
            ts_us,
            dur_us,
            fields,
        });
        true
    }

    /// Events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock_ring().events.len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.lock_ring().dropped
    }

    /// Consumes the recorder into its trace.
    ///
    /// # Panics
    ///
    /// Panics if the ring lock is poisoned.
    #[must_use]
    pub fn into_trace(self) -> Trace {
        let ring = self
            .ring
            .into_inner()
            .unwrap_or_else(|_| panic!("trace ring lock poisoned (a recording thread panicked)"));
        Trace {
            events: ring.events,
            capacity: ring.capacity,
            dropped: ring.dropped,
            dropped_by_kind: ring.dropped_by_kind,
        }
    }

    fn lock_ring(&self) -> MutexGuard<'_, Ring> {
        self.ring
            .lock()
            .unwrap_or_else(|_| panic!("trace ring lock poisoned (a recording thread panicked)"))
    }
}

/// A finished recording: events in arrival order plus drop accounting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    /// Every kept event, in recording order (`seq` ascending).
    pub events: Vec<TraceEvent>,
    /// The ring capacity the trace was recorded under.
    pub capacity: usize,
    /// Events dropped on ring overflow.
    pub dropped: u64,
    /// Drop counts per event kind name.
    pub dropped_by_kind: BTreeMap<&'static str, u64>,
}

impl Trace {
    /// The deterministic section: every event whose kind is
    /// [`EventKind::is_deterministic`], in canonical order with `seq`
    /// zeroed.  Given no drops, this is bit-identical across runs, worker
    /// counts and MPLs.
    #[must_use]
    pub fn deterministic_events(&self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = self
            .events
            .iter()
            .filter(|e| e.kind.is_deterministic())
            .cloned()
            .map(|mut e| {
                e.seq = 0;
                e
            })
            .collect();
        events.sort_by_key(TraceEvent::canonical_key);
        events
    }

    /// FNV-1a digest over the canonical deterministic section (drop count
    /// included, so an overflowing run never digest-matches a clean one).
    #[must_use]
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        let mut eat = |value: u64| {
            for byte in value.to_le_bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(PRIME);
            }
        };
        eat(self.dropped);
        for event in self.deterministic_events() {
            let (track_tag, track_id) = match event.track {
                Track::Query(id) => (0u64, id),
                Track::Worker(id) => (1, id),
                Track::Disk(id) => (2, id),
                Track::Node(id) => (3, id),
            };
            eat(track_tag);
            eat(u64::from(track_id));
            eat(event.kind as u64);
            eat(event.ts_us);
            eat(event.dur_us);
            eat(event.fields.len() as u64);
            for (key, value) in &event.fields {
                eat(*key as u64);
                eat(*value);
            }
        }
        hash
    }

    /// Events of one kind, in recording order.
    pub fn events_of(&self, kind: EventKind) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter().filter(move |e| e.kind == kind)
    }

    /// Number of events of one kind.
    #[must_use]
    pub fn count_of(&self, kind: EventKind) -> usize {
        self.events_of(kind).count()
    }

    /// Sum of `key` over all events of `kind` (events without the field
    /// contribute 0).
    #[must_use]
    pub fn sum_field(&self, kind: EventKind, key: FieldKey) -> u64 {
        self.events_of(kind).filter_map(|e| e.field(key)).sum()
    }

    /// Folds `SimMsBits` fields of `kind` events on `track` back into an
    /// `f64` sum, in recording order — reproducing a worker's or charge
    /// path's own accumulation order, and therefore its exact bits.
    #[must_use]
    pub fn sim_ms_on(&self, track: Track, kind: EventKind) -> f64 {
        self.events_of(kind)
            .filter(|e| e.track == track)
            .filter_map(|e| e.field(FieldKey::SimMsBits))
            .fold(0.0f64, |acc, bits| acc + f64::from_bits(bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(recorder: &TraceRecorder, id: u32, ts: u64) -> bool {
        recorder.record(
            Track::Query(id),
            EventKind::Scan,
            ts,
            5,
            vec![(FieldKey::Rows, 100), (FieldKey::Task, u64::from(id))],
        )
    }

    #[test]
    fn records_in_arrival_order_with_sequence_numbers() {
        let recorder = TraceRecorder::new(8);
        assert!(recorder.is_empty());
        assert!(event(&recorder, 1, 10));
        assert!(event(&recorder, 0, 7));
        assert_eq!(recorder.len(), 2);
        let trace = recorder.into_trace();
        assert_eq!(trace.events[0].seq, 0);
        assert_eq!(trace.events[1].seq, 1);
        assert_eq!(trace.events[0].field(FieldKey::Rows), Some(100));
        assert_eq!(trace.events[0].field(FieldKey::Disk), None);
        assert_eq!(trace.count_of(EventKind::Scan), 2);
        assert_eq!(trace.sum_field(EventKind::Scan, FieldKey::Rows), 200);
    }

    #[test]
    fn overflow_drops_newest_and_accounts_for_it() {
        let recorder = TraceRecorder::new(2);
        assert!(event(&recorder, 0, 0));
        assert!(event(&recorder, 1, 1));
        assert!(!event(&recorder, 2, 2));
        assert!(!recorder.record(Track::Worker(0), EventKind::Steal, 3, 0, vec![]));
        assert_eq!(recorder.len(), 2);
        assert_eq!(recorder.dropped(), 2);
        let trace = recorder.into_trace();
        assert_eq!(trace.dropped, 2);
        assert_eq!(trace.dropped_by_kind.get("scan"), Some(&1));
        assert_eq!(trace.dropped_by_kind.get("steal"), Some(&1));
        // The kept prefix is the *oldest* events.
        assert_eq!(trace.events[0].track, Track::Query(0));
        assert_eq!(trace.events[1].track, Track::Query(1));
        assert_eq!(trace.capacity, 2);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let recorder = TraceRecorder::new(0);
        assert!(event(&recorder, 0, 0));
        assert!(!event(&recorder, 1, 1));
        assert_eq!(recorder.dropped(), 1);
    }

    #[test]
    fn deterministic_section_is_arrival_order_independent() {
        let a = TraceRecorder::new(16);
        event(&a, 0, 7);
        event(&a, 1, 10);
        a.record(Track::Worker(0), EventKind::TaskRun, 0, 3, vec![]);
        let b = TraceRecorder::new(16);
        b.record(Track::Worker(3), EventKind::TaskRun, 9, 1, vec![]);
        event(&b, 1, 10);
        event(&b, 0, 7);
        let (ta, tb) = (a.into_trace(), b.into_trace());
        // Arrival order and worker events differ…
        assert_ne!(ta.events, tb.events);
        // …but the canonical deterministic sections and digests agree.
        assert_eq!(ta.deterministic_events(), tb.deterministic_events());
        assert_eq!(ta.digest(), tb.digest());
        assert!(ta.deterministic_events().iter().all(|e| e.seq == 0));
    }

    #[test]
    fn digest_distinguishes_content_and_drops() {
        let a = TraceRecorder::new(16);
        event(&a, 0, 7);
        let b = TraceRecorder::new(16);
        event(&b, 0, 8);
        assert_ne!(a.into_trace().digest(), b.into_trace().digest());

        // Same kept events, but one ring overflowed: digests must differ.
        let clean = TraceRecorder::new(1);
        event(&clean, 0, 7);
        let overflowed = TraceRecorder::new(1);
        event(&overflowed, 0, 7);
        event(&overflowed, 1, 8);
        assert_ne!(
            clean.into_trace().digest(),
            overflowed.into_trace().digest()
        );
    }

    #[test]
    fn node_track_is_deterministic_and_digested() {
        // NetTransfer events on the node track are part of the deterministic
        // section (charged at admission, not by thread arrival), and the
        // digest distinguishes node tracks from disk tracks of the same id.
        assert!(EventKind::NetTransfer.is_deterministic());
        let on_node = TraceRecorder::new(4);
        on_node.record(
            Track::Node(2),
            EventKind::NetTransfer,
            5,
            3,
            vec![(FieldKey::Pages, 8)],
        );
        let on_disk = TraceRecorder::new(4);
        on_disk.record(
            Track::Disk(2),
            EventKind::NetTransfer,
            5,
            3,
            vec![(FieldKey::Pages, 8)],
        );
        let (a, b) = (on_node.into_trace(), on_disk.into_trace());
        assert_eq!(a.deterministic_events().len(), 1);
        assert_ne!(a.digest(), b.digest());
    }

    #[test]
    fn sim_ms_folds_bits_in_recording_order() {
        let recorder = TraceRecorder::new(8);
        let parts = [0.1f64, 0.7, 1.3];
        let mut expected = 0.0f64;
        for (i, &ms) in parts.iter().enumerate() {
            expected += ms;
            recorder.record(
                Track::Worker(2),
                EventKind::TaskRun,
                i as u64,
                0,
                vec![(FieldKey::SimMsBits, ms.to_bits())],
            );
        }
        recorder.record(
            Track::Worker(1),
            EventKind::TaskRun,
            0,
            0,
            vec![(FieldKey::SimMsBits, 9.0f64.to_bits())],
        );
        let trace = recorder.into_trace();
        let folded = trace.sim_ms_on(Track::Worker(2), EventKind::TaskRun);
        assert_eq!(folded.to_bits(), expected.to_bits());
    }
}
