//! Exporters: Chrome `trace_event` JSON and Prometheus-style text
//! exposition.
//!
//! Both formats are rendered with deterministic ordering (canonical event
//! sort, insertion-ordered metric families) so exported artifacts of a
//! deterministic run diff clean across machines and reruns.

use crate::histogram::Histogram;
use crate::trace::{EventKind, Trace, TraceEvent, Track};

/// The Chrome `trace_event` process ids the four track families map to.
const PID_QUERIES: u32 = 1;
const PID_WORKERS: u32 = 2;
const PID_DISKS: u32 = 3;
const PID_NODES: u32 = 4;

fn track_ids(track: Track) -> (u32, u32, &'static str) {
    match track {
        Track::Query(id) => (PID_QUERIES, id, "query"),
        Track::Worker(id) => (PID_WORKERS, id, "worker"),
        Track::Disk(id) => (PID_DISKS, id, "disk"),
        Track::Node(id) => (PID_NODES, id, "node"),
    }
}

/// Whether an event renders as a complete span (`"ph":"X"`) or a
/// thread-scoped instant (`"ph":"i"`).
fn is_span(kind: EventKind) -> bool {
    matches!(
        kind,
        EventKind::Query
            | EventKind::Scan
            | EventKind::DiskService
            | EventKind::NetTransfer
            | EventKind::TaskRun
    )
}

fn push_event(out: &mut String, event: &TraceEvent) {
    let (pid, tid, _) = track_ids(event.track);
    out.push_str("{\"name\":\"");
    out.push_str(event.kind.name());
    out.push_str("\",\"ph\":\"");
    if is_span(event.kind) {
        out.push_str("X\",\"dur\":");
        out.push_str(&event.dur_us.to_string());
    } else {
        out.push_str("i\",\"s\":\"t\"");
    }
    out.push_str(",\"pid\":");
    out.push_str(&pid.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&tid.to_string());
    out.push_str(",\"ts\":");
    out.push_str(&event.ts_us.to_string());
    out.push_str(",\"args\":{");
    for (i, (key, value)) in event.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(key.name());
        out.push_str("\":");
        out.push_str(&value.to_string());
    }
    out.push_str("}}");
}

fn push_metadata(out: &mut String, name: &str, pid: u32, tid: Option<u32>, value: &str) {
    out.push_str("{\"name\":\"");
    out.push_str(name);
    out.push_str("\",\"ph\":\"M\",\"pid\":");
    out.push_str(&pid.to_string());
    if let Some(tid) = tid {
        out.push_str(",\"tid\":");
        out.push_str(&tid.to_string());
    }
    out.push_str(",\"args\":{\"name\":\"");
    out.push_str(value);
    out.push_str("\"}}");
}

/// Renders `trace` as Chrome `trace_event` JSON — load the result in
/// `about:tracing` or <https://ui.perfetto.dev>.  One process per track
/// family (queries, workers, disks), one named thread per track; events
/// are sorted canonically (track, time, kind) so the file is
/// bit-reproducible for deterministic traces.
#[must_use]
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut sorted: Vec<&TraceEvent> = trace.events.iter().collect();
    sorted.sort_by_key(|e| (e.track, e.ts_us, e.kind, e.dur_us, e.seq));

    let mut tracks: Vec<Track> = sorted.iter().map(|e| e.track).collect();
    tracks.dedup();

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let sep = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
    };
    for (pid, name) in [
        (PID_QUERIES, "queries"),
        (PID_WORKERS, "workers"),
        (PID_DISKS, "disks"),
        (PID_NODES, "nodes"),
    ] {
        sep(&mut out, &mut first);
        push_metadata(&mut out, "process_name", pid, None, name);
    }
    for track in tracks {
        let (pid, tid, family) = track_ids(track);
        sep(&mut out, &mut first);
        push_metadata(
            &mut out,
            "thread_name",
            pid,
            Some(tid),
            &format!("{family} {tid}"),
        );
    }
    for event in sorted {
        sep(&mut out, &mut first);
        push_event(&mut out, event);
    }
    out.push_str("]}");
    out
}

/// What a metric family is, for the `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricKind {
    Counter,
    Gauge,
    Histogram,
}

impl MetricKind {
    fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Samples {
    /// `(label pairs, value)` per sample.
    Scalar(Vec<(Vec<(String, String)>, f64)>),
    Histogram(Histogram),
}

#[derive(Debug, Clone)]
struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    samples: Samples,
}

/// A Prometheus-style text exposition builder: counters, gauges and
/// [`Histogram`]s rendered in insertion order with deterministic
/// formatting.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    families: Vec<Family>,
}

impl Exposition {
    /// An empty exposition.
    #[must_use]
    pub fn new() -> Self {
        Exposition::default()
    }

    fn scalar(
        &mut self,
        kind: MetricKind,
        name: &str,
        help: &str,
        labels: &[(&str, String)],
        value: f64,
    ) {
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect();
        if let Some(family) = self.families.iter_mut().find(|f| f.name == name) {
            if let Samples::Scalar(samples) = &mut family.samples {
                samples.push((labels, value));
            }
            return;
        }
        self.families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind,
            samples: Samples::Scalar(vec![(labels, value)]),
        });
    }

    /// Adds one counter sample; repeat with different labels for a family.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, String)], value: f64) {
        self.scalar(MetricKind::Counter, name, help, labels, value);
    }

    /// Adds one gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, String)], value: f64) {
        self.scalar(MetricKind::Gauge, name, help, labels, value);
    }

    /// Adds one histogram family (cumulative `_bucket{le=…}` lines plus
    /// `_sum` and `_count`).
    pub fn histogram(&mut self, name: &str, help: &str, histogram: &Histogram) {
        self.families.push(Family {
            name: name.to_string(),
            help: help.to_string(),
            kind: MetricKind::Histogram,
            samples: Samples::Histogram(histogram.clone()),
        });
    }

    /// Renders the exposition text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            out.push_str("# HELP ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(&family.help);
            out.push_str("\n# TYPE ");
            out.push_str(&family.name);
            out.push(' ');
            out.push_str(family.kind.name());
            out.push('\n');
            match &family.samples {
                Samples::Scalar(samples) => {
                    for (labels, value) in samples {
                        out.push_str(&family.name);
                        push_labels(&mut out, labels);
                        out.push(' ');
                        out.push_str(&format_value(*value));
                        out.push('\n');
                    }
                }
                Samples::Histogram(histogram) => {
                    let mut cumulative = 0u64;
                    for (le, count) in histogram.nonzero_buckets() {
                        cumulative += count;
                        out.push_str(&family.name);
                        out.push_str("_bucket{le=\"");
                        out.push_str(&le.to_string());
                        out.push_str("\"} ");
                        out.push_str(&cumulative.to_string());
                        out.push('\n');
                    }
                    out.push_str(&family.name);
                    out.push_str("_bucket{le=\"+Inf\"} ");
                    out.push_str(&histogram.count().to_string());
                    out.push('\n');
                    out.push_str(&family.name);
                    out.push_str("_sum ");
                    out.push_str(&histogram.sum().to_string());
                    out.push('\n');
                    out.push_str(&family.name);
                    out.push_str("_count ");
                    out.push_str(&histogram.count().to_string());
                    out.push('\n');
                }
            }
        }
        out
    }
}

fn push_labels(out: &mut String, labels: &[(String, String)]) {
    if labels.is_empty() {
        return;
    }
    out.push('{');
    for (i, (key, value)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(key);
        out.push_str("=\"");
        out.push_str(value);
        out.push('"');
    }
    out.push('}');
}

/// Deterministic float formatting: integers render without a fraction,
/// everything else through Rust's shortest-roundtrip `Display`.
fn format_value(value: f64) -> String {
    if value.fract() == 0.0 && value.abs() < 1e15 {
        format!("{}", value as i64)
    } else {
        format!("{value}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{FieldKey, TraceRecorder};

    fn sample_trace() -> Trace {
        let recorder = TraceRecorder::new(16);
        recorder.record(
            Track::Query(0),
            EventKind::Scan,
            10,
            5,
            vec![(FieldKey::Rows, 42)],
        );
        recorder.record(Track::Query(0), EventKind::QuerySubmit, 0, 0, vec![]);
        recorder.record(
            Track::Worker(1),
            EventKind::TaskRun,
            0,
            5,
            vec![(FieldKey::Task, 0)],
        );
        recorder.record(Track::Disk(2), EventKind::DiskService, 3, 2, vec![]);
        recorder.record(
            Track::Node(1),
            EventKind::NetTransfer,
            4,
            3,
            vec![(FieldKey::Pages, 6)],
        );
        recorder.into_trace()
    }

    #[test]
    fn chrome_json_names_tracks_and_sorts_canonically() {
        let json = chrome_trace_json(&sample_trace());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        for needle in [
            "\"process_name\"",
            "\"queries\"",
            "\"workers\"",
            "\"disks\"",
            "\"query 0\"",
            "\"worker 1\"",
            "\"disk 2\"",
            "\"nodes\"",
            "\"node 1\"",
            "\"name\":\"net_transfer\"",
            "\"pages\":6",
            "\"name\":\"scan\"",
            "\"ph\":\"X\"",
            "\"ph\":\"i\"",
            "\"rows\":42",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        // Query-track events come before worker- and disk-track events, and
        // the submit instant (ts 0) precedes the scan span (ts 10).
        let submit = json.find("query_submit").expect("submit present");
        let scan = json.find("\"name\":\"scan\"").expect("scan present");
        let task = json.find("task_run").expect("task present");
        assert!(submit < scan && scan < task);
        // Balanced braces — a cheap well-formedness check without a parser.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced JSON braces"
        );
        // Identical traces render identical JSON.
        assert_eq!(json, chrome_trace_json(&sample_trace()));
    }

    #[test]
    fn exposition_renders_counters_gauges_and_histograms() {
        let mut exposition = Exposition::new();
        exposition.counter("rows_scanned_total", "Fact rows scanned.", &[], 1234.0);
        exposition.counter(
            "disk_cache_hits_total",
            "Cache hits per disk.",
            &[("disk", "0".to_string())],
            10.0,
        );
        exposition.counter(
            "disk_cache_hits_total",
            "Cache hits per disk.",
            &[("disk", "1".to_string())],
            7.0,
        );
        exposition.gauge("worker_utilisation", "Busy fraction.", &[], 0.5);
        let mut h = Histogram::new();
        h.record(3);
        h.record(200);
        exposition.histogram("scan_sim_us", "Simulated scan time (us).", &h);
        let text = exposition.render();
        for needle in [
            "# HELP rows_scanned_total Fact rows scanned.",
            "# TYPE rows_scanned_total counter",
            "rows_scanned_total 1234",
            "disk_cache_hits_total{disk=\"0\"} 10",
            "disk_cache_hits_total{disk=\"1\"} 7",
            "# TYPE worker_utilisation gauge",
            "worker_utilisation 0.5",
            "# TYPE scan_sim_us histogram",
            "scan_sim_us_bucket{le=\"3\"} 1",
            "scan_sim_us_bucket{le=\"+Inf\"} 2",
            "scan_sim_us_sum 203",
            "scan_sim_us_count 2",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        // The HELP line for a repeated family is emitted once.
        assert_eq!(text.matches("# HELP disk_cache_hits_total").count(), 1);
        // Deterministic rendering.
        assert_eq!(text, exposition.render());
    }
}
