//! `obs` — deterministic tracing and metrics exposition for the execution
//! pillar.
//!
//! The paper's contribution is *explaining* parallel star-join performance —
//! per-disk utilisation, skew-induced imbalance, multi-user response-time
//! distributions — and end-of-run aggregates cannot tell *when* a worker
//! idled or *which* query's scan queued behind which disk.  This crate
//! supplies the missing event layer, built around one non-negotiable
//! property: **traces are deterministic**.  Events are timestamped from the
//! *simulated* disk clock (or a logical admission counter when the I/O layer
//! is off), never from wall time, so the deterministic section of a trace is
//! bit-identical across runs, worker counts and MPLs — and therefore
//! testable, exactly like the execution results it describes.
//!
//! The pieces:
//!
//! * [`TraceRecorder`] — a bounded, mutex-protected ring of typed
//!   [`TraceEvent`]s with explicit drop accounting: when the ring is full
//!   the *newest* event is dropped and counted, never silently lost.
//! * [`Trace`] — the recorded events plus helpers that split them into the
//!   **deterministic section** (query lifecycle, scan and disk-service
//!   events, derived purely from the simulated charge order) and the
//!   thread-attributed section (per-worker task/steal/merge events, exact
//!   within one run but scheduled by the OS), with a canonical sort and a
//!   [`Trace::digest`] over the deterministic section.
//! * [`Histogram`] — log-bucketed (16 sub-buckets per octave, ≤ 6.25 %
//!   relative error) with *mergeable* buckets: merge-then-percentile equals
//!   percentile-over-concatenation, exactly.
//! * [`export`] — Chrome `trace_event` JSON (one track per query, worker and
//!   disk; loadable in `about:tracing` / Perfetto) and a Prometheus-style
//!   text exposition of counters and histograms.
//!
//! The crate is dependency-free and knows nothing about the executor; the
//! `exec` crate records into it behind an [`ObsConfig`] that costs nothing
//! when disabled.
//!
//! # Quick start
//!
//! ```
//! use obs::{EventKind, FieldKey, Track, TraceRecorder};
//!
//! let recorder = TraceRecorder::new(64);
//! recorder.record(Track::Query(0), EventKind::QuerySubmit, 0, 0, vec![]);
//! recorder.record(
//!     Track::Query(0),
//!     EventKind::Scan,
//!     10,
//!     450,
//!     vec![(FieldKey::Fragment, 7), (FieldKey::Pages, 8)],
//! );
//!
//! let trace = recorder.into_trace();
//! assert_eq!(trace.count_of(EventKind::Scan), 1);
//! assert_eq!(trace.sum_field(EventKind::Scan, FieldKey::Pages), 8);
//! // Both events are in the deterministic section: simulated timestamps
//! // only, so this digest is bit-identical on every run.
//! assert_eq!(trace.deterministic_events().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod export;
pub mod histogram;
pub mod trace;

pub use clock::{us_from_ms, LogicalClock};
pub use export::{chrome_trace_json, Exposition};
pub use histogram::Histogram;
pub use trace::{EventKind, FieldKey, Trace, TraceEvent, TraceRecorder, Track};

/// Switches event recording on for an execution run.
///
/// Disabled (the default) is zero-cost: no ring is allocated and every
/// recording site reduces to an `Option::None` check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObsConfig {
    /// Record a trace for the run.
    pub enabled: bool,
    /// Ring-buffer capacity in events; overflowing events are dropped
    /// (newest first) and counted in [`Trace::dropped`].  Clamped to at
    /// least 1.
    pub capacity: usize,
}

impl ObsConfig {
    /// Default ring capacity: comfortably holds the event volume of the
    /// repository's experiment sweeps.
    pub const DEFAULT_CAPACITY: usize = 1 << 18;

    /// Recording enabled at the default capacity.
    #[must_use]
    pub fn enabled() -> Self {
        ObsConfig {
            enabled: true,
            capacity: Self::DEFAULT_CAPACITY,
        }
    }

    /// Sets the ring capacity.
    #[must_use]
    pub fn with_capacity(mut self, capacity: usize) -> Self {
        self.capacity = capacity;
        self
    }
}

impl Default for ObsConfig {
    /// Recording disabled.
    fn default() -> Self {
        ObsConfig {
            enabled: false,
            capacity: Self::DEFAULT_CAPACITY,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_defaults_to_disabled() {
        let config = ObsConfig::default();
        assert!(!config.enabled);
        assert_eq!(config.capacity, ObsConfig::DEFAULT_CAPACITY);
        let on = ObsConfig::enabled().with_capacity(64);
        assert!(on.enabled);
        assert_eq!(on.capacity, 64);
    }
}
