//! A log-bucketed, mergeable histogram with deterministic percentiles.
//!
//! Values (`u64`, typically simulated microseconds) land in
//! power-of-two octaves split into [`Histogram::SUB_BUCKETS`] linear
//! sub-buckets — ≤ 1/16 (6.25 %) relative bucket width, the classic
//! HDR-histogram layout without the dependency.  Because a percentile is
//! resolved to its bucket's **upper bound** by a pure rank walk over the
//! counts, it depends only on the multiset of bucket counts:
//! merge-then-percentile equals percentile-over-concatenation, *exactly* —
//! the property the proptests pin and the reason per-worker histograms can
//! be combined without re-recording.

/// Fixed-layout log-bucketed histogram; see the [module docs](self).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// Linear sub-buckets per octave as a power of two.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per octave.
const SUB: usize = 1 << SUB_BITS;
/// Total buckets: the exact `0..SUB` range plus `SUB` sub-buckets for each
/// remaining octave.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// The bucket index of `value`.
fn bucket_index(value: u64) -> usize {
    if value < SUB as u64 {
        return value as usize;
    }
    let exp = 63 - value.leading_zeros();
    let sub = ((value >> (exp - SUB_BITS)) & (SUB as u64 - 1)) as usize;
    SUB + ((exp - SUB_BITS) as usize) * SUB + sub
}

/// The largest value contained in bucket `index` — what percentiles
/// resolve to.
fn bucket_high(index: usize) -> u64 {
    if index < SUB {
        return index as u64;
    }
    let exp = SUB_BITS + ((index - SUB) / SUB) as u32;
    let sub = ((index - SUB) % SUB) as u64;
    let low = (1u64 << exp) + (sub << (exp - SUB_BITS));
    // Parenthesised so the top bucket's bound lands exactly on `u64::MAX`
    // without the intermediate sum overflowing.
    low + ((1u64 << (exp - SUB_BITS)) - 1)
}

impl Histogram {
    /// Linear sub-buckets per octave (relative bucket width ≤ 1/16).
    pub const SUB_BUCKETS: usize = SUB;

    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` observations of `value`.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[bucket_index(value)] += n;
        self.count += n;
        self.sum += u128::from(value) * u128::from(n);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Folds `other`'s buckets into `self` — exactly equivalent to having
    /// recorded both value streams into one histogram.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Total observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Sum of all observations.
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.sum as f64 / self.count as f64
    }

    /// The `p`-th percentile (nearest rank), resolved to the containing
    /// bucket's upper bound and clamped to the recorded maximum; `p` is
    /// clamped to `[0, 100]`.  Returns 0 when empty.
    #[must_use]
    pub fn percentile(&self, p: f64) -> u64 {
        if self.is_empty() {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        // Nearest-rank: the smallest rank covering p percent, at least 1.
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (index, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_high(index).min(self.max);
            }
        }
        self.max
    }

    /// p50 shorthand.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// p95 shorthand.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.percentile(95.0)
    }

    /// p99 shorthand.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// p99.9 shorthand.
    #[must_use]
    pub fn p999(&self) -> u64 {
        self.percentile(99.9)
    }

    /// Non-empty buckets as `(upper bound, count)` in ascending value
    /// order — the exposition format's bucket boundaries.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(index, &n)| (bucket_high(index), n))
            .collect()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.sum(), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(50.0), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        // Every value maps into a bucket whose upper bound is >= the value
        // and within 1/16 relative error; indices never decrease.
        let mut last = 0;
        for value in 0u64..4_096 {
            let index = bucket_index(value);
            assert!(index >= last, "index regressed at {value}");
            last = index;
        }
        for value in [0u64, 15, 16, 1 << 20, u64::MAX / 3, u64::MAX] {
            let index = bucket_index(value);
            assert!(index < BUCKETS);
            let high = bucket_high(index);
            assert!(high >= value, "value {value} above bucket high {high}");
            assert!(
                high - value <= value / SUB as u64 + 1,
                "bucket too wide at {value}: high {high}"
            );
        }
    }

    #[test]
    fn exact_below_sixteen_and_bounded_error_above() {
        let mut h = Histogram::new();
        for v in 0..16 {
            h.record(v);
        }
        // Small values resolve exactly.
        assert_eq!(h.percentile(100.0), 15);
        assert_eq!(h.min(), 0);
        let mut big = Histogram::new();
        big.record(1_000_000);
        let p = big.percentile(50.0);
        assert_eq!(p, 1_000_000); // clamped to max
    }

    #[test]
    fn percentiles_walk_ranks() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        // Bucket resolution: p50 lands in the bucket holding rank 50.
        let p50 = h.p50();
        assert!((50..=53).contains(&p50), "{p50}");
        assert!(h.p95() >= 95);
        assert!(h.p99() >= 99);
        assert_eq!(h.percentile(100.0), 100);
        assert!(h.p999() <= 100);
        assert!(h.p50() <= h.p95() && h.p95() <= h.p99() && h.p99() <= h.p999());
    }

    #[test]
    fn merge_equals_concatenation() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [3u64, 17, 900, 3, 65_000] {
            a.record(v);
            all.record(v);
        }
        for v in [1u64, 17, 1_000_000, 0] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = Histogram::new();
        bulk.record_n(42, 5);
        bulk.record_n(7, 0); // no-op
        let mut one_by_one = Histogram::new();
        for _ in 0..5 {
            one_by_one.record(42);
        }
        assert_eq!(bulk, one_by_one);
        // 42 lands in the [42, 43] bucket (width 2 in its octave).
        assert_eq!(bulk.nonzero_buckets(), vec![(43, 5)]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Merge-then-percentile equals percentile-over-concatenation for
        /// arbitrary value streams and percentiles — the mergeability
        /// contract.
        #[test]
        fn prop_merge_percentiles_equal_concatenated_percentiles(
            left in proptest::collection::vec(0u64..1u64 << 48, 0..200),
            right in proptest::collection::vec(0u64..1u64 << 48, 0..200),
            p in 0.0f64..100.0,
        ) {
            let mut a = Histogram::new();
            let mut concatenated = Histogram::new();
            for &v in &left {
                a.record(v);
                concatenated.record(v);
            }
            let mut b = Histogram::new();
            for &v in &right {
                b.record(v);
                concatenated.record(v);
            }
            a.merge(&b);
            prop_assert_eq!(&a, &concatenated);
            prop_assert_eq!(a.percentile(p), concatenated.percentile(p));
            for q in [0.0, 50.0, 95.0, 99.0, 99.9, 100.0] {
                prop_assert_eq!(a.percentile(q), concatenated.percentile(q));
            }
        }

        /// Percentiles are monotone in p, bounded by min/max, and the
        /// resolved bucket bound is within 1/16 relative error of some
        /// recorded value.
        #[test]
        fn prop_percentiles_are_monotone_and_bounded(
            values in proptest::collection::vec(0u64..1u64 << 48, 1..200),
        ) {
            let mut h = Histogram::new();
            for &v in &values {
                h.record(v);
            }
            let ps = [0.0, 10.0, 50.0, 90.0, 99.0, 100.0];
            let resolved: Vec<u64> = ps.iter().map(|&p| h.percentile(p)).collect();
            for pair in resolved.windows(2) {
                prop_assert!(pair[0] <= pair[1]);
            }
            let max = *values.iter().max().expect("non-empty");
            prop_assert_eq!(h.percentile(100.0), max);
            for &r in &resolved {
                prop_assert!(r <= max);
                // Each resolved bound is >= some recorded value and within
                // one bucket width of it.
                let nearest_below = values.iter().copied().filter(|&v| v <= r).max();
                prop_assert!(nearest_below.is_some());
                let v = nearest_below.expect("checked");
                prop_assert!(r - v <= v / 16 + 1);
            }
        }
    }
}
