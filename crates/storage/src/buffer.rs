//! LRU buffer manager with prefetching.
//!
//! SIMPAD uses "a simple buffer manager … supporting LRU page replacement and
//! prefetching.  We maintain separate buffers for tables and indices" (§5).
//! [`BufferManager`] holds one [`PagePool`] for fact pages and one for bitmap
//! pages; a request for a range of pages reports how many pages were buffer
//! hits and which had to be fetched from disk, and installs the fetched pages
//! with LRU replacement.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Identifies one page: an object (fragment, bitmap fragment, …) and a page
/// number within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageKey {
    /// Identifier of the containing object (assigned by the caller).
    pub object: u64,
    /// Page number within the object.
    pub page: u64,
}

impl PageKey {
    /// Creates a page key.
    #[must_use]
    pub fn new(object: u64, page: u64) -> Self {
        PageKey { object, page }
    }
}

/// Hit/miss statistics of one pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BufferPoolStats {
    /// Page requests satisfied from the buffer.
    pub hits: u64,
    /// Page requests that required a disk fetch.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl BufferPoolStats {
    /// Hit ratio in `[0, 1]` (0 when no requests were made).
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Outcome of a single page request made through
/// [`PagePool::request_reporting`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRequest {
    /// `true` when the page was already resident (a buffer hit).
    pub hit: bool,
    /// The page evicted to make room, when the pool was full on a miss.
    pub evicted: Option<PageKey>,
}

/// A fixed-capacity LRU pool of pages.
///
/// Residency is tracked with an ordered map from page to its last-use tick
/// plus a B-tree keyed by tick, so both lookups and evictions are
/// logarithmic — the simulator issues hundreds of thousands of page requests
/// per query — and every traversal order is deterministic.
#[derive(Debug, Clone)]
pub struct PagePool {
    capacity: usize,
    /// Maps resident pages to their last-use tick.
    resident: BTreeMap<PageKey, u64>,
    /// Maps last-use ticks back to pages (ticks are unique).
    lru_order: BTreeMap<u64, PageKey>,
    tick: u64,
    stats: BufferPoolStats,
}

impl PagePool {
    /// Creates a pool holding at most `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool capacity must be positive");
        PagePool {
            capacity,
            resident: BTreeMap::new(),
            lru_order: BTreeMap::new(),
            tick: 0,
            stats: BufferPoolStats::default(),
        }
    }

    /// The pool capacity in pages.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently resident.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> BufferPoolStats {
        self.stats
    }

    /// True if `key` is currently buffered (does not touch LRU state).
    #[must_use]
    pub fn contains(&self, key: PageKey) -> bool {
        self.resident.contains_key(&key)
    }

    /// Requests a single page.  Returns `true` on a buffer hit; on a miss the
    /// page is installed (evicting the least recently used page if full).
    pub fn request(&mut self, key: PageKey) -> bool {
        self.request_reporting(key).hit
    }

    /// Requests a single page like [`PagePool::request`], additionally
    /// reporting which page (if any) was evicted to make room.
    ///
    /// File-backed callers that cache decoded objects alongside the pool use
    /// the victim to invalidate those caches, keeping decoded state consistent
    /// with page residency.
    pub fn request_reporting(&mut self, key: PageKey) -> PageRequest {
        self.tick += 1;
        if let Some(last_use) = self.resident.get_mut(&key) {
            self.lru_order.remove(last_use);
            *last_use = self.tick;
            self.lru_order.insert(self.tick, key);
            self.stats.hits += 1;
            return PageRequest {
                hit: true,
                evicted: None,
            };
        }
        self.stats.misses += 1;
        let mut evicted = None;
        if self.resident.len() >= self.capacity {
            // Evict the least recently used page (smallest tick).
            let (&victim_tick, &victim) = self
                .lru_order
                .iter()
                .next()
                .expect("pool is non-empty when full");
            self.lru_order.remove(&victim_tick);
            self.resident.remove(&victim);
            self.stats.evictions += 1;
            evicted = Some(victim);
        }
        self.resident.insert(key, self.tick);
        self.lru_order.insert(self.tick, key);
        PageRequest {
            hit: false,
            evicted,
        }
    }

    /// Requests `count` consecutive pages of `object` starting at
    /// `first_page` (a prefetch granule).  Returns the number of pages that
    /// missed and had to be fetched.
    pub fn request_range(&mut self, object: u64, first_page: u64, count: u64) -> u64 {
        let mut misses = 0;
        for p in first_page..first_page + count {
            if !self.request(PageKey::new(object, p)) {
                misses += 1;
            }
        }
        misses
    }
}

/// The two-pool buffer manager of the simulator.
#[derive(Debug, Clone)]
pub struct BufferManager {
    fact: PagePool,
    bitmap: PagePool,
}

impl BufferManager {
    /// Creates a buffer manager with the given pool capacities (Table 4
    /// defaults: 1 000 fact pages, 5 000 bitmap pages).
    #[must_use]
    pub fn new(fact_pages: usize, bitmap_pages: usize) -> Self {
        BufferManager {
            fact: PagePool::new(fact_pages),
            bitmap: PagePool::new(bitmap_pages),
        }
    }

    /// The fact-table pool.
    #[must_use]
    pub fn fact(&mut self) -> &mut PagePool {
        &mut self.fact
    }

    /// The bitmap pool.
    #[must_use]
    pub fn bitmap(&mut self) -> &mut PagePool {
        &mut self.bitmap
    }

    /// Read-only statistics of both pools `(fact, bitmap)`.
    #[must_use]
    pub fn stats(&self) -> (BufferPoolStats, BufferPoolStats) {
        (self.fact.stats(), self.bitmap.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hits_and_misses() {
        let mut pool = PagePool::new(10);
        assert!(!pool.request(PageKey::new(1, 0)));
        assert!(pool.request(PageKey::new(1, 0)));
        assert!(!pool.request(PageKey::new(1, 1)));
        let stats = pool.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_ratio() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(pool.resident_pages(), 2);
        assert_eq!(pool.capacity(), 10);
    }

    #[test]
    fn lru_eviction_order() {
        let mut pool = PagePool::new(3);
        pool.request(PageKey::new(0, 0));
        pool.request(PageKey::new(0, 1));
        pool.request(PageKey::new(0, 2));
        // Touch page 0 so page 1 becomes the LRU victim.
        pool.request(PageKey::new(0, 0));
        pool.request(PageKey::new(0, 3));
        assert!(pool.contains(PageKey::new(0, 0)));
        assert!(!pool.contains(PageKey::new(0, 1)));
        assert!(pool.contains(PageKey::new(0, 2)));
        assert!(pool.contains(PageKey::new(0, 3)));
        assert_eq!(pool.stats().evictions, 1);
        assert_eq!(pool.resident_pages(), 3);
    }

    #[test]
    fn range_requests_count_misses() {
        let mut pool = PagePool::new(100);
        assert_eq!(pool.request_range(7, 0, 8), 8);
        assert_eq!(pool.request_range(7, 0, 8), 0);
        assert_eq!(pool.request_range(7, 4, 8), 4);
    }

    #[test]
    fn pools_are_independent() {
        let mut bm = BufferManager::new(10, 20);
        bm.fact().request(PageKey::new(1, 1));
        bm.bitmap().request(PageKey::new(1, 1));
        bm.bitmap().request(PageKey::new(1, 1));
        let (fact, bitmap) = bm.stats();
        assert_eq!(fact.misses, 1);
        assert_eq!(fact.hits, 0);
        assert_eq!(bitmap.misses, 1);
        assert_eq!(bitmap.hits, 1);
    }

    #[test]
    fn scan_larger_than_pool_gets_no_hits_on_repeat() {
        // A sequential scan over more pages than the pool holds cannot profit
        // from LRU on the second pass (classic sequential-flooding behaviour).
        let mut pool = PagePool::new(50);
        pool.request_range(1, 0, 200);
        let misses_second_pass = pool.request_range(1, 0, 200);
        assert_eq!(misses_second_pass, 200);
        assert!(pool.stats().evictions > 0);
    }

    #[test]
    fn request_reporting_names_the_victim() {
        let mut pool = PagePool::new(2);
        assert_eq!(
            pool.request_reporting(PageKey::new(0, 0)),
            PageRequest {
                hit: false,
                evicted: None
            }
        );
        pool.request(PageKey::new(0, 1));
        // Pool full: the next miss must evict page (0, 0), the LRU page.
        let outcome = pool.request_reporting(PageKey::new(0, 2));
        assert!(!outcome.hit);
        assert_eq!(outcome.evicted, Some(PageKey::new(0, 0)));
        // A hit reports no eviction.
        assert_eq!(
            pool.request_reporting(PageKey::new(0, 2)),
            PageRequest {
                hit: true,
                evicted: None
            }
        );
    }

    #[test]
    fn empty_stats_hit_ratio_is_zero() {
        assert_eq!(BufferPoolStats::default().hit_ratio(), 0.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = PagePool::new(0);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The pool never holds more pages than its capacity and hits+misses
        /// always equals the number of requests.
        #[test]
        fn prop_capacity_and_accounting(
            capacity in 1usize..64,
            requests in proptest::collection::vec((0u64..4, 0u64..100), 1..500),
        ) {
            let mut pool = PagePool::new(capacity);
            for (object, page) in &requests {
                pool.request(PageKey::new(*object, *page));
                prop_assert!(pool.resident_pages() <= capacity);
            }
            let stats = pool.stats();
            prop_assert_eq!(stats.hits + stats.misses, requests.len() as u64);
            prop_assert_eq!(
                stats.misses - stats.evictions,
                pool.resident_pages() as u64
            );
        }

        /// Immediately repeating a request is always a hit.
        #[test]
        fn prop_repeat_is_hit(object in 0u64..10, page in 0u64..1_000) {
            let mut pool = PagePool::new(4);
            pool.request(PageKey::new(object, page));
            prop_assert!(pool.request(PageKey::new(object, page)));
        }
    }
}
