//! Track-based disk service-time model.
//!
//! Each disk request is characterised by the track it targets and the number
//! of (consecutive) pages it transfers.  The service time is
//!
//! ```text
//! seek(track distance) + settle/controller delay + pages × transfer time
//! ```
//!
//! where the seek time grows with the distance between the previous request's
//! track and the new one, calibrated so that a seek over a random distance
//! averages the configured `avg_seek_ms` (Table 4: 10 ms).  Sequential
//! requests on the same track therefore pay no seek — the effect that makes
//! large prefetch granules and clustered hits worthwhile.

use serde::{Deserialize, Serialize};

/// Static parameters of the disk model (Table 4 defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DiskParameters {
    /// Average seek time over a uniformly random track distance, in ms.
    pub avg_seek_ms: f64,
    /// Settle time plus controller delay per access, in ms.
    pub settle_controller_ms: f64,
    /// Transfer time per page, in ms.
    pub per_page_ms: f64,
    /// Number of tracks (cylinders) used by the seek-distance model.
    pub tracks: u64,
}

impl Default for DiskParameters {
    fn default() -> Self {
        DiskParameters {
            avg_seek_ms: 10.0,
            settle_controller_ms: 3.0,
            per_page_ms: 1.0,
            tracks: 10_000,
        }
    }
}

/// The mutable state of one disk: the arm position left by the last request.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskModel {
    params: DiskParameters,
    current_track: u64,
    requests: u64,
    total_seek_ms: f64,
    total_service_ms: f64,
}

impl DiskModel {
    /// Creates a disk with the arm parked at track 0.
    #[must_use]
    pub fn new(params: DiskParameters) -> Self {
        DiskModel {
            params,
            current_track: 0,
            requests: 0,
            total_seek_ms: 0.0,
            total_service_ms: 0.0,
        }
    }

    /// The disk's static parameters.
    #[must_use]
    pub fn parameters(&self) -> DiskParameters {
        self.params
    }

    /// The track the arm currently rests on.
    #[must_use]
    pub fn current_track(&self) -> u64 {
        self.current_track
    }

    /// Seek time for moving the arm over `distance` tracks.
    ///
    /// A uniformly random distance between two independent uniform track
    /// positions averages `tracks / 3`, so scaling linearly by
    /// `3 · avg_seek · distance / tracks` reproduces the configured average
    /// seek time for random access while giving zero cost to sequential
    /// access.
    #[must_use]
    pub fn seek_time_ms(&self, distance: u64) -> f64 {
        if distance == 0 {
            return 0.0;
        }
        3.0 * self.params.avg_seek_ms * distance as f64 / self.params.tracks as f64
    }

    /// Services a request for `pages` consecutive pages at `track`, returning
    /// the service time in milliseconds and advancing the arm.
    ///
    /// # Panics
    ///
    /// Panics if `pages` is zero or `track` is beyond the last track.
    pub fn service(&mut self, track: u64, pages: u64) -> f64 {
        assert!(pages > 0, "a disk request must transfer at least one page");
        assert!(
            track < self.params.tracks,
            "track {track} out of range (< {})",
            self.params.tracks
        );
        let distance = self.current_track.abs_diff(track);
        let seek = self.seek_time_ms(distance);
        let service =
            seek + self.params.settle_controller_ms + pages as f64 * self.params.per_page_ms;
        self.current_track = track;
        self.requests += 1;
        self.total_seek_ms += seek;
        self.total_service_ms += service;
        service
    }

    /// Maps a page number of a data set occupying `total_pages` pages onto a
    /// track, assuming the data set is laid out contiguously across the
    /// disk's tracks.
    #[must_use]
    pub fn track_of_page(&self, page: u64, total_pages: u64) -> u64 {
        if total_pages <= 1 {
            return 0;
        }
        let page = page.min(total_pages - 1);
        (page * (self.params.tracks - 1)) / (total_pages - 1)
    }

    /// Number of requests serviced.
    #[must_use]
    pub fn requests(&self) -> u64 {
        self.requests
    }

    /// Total seek time spent, in ms.
    #[must_use]
    pub fn total_seek_ms(&self) -> f64 {
        self.total_seek_ms
    }

    /// Total service time (seek + settle + transfer), in ms.
    #[must_use]
    pub fn total_service_ms(&self) -> f64 {
        self.total_service_ms
    }

    /// Mean service time per request, in ms.
    #[must_use]
    pub fn mean_service_ms(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.total_service_ms / self.requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_access_pays_no_seek() {
        let mut d = DiskModel::new(DiskParameters::default());
        let t1 = d.service(100, 8);
        // Same track again: settle (3 ms) + 8 pages (8 ms) = 11 ms.
        let t2 = d.service(100, 8);
        assert!(t1 > t2);
        assert!((t2 - 11.0).abs() < 1e-9, "{t2}");
        assert_eq!(d.current_track(), 100);
        assert_eq!(d.requests(), 2);
    }

    #[test]
    fn single_page_random_read_costs_about_14_ms() {
        // Table 4 arithmetic: ~10 ms seek + 3 ms settle + 1 ms per page.
        let mut d = DiskModel::new(DiskParameters::default());
        // A seek over a third of the disk equals the average seek time.
        let service = d.service(10_000 / 3, 1);
        assert!((service - 14.0).abs() < 0.1, "{service}");
    }

    #[test]
    fn average_random_seek_matches_parameter() {
        // Averaging the seek model over many random track pairs must
        // reproduce avg_seek_ms (within sampling error of the deterministic
        // stride used here).
        let d = DiskModel::new(DiskParameters::default());
        let tracks = d.parameters().tracks;
        let mut total = 0.0;
        let mut count = 0u64;
        for a in (0..tracks).step_by(101) {
            for b in (0..tracks).step_by(103) {
                total += d.seek_time_ms(a.abs_diff(b));
                count += 1;
            }
        }
        let mean = total / count as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean random seek {mean} ms");
    }

    #[test]
    fn transfer_time_scales_with_pages() {
        let mut d = DiskModel::new(DiskParameters::default());
        d.service(0, 1);
        let one = d.service(0, 1);
        let eight = d.service(0, 8);
        assert!((eight - one - 7.0).abs() < 1e-9);
    }

    #[test]
    fn track_of_page_spans_whole_disk() {
        let d = DiskModel::new(DiskParameters::default());
        assert_eq!(d.track_of_page(0, 1_000), 0);
        assert_eq!(d.track_of_page(999, 1_000), 9_999);
        let mid = d.track_of_page(500, 1_000);
        assert!((4_900..=5_100).contains(&mid), "{mid}");
        // Degenerate cases.
        assert_eq!(d.track_of_page(0, 1), 0);
        assert_eq!(d.track_of_page(5, 1), 0);
    }

    #[test]
    fn statistics_accumulate() {
        let mut d = DiskModel::new(DiskParameters::default());
        assert_eq!(d.mean_service_ms(), 0.0);
        d.service(0, 4);
        d.service(5_000, 4);
        assert_eq!(d.requests(), 2);
        assert!(d.total_seek_ms() > 0.0);
        assert!(d.total_service_ms() > d.total_seek_ms());
        assert!(d.mean_service_ms() > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_page_request_rejected() {
        DiskModel::new(DiskParameters::default()).service(0, 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_track_rejected() {
        DiskModel::new(DiskParameters::default()).service(10_000, 1);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Service time is always at least settle + transfer and monotone in
        /// the seek distance.
        #[test]
        fn prop_service_time_bounds(track_a in 0u64..10_000, track_b in 0u64..10_000, pages in 1u64..64) {
            let mut d = DiskModel::new(DiskParameters::default());
            d.service(track_a, 1);
            let t = d.service(track_b, pages);
            let floor = 3.0 + pages as f64;
            prop_assert!(t >= floor - 1e-9);
            let max_seek = d.seek_time_ms(10_000);
            prop_assert!(t <= floor + max_seek + 1e-9);
        }

        /// track_of_page is monotone in the page number and stays in range.
        #[test]
        fn prop_track_mapping_monotone(total in 2u64..100_000, p1 in 0u64..100_000, p2 in 0u64..100_000) {
            let d = DiskModel::new(DiskParameters::default());
            let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
            let t_lo = d.track_of_page(lo, total);
            let t_hi = d.track_of_page(hi, total);
            prop_assert!(t_lo <= t_hi);
            prop_assert!(t_hi < d.parameters().tracks);
        }
    }
}
