//! `storage` — storage substrate for the SIMPAD simulator.
//!
//! Two components of the paper's simulation model live here:
//!
//! * [`disk::DiskModel`] — the per-request service-time model of one disk.
//!   The paper's disk model "calculates varying seek times based on track
//!   positions rather than giving constant or stochastically distributed
//!   response times" (§5); the parameters follow Table 4 (average seek time
//!   10 ms, settle + controller delay 3 ms per access, 1 ms per page).
//! * [`buffer::BufferManager`] — a simple LRU page buffer with prefetching
//!   and separate pools for fact-table and bitmap pages (Table 4: 1 000 fact
//!   pages, 5 000 bitmap pages; prefetch 8 / 5 pages).
//!
//! # Quick start
//!
//! ```
//! use storage::{DiskModel, DiskParameters, PageKey, PagePool};
//!
//! // Table 4 disk: seek cost grows with track distance, plus a settle +
//! // controller delay per access and a per-page transfer time.
//! let mut disk = DiskModel::new(DiskParameters::default());
//! let service_ms = disk.service(120, 8); // seek to track 120, read 8 pages
//! assert!(service_ms > 8.0);
//!
//! // An LRU page pool: the first access misses, the repeat access hits.
//! let mut pool = PagePool::new(16);
//! assert!(!pool.request(PageKey::new(0, 1)));
//! assert!(pool.request(PageKey::new(0, 1)));
//! ```

#![forbid(unsafe_code)]

pub mod buffer;
pub mod disk;

pub use buffer::{BufferManager, BufferPoolStats, PageKey, PagePool, PageRequest};
pub use disk::{DiskModel, DiskParameters};
