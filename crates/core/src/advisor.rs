//! The fragmentation advisor — the §4.7 guidelines as a tool.
//!
//! The paper closes Section 4 with a recipe a database administrator (or a
//! tool) can follow to pick a fragmentation:
//!
//! 1. exclude all fragmentations violating the thresholds of §4.4,
//! 2. limit the dimensionality to the dimensions the query profile actually
//!    references (and make sure there are enough fragments for all disks),
//! 3. evaluate the analytic I/O cost of the remaining candidates for the
//!    query mix and pick the one with the minimum total I/O work (possibly
//!    after first optimising a set of favoured queries).
//!
//! [`Advisor`] implements exactly that pipeline on top of
//! [`enumerate_fragmentations`], [`check_fragmentation`] and [`CostModel`].

use serde::{Deserialize, Serialize};

use bitmap::IndexCatalog;
use schema::StarSchema;

use crate::cost::{CostModel, CostParameters};
use crate::enumerate::enumerate_fragmentations;
use crate::fragmentation::Fragmentation;
use crate::query::StarQuery;
use crate::thresholds::{check_fragmentation, FragmentationConstraints};

/// Configuration of an advisor run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdvisorConfig {
    /// Threshold constraints (step 1 of the guidelines).
    pub constraints: FragmentationConstraints,
    /// Cost-model parameters.
    pub cost: CostParameters,
    /// Restrict candidates to dimensions referenced by the query mix
    /// (step 2 of the guidelines).  When false, all dimensions are eligible.
    pub restrict_to_query_dimensions: bool,
    /// Maximum number of ranked candidates to return.
    pub top_k: usize,
}

impl Default for AdvisorConfig {
    fn default() -> Self {
        AdvisorConfig {
            constraints: FragmentationConstraints::default(),
            cost: CostParameters::default(),
            restrict_to_query_dimensions: true,
            top_k: 10,
        }
    }
}

/// One ranked candidate fragmentation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RankedFragmentation {
    /// The candidate.
    pub fragmentation: Fragmentation,
    /// Weighted total I/O pages over the query mix.
    pub total_pages: f64,
    /// Weighted total I/O pages over the favoured queries only (0 when no
    /// favoured queries are given).
    pub favoured_pages: f64,
    /// Number of fragments of the candidate.
    pub fragments: u64,
    /// Bitmaps that must still be materialised under the candidate.
    pub bitmaps_required: u64,
}

/// The fragmentation advisor.
#[derive(Debug, Clone)]
pub struct Advisor {
    model: CostModel,
    config: AdvisorConfig,
}

impl Advisor {
    /// Creates an advisor for a schema with the default bitmap-index catalog.
    #[must_use]
    pub fn new(schema: StarSchema, config: AdvisorConfig) -> Self {
        let catalog = IndexCatalog::default_for(&schema);
        let model = CostModel::with_parameters(schema, catalog, config.cost);
        Advisor { model, config }
    }

    /// Creates an advisor with an explicit catalog.
    #[must_use]
    pub fn with_catalog(schema: StarSchema, catalog: IndexCatalog, config: AdvisorConfig) -> Self {
        let model = CostModel::with_parameters(schema, catalog, config.cost);
        Advisor { model, config }
    }

    /// The underlying cost model.
    #[must_use]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Ranks admissible fragmentations for a weighted `query mix`.
    ///
    /// `favoured` queries are optimised first: candidates are ordered by
    /// their total I/O on the favoured queries, ties broken by total I/O on
    /// the whole mix (the "Otherwise, consider all fragmentations which
    /// optimize the favored queries and proceed as above for the rest"
    /// guideline).  With no favoured queries the mix total alone decides.
    #[must_use]
    pub fn recommend(
        &self,
        mix: &[(StarQuery, f64)],
        favoured: &[StarQuery],
    ) -> Vec<RankedFragmentation> {
        let schema = self.model.schema();
        let catalog = self.model.catalog().clone();

        // Step 2: dimensions referenced by the workload.
        let mut referenced: Vec<usize> = mix
            .iter()
            .flat_map(|(q, _)| q.dimensions())
            .chain(favoured.iter().flat_map(StarQuery::dimensions))
            .collect();
        referenced.sort_unstable();
        referenced.dedup();

        let mut ranked: Vec<RankedFragmentation> = enumerate_fragmentations(schema)
            .into_iter()
            .filter(|f| {
                !self.config.restrict_to_query_dimensions
                    || referenced.is_empty()
                    || f.attrs().iter().all(|a| referenced.contains(&a.dimension))
            })
            .filter_map(|f| {
                // Step 1: thresholds.
                let report = check_fragmentation(schema, &catalog, &self.config.constraints, &f);
                if !report.is_admissible() {
                    return None;
                }
                // Step 3: analytic I/O cost.
                let total_pages = self.model.mix_total_pages(&f, mix);
                let favoured_pages: f64 = favoured
                    .iter()
                    .map(|q| self.model.evaluate(&f, q).1.total_pages())
                    .sum();
                Some(RankedFragmentation {
                    fragments: f.fragment_count(),
                    bitmaps_required: report.bitmaps_required,
                    fragmentation: f,
                    total_pages,
                    favoured_pages,
                })
            })
            .collect();

        ranked.sort_by(|a, b| {
            let key_a = (a.favoured_pages, a.total_pages, a.fragments);
            let key_b = (b.favoured_pages, b.total_pages, b.fragments);
            key_a.partial_cmp(&key_b).expect("costs are finite")
        });
        ranked.truncate(self.config.top_k);
        ranked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::apb1::apb1_schema;

    fn paper_mix(schema: &StarSchema) -> Vec<(StarQuery, f64)> {
        vec![
            (
                StarQuery::exact_match(schema, "1MONTH1GROUP", &["time::month", "product::group"]),
                1.0,
            ),
            (
                StarQuery::exact_match(schema, "1MONTH", &["time::month"]),
                1.0,
            ),
            (
                StarQuery::exact_match(schema, "1CODE", &["product::code"]),
                1.0,
            ),
            (
                StarQuery::exact_match(
                    schema,
                    "1CODE1QUARTER",
                    &["product::code", "time::quarter"],
                ),
                1.0,
            ),
        ]
    }

    #[test]
    fn recommends_time_product_fragmentations_for_time_product_mix() {
        let s = apb1_schema();
        let advisor = Advisor::new(s.clone(), AdvisorConfig::default());
        let ranked = advisor.recommend(&paper_mix(&s), &[]);
        assert!(!ranked.is_empty());
        // All candidates stay within the referenced dimensions (time/product)
        // and satisfy the thresholds.
        let time = s.dimension_index("time").unwrap();
        let product = s.dimension_index("product").unwrap();
        for r in &ranked {
            for a in r.fragmentation.attrs() {
                assert!(a.dimension == time || a.dimension == product);
            }
            assert!(r.fragments >= 100, "enough fragments for 100 disks");
            assert!(r.total_pages.is_finite() && r.total_pages > 0.0);
        }
        // Ranking is by total pages (no favoured queries).
        for pair in ranked.windows(2) {
            assert!(pair[0].total_pages <= pair[1].total_pages);
        }
    }

    #[test]
    fn favoured_queries_take_precedence() {
        let s = apb1_schema();
        let advisor = Advisor::new(
            s.clone(),
            AdvisorConfig {
                restrict_to_query_dimensions: false,
                top_k: 200,
                ..AdvisorConfig::default()
            },
        );
        let mix = paper_mix(&s);
        let favoured = vec![StarQuery::exact_match(&s, "1STORE", &["customer::store"])];
        let ranked = advisor.recommend(&mix, &favoured);
        assert!(!ranked.is_empty());
        // The best candidates for a favoured 1STORE query must fragment the
        // customer dimension (otherwise 1STORE touches every fragment).
        let customer = s.dimension_index("customer").unwrap();
        let best = &ranked[0];
        assert!(
            best.fragmentation.covers_dimension(customer),
            "best candidate {} does not cover customer",
            best.fragmentation.describe(&s)
        );
        // Ordered by favoured cost first.
        for pair in ranked.windows(2) {
            assert!(pair[0].favoured_pages <= pair[1].favoured_pages + 1e-9);
        }
    }

    #[test]
    fn inadmissible_candidates_are_filtered() {
        let s = apb1_schema();
        let advisor = Advisor::new(s.clone(), AdvisorConfig::default());
        let ranked = advisor.recommend(&paper_mix(&s), &[]);
        // F_MonthCode (345 600 fragments, 0.16-page bitmap fragments) must
        // never be recommended under the default thresholds.
        for r in &ranked {
            assert!(r.fragments <= 56_953, "{}", r.fragmentation.describe(&s));
            assert!(r.fragments != 345_600);
        }
    }

    #[test]
    fn top_k_limits_output() {
        let s = apb1_schema();
        let advisor = Advisor::new(
            s.clone(),
            AdvisorConfig {
                top_k: 3,
                ..AdvisorConfig::default()
            },
        );
        let ranked = advisor.recommend(&paper_mix(&s), &[]);
        assert!(ranked.len() <= 3);
    }

    #[test]
    fn empty_mix_still_returns_candidates() {
        let s = apb1_schema();
        let advisor = Advisor::new(
            s.clone(),
            AdvisorConfig {
                restrict_to_query_dimensions: true,
                ..AdvisorConfig::default()
            },
        );
        let ranked = advisor.recommend(&[], &[]);
        // With no queries every admissible fragmentation costs 0; the advisor
        // still returns (up to top_k) admissible candidates.
        assert!(!ranked.is_empty());
        for r in &ranked {
            assert_eq!(r.total_pages, 0.0);
        }
    }
}
