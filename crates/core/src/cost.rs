//! Analytic I/O cost model (§4.5, re-derivation of the companion report
//! \[33\]).
//!
//! The model estimates, for a given fragmentation and query type, how many
//! fact-table and bitmap pages must be read and how many I/O operations
//! (prefetch granules) that takes.  Its assumptions are the ones stated in
//! the paper: query hits are uniformly distributed over the relevant
//! fragments and pages, and the pages of a fragment are stored consecutively
//! on disk.
//!
//! For queries of class IOC1 all pages of the selected fragments are read
//! sequentially with full prefetch efficiency.  For IOC2 queries the hits are
//! spread, so the model estimates the expected number of pages (and prefetch
//! granules) containing at least one hit; bitmap fragments of every required
//! bitmap are read for every selected fragment.
//!
//! Validated against the orders of magnitude of Table 3 (query 1STORE under
//! `F_opt = {customer::store}` vs `F_nosupp = F_MonthGroup`).

use serde::{Deserialize, Serialize};

use bitmap::IndexCatalog;
use schema::{PageSizing, StarSchema};

use crate::classify::{classify, Classification};
use crate::fragmentation::Fragmentation;
use crate::query::StarQuery;

/// Tunable parameters of the cost model (defaults follow Table 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostParameters {
    /// Prefetch granule on fact fragments, in pages (Table 4: 8).
    pub fact_prefetch_pages: u64,
    /// Prefetch granule on bitmap fragments, in pages (Table 4: 5).
    pub bitmap_prefetch_pages: u64,
    /// Measured bitmap compression ratio (verbatim bytes over stored bytes,
    /// e.g. from a representation-aware index build): bitmap page counts
    /// are divided by it.  1.0 reproduces the paper's verbatim sizing.
    pub bitmap_compression_ratio: f64,
}

impl Default for CostParameters {
    fn default() -> Self {
        CostParameters {
            fact_prefetch_pages: 8,
            bitmap_prefetch_pages: 5,
            bitmap_compression_ratio: 1.0,
        }
    }
}

/// Estimated I/O work of one query under one fragmentation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryIoCost {
    /// Number of fact fragments that must be processed.
    pub fragments_to_process: u64,
    /// Expected number of fact rows satisfying the query.
    pub expected_hits: f64,
    /// Fact-table pages read (prefetch granules are read in full).
    pub fact_pages_read: f64,
    /// Fact-table I/O operations (one per prefetch granule touched).
    pub fact_io_ops: f64,
    /// Bitmap pages read.
    pub bitmap_pages_read: f64,
    /// Bitmap I/O operations.
    pub bitmap_io_ops: f64,
    /// Number of distinct bitmaps that must be consulted per fragment.
    pub bitmaps_per_fragment: u64,
}

impl QueryIoCost {
    /// Total pages read (fact + bitmap).
    #[must_use]
    pub fn total_pages(&self) -> f64 {
        self.fact_pages_read + self.bitmap_pages_read
    }

    /// Total I/O operations (fact + bitmap).
    #[must_use]
    pub fn total_io_ops(&self) -> f64 {
        self.fact_io_ops + self.bitmap_io_ops
    }

    /// Total I/O volume in bytes for the given page size.
    #[must_use]
    pub fn total_bytes(&self, page_size: u64) -> f64 {
        self.total_pages() * page_size as f64
    }

    /// Total I/O volume in megabytes (10⁶ bytes, as in Table 3).
    #[must_use]
    pub fn total_megabytes(&self, page_size: u64) -> f64 {
        self.total_bytes(page_size) / 1e6
    }
}

/// The analytic I/O cost model for a fixed schema and bitmap-index catalog.
#[derive(Debug, Clone)]
pub struct CostModel {
    schema: StarSchema,
    catalog: IndexCatalog,
    sizing: PageSizing,
    params: CostParameters,
}

impl CostModel {
    /// Creates a cost model with default parameters (Table 4 prefetch sizes).
    #[must_use]
    pub fn new(schema: StarSchema, catalog: IndexCatalog) -> Self {
        Self::with_parameters(schema, catalog, CostParameters::default())
    }

    /// Creates a cost model with explicit parameters.
    #[must_use]
    pub fn with_parameters(
        schema: StarSchema,
        catalog: IndexCatalog,
        params: CostParameters,
    ) -> Self {
        let sizing = PageSizing::new(&schema);
        CostModel {
            schema,
            catalog,
            sizing,
            params,
        }
    }

    /// Applies a *measured* bitmap compression ratio (verbatim bytes over
    /// stored bytes, e.g. [`bitmap::ReprStats::compression_ratio`] of a
    /// representation-aware index build), so bitmap page estimates reflect
    /// what the chosen representations actually occupy.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not strictly positive and finite.
    #[must_use]
    pub fn with_measured_compression(mut self, ratio: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio > 0.0,
            "compression ratio must be positive and finite"
        );
        self.params.bitmap_compression_ratio = ratio;
        self
    }

    /// The schema this model evaluates against.
    #[must_use]
    pub fn schema(&self) -> &StarSchema {
        &self.schema
    }

    /// The bitmap-index catalog used for bitmap I/O estimation.
    #[must_use]
    pub fn catalog(&self) -> &IndexCatalog {
        &self.catalog
    }

    /// The page sizing derived from the schema.
    #[must_use]
    pub fn sizing(&self) -> &PageSizing {
        &self.sizing
    }

    /// The model parameters.
    #[must_use]
    pub fn parameters(&self) -> CostParameters {
        self.params
    }

    /// Estimates the I/O cost of `query` under `fragmentation`, together with
    /// its classification.
    #[must_use]
    pub fn evaluate(
        &self,
        fragmentation: &Fragmentation,
        query: &StarQuery,
    ) -> (Classification, QueryIoCost) {
        let classification = classify(&self.schema, fragmentation, query);
        let cost = self.cost_for(fragmentation, query, &classification);
        (classification, cost)
    }

    /// Estimates only the I/O cost (classification supplied by the caller).
    #[must_use]
    pub fn cost_for(
        &self,
        fragmentation: &Fragmentation,
        query: &StarQuery,
        classification: &Classification,
    ) -> QueryIoCost {
        let n = fragmentation.fragment_count();
        let frags_q = classification.fragments_to_process;
        let rows_per_frag = self.sizing.fact_rows() as f64 / n as f64;
        let rows_per_page = self.sizing.fact_tuples_per_page() as f64;
        let pages_per_frag = (rows_per_frag / rows_per_page).ceil().max(1.0);
        let granules_per_frag = (pages_per_frag / self.params.fact_prefetch_pages as f64)
            .ceil()
            .max(1.0);

        let expected_hits = query.expected_hits(&self.schema);
        let hits_per_frag = expected_hits / frags_q as f64;

        let (fact_io_ops, fact_pages_read) = if classification.needs_no_bitmaps() {
            // IOC1: every row of the selected fragments is relevant — read the
            // whole fragment sequentially with full prefetch efficiency.
            let ops = frags_q as f64 * granules_per_frag;
            let pages = frags_q as f64 * pages_per_frag;
            (ops, pages)
        } else {
            // IOC2: only the hit rows are relevant.  Estimate the expected
            // number of prefetch granules (and of pages within them) that
            // contain at least one hit, assuming uniformly distributed hits.
            let sel_in_frag = (hits_per_frag / rows_per_frag).min(1.0);
            let rows_per_granule = rows_per_page * self.params.fact_prefetch_pages as f64;
            let p_granule_has_hit = 1.0 - (1.0 - sel_in_frag).powf(rows_per_granule);
            let granules_with_hits = granules_per_frag * p_granule_has_hit;
            let ops = frags_q as f64 * granules_with_hits;
            // A prefetch I/O always transfers the whole granule.
            let pages = ops * self.params.fact_prefetch_pages as f64;
            (ops, pages.min(frags_q as f64 * pages_per_frag))
        };

        // Bitmap I/O: for every fragment to process, read the fragments of
        // every bitmap the query still needs.
        let bitmaps_per_fragment: u64 = classification
            .bitmap_requirements
            .iter()
            .map(|req| {
                self.catalog
                    .spec(req.attr.dimension)
                    .bitmaps_for_selection(req.attr.level)
            })
            .sum();
        let (bitmap_io_ops, bitmap_pages_read) = if bitmaps_per_fragment == 0 {
            (0.0, 0.0)
        } else {
            // Compressed representations shrink the stored bitmap fragment;
            // a fragment still costs at least one page to read.
            let bitmap_frag_pages = (self.sizing.bitmap_fragment_pages(n)
                / self.params.bitmap_compression_ratio)
                .ceil()
                .max(1.0);
            let ops_per_bitmap_frag =
                (bitmap_frag_pages / self.params.bitmap_prefetch_pages as f64).ceil();
            let ops = frags_q as f64 * bitmaps_per_fragment as f64 * ops_per_bitmap_frag;
            let pages = frags_q as f64 * bitmaps_per_fragment as f64 * bitmap_frag_pages;
            (ops, pages)
        };

        QueryIoCost {
            fragments_to_process: frags_q,
            expected_hits,
            fact_pages_read,
            fact_io_ops,
            bitmap_pages_read,
            bitmap_io_ops,
            bitmaps_per_fragment,
        }
    }

    /// Total I/O pages for a weighted query mix — the aggregate the §4.7
    /// guidelines minimise when no query type is favoured.
    #[must_use]
    pub fn mix_total_pages(&self, fragmentation: &Fragmentation, mix: &[(StarQuery, f64)]) -> f64 {
        mix.iter()
            .map(|(q, weight)| {
                let (_, cost) = self.evaluate(fragmentation, q);
                weight * cost.total_pages()
            })
            .sum()
    }

    /// Multi-user throughput estimate for a closed workload of `mpl`
    /// concurrent queries of one type on `servers` parallel processing
    /// units (operational-analysis asymptotic bounds, with zero think
    /// time).
    ///
    /// A query's service demand is its total I/O pages `D`.  Running alone
    /// it spreads over at most `p₁ = min(servers, fragments)` units, so its
    /// response time is bounded by `D / p₁`.  With `mpl` queries in flight
    /// the system-wide page rate is capped by the `servers` units, giving
    ///
    /// ```text
    /// X(mpl) = min(mpl · p₁, servers) / D    queries per page-time
    /// ```
    ///
    /// — throughput grows linearly with the MPL while intra-query
    /// parallelism leaves units idle, and saturates once `mpl · p₁`
    /// reaches the pool size.  This is the trend the measured
    /// `fig_multiuser_throughput` sweep and SIMPAD's multi-user runs are
    /// cross-checked against; absolute page-time units cancel in the
    /// [`MultiUserEstimate::relative_throughput`] comparison.
    ///
    /// `mpl` and `servers` are clamped to at least 1.
    #[must_use]
    pub fn multi_user_throughput(
        &self,
        fragmentation: &Fragmentation,
        query: &StarQuery,
        mpl: usize,
        servers: usize,
    ) -> MultiUserEstimate {
        let mpl = mpl.max(1) as u64;
        let servers = servers.max(1) as u64;
        let (_, cost) = self.evaluate(fragmentation, query);
        let per_query_pages = cost.total_pages().max(1.0);
        let intra_parallelism = servers.min(cost.fragments_to_process).max(1);
        let busy = |m: u64| (m * intra_parallelism).min(servers) as f64;
        MultiUserEstimate {
            mpl: mpl as usize,
            servers: servers as usize,
            per_query_pages,
            intra_parallelism,
            throughput: busy(mpl) / per_query_pages,
            relative_throughput: busy(mpl) / busy(1),
            saturation_mpl: servers as f64 / intra_parallelism as f64,
        }
    }
}

/// The analytic multi-user throughput bound of
/// [`CostModel::multi_user_throughput`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultiUserEstimate {
    /// The multi-programming level the bound was evaluated at.
    pub mpl: usize,
    /// Number of parallel processing units assumed.
    pub servers: usize,
    /// Service demand of one query, in I/O pages (at least 1).
    pub per_query_pages: f64,
    /// Units one query can use by itself: `min(servers, fragments)`.
    pub intra_parallelism: u64,
    /// Throughput bound in queries per page-read-time.
    pub throughput: f64,
    /// Throughput relative to the same workload at MPL 1 — the unit-free
    /// trend measured sweeps are compared against.
    pub relative_throughput: f64,
    /// The MPL at which the pool saturates (`servers / intra_parallelism`);
    /// beyond it, extra in-flight queries only add queueing delay.
    pub saturation_mpl: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use schema::apb1::apb1_schema;

    fn model() -> CostModel {
        let s = apb1_schema();
        let catalog = IndexCatalog::default_for(&s);
        CostModel::new(s, catalog)
    }

    #[test]
    fn table_3_optimal_fragmentation_for_1store() {
        // Table 3, column F_opt = {customer::store}: 1 fragment, ~795 fact
        // I/Os (8-page granules), no bitmap I/O, ~25 MB total.
        let m = model();
        let f = Fragmentation::parse(m.schema(), &["customer::store"]).unwrap();
        let q = StarQuery::exact_match(m.schema(), "1STORE", &["customer::store"]);
        let (c, cost) = m.evaluate(&f, &q);
        assert_eq!(cost.fragments_to_process, 1);
        assert!(c.needs_no_bitmaps());
        assert!((cost.expected_hits - 1_296_000.0).abs() < 1.0);
        // ~6 328 pages read in ~791 prefetch operations of 8 pages.
        assert!(
            (cost.fact_io_ops - 791.0).abs() < 10.0,
            "{}",
            cost.fact_io_ops
        );
        assert_eq!(cost.bitmap_io_ops, 0.0);
        assert_eq!(cost.bitmap_pages_read, 0.0);
        let mb = cost.total_megabytes(4_096);
        assert!((mb - 25.9).abs() < 1.5, "total {mb} MB");
    }

    #[test]
    fn table_3_unsupported_fragmentation_for_1store() {
        // Table 3, column F_nosupp = F_MonthGroup: 11 520 fragments, millions
        // of fact pages, 691 200 bitmap pages, tens of GB in total.
        let m = model();
        let f = Fragmentation::parse(m.schema(), &["time::month", "product::group"]).unwrap();
        let q = StarQuery::exact_match(m.schema(), "1STORE", &["customer::store"]);
        let (c, cost) = m.evaluate(&f, &q);
        assert_eq!(cost.fragments_to_process, 11_520);
        assert!(!c.needs_no_bitmaps());
        // The CUSTOMER dimension has a 12-bitmap encoded index; the store is
        // its finest level, so all 12 bitmaps are consulted per fragment.
        assert_eq!(cost.bitmaps_per_fragment, 12);
        // 11 520 fragments × 12 bitmaps × 5 whole pages = 691 200 bitmap pages
        // — exactly the paper's figure.
        assert!((cost.bitmap_pages_read - 691_200.0).abs() < 1.0);
        // Fact I/O in the millions of pages (paper: 5 189 760).
        assert!(
            cost.fact_pages_read > 3e6 && cost.fact_pages_read < 9e6,
            "{}",
            cost.fact_pages_read
        );
        // Total I/O volume in the tens of GB (paper: 31 075 MB).
        let mb = cost.total_megabytes(4_096);
        assert!(mb > 15_000.0 && mb < 45_000.0, "total {mb} MB");
    }

    #[test]
    fn table_3_improvement_is_several_orders_of_magnitude() {
        // "a suitable fragmentation permits improvements in I/O performance by
        // several orders of magnitude" — paper ratio ~1250× in MB.
        let m = model();
        let q = StarQuery::exact_match(m.schema(), "1STORE", &["customer::store"]);
        let f_opt = Fragmentation::parse(m.schema(), &["customer::store"]).unwrap();
        let f_nosupp =
            Fragmentation::parse(m.schema(), &["time::month", "product::group"]).unwrap();
        let (_, opt) = m.evaluate(&f_opt, &q);
        let (_, nosupp) = m.evaluate(&f_nosupp, &q);
        let ratio = nosupp.total_pages() / opt.total_pages();
        assert!(ratio > 500.0, "improvement ratio {ratio}");
    }

    #[test]
    fn ioc1_queries_read_exactly_their_fragments() {
        let m = model();
        let f = Fragmentation::parse(m.schema(), &["time::month", "product::group"]).unwrap();
        // 1MONTH1GROUP: one fragment of 162 000 rows = 795 pages (at 204
        // rows/page), read in ceil(795/8) = 100 granules.
        let q = StarQuery::exact_match(
            m.schema(),
            "1MONTH1GROUP",
            &["time::month", "product::group"],
        );
        let (_, cost) = m.evaluate(&f, &q);
        assert_eq!(cost.fragments_to_process, 1);
        assert!((cost.fact_pages_read - 795.0).abs() < 2.0);
        assert!((cost.fact_io_ops - 100.0).abs() < 2.0);
        assert_eq!(cost.bitmap_pages_read, 0.0);

        // 1MONTH: 480 fragments, all read completely (Figure 4's CPU-bound
        // query).
        let q = StarQuery::exact_match(m.schema(), "1MONTH", &["time::month"]);
        let (_, cost) = m.evaluate(&f, &q);
        assert_eq!(cost.fragments_to_process, 480);
        assert!((cost.fact_pages_read - 480.0 * 795.0).abs() < 500.0);
        assert_eq!(cost.bitmap_io_ops, 0.0);
    }

    #[test]
    fn figure_6_fragmentation_comparison_for_1code1quarter() {
        // §6.3: 1CODE1QUARTER accesses exactly 3 fragments for all three
        // fragmentations; fragment size (and hence I/O) halves from
        // F_MonthGroup to F_MonthClass, and F_MonthCode is best because no
        // bitmap access is needed and fragments contain only relevant tuples.
        let m = model();
        let q = StarQuery::exact_match(
            m.schema(),
            "1CODE1QUARTER",
            &["product::code", "time::quarter"],
        );
        let fragmentations = [
            ("group", "product::group"),
            ("class", "product::class"),
            ("code", "product::code"),
        ];
        let mut totals = Vec::new();
        for (_, product_level) in fragmentations {
            let f = Fragmentation::parse(m.schema(), &["time::month", product_level]).unwrap();
            let (c, cost) = m.evaluate(&f, &q);
            assert_eq!(cost.fragments_to_process, 3, "{product_level}");
            if product_level == "product::code" {
                assert!(c.needs_no_bitmaps());
            } else {
                assert!(!c.needs_no_bitmaps());
            }
            totals.push(cost.total_pages());
        }
        // Strictly improving from group → class → code.
        assert!(totals[0] > totals[1], "{totals:?}");
        assert!(totals[1] > totals[2], "{totals:?}");
    }

    #[test]
    fn figure_6_fragmentation_comparison_for_1store() {
        // §6.3: 1STORE exhibits the inverse behaviour — the fine-grained
        // F_MonthCode is by far the worst because bitmap fragments drop below
        // one page ("more than 4 million" bitmap pages).
        let m = model();
        let q = StarQuery::exact_match(m.schema(), "1STORE", &["customer::store"]);
        let mut totals = Vec::new();
        for product_level in ["product::group", "product::class", "product::code"] {
            let f = Fragmentation::parse(m.schema(), &["time::month", product_level]).unwrap();
            let (_, cost) = m.evaluate(&f, &q);
            totals.push((cost.total_pages(), cost.bitmap_pages_read));
        }
        // Code fragmentation is the worst overall and its bitmap I/O explodes.
        assert!(totals[2].0 > totals[0].0, "{totals:?}");
        assert!(totals[2].1 > 3e6, "bitmap pages {:?}", totals[2]);
    }

    #[test]
    fn measured_compression_shrinks_bitmap_pages_only() {
        // Table 3's F_nosupp column for 1STORE reads 691 200 bitmap pages at
        // verbatim sizing (5 whole pages per bitmap fragment).  A measured
        // 5x compression brings a fragment to 1 page, i.e. 138 240 total —
        // fact I/O is untouched.
        let m = model();
        let f = Fragmentation::parse(m.schema(), &["time::month", "product::group"]).unwrap();
        let q = StarQuery::exact_match(m.schema(), "1STORE", &["customer::store"]);
        let (_, verbatim) = m.evaluate(&f, &q);
        let compressed_model = model().with_measured_compression(5.0);
        assert_eq!(compressed_model.parameters().bitmap_compression_ratio, 5.0);
        let (_, compressed) = compressed_model.evaluate(&f, &q);
        assert!((verbatim.bitmap_pages_read - 691_200.0).abs() < 1.0);
        assert!((compressed.bitmap_pages_read - 138_240.0).abs() < 1.0);
        assert_eq!(compressed.fact_pages_read, verbatim.fact_pages_read);
        assert_eq!(compressed.fact_io_ops, verbatim.fact_io_ops);
        // Both sizings fit one 5-page prefetch granule per bitmap fragment,
        // so operation counts stay at their floor — only pages shrink.
        assert_eq!(compressed.bitmap_io_ops, verbatim.bitmap_io_ops);
        // A ratio of 1.0 (the default) reproduces the verbatim figures.
        assert_eq!(
            model().with_measured_compression(1.0).evaluate(&f, &q).1,
            verbatim
        );
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn non_positive_measured_compression_rejected() {
        let _ = model().with_measured_compression(f64::NAN);
    }

    #[test]
    fn multi_user_throughput_scales_until_the_pool_saturates() {
        // 1MONTH1GROUP under F_MonthGroup prunes to a single fragment, so a
        // lone query keeps 3 of 4 units idle: throughput must grow linearly
        // with the MPL up to 4x and then saturate.
        let m = model();
        let f = Fragmentation::parse(m.schema(), &["time::month", "product::group"]).unwrap();
        let q = StarQuery::exact_match(
            m.schema(),
            "1MONTH1GROUP",
            &["time::month", "product::group"],
        );
        let mut previous = 0.0;
        for mpl in [1usize, 2, 4] {
            let estimate = m.multi_user_throughput(&f, &q, mpl, 4);
            assert_eq!(estimate.intra_parallelism, 1);
            assert!((estimate.relative_throughput - mpl as f64).abs() < 1e-12);
            assert!(estimate.throughput > previous);
            previous = estimate.throughput;
        }
        let saturated = m.multi_user_throughput(&f, &q, 8, 4);
        assert!((saturated.relative_throughput - 4.0).abs() < 1e-12);
        assert!((saturated.saturation_mpl - 4.0).abs() < 1e-12);
        assert_eq!(
            saturated.throughput,
            m.multi_user_throughput(&f, &q, 4, 4).throughput
        );

        // 1MONTH spans 480 fragments: one query already saturates 4 units,
        // so adding users cannot raise the throughput bound.
        let q_month = StarQuery::exact_match(m.schema(), "1MONTH", &["time::month"]);
        let alone = m.multi_user_throughput(&f, &q_month, 1, 4);
        assert_eq!(alone.intra_parallelism, 4);
        for mpl in [2usize, 8] {
            let estimate = m.multi_user_throughput(&f, &q_month, mpl, 4);
            assert!((estimate.relative_throughput - 1.0).abs() < 1e-12);
        }
        // Degenerate inputs are clamped rather than dividing by zero.
        let clamped = m.multi_user_throughput(&f, &q, 0, 0);
        assert_eq!(clamped.mpl, 1);
        assert_eq!(clamped.servers, 1);
        assert!((clamped.relative_throughput - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mix_cost_weights_queries() {
        let m = model();
        let f = Fragmentation::parse(m.schema(), &["time::month", "product::group"]).unwrap();
        let q1 = StarQuery::exact_match(m.schema(), "1MONTH", &["time::month"]);
        let q2 = StarQuery::exact_match(m.schema(), "1STORE", &["customer::store"]);
        let only_q1 = m.mix_total_pages(&f, &[(q1.clone(), 1.0)]);
        let only_q2 = m.mix_total_pages(&f, &[(q2.clone(), 1.0)]);
        let mixed = m.mix_total_pages(&f, &[(q1, 0.5), (q2, 0.5)]);
        assert!((mixed - 0.5 * (only_q1 + only_q2)).abs() < 1e-6);
    }

    #[test]
    fn accessors() {
        let m = model();
        assert_eq!(m.parameters(), CostParameters::default());
        assert_eq!(m.sizing().page_size_bytes(), 4_096);
        assert_eq!(m.catalog().total_bitmaps(), 76);
        assert_eq!(m.schema().dimension_count(), 4);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;
    use schema::apb1::apb1_schema;
    use schema::AttrRef;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Basic sanity of the cost model for arbitrary fragmentations and
        /// single-attribute queries: costs are non-negative and finite, pages
        /// are at least as many as operations times one page, and supported
        /// queries never cost more than unsupported ones on the same
        /// fragmentation dimensionality.
        #[test]
        fn prop_cost_sanity(
            frag_dim in 0usize..4,
            frag_level_seed in 0usize..6,
            query_dim in 0usize..4,
            query_level_seed in 0usize..6,
        ) {
            let s = apb1_schema();
            let catalog = IndexCatalog::default_for(&s);
            let m = CostModel::new(s.clone(), catalog);
            let frag_depth = s.dimensions()[frag_dim].hierarchy().depth();
            let query_depth = s.dimensions()[query_dim].hierarchy().depth();
            let f = Fragmentation::new(
                &s,
                vec![AttrRef::new(frag_dim, frag_level_seed % frag_depth)],
            ).unwrap();
            let q = StarQuery::new(
                "prop",
                vec![crate::query::Predicate::exact(AttrRef::new(
                    query_dim,
                    query_level_seed % query_depth,
                ))],
            );
            let (c, cost) = m.evaluate(&f, &q);
            prop_assert!(cost.fact_pages_read.is_finite() && cost.fact_pages_read >= 0.0);
            prop_assert!(cost.bitmap_pages_read.is_finite() && cost.bitmap_pages_read >= 0.0);
            prop_assert!(cost.fact_io_ops <= cost.fact_pages_read + 1.0);
            prop_assert!(cost.total_pages() >= 1.0);
            prop_assert_eq!(cost.fragments_to_process, c.fragments_to_process);
            if c.needs_no_bitmaps() {
                prop_assert_eq!(cost.bitmap_pages_read, 0.0);
                prop_assert_eq!(cost.bitmaps_per_fragment, 0);
            } else {
                prop_assert!(cost.bitmaps_per_fragment > 0);
            }
        }
    }
}
